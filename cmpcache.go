// Package cmpcache is a trace-driven simulator of the chip
// multiprocessor cache hierarchy from Speight, Shafi, Zhang and
// Rajamony, "Adaptive Mechanisms and Policies for Managing Cache
// Hierarchies in Chip Multiprocessors" (ISCA 2005), together with the
// paper's two adaptive write-back management mechanisms:
//
//   - the Write Back History Table (WBHT), which suppresses clean L2
//     write backs whose lines are predicted to already reside in the L3
//     victim cache, gated by a bus-retry-rate switch; and
//   - L2-to-L2 write-back snarfing, which lets peer L2 caches absorb
//     evicted lines with demonstrated reuse, converting future L3 and
//     memory accesses into fast on-chip cache-to-cache transfers.
//
// The simulated machine matches the paper's Table 3: eight 2-way SMT
// cores, four shared sliced L2 caches behind core interface units, a
// bi-directional intrachip ring with a central snoop collector, an
// off-chip 16 MB L3 victim cache for both clean and dirty lines, and a
// memory controller (contention-free latencies 20/77/167/431 cycles).
//
// # Quick start
//
//	cfg := cmpcache.DefaultConfig()               // Table 3 baseline
//	cfg.Mechanism = cmpcache.WBHT                 // enable the history table
//	tr, _ := cmpcache.GenerateWorkload("trade2")  // synthetic commercial trace
//	res, err := cmpcache.Run(cfg, tr)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
//
// The experiment harness that regenerates every table and figure of the
// paper's evaluation lives in cmd/cmpbench; see EXPERIMENTS.md for the
// paper-versus-measured record.
package cmpcache

import (
	"cmpcache/internal/audit"
	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/system"
	"cmpcache/internal/trace"
	"cmpcache/internal/txlat"
	"cmpcache/internal/workload"
)

// Config parameterizes the simulated system; see the fields of
// internal/config.Config (re-exported here as a type alias so the full
// parameter surface is available without a second import path).
type Config = config.Config

// Mechanism selects the write-back management policy under test.
type Mechanism = config.Mechanism

// The four policies evaluated in the paper.
const (
	// Baseline writes every victim back toward the L3 (which squashes
	// clean write backs it already holds).
	Baseline = config.Baseline
	// WBHT adds the Write Back History Table of Section 2.
	WBHT = config.WBHT
	// Snarf adds the L2-to-L2 write-back absorption of Section 3.
	Snarf = config.Snarf
	// Combined runs both with half-sized tables (Section 5.3).
	Combined = config.Combined
)

// Trace is a replayable memory-reference workload.
type Trace = trace.Trace

// Record is a single memory reference within a Trace.
type Record = trace.Record

// TraceSource is a streaming trace input: per-thread chunked iterators
// over a capture that is never materialized whole. The sharded on-disk
// store (OpenTraceDir) implements it with bounded memory.
type TraceSource = trace.Source

// ShardedTrace is the streaming reader over a sharded trace directory
// written by tracegen -shards (or trace.WriteSharded); see DESIGN.md
// §17.
type ShardedTrace = trace.Sharded

// IsShardedTraceDir reports whether path is a sharded trace directory.
func IsShardedTraceDir(path string) bool { return trace.IsShardedDir(path) }

// OpenTraceDir opens a sharded trace directory for streaming replay.
// Close it when done.
func OpenTraceDir(path string) (*ShardedTrace, error) { return trace.OpenSharded(path) }

// Results carries every statistic a run produces, including the derived
// metrics behind each of the paper's tables.
type Results = system.Results

// ShardingStats is the round-coordinator record in Results.Sharding:
// how many rounds the event loop ran, why the parallel horizon was
// limited each round (next global event, ring credit, or conflict
// window), and — for sharded runs — how much wall clock the barrier
// cost. The counters are deterministic and identical at every worker
// count; only the wall-clock fields (excluded from JSON) vary.
type ShardingStats = system.ShardingStats

// WorkloadProfile describes a synthetic workload; see
// internal/workload.Profile for the region mixture model.
type WorkloadProfile = workload.Profile

// DefaultConfig returns the paper's Table 3 system with the baseline
// write-back policy and six outstanding misses per thread.
func DefaultConfig() Config { return config.Default() }

// Run simulates tr on a system configured by cfg and returns the
// complete statistics. It is deterministic: identical inputs yield
// identical results.
func Run(cfg Config, tr *Trace) (*Results, error) {
	s, err := system.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// MetricsProbe collects a per-interval time series (and optionally a
// per-transaction event trace) from one run; see internal/metrics.
type MetricsProbe = metrics.Probe

// MetricsConfig parameterizes a MetricsProbe.
type MetricsConfig = metrics.Config

// MetricsSeries is the interval series a probe produces; Results.Metrics
// carries it after a RunWithProbe.
type MetricsSeries = metrics.Series

// NewMetricsProbe returns a probe sampling at cfg.Interval cycles
// (<= 0 selects the paper's 1M-cycle retry window).
func NewMetricsProbe(cfg MetricsConfig) *MetricsProbe { return metrics.NewProbe(cfg) }

// RunWithProbe simulates tr with p attached: the returned Results carry
// p's completed interval series in Results.Metrics, and any trace
// writer set on p receives the structured event stream. The simulated
// outcome is identical to Run — the probe is observation-only.
func RunWithProbe(cfg Config, tr *Trace, p *MetricsProbe) (*Results, error) {
	s, err := system.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	s.Attach(p)
	return s.Run(), nil
}

// Auditor is the shadow invariant checker of internal/audit: attached
// to a run, it verifies single-writer coherence, dirty-line
// conservation, squash soundness and resource-credit conservation on
// every sweep and at end-of-run drain, without perturbing the
// simulation.
type Auditor = audit.Auditor

// AuditConfig parameterizes an Auditor.
type AuditConfig = audit.Config

// AuditViolation is one invariant failure an Auditor recorded.
type AuditViolation = audit.Violation

// NewAuditor returns an unattached invariant checker.
func NewAuditor(cfg AuditConfig) *Auditor { return audit.New(cfg) }

// RunAudited simulates tr with a attached as a shadow invariant
// checker. The simulated outcome is identical to Run — the auditor is
// observation-only; inspect a.Ok(), a.Violations() or a.Summary()
// afterward.
func RunAudited(cfg Config, tr *Trace, a *Auditor) (*Results, error) {
	s, err := system.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	s.AttachAuditor(a)
	return s.Run(), nil
}

// LatencyCollector is the per-transaction latency attribution layer of
// internal/txlat: attached to a run, it stamps every demand miss and
// write back at its lifecycle stages and accumulates per-stage cycles
// into quantile histograms keyed by (transaction kind × outcome ×
// mechanism state), plus a top-K slowest-transactions reservoir.
type LatencyCollector = txlat.Collector

// LatencyConfig parameterizes a LatencyCollector.
type LatencyConfig = txlat.Config

// LatencyReport is the collector's frozen output; Results.Latency
// carries it after a run with a collector attached.
type LatencyReport = txlat.Report

// RunLatencyFile is the JSON file format written by `cmpsim -lat-out`
// and consumed by cmpreport.
type RunLatencyFile = txlat.RunLatency

// NewLatencyCollector returns an unattached latency collector.
func NewLatencyCollector(cfg LatencyConfig) *LatencyCollector { return txlat.New(cfg) }

// RunOptions bundles the observation-only attachments a run can carry;
// any subset (including none) may be set, and all compose.
type RunOptions struct {
	Probe   *MetricsProbe
	Auditor *Auditor
	Latency *LatencyCollector

	// Workers sets the intra-run parallelism: the simulated chip is
	// sharded by L2 slice and the shard event wheels execute on this
	// many goroutines, synchronized at the bus (see DESIGN.md §15).
	// 0 leaves the run serial, < 0 selects auto (MaxWorkers), and
	// explicit counts clamp to MaxWorkers. Results are bit-identical
	// at every worker count — including the probe series, latency
	// report, event trace and audit verdict — so this knob trades
	// nothing but wall clock.
	Workers int
}

// MaxWorkers returns the largest useful intra-run worker count for cfg:
// one worker per L2 slice, capped by GOMAXPROCS. This is what the
// cmd-line tools' "-shards auto" resolves to.
func MaxWorkers(cfg *Config) int { return system.MaxWorkers(cfg) }

// RunWith simulates tr with every attachment in opts installed. The
// simulated outcome is identical to Run — all attachments are
// observation-only; Results.Metrics and Results.Latency carry the probe
// series and latency report, and the auditor is inspected afterward via
// its own methods.
func RunWith(cfg Config, tr *Trace, opts RunOptions) (*Results, error) {
	s, err := system.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	if opts.Probe != nil {
		s.Attach(opts.Probe)
	}
	if opts.Auditor != nil {
		s.AttachAuditor(opts.Auditor)
	}
	if opts.Latency != nil {
		s.AttachLatency(opts.Latency)
	}
	if opts.Workers != 0 {
		s.SetWorkers(opts.Workers)
	}
	return s.Run(), nil
}

// RunSourceWith is RunWith over a streaming trace source: thread feeds
// pull chunked per-thread iterators, so replay memory is bounded by the
// source's chunk size rather than the trace length. A completed run is
// bit-identical to RunWith over the equivalent in-memory trace.
func RunSourceWith(cfg Config, src TraceSource, opts RunOptions) (*Results, error) {
	s, err := system.NewStream(cfg, src)
	if err != nil {
		return nil, err
	}
	if opts.Probe != nil {
		s.Attach(opts.Probe)
	}
	if opts.Auditor != nil {
		s.AttachAuditor(opts.Auditor)
	}
	if opts.Latency != nil {
		s.AttachLatency(opts.Latency)
	}
	if opts.Workers != 0 {
		s.SetWorkers(opts.Workers)
	}
	return s.Run(), nil
}

// Workloads lists the built-in synthetic commercial workloads:
// "tp", "cpw2", "notesbench" and "trade2".
func Workloads() []string { return workload.Names() }

// WorkloadByName returns the named built-in workload profile
// (case-insensitive), which the caller may adjust before generating.
func WorkloadByName(name string) (WorkloadProfile, error) {
	return workload.ByName(name)
}

// GenerateWorkload synthesizes the named built-in workload trace at its
// default length.
func GenerateWorkload(name string) (*Trace, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate()
}

// GenerateWorkloadSized synthesizes the named workload with a specific
// per-thread reference count (larger traces reduce warm-up effects at
// the cost of simulation time).
func GenerateWorkloadSized(name string, refsPerThread int) (*Trace, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	p.RefsPerThread = refsPerThread
	return p.Generate()
}
