module cmpcache

go 1.24
