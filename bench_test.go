// Benchmarks regenerating each of the paper's evaluation artifacts.
// Every BenchmarkTableN / BenchmarkFigN runs the corresponding
// experiment end to end on reduced traces (the -quick grid), reporting
// simulated cycles per artifact alongside wall time; run with
//
//	go test -bench=. -benchmem
//
// For the full-scale artifacts use cmd/cmpbench instead.
package cmpcache_test

import (
	"context"
	"io"
	"testing"

	"cmpcache"
	"cmpcache/internal/config"
	"cmpcache/internal/experiments"
	"cmpcache/internal/sweep"
)

const benchRefs = 4000 // per-thread references for benchmark-scale runs

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(experiments.Options{
			RefsPerThread: benchRefs,
			Quick:         true,
		})
		if err := runner.Run(name, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }

// BenchmarkAblations covers the DESIGN.md design-choice ablations
// (retry-switch forcing, snarf insertion position, invalid-only
// victimization, combined tables).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// references per second on the baseline Trade2-like workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := cmpcache.GenerateWorkloadSized("trade2", benchRefs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cmpcache.DefaultConfig()
	b.ResetTimer()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		res, err := cmpcache.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
		events += res.EventsFired
	}
	b.ReportMetric(float64(len(tr.Records)*b.N)/b.Elapsed().Seconds(), "refs/s")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// benchSweepGrid runs a real multi-configuration grid (2 workloads x
// 3 mechanisms x 2 outstanding levels = 12 simulations) through the
// sweep orchestrator at a given worker count. Comparing the serial and
// parallel variants shows the orchestrator's wall-clock win on
// multi-core machines; results are identical by construction (see
// sweep.TestSimulationDeterministicAcrossWorkers).
func benchSweepGrid(b *testing.B, workers int) {
	b.Helper()
	jobs := sweep.Plan{
		Workloads:     []string{"tp", "trade2"},
		Mechanisms:    []config.Mechanism{config.Baseline, config.WBHT, config.Snarf},
		Outstanding:   []int{2, 6},
		RefsPerThread: 2000,
	}.Jobs()
	for i := 0; i < b.N; i++ {
		results := sweep.Run(context.Background(), jobs, sweep.Options{Workers: workers})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkSweepGridSerial(b *testing.B)    { benchSweepGrid(b, 1) }
func BenchmarkSweepGridParallel4(b *testing.B) { benchSweepGrid(b, 4) }

// BenchmarkMechanismOverhead compares the wall cost of simulating each
// mechanism on the same trace (the adaptive structures should cost
// little simulation time).
func BenchmarkMechanismOverhead(b *testing.B) {
	tr, err := cmpcache.GenerateWorkloadSized("tp", benchRefs)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []cmpcache.Mechanism{
		cmpcache.Baseline, cmpcache.WBHT, cmpcache.Snarf, cmpcache.Combined,
	} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := cmpcache.DefaultConfig().WithMechanism(m)
			for i := 0; i < b.N; i++ {
				if _, err := cmpcache.Run(cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
