// Command cmpsweep runs a grid of simulation configurations on the
// parallel sweep orchestrator (internal/sweep) and reports the results
// as a table, JSON or CSV.
//
// Usage:
//
//	cmpsweep -workloads tp,trade2 -mechanisms base,wbht -outstanding 1-6
//	cmpsweep -mechanisms snarf -table-sizes 512,2048,8192,32768 -workers 8
//	cmpsweep -workloads all -mechanisms all -outstanding 6 -json out.json
//	cmpsweep -traces tp.cmps -mechanisms all -outstanding 1-6
//
// The workload axis mixes built-in synthetic profiles (-workloads) with
// captured traces (-traces: sharded trace directories or flat trace
// files, replayed as bounded-memory streams and cached by content).
//
// The grid is the cross product of the axes. Every job is an
// independent deterministic simulation, so exports are byte-identical
// at any -workers value; a configuration that fails (or panics, or
// exceeds -timeout) reports an error row without stopping the sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/stats"
	"cmpcache/internal/sweep"
	"cmpcache/internal/telemetry"
	"cmpcache/internal/txlat"
)

func main() {
	var (
		workloads    = flag.String("workloads", "all", "comma-separated workloads (tp,cpw2,notesbench,trade2) or all")
		traces       = flag.String("traces", "", "comma-separated captured-trace inputs (sharded trace dirs or flat trace files) swept alongside the workloads; with -traces and no explicit -workloads, only the traces run")
		mechanisms   = flag.String("mechanisms", "all", "comma-separated mechanisms (base,wbht,snarf,combined,reusedist,hybridui), all, or paper (the original four)")
		outstanding  = flag.String("outstanding", "6", "outstanding-miss axis: list and/or ranges, e.g. 1-6 or 1,2,4")
		tableSizes   = flag.String("table-sizes", "", "table-entry axis for the active mechanism, e.g. 512,2048,8192 (empty = paper defaults)")
		overrides    = config.RegisterOverrides(flag.CommandLine)
		refs         = flag.Int("refs", 0, "references per thread (0 = workload default)")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS; clamped when -shards > 1 so workers x shards fits GOMAXPROCS)")
		shards       = flag.String("shards", "auto", "intra-run shard workers per simulation: auto (spare cores after -workers), serial, or a count (results are bit-identical at any value)")
		timeout      = flag.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
		jsonOut      = flag.String("json", "", "write full results as JSON to this file (- for stdout)")
		csvOut       = flag.String("csv", "", "write result rows as CSV to this file (- for stdout)")
		metricsOut   = flag.String("metrics-out", "", "write one per-interval metrics series JSON file per job (plus a summary.json roll-up) into this directory")
		metricsIval  = flag.Int64("metrics-interval", 0, "metrics sampling window in cycles (0 = 1M, the paper's retry window)")
		latOut       = flag.String("lat-out", "", "write one stage-attributed latency report JSON file per job into this directory; feed them to cmpreport")
		latTopK      = flag.Int("lat-topk", 0, "slowest-transactions reservoir size for -lat-out (0 = default 16)")
		quiet        = flag.Bool("q", false, "suppress the progress lines on stderr")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile (after the sweep) to this file")
		telemetryOut = flag.String("telemetry-out", "", "write the sweep's pool telemetry (Prometheus text exposition) to this file after the sweep (- for stderr)")
	)
	flag.Parse()

	// Validate every output destination before the sweep starts: create
	// missing parent directories and prove the file is creatable now,
	// instead of losing a long sweep to a bad path at export time.
	for _, out := range []struct{ flag, path string }{
		{"json", *jsonOut},
		{"csv", *csvOut},
		{"cpuprofile", *cpuprofile},
		{"memprofile", *memprofile},
		{"telemetry-out", *telemetryOut},
	} {
		if err := ensureWritable(out.path); err != nil {
			fatalf("-%s: %v", out.flag, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	plan := sweep.Plan{RefsPerThread: *refs}
	var err error
	for _, tf := range strings.Split(*traces, ",") {
		if tf = strings.TrimSpace(tf); tf != "" {
			plan.TraceFiles = append(plan.TraceFiles, tf)
		}
	}
	// With trace inputs and no explicit -workloads, the grid runs only
	// the traces; "-workloads all" stays available to sweep both.
	if len(plan.TraceFiles) == 0 || config.Explicit(flag.CommandLine, "workloads") {
		if plan.Workloads, err = sweep.ParseWorkloads(*workloads); err != nil {
			fatalf("%v", err)
		}
	}
	if err = plan.Validate(); err != nil {
		fatalf("%v", err)
	}
	if plan.Mechanisms, err = sweep.ParseMechanisms(*mechanisms); err != nil {
		fatalf("%v", err)
	}
	if plan.Outstanding, err = sweep.ParseIntSpec(*outstanding); err != nil {
		fatalf("%v", err)
	}
	if *tableSizes != "" {
		if plan.TableSizes, err = sweep.ParseIntSpec(*tableSizes); err != nil {
			fatalf("%v", err)
		}
	}
	jobs := sweep.OverrideJobs(plan.Jobs(), overrides)
	if len(jobs) == 0 {
		fatalf("empty grid")
	}

	shardWorkers, err := sweep.ParseShards(*shards)
	if err != nil {
		fatalf("%v", err)
	}
	opts := sweep.Options{
		Workers: *workers,
		Timeout: *timeout,
		Shards:  shardWorkers,
		Log:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	if *metricsOut != "" {
		opts.MetricsInterval = config.Cycles(*metricsIval)
		if opts.MetricsInterval <= 0 {
			opts.MetricsInterval = metrics.DefaultInterval
		}
		if err := os.MkdirAll(*metricsOut, 0o755); err != nil {
			fatalf("%v", err)
		}
	}
	if *latOut != "" {
		opts.Latency = &txlat.Config{TopK: *latTopK}
		if err := os.MkdirAll(*latOut, 0o755); err != nil {
			fatalf("%v", err)
		}
	}
	var reg *telemetry.Registry
	if *telemetryOut != "" {
		reg = telemetry.New()
		opts.Metrics = sweep.NewPoolMetrics(reg, "cmpsweep")
	}
	if !*quiet {
		opts.Progress = func(p sweep.Progress) {
			status := fmt.Sprintf("%6.1fs", p.Duration.Seconds())
			if p.Cached {
				status = "cached"
			}
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d eta %4ds] %s  %s\n",
				p.Done, p.Total, int(p.ETA.Seconds()), status, p.Job)
		}
	}
	start := time.Now()
	results := sweep.Run(context.Background(), jobs, opts)

	// Suppress the human-readable table when an export owns stdout, so
	// `-json -` / `-csv -` emit clean machine-readable streams.
	if *jsonOut != "-" && *csvOut != "-" {
		if err := printTable(os.Stdout, results, time.Since(start)); err != nil {
			fatalf("%v", err)
		}
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, results, sweep.WriteJSON); err != nil {
			fatalf("%v", err)
		}
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, results, sweep.WriteCSV); err != nil {
			fatalf("%v", err)
		}
	}
	if *metricsOut != "" {
		if err := writeSeriesDir(*metricsOut, results); err != nil {
			fatalf("%v", err)
		}
	}
	if *latOut != "" {
		if err := writeLatencyDir(*latOut, results); err != nil {
			fatalf("%v", err)
		}
	}
	if *telemetryOut != "" {
		if err := writeTelemetry(*telemetryOut, reg); err != nil {
			fatalf("-telemetry-out: %v", err)
		}
	}
	for _, r := range results {
		if r.Err != nil {
			os.Exit(1) // partial failure: rows reported above
		}
	}
}

// printTable renders the sweep as a markdown table; when the grid
// includes a baseline run for a (workload, outstanding) pair, variant
// rows show their runtime improvement over it.
func printTable(w io.Writer, results []sweep.Result, elapsed time.Duration) error {
	type pair struct {
		workload    string
		outstanding int
	}
	baselines := make(map[pair]uint64)
	for _, r := range results {
		if r.Job.Mechanism == config.Baseline && r.Err == nil {
			baselines[pair{jobWorkload(r.Job), r.Job.Outstanding}] = r.Results.Cycles
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Sweep — %d configurations in %.1fs wall", len(results), elapsed.Seconds()),
		"Workload", "Mechanism", "Out", "WBHT", "Snarf", "Cycles", "vs base", "L2 hit %", "L3 load hit %", "Wall")
	for _, r := range results {
		if r.Err != nil {
			t.AddRowf(jobWorkload(r.Job), r.Job.Mechanism, r.Job.Outstanding,
				r.Job.WBHTEntries, r.Job.SnarfEntries, "error: "+r.Err.Error(), "", "", "", "")
			continue
		}
		improvement := ""
		if base, ok := baselines[pair{jobWorkload(r.Job), r.Job.Outstanding}]; ok && r.Job.Mechanism != config.Baseline {
			improvement = fmt.Sprintf("%+.2f%%", stats.Improvement(base, r.Results.Cycles))
		}
		wall := fmt.Sprintf("%.2fs", r.Duration.Seconds())
		if r.Cached {
			wall = "cached"
		}
		t.AddRowf(jobWorkload(r.Job), r.Job.Mechanism, r.Job.Outstanding,
			r.Job.WBHTEntries, r.Job.SnarfEntries, r.Results.Cycles, improvement,
			fmt.Sprintf("%.2f", 100*r.Results.L2HitRate()),
			fmt.Sprintf("%.2f", 100*r.Results.L3LoadHitRate()), wall)
	}
	_, err := io.WriteString(w, t.Markdown())
	return err
}

// writeSeriesDir writes one <job-slug>.json per successful job, each
// holding the job identity and its interval series, plus a summary.json
// rolling every job's series up into comparable totals/peaks/means.
// Deduplicated jobs map to the same slug and content, so rewrites are
// harmless.
func writeSeriesDir(dir string, results []sweep.Result) error {
	for _, r := range results {
		if r.Err != nil || r.Results == nil || r.Results.Metrics == nil {
			continue
		}
		out, err := json.MarshalIndent(struct {
			Job     sweep.Job       `json:"job"`
			Metrics *metrics.Series `json:"metrics"`
		}{r.Job, r.Results.Metrics}, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, jobSlug(r.Job)+".json")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	return writeIndented(filepath.Join(dir, "summary.json"), sweep.Summarize(results))
}

// writeLatencyDir writes one <job-slug>.lat.json per successful job in
// the cmpsim -lat-out format, ready for cmpreport.
func writeLatencyDir(dir string, results []sweep.Result) error {
	for _, r := range results {
		if r.Err != nil || r.Results == nil || r.Results.Latency == nil {
			continue
		}
		run := txlat.RunLatency{
			Workload:    jobWorkload(r.Job),
			Mechanism:   r.Job.Mechanism.String(),
			Outstanding: r.Job.Config().MaxOutstanding,
			Cycles:      r.Results.Cycles,
			Latency:     r.Results.Latency,
		}
		path := filepath.Join(dir, jobSlug(r.Job)+".lat.json")
		if err := writeIndented(path, &run); err != nil {
			return err
		}
	}
	return nil
}

// ensureWritable creates path's missing parent directories and verifies
// the file itself can be created. A probe file that did not exist
// before is removed again so a later failure leaves no empty artifact.
func ensureWritable(path string) error {
	if path == "" || path == "-" {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	f.Close()
	if os.IsNotExist(statErr) {
		os.Remove(path)
	}
	return nil
}

// writeIndented writes v as indented JSON to path.
func writeIndented(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeTelemetry renders the sweep's registry as Prometheus text
// exposition ("-" writes to stderr, keeping stdout for the table).
func writeTelemetry(path string, reg *telemetry.Registry) error {
	if path == "-" {
		_, err := reg.WritePrometheus(os.Stderr)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jobWorkload renders the job's workload column: the synthetic
// workload name, or the trace input's base name for replay jobs.
func jobWorkload(j sweep.Job) string {
	if j.TraceFile != "" {
		return "trace:" + filepath.Base(j.TraceFile)
	}
	return j.Workload
}

// jobSlug renders a job as a filesystem-safe file stem.
func jobSlug(j sweep.Job) string {
	s := j.String()
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		case r == '/', r == ' ', r == '=':
			return '_'
		default:
			return '-'
		}
	}, s)
}

func writeFile(path string, results []sweep.Result, write func(io.Writer, []sweep.Result) error) error {
	if path == "-" {
		return write(os.Stdout, results)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmpsweep: "+format+"\n", args...)
	os.Exit(1)
}
