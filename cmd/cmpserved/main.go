// Command cmpserved is the simulation-as-a-service daemon: a
// long-running HTTP server that accepts single configurations or whole
// sweep grids, executes them on the shared worker pool, and memoizes
// every result in a two-level (memory L1 / disk L2) content-addressed
// cache. Because the simulator is bit-deterministic, a cache hit is the
// exact bytes a fresh run would produce — resubmitting a grid that has
// already been computed costs zero simulation work. Grids may mix
// synthetic workloads with captured traces (the request's "traces"
// field names server-local sharded trace directories or flat trace
// files); trace jobs are cached by capture content, never by path.
//
// Usage:
//
//	cmpserved -addr :8044 -cache-dir /var/cache/cmpsim -workers 4
//	cmpserved -metrics-interval 1000000 -latency
//
// API (see DESIGN.md §14):
//
//	POST   /v1/jobs              submit a config or grid -> job IDs
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + result JSON
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/events  SSE progress + interval-metrics samples
//	GET    /v1/jobs/{id}/latency stage-attributed latency report
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 during the drain window)
//	GET    /metrics              Prometheus text exposition
//	GET    /debug/stats          cache/queue/job counters
//	GET    /debug/pprof/         runtime profiles
//
// Every request is logged (one structured line via -log) with an
// X-Request-Id that also tags the job lifecycle lines it causes.
//
// SIGINT/SIGTERM trigger a graceful shutdown: /readyz flips to 503, the
// listener closes, jobs drain for -drain-timeout (stragglers are then
// cancelled), and the in-memory cache is persisted to -cache-dir.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/serve"
	"cmpcache/internal/sweep"
)

// effectiveWorkerCount mirrors the daemon's default resolution for the
// clamp warning (<= 0 means GOMAXPROCS).
func effectiveWorkerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8044", "listen address (host:port; :0 picks an ephemeral port)")
		cacheDir    = flag.String("cache-dir", "", "on-disk L2 result cache directory (empty = in-memory L1 only)")
		l1Entries   = flag.Int("l1-entries", 0, "in-memory L1 cache entry bound (0 = default 256)")
		l1Bytes     = flag.Int64("l1-bytes", 0, "in-memory L1 cache byte bound (0 = default 256 MiB)")
		workers     = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS; clamped when -shards > 1 so workers x shards fits GOMAXPROCS)")
		shards      = flag.String("shards", "auto", "intra-run shard workers per simulation: auto (spare cores after -workers), serial, or a count (results and cache keys are identical at any value)")
		queueDepth  = flag.Int("queue", 0, "accepted-but-not-running job bound; overflow is rejected with 429 (0 = default 256)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job wall-clock timeout (0 = none)")
		metricsIval = flag.Int64("metrics-interval", 0, "attach interval metrics at this cycle window to every run (0 = off)")
		latency     = flag.Bool("latency", false, "attach the per-transaction latency collector to every run (enables /v1/jobs/{id}/latency)")
		latTopK     = flag.Int("lat-topk", 0, "slowest-transactions reservoir size with -latency (0 = default 16)")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight jobs are cancelled")
		logFormat   = flag.String("log", "text", "structured request/job log on stderr: text, json, or off")
		overrides   = config.RegisterOverrides(flag.CommandLine)
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmpserved: %v\n", err)
		os.Exit(1)
	}
	shardWorkers, err := sweep.ParseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmpserved: %v\n", err)
		os.Exit(1)
	}
	if _, clamped := sweep.FitWorkers(effectiveWorkerCount(*workers), shardWorkers); clamped {
		fmt.Fprintf(os.Stderr, "cmpserved: clamping worker pool so workers x shards fits GOMAXPROCS=%d\n",
			runtime.GOMAXPROCS(0))
	}
	opts := serve.Options{
		CacheDir:        *cacheDir,
		L1Entries:       *l1Entries,
		L1Bytes:         *l1Bytes,
		Workers:         *workers,
		Shards:          shardWorkers,
		QueueDepth:      *queueDepth,
		JobTimeout:      *jobTimeout,
		MetricsInterval: config.Cycles(*metricsIval),
		Latency:         *latency,
		LatencyTopK:     *latTopK,
		Overrides:       overrides,
		Logger:          logger,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serveMain(ctx, *addr, opts, *drain, nil); err != nil {
		fmt.Fprintf(os.Stderr, "cmpserved: %v\n", err)
		os.Exit(1)
	}
}

// serveMain runs the daemon until ctx is cancelled, then shuts down
// gracefully within the drain budget. When ready is non-nil it receives
// the bound listen address once the server is accepting (tests use this
// with :0).
func serveMain(ctx context.Context, addr string, opts serve.Options, drain time.Duration, ready chan<- string) error {
	d, err := serve.New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "cmpserved: listening on http://%s (workers=%d cache=%s)\n",
		ln.Addr(), workers, cacheDesc(opts.CacheDir))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		d.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "cmpserved: shutting down (drain budget %s)\n", drain)
	// Flip /readyz to 503 before closing the listener so load balancers
	// stop routing while in-flight requests still complete.
	d.BeginDrain()
	deadline, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop accepting first, then drain the job queue; both share the
	// drain budget.
	if err := srv.Shutdown(deadline); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		d.Shutdown(deadline)
		return err
	}
	if err := d.Shutdown(deadline); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	return nil
}

// buildLogger maps the -log flag to a slog logger on stderr (nil for
// "off"; serve discards internally).
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json, or off)", format)
	}
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
