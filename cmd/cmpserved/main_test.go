package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"cmpcache/internal/serve"
)

// TestBootSubmitShutdown boots the daemon on an ephemeral port, submits
// a small job over HTTP, polls it to completion, and shuts the server
// down gracefully.
func TestBootSubmitShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveMain(ctx, "127.0.0.1:0", serve.Options{
			CacheDir: t.TempDir(),
			Workers:  1,
		}, 30*time.Second, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"jobs":[{"Workload":"tp","Mechanism":"base","RefsPerThread":2000}]}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub serve.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || len(sub.Jobs) != 1 {
		t.Fatalf("submit decode: %v (%d jobs)", err, len(sub.Jobs))
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.Jobs[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		var v serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == serve.JobDone {
			break
		}
		if v.Status.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job ended %s: %s", v.Status, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveMain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("graceful shutdown did not complete")
	}
}
