package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cmpcache"
	"cmpcache/internal/experiments"
)

// The -bench-json mode measures every evaluation artifact at benchmark
// scale (the bench_test.go grid: 4000 references per thread, -quick
// sweeps) and records wall time, allocation count and event throughput
// into a tracked JSON file. Runs accumulate under distinct labels, so
// the checked-in BENCH_core.json can hold a pre-optimization baseline
// next to the current measurement:
//
//	go run ./cmd/cmpbench -bench-json BENCH_core.json -bench-label current
//
// Because every simulation is deterministic, the events count per
// artifact is a property of the workload grid, not of the machine; only
// ns_per_op, allocs_per_op and events_per_sec vary between runs.

// benchScaleRefs matches bench_test.go's benchRefs so ns_per_op here is
// directly comparable to `go test -bench` output.
const benchScaleRefs = 4000

type artifactMeasurement struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Shards is the intra-run worker count the measurement ran at
	// (0/absent = serial). The simulation is bit-identical at every
	// shard count, so Events never varies with it — only the wall-clock
	// metrics do.
	Shards int `json:"shards,omitempty"`

	// Round-coordinator shape, recorded for sharded measurements
	// (Results.Sharding): why the horizon was limited each parallel
	// round, and how much wall clock the barrier cost. Rounds and the
	// horizon counters are deterministic (identical at every shard
	// count); the barrier nanoseconds are the host's answer to why the
	// run did or didn't scale.
	Rounds            uint64 `json:"rounds,omitempty"`
	HorizonNextGlobal uint64 `json:"horizon_next_global,omitempty"`
	HorizonRingCredit uint64 `json:"horizon_ring_credit,omitempty"`
	HorizonWindow     uint64 `json:"horizon_window,omitempty"`
	BarrierWaitNs     int64  `json:"barrier_wait_ns,omitempty"`  // summed across shards
	BarrierDrainNs    int64  `json:"barrier_drain_ns,omitempty"` // serial replay/post drain
}

type benchRun struct {
	Label     string                         `json:"label"`
	Commit    string                         `json:"commit,omitempty"`
	Date      string                         `json:"date,omitempty"`
	Go        string                         `json:"go"`
	CPUs      int                            `json:"cpus"`
	Note      string                         `json:"note,omitempty"`
	Artifacts map[string]artifactMeasurement `json:"artifacts"`
}

type benchFile struct {
	Schema string     `json:"schema"`
	Note   string     `json:"note,omitempty"`
	Runs   []benchRun `json:"runs"`
}

// runBenchJSON measures all artifacts and merges the run into path,
// replacing any existing run with the same label.
func runBenchJSON(path, label string) error {
	run := benchRun{
		Label:     label,
		Date:      time.Now().UTC().Format("2006-01-02"),
		Go:        runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Artifacts: make(map[string]artifactMeasurement),
	}

	names := append([]string{}, experiments.Names...)
	for _, name := range names {
		if name == "summary" {
			continue // renders from the table1/table5 cache; no fresh runs
		}
		m, err := measureArtifact(name)
		if err != nil {
			return err
		}
		run.Artifacts[name] = m
		printMeasurement(name, m)
	}
	m, err := measureThroughput(0)
	if err != nil {
		return err
	}
	run.Artifacts["throughput"] = m
	printMeasurement("throughput", m)

	// The sharded companion to the throughput artifact: same workload,
	// auto worker count. Its event count must equal the serial one
	// (bench-check enforces this); its wall clock is the intra-run
	// parallelism headline on multi-core hosts.
	ms, err := measureThroughput(-1)
	if err != nil {
		return err
	}
	if ms.Events != m.Events {
		return fmt.Errorf("sharded throughput fired %d events, serial %d — determinism broken", ms.Events, m.Events)
	}
	run.Artifacts["throughput_sharded"] = ms
	printMeasurement("throughput_sharded", ms)

	// Shard-count scaling sweep on a big-core configuration (64 cores,
	// 32 L2 slices, 128 threads): the config intra-run parallelism is
	// built for. Event counts are identical across the sweep.
	var bigEvents uint64
	for _, shards := range []int{1, 2, 4, 8} {
		mb, err := measureBigChip(shards)
		if err != nil {
			return err
		}
		if shards == 1 {
			bigEvents = mb.Events
		} else if mb.Events != bigEvents {
			return fmt.Errorf("bigchip at %d shards fired %d events, serial %d — determinism broken", shards, mb.Events, bigEvents)
		}
		name := fmt.Sprintf("bigchip_shards%d", shards)
		run.Artifacts[name] = mb
		printMeasurement(name, mb)
	}

	file := benchFile{Schema: "cmpcache-bench/v1"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i := range file.Runs {
		if file.Runs[i].Label == label {
			run.Commit, run.Note = file.Runs[i].Commit, file.Runs[i].Note
			file.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		file.Runs = append(file.Runs, run)
	}

	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runBenchCheck is the CI regression gate: it re-measures the raw
// simulator throughput artifact (metrics and tracing disabled — the
// zero-overhead configuration) and compares it against the run recorded
// under label in path. It fails when the deterministic event count
// drifts, when allocations exceed the recorded count (the observability
// layer must be free when disabled), or when events/sec drops more than
// 5% below the recorded baseline. Three measurements are taken and the
// best of each metric kept, damping scheduler noise.
func runBenchCheck(path, label string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var want artifactMeasurement
	found := false
	for i := range file.Runs {
		if file.Runs[i].Label == label {
			want, found = file.Runs[i].Artifacts["throughput"], true
		}
	}
	if !found {
		return fmt.Errorf("%s: no run labelled %q", path, label)
	}

	var events uint64
	minAllocs, bestRate := ^uint64(0), 0.0
	for i := 0; i < 3; i++ {
		m, err := measureThroughput(0)
		if err != nil {
			return err
		}
		events = m.Events
		if m.AllocsPerOp < minAllocs {
			minAllocs = m.AllocsPerOp
		}
		if m.EventsPerSec > bestRate {
			bestRate = m.EventsPerSec
		}
	}
	fmt.Fprintf(os.Stderr, "bench-check: throughput %d events, %d allocs/op (recorded %d), %.0f events/s (recorded %.0f)\n",
		events, minAllocs, want.AllocsPerOp, bestRate, want.EventsPerSec)

	if events != want.Events {
		return fmt.Errorf("bench-check: deterministic event count changed: measured %d, recorded %d (regenerate with -bench-json)", events, want.Events)
	}
	if minAllocs > want.AllocsPerOp {
		return fmt.Errorf("bench-check: allocs/op regressed: measured %d, recorded %d", minAllocs, want.AllocsPerOp)
	}
	if bestRate < 0.95*want.EventsPerSec {
		return fmt.Errorf("bench-check: events/sec regressed more than 5%%: measured %.0f, recorded %.0f", bestRate, want.EventsPerSec)
	}

	// The sharded determinism gate: the same workload at the auto shard
	// count must fire exactly the serial event count. ns/op is allowed
	// to differ — the shard count the host resolves to is a property of
	// the machine, not of the simulation.
	sharded, err := measureThroughput(-1)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-check: sharded throughput %d events at %d shards, %.0f events/s\n",
		sharded.Events, sharded.Shards, sharded.EventsPerSec)
	if sharded.Events != events {
		return fmt.Errorf("bench-check: sharded run fired %d events, serial %d — shard determinism broken", sharded.Events, events)
	}
	return nil
}

// measureArtifact runs one experiment end to end on a fresh Runner
// (cold caches, as bench_test.go does) and reports wall time, the
// process-wide allocation delta and engine-event throughput.
func measureArtifact(name string) (artifactMeasurement, error) {
	runner := experiments.NewRunner(experiments.Options{
		RefsPerThread: benchScaleRefs,
		Quick:         true,
	})
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := runner.Run(name, io.Discard); err != nil {
		return artifactMeasurement{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return measurement(elapsed, m1.Mallocs-m0.Mallocs, runner.SimEvents()), nil
}

// measureThroughput times one raw simulator run (the
// BenchmarkSimulatorThroughput workload). shards follows the RunOptions
// convention: 0 = serial (the recorded zero-overhead baseline), < 0 =
// auto, N = N shard workers.
func measureThroughput(shards int) (artifactMeasurement, error) {
	tr, err := cmpcache.GenerateWorkloadSized("trade2", benchScaleRefs)
	if err != nil {
		return artifactMeasurement{}, err
	}
	cfg := cmpcache.DefaultConfig()
	return timeRun(cfg, tr, shards)
}

// measureBigChip times one run of the big-core scaling configuration:
// 64 cores (32 L2 slices, 128 threads) on a high-hit-rate tp workload —
// the shape that gives intra-run parallelism the most independent
// front-end work per bus transaction.
func measureBigChip(shards int) (artifactMeasurement, error) {
	p, err := cmpcache.WorkloadByName("tp")
	if err != nil {
		return artifactMeasurement{}, err
	}
	p.Threads = 128
	p.RefsPerThread = benchScaleRefs / 2
	tr, err := p.Generate()
	if err != nil {
		return artifactMeasurement{}, err
	}
	cfg := cmpcache.DefaultConfig()
	cfg.Cores = 64
	// The shard count is this sweep's axis: when the host's GOMAXPROCS
	// sits below it, raise it for the measurement so the requested
	// workers actually spin up. On an undersized host the workers
	// timeshare and the curve honestly reads flat.
	if g := runtime.GOMAXPROCS(0); shards > g {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(shards))
	}
	return timeRun(cfg, tr, shards)
}

// timeRun executes one simulation at the given shard count and reports
// wall time, the process-wide allocation delta and event throughput.
func timeRun(cfg cmpcache.Config, tr *cmpcache.Trace, shards int) (artifactMeasurement, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var (
		res *cmpcache.Results
		err error
	)
	if shards == 0 {
		res, err = cmpcache.Run(cfg, tr)
	} else {
		res, err = cmpcache.RunWith(cfg, tr, cmpcache.RunOptions{Workers: shards})
	}
	if err != nil {
		return artifactMeasurement{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	m := measurement(elapsed, m1.Mallocs-m0.Mallocs, res.EventsFired)
	// Record the worker count the run actually used: requests clamp to
	// MaxWorkers (notably to 1 on single-core hosts), and a column
	// claiming parallelism that never happened would be a lie.
	if m.Shards = shards; shards < 0 || shards > cmpcache.MaxWorkers(&cfg) {
		m.Shards = cmpcache.MaxWorkers(&cfg)
	}
	if shards != 0 {
		sh := res.Sharding
		m.Rounds = sh.Rounds
		m.HorizonNextGlobal = sh.HorizonNextGlobal
		m.HorizonRingCredit = sh.HorizonRingCredit
		m.HorizonWindow = sh.HorizonWindow
		m.BarrierWaitNs = sh.BarrierWaitTotalNs()
		m.BarrierDrainNs = sh.BarrierDrainNs
	}
	return m, nil
}

func measurement(elapsed time.Duration, allocs, events uint64) artifactMeasurement {
	return artifactMeasurement{
		NsPerOp:      elapsed.Nanoseconds(),
		AllocsPerOp:  allocs,
		Events:       events,
		EventsPerSec: float64(events) / elapsed.Seconds(),
	}
}

// printMeasurement renders one stderr progress row, with the shard
// column when the measurement ran sharded.
func printMeasurement(name string, m artifactMeasurement) {
	fmt.Fprintf(os.Stderr, "%-18s %12d ns/op %10d allocs/op %12.0f events/s",
		name, m.NsPerOp, m.AllocsPerOp, m.EventsPerSec)
	if m.Shards > 0 {
		fmt.Fprintf(os.Stderr, " shards=%d", m.Shards)
	}
	if m.Rounds > 0 {
		fmt.Fprintf(os.Stderr, " rounds=%d barrier=%s",
			m.Rounds, time.Duration(m.BarrierWaitNs+m.BarrierDrainNs))
	}
	fmt.Fprintln(os.Stderr)
}
