// Command cmpbench regenerates the paper's evaluation artifacts — every
// table (1, 2, 3, 4, 5) and figure (2, 3, 4, 5, 6, 7) of Section 5,
// plus the design-choice ablations listed in DESIGN.md — and prints
// paper-reported values beside measured ones.
//
// Usage:
//
//	cmpbench -experiment all                # full reproduction
//	cmpbench -experiment fig2               # one artifact
//	cmpbench -experiment table5 -csv        # machine-readable output
//	cmpbench -experiment all -quick         # reduced sweeps, small traces
//	cmpbench -experiment all -refs 100000   # longer traces, less warm-up
//	cmpbench -experiment all -workers 1     # serial runs, same output
//
// Each artifact's grid of independent simulation runs executes on the
// internal/sweep worker pool (GOMAXPROCS-wide by default); rendered
// artifacts are byte-identical at any -workers value.
//
// Absolute magnitudes are not expected to match the paper (its traces
// are proprietary, billions of references long); the shapes — which
// workload wins, where curves rise, signs and orderings — are the
// reproduction target. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/experiments"
	"cmpcache/internal/sweep"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1..table5, fig2..fig7, ablation, or all")
		refs       = flag.Int("refs", 0, "references per thread (0 = workload default)")
		quick      = flag.Bool("quick", false, "reduced sweeps and 10K-reference traces")
		csv        = flag.Bool("csv", false, "emit CSV instead of markdown")
		workers    = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS; clamped when -shards > 1 so workers x shards fits GOMAXPROCS)")
		shards     = flag.String("shards", "auto", "intra-run shard workers per simulation: auto (spare cores after -workers), serial, or a count (artifacts are byte-identical at any value)")
		verbose    = flag.Bool("v", false, "log each simulation run to stderr")
		benchJSON  = flag.String("bench-json", "", "measure every artifact at benchmark scale and record ns/op, allocs/op and events/sec into this JSON file (see BENCH_core.json)")
		benchLabel = flag.String("bench-label", "current", "run label for -bench-json/-bench-check (an existing run with the same label is replaced)")
		benchCheck = flag.String("bench-check", "", "re-measure raw simulator throughput (metrics disabled) and fail if it regresses versus the labelled run in this JSON file (the CI gate)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		overrides  = config.RegisterOverrides(flag.CommandLine)
	)
	flag.Parse()

	shardWorkers, err := sweep.ParseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cmpbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cmpbench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	if *benchCheck != "" {
		if err := runBenchCheck(*benchCheck, *benchLabel); err != nil {
			fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchLabel); err != nil {
			fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{RefsPerThread: *refs, Quick: *quick, CSV: *csv, Workers: *workers, Shards: shardWorkers, Overrides: overrides}
	if *quick && *refs == 0 {
		opts.RefsPerThread = 10000
	}
	runner := experiments.NewRunner(opts)
	if *verbose {
		start := time.Now()
		runner.Progress = func(msg string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), msg)
		}
	}

	if err := runner.Run(*experiment, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cmpbench: %v\n", err)
		os.Exit(1)
	}
}
