package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmpcache/internal/txlat"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestRenderGolden locks the full report rendering against a checked-in
// fixture (tp/snarf, 6000 refs/thread, collected with -lat-out). The
// simulator is deterministic and the renderer sorts everything it
// emits, so the byte-exact output is a stable contract; regenerate with
// `go test ./cmd/cmpreport -update` after an intentional format change.
func TestRenderGolden(t *testing.T) {
	run, err := readRun(filepath.Join("testdata", "tp.lat.json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := renderOptions{Breakdown: true, Slowest: 5, Width: 60}
	if err := render(&buf, []txlat.RunLatency{run}, opts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tp.golden.md")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/cmpreport -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render output diverged from %s (%d vs %d bytes); run with -update if intentional",
			golden, buf.Len(), len(want))
	}
}

// TestReadRunRejectsEmpty guards the error path for files without a
// latency payload.
func TestReadRunRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.lat.json")
	if err := os.WriteFile(path, []byte(`{"Workload":"tp"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRun(path); err == nil {
		t.Fatal("readRun accepted a file with no latency report")
	}
}

// TestTraceMix tabulates a small JSONL stream deterministically.
func TestTraceMix(t *testing.T) {
	in := `{"t":1,"ev":"demand","l2":0,"kind":"READ","src":"peer-l2","key":1}
{"t":2,"ev":"demand","l2":1,"kind":"READ","src":"peer-l2","key":2}
{"t":3,"ev":"demand","l2":0,"kind":"RWITM","src":"memory","key":3}
{"t":4,"ev":"wb","l2":0,"kind":"DIRTY_WB","out":"to-l3","key":4}
{"t":5,"ev":"victim","l2":0,"kind":"","key":5}
{"t":6,"ev":"sample","window":0}
`
	got, err := traceMix(strings.NewReader(in), "test.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"| demand | READ     | peer-l2            | 2 |",
		"| demand | RWITM    | memory             | 1 |",
		"| wb     | DIRTY_WB | to-l3              | 1 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("mix table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "victim") || strings.Contains(got, "sample") {
		t.Errorf("mix table includes non-bus events:\n%s", got)
	}

	if _, err := traceMix(strings.NewReader(`[{"not":"jsonl"`), "bad"); err == nil {
		t.Error("traceMix accepted a non-JSONL stream")
	}
}
