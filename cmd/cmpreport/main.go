// Command cmpreport renders stage-attributed latency reports produced
// by `cmpsim -lat-out` or `cmpsweep -lat-out` as human-readable
// markdown: per-class quantile tables, per-stage breakdowns, a
// critical-path summary naming the stage where the cycles actually go,
// an ASCII stage-stack chart, and — when several runs are given — the
// paper's headline comparison of L2-to-L2 intervention fills against
// L3 fills.
//
// A `-trace run.jsonl` flag additionally tabulates the bus-transaction
// mix from a JSON Lines event trace (`cmpsim -trace-out run.jsonl`) —
// an independent record stream against which the latency report's
// per-class populations can be cross-checked.
//
// Usage:
//
//	cmpsim -workload tp -mechanism snarf -lat-out tp.lat.json
//	cmpreport tp.lat.json
//	cmpsweep -workloads all -mechanisms snarf -lat-out lat/
//	cmpreport -compare lat/*.lat.json
//	cmpsim -workload tp -lat-out tp.lat.json -trace-out tp.jsonl
//	cmpreport -trace tp.jsonl tp.lat.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cmpcache/internal/stats"
	"cmpcache/internal/txlat"
)

func main() {
	opts := renderOptions{}
	flag.BoolVar(&opts.Breakdown, "breakdown", false, "print the full per-stage breakdown table for every class")
	flag.BoolVar(&opts.Windows, "windows", false, "print the per-window latency series (runs collected with -lat-interval)")
	flag.IntVar(&opts.Slowest, "slowest", 5, "slowest transactions to list per run (0 = none)")
	flag.IntVar(&opts.Width, "width", 60, "stage-stack chart width in columns")
	flag.BoolVar(&opts.CompareOnly, "compare", false, "print only the cross-run intervention-vs-L3 comparison")
	traceIn := flag.String("trace", "", "also tabulate the bus-transaction mix from this JSON Lines event trace (cmpsim -trace-out run.jsonl)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cmpreport: no input files (expected *.lat.json from cmpsim/cmpsweep -lat-out)")
		flag.Usage()
		os.Exit(2)
	}
	runs := make([]txlat.RunLatency, 0, flag.NArg())
	for _, path := range flag.Args() {
		run, err := readRun(path)
		if err != nil {
			fatalf("%v", err)
		}
		runs = append(runs, run)
	}
	if err := render(os.Stdout, runs, opts); err != nil {
		fatalf("%v", err)
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatalf("%v", err)
		}
		table, err := traceMix(f, *traceIn)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(table)
	}
}

type renderOptions struct {
	Breakdown   bool
	Windows     bool
	Slowest     int
	Width       int
	CompareOnly bool
}

// readRun parses one -lat-out file.
func readRun(path string) (txlat.RunLatency, error) {
	var run txlat.RunLatency
	data, err := os.ReadFile(path)
	if err != nil {
		return run, err
	}
	if err := json.Unmarshal(data, &run); err != nil {
		return run, fmt.Errorf("%s: %w", path, err)
	}
	if run.Latency == nil {
		return run, fmt.Errorf("%s: no latency report (was the run collected with -lat-out?)", path)
	}
	return run, nil
}

// render writes the full report for runs. Runs are sorted by
// (workload, mechanism, outstanding) so the output is stable under
// shell-glob argument order.
func render(w io.Writer, runs []txlat.RunLatency, opts renderOptions) error {
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].Workload != runs[j].Workload {
			return runs[i].Workload < runs[j].Workload
		}
		if runs[i].Mechanism != runs[j].Mechanism {
			return runs[i].Mechanism < runs[j].Mechanism
		}
		return runs[i].Outstanding < runs[j].Outstanding
	})
	if !opts.CompareOnly {
		for i := range runs {
			if err := renderRun(w, &runs[i], opts); err != nil {
				return err
			}
		}
	}
	table, ratios := txlat.InterventionComparison(runs)
	if len(ratios) > 0 {
		if _, err := io.WriteString(w, table); err != nil {
			return err
		}
	}
	return nil
}

// renderRun writes one run's tables and charts.
func renderRun(w io.Writer, run *txlat.RunLatency, opts renderOptions) error {
	label := fmt.Sprintf("%s/%s out=%d", run.Workload, run.Mechanism, run.Outstanding)
	rep := run.Latency
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %d cycles\n\n", label, run.Cycles)
	if rep.Dropped > 0 {
		fmt.Fprintf(&b, "WARNING: %d open records dropped (unhooked protocol path)\n\n", rep.Dropped)
	}
	b.WriteString(rep.QuantileTable("Transaction latency quantiles — " + label))
	b.WriteString("\n")
	b.WriteString(rep.CriticalPath("Critical path — " + label))
	b.WriteString("\n")
	b.WriteString(rep.StageStack("Mean latency by stage — "+label, opts.Width))
	b.WriteString("\n")
	if opts.Breakdown {
		b.WriteString(rep.StageBreakdown("Stage breakdown — " + label))
	}
	if opts.Windows && len(rep.Windows) > 0 {
		b.WriteString(rep.WindowTable("Latency by window — " + label))
		b.WriteString("\n")
	}
	if opts.Slowest > 0 && len(rep.Slowest) > 0 {
		b.WriteString(slowestTable(rep, label, opts.Slowest))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// slowestTable renders the top-n entries of the slowest-transactions
// reservoir with their dominant stage.
func slowestTable(rep *txlat.Report, label string, n int) string {
	t := stats.NewTable("Slowest transactions — "+label,
		"class", "l2", "key", "start", "total", "dominant stage")
	for i, tx := range rep.Slowest {
		if i >= n {
			break
		}
		class := tx.Kind + "/" + tx.Outcome
		if tx.SwitchActive {
			class += " [switch]"
		}
		domStage, domCycles := "", uint64(0)
		for st, v := range tx.Stages {
			if v > domCycles || (v == domCycles && st < domStage) {
				domStage, domCycles = st, v
			}
		}
		t.AddRowf(class, tx.L2, fmt.Sprintf("%#x", tx.Key), uint64(tx.Start), tx.Total,
			fmt.Sprintf("%s (%d)", domStage, domCycles))
	}
	return t.Markdown()
}

// traceMix tabulates a JSON Lines event trace into the bus-transaction
// mix: demand combines by kind x fill source and write-back combines by
// kind x disposition. These counts come from the tracer's independent
// record stream, so they cross-check the latency report's per-class
// populations (demand rows match fill groups exactly; write-back rows
// count bus combines, so the latency report's cancelled class can
// additionally include queue-side reclaims that never reached the bus).
func traceMix(r io.Reader, name string) (string, error) {
	type rec struct {
		Ev   string `json:"ev"`
		Kind string `json:"kind"`
		Src  string `json:"src"`
		Out  string `json:"out"`
	}
	type mixKey struct{ ev, kind, class string }
	counts := map[mixKey]uint64{}
	order := []mixKey{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e rec
		if err := json.Unmarshal(line, &e); err != nil {
			return "", fmt.Errorf("%s: %w (is this a .jsonl trace? Chrome trace_event files are not line-delimited)", name, err)
		}
		var k mixKey
		switch e.Ev {
		case "demand":
			k = mixKey{"demand", e.Kind, e.Src}
		case "wb":
			k = mixKey{"wb", e.Kind, e.Out}
		default:
			continue
		}
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		counts[k]++
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("%s: %w", name, err)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.ev != b.ev {
			return a.ev < b.ev // demand before wb
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.class < b.class
	})
	t := stats.NewTable("Bus-transaction mix — "+name, "event", "kind", "source/disposition", "n")
	for _, k := range order {
		t.AddRowf(k.ev, k.kind, k.class, counts[k])
	}
	return t.Markdown(), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmpreport: "+format+"\n", args...)
	os.Exit(1)
}
