// Command tracegen synthesizes a workload trace and writes it to a
// file — or, with -shards, to a sharded trace directory (batched,
// compressed, manifest-indexed; see DESIGN.md §17) that cmpsim,
// cmpsweep and cmpserved replay with bounded memory. The raw reference
// stream can optionally pass through the per-core L1 filter first
// (mirroring how the paper's L2-traffic traces were captured on real
// machines).
//
// Usage:
//
//	tracegen -workload tp -o tp.cmpt
//	tracegen -workload trade2 -refs 100000 -l1-filter -text -o trade2.txt
//	tracegen -workload tp -shards 4 -o tp.cmps
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpcache/internal/config"
	"cmpcache/internal/cpu"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "trade2", "built-in workload: tp, cpw2, notesbench, trade2")
		out      = flag.String("o", "", "output file, or directory with -shards (default <workload>.cmpt / <workload>.cmps)")
		refs     = flag.Int("refs", 0, "references per thread (unset = profile default; an explicit 0 is honored)")
		seed     = flag.Uint64("seed", 0, "override the profile's seed (unset = profile default; an explicit 0 is honored)")
		text     = flag.Bool("text", false, "write the human-readable text format")
		l1Filter = flag.Bool("l1-filter", false, "filter the stream through per-core L1 caches")
		shards   = flag.Int("shards", 0, "write a sharded trace directory with this many shard files (0 = single flat file)")
		batchRec = flag.Int("batch-records", 0, "records per compressed batch in sharded output (0 = default)")
	)
	flag.Parse()

	if *shards > 0 && *text {
		fatalf("-shards and -text are mutually exclusive")
	}
	if *shards < 0 {
		fatalf("-shards must be >= 0")
	}

	p, err := workload.ByName(*name)
	if err != nil {
		fatalf("%v", err)
	}
	// Explicit-value detection, not zero-sentinels: `-refs 0` and
	// `-seed 0` are real requests (an empty trace, the zero seed), so
	// only flags actually given on the command line override.
	if config.Explicit(flag.CommandLine, "refs") {
		if *refs < 0 {
			fatalf("-refs must be >= 0")
		}
		p.RefsPerThread = *refs
	}
	if config.Explicit(flag.CommandLine, "seed") {
		p.Seed = *seed
	}
	tr, err := p.Generate()
	if err != nil {
		fatalf("%v", err)
	}
	cfg := config.Default()
	if *l1Filter {
		tr = cpu.FilterTrace(&cfg, tr)
	}

	path := *out
	if path == "" {
		switch {
		case *shards > 0:
			path = p.Name + ".cmps"
		case *text:
			path = p.Name + ".trace.txt"
		default:
			path = p.Name + ".cmpt"
		}
	}

	if *shards > 0 {
		man, err := trace.WriteSharded(path, tr, trace.ShardOptions{
			Shards:       *shards,
			BatchRecords: *batchRec,
		})
		if err != nil {
			fatalf("writing %s: %v", path, err)
		}
		printSummary(path, tr, cfg.LineBytes)
		fmt.Printf("sharded into %d files, content hash %s\n", len(man.Shards), man.ContentHash())
		return
	}

	if err := writeFlat(path, tr, *text); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	printSummary(path, tr, cfg.LineBytes)
}

// writeFlat writes tr to path, reporting Close errors: the codecs
// buffer, so a full disk can surface only when the file closes — a
// dropped Close would report truncated output as success.
func writeFlat(path string, tr *trace.Trace, text bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if text {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSummary reports the written trace's shape. One line size drives
// both the distinct-line count and the footprint figure.
func printSummary(path string, tr *trace.Trace, lineBytes int) {
	s := tr.Summarize(lineBytes)
	fmt.Printf("wrote %s: %d records, %d threads, %d distinct lines (%.1f MB footprint), mean gap %.1f\n",
		path, s.Records, tr.Threads, s.DistinctLines,
		float64(s.FootprintBytes(lineBytes))/(1<<20), s.MeanGap)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
