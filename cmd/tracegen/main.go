// Command tracegen synthesizes a workload trace and writes it to a
// file, optionally passing the raw reference stream through the per-core
// L1 filter first (mirroring how the paper's L2-traffic traces were
// captured on real machines).
//
// Usage:
//
//	tracegen -workload tp -o tp.cmpt
//	tracegen -workload trade2 -refs 100000 -l1-filter -text -o trade2.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpcache/internal/config"
	"cmpcache/internal/cpu"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "trade2", "built-in workload: tp, cpw2, notesbench, trade2")
		out      = flag.String("o", "", "output file (default <workload>.cmpt)")
		refs     = flag.Int("refs", 0, "references per thread (0 = profile default)")
		seed     = flag.Uint64("seed", 0, "override the profile's seed (0 = default)")
		text     = flag.Bool("text", false, "write the human-readable text format")
		l1Filter = flag.Bool("l1-filter", false, "filter the stream through per-core L1 caches")
	)
	flag.Parse()

	p, err := workload.ByName(*name)
	if err != nil {
		fatalf("%v", err)
	}
	if *refs > 0 {
		p.RefsPerThread = *refs
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	tr, err := p.Generate()
	if err != nil {
		fatalf("%v", err)
	}
	if *l1Filter {
		cfg := config.Default()
		tr = cpu.FilterTrace(&cfg, tr)
	}

	path := *out
	if path == "" {
		path = p.Name + ".cmpt"
		if *text {
			path = p.Name + ".trace.txt"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if *text {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		fatalf("writing %s: %v", path, err)
	}
	s := tr.Summarize(config.Default().LineBytes)
	fmt.Printf("wrote %s: %d records, %d threads, %d distinct lines (%.1f MB footprint), mean gap %.1f\n",
		path, s.Records, tr.Threads, s.DistinctLines,
		float64(s.FootprintBytes(128))/(1<<20), s.MeanGap)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
