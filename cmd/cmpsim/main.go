// Command cmpsim runs one simulation of the CMP cache hierarchy and
// prints a statistics report.
//
// Usage:
//
//	cmpsim -workload trade2 -mechanism wbht -outstanding 6
//	cmpsim -trace capture.cmpt -mechanism snarf
//	cmpsim -trace capture.cmps -mechanism wbht
//
// The workload is either a built-in synthetic profile (tp, cpw2,
// notesbench, trade2), a flat trace file produced by tracegen (binary
// CMPT or text format, selected by content), or a sharded trace
// directory (tracegen -shards), which replays as a bounded-memory
// stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"cmpcache"
	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/sweep"
	"cmpcache/internal/trace"
)

func main() {
	var (
		workloadName = flag.String("workload", "trade2", "built-in workload: tp, cpw2, notesbench, trade2")
		traceFile    = flag.String("trace", "", "trace file to replay instead of a built-in workload")
		mechanism    = flag.String("mechanism", "base", "write-back policy: base, wbht, snarf, combined, reusedist, hybridui")
		outstanding  = flag.Int("outstanding", 6, "max outstanding misses per thread (1-6 in the paper)")
		refs         = flag.Int("refs", 0, "references per thread for built-in workloads (0 = default)")
		overrides    = config.RegisterOverrides(flag.CommandLine)
		configFile   = flag.String("config", "", "load a JSON configuration (see -dump-config) before applying flags")
		dumpConfig   = flag.Bool("dump-config", false, "print the effective configuration as JSON and exit")
		jsonOut      = flag.Bool("json", false, "print the full result set as JSON instead of the text report")
		metricsOut   = flag.String("metrics-out", "", "write the per-interval metrics series as JSON to this file (- for stdout)")
		metricsIval  = flag.Int64("metrics-interval", 0, "metrics sampling window in cycles (0 = 1M, the paper's retry window)")
		auditRun     = flag.Bool("audit", false, "attach the shadow invariant checker (coherence, dirty-line conservation, resource credits) and fail on violations")
		auditDiff    = flag.Bool("audit-differential", true, "with -audit, also run the reference coherence model and diff end states")
		traceOut     = flag.String("trace-out", "", "write a structured event trace to this file (.jsonl = JSON Lines, otherwise Chrome trace_event viewable in Perfetto)")
		latOut       = flag.String("lat-out", "", "attach the latency collector and write the stage-attributed report as JSON to this file (- for stdout); feed it to cmpreport")
		latTopK      = flag.Int("lat-topk", 0, "slowest-transactions reservoir size for -lat-out (0 = default 16)")
		latInterval  = flag.Int64("lat-interval", 0, "also bin latency quantiles into windows of this many cycles for -lat-out (0 = off)")
		shards       = flag.String("shards", "auto", "intra-run shard workers: auto (one per L2 slice, capped by GOMAXPROCS), serial, or a count; results are bit-identical at any value")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	)
	flag.Parse()

	// Validate every output destination before any simulation work:
	// create missing parent directories and prove the file is creatable
	// now, instead of discovering a bad path after minutes of simulation.
	for _, out := range []struct{ flag, path string }{
		{"metrics-out", *metricsOut},
		{"trace-out", *traceOut},
		{"lat-out", *latOut},
		{"cpuprofile", *cpuprofile},
		{"memprofile", *memprofile},
	} {
		if err := ensureWritable(out.path); err != nil {
			fatalf("-%s: %v", out.flag, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	cfg := cmpcache.DefaultConfig()
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			fatalf("%v", err)
		}
		cfg, err = config.ReadJSON(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	}
	// Flags override the config file only when explicitly given.
	if overrides.Explicit("mechanism") || *configFile == "" {
		var m config.Mechanism
		if err := m.UnmarshalText([]byte(*mechanism)); err != nil {
			fatalf("%v", err)
		}
		cfg = cfg.WithMechanism(m)
	}
	if overrides.Explicit("outstanding") || *configFile == "" {
		cfg.MaxOutstanding = *outstanding
	}
	overrides.Apply(&cfg)
	if *dumpConfig {
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	// The workload is either a sharded trace directory (streamed with
	// bounded memory), a flat trace file, or a built-in synthetic
	// profile.
	var (
		src     cmpcache.TraceSource
		sharded *cmpcache.ShardedTrace
		err     error
	)
	if *traceFile != "" && cmpcache.IsShardedTraceDir(*traceFile) {
		sharded, err = cmpcache.OpenTraceDir(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer sharded.Close()
		src = sharded
	} else {
		tr, lerr := loadTrace(*traceFile, *workloadName, *refs)
		if lerr != nil {
			fatalf("%v", lerr)
		}
		src = trace.NewMemSource(tr)
	}

	// Every attachment is observation-only, so all of them compose onto
	// one run.
	var opts cmpcache.RunOptions
	if opts.Workers, err = sweep.ParseShards(*shards); err != nil {
		fatalf("%v", err)
	}
	if *auditRun {
		opts.Auditor = cmpcache.NewAuditor(cmpcache.AuditConfig{Differential: *auditDiff})
	}
	var tw *metrics.TraceWriter
	var tf *os.File
	if *metricsOut != "" || *traceOut != "" {
		opts.Probe = cmpcache.NewMetricsProbe(cmpcache.MetricsConfig{
			Interval: config.Cycles(*metricsIval),
		})
		if *traceOut != "" {
			tf, err = os.Create(*traceOut)
			if err != nil {
				fatalf("%v", err)
			}
			tw = metrics.NewTraceWriter(tf, metrics.FormatForPath(*traceOut))
			opts.Probe.SetTrace(tw)
		}
	}
	if *latOut != "" {
		opts.Latency = cmpcache.NewLatencyCollector(cmpcache.LatencyConfig{
			TopK:     *latTopK,
			Interval: config.Cycles(*latInterval),
		})
	}

	res, err := cmpcache.RunSourceWith(cfg, src, opts)
	if tw != nil {
		if cerr := tw.Close(); cerr != nil {
			fatalf("trace-out: %v", cerr)
		}
		if cerr := tf.Close(); cerr != nil {
			fatalf("trace-out: %v", cerr)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	auditFailed := false
	if opts.Auditor != nil {
		fmt.Fprint(os.Stderr, opts.Auditor.Summary())
		auditFailed = !opts.Auditor.Ok()
	}
	if *metricsOut != "" {
		if werr := writeSeries(*metricsOut, res.Metrics); werr != nil {
			fatalf("metrics-out: %v", werr)
		}
	}
	if *latOut != "" {
		run := cmpcache.RunLatencyFile{
			Workload:    src.Name(),
			Mechanism:   cfg.Mechanism.String(),
			Outstanding: cfg.MaxOutstanding,
			Cycles:      res.Cycles,
			Latency:     res.Latency,
		}
		if werr := writeJSON(*latOut, &run); werr != nil {
			fatalf("lat-out: %v", werr)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Printf("workload             %s (%d refs, %d threads)\n",
			src.Name(), src.Records(), src.Threads())
		fmt.Print(res.Summary())
	}
	if auditFailed {
		os.Exit(1)
	}
}

// ensureWritable creates path's missing parent directories and verifies
// the file itself can be created. A probe file that did not exist
// before is removed again so a later failure leaves no empty artifact.
func ensureWritable(path string) error {
	if path == "" || path == "-" {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	f.Close()
	if os.IsNotExist(statErr) {
		os.Remove(path)
	}
	return nil
}

// writeSeries exports the interval series as indented JSON.
func writeSeries(path string, series *metrics.Series) error {
	return writeJSON(path, series)
}

// writeJSON writes v as indented JSON to path ("-" for stdout).
func writeJSON(path string, v any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func loadTrace(path, workloadName string, refs int) (*cmpcache.Trace, error) {
	if path == "" {
		if refs > 0 {
			return cmpcache.GenerateWorkloadSized(workloadName, refs)
		}
		return cmpcache.GenerateWorkload(workloadName)
	}
	return trace.ReadFile(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmpsim: "+format+"\n", args...)
	os.Exit(1)
}
