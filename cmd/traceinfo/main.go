// Command traceinfo summarizes a trace file: record and thread counts,
// operation mix, footprint, per-thread balance and gap statistics.
//
// Usage:
//
//	traceinfo tp.cmpt [more.cmpt ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpcache/internal/stats"
	"cmpcache/internal/trace"
)

func main() {
	lineBytes := flag.Int("line-bytes", 128, "cache line size for footprint accounting")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-line-bytes N] <trace file>...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := describe(path, *lineBytes); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func describe(path string, lineBytes int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == trace.ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return serr
		}
		tr, err = trace.ReadText(f)
	}
	if err != nil {
		return err
	}
	s := tr.Summarize(lineBytes)
	fmt.Printf("%s:\n", path)
	fmt.Printf("  name            %s\n", tr.Name)
	fmt.Printf("  records         %d\n", s.Records)
	fmt.Printf("  threads         %d\n", tr.Threads)
	fmt.Printf("  loads           %d (%.1f%%)\n", s.Loads, stats.Percent(uint64(s.Loads), uint64(s.Records)))
	fmt.Printf("  stores          %d (%.1f%%)\n", s.Stores, stats.Percent(uint64(s.Stores), uint64(s.Records)))
	fmt.Printf("  ifetches        %d (%.1f%%)\n", s.Ifetches, stats.Percent(uint64(s.Ifetches), uint64(s.Records)))
	fmt.Printf("  distinct lines  %d (%.1f MB footprint)\n",
		s.DistinctLines, float64(s.FootprintBytes(lineBytes))/(1<<20))
	fmt.Printf("  mean gap        %.1f cycles\n", s.MeanGap)
	min, max := s.Records, 0
	for _, n := range s.PerThread {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("  refs/thread     min %d, max %d\n", min, max)
	return nil
}
