// Command traceinfo summarizes a trace input: record and thread counts,
// operation mix, footprint, per-thread balance and gap statistics. It
// accepts flat trace files (binary CMPT or text, selected by content)
// and sharded trace directories, which it summarizes as a stream
// without materializing the capture.
//
// Usage:
//
//	traceinfo tp.cmpt [more.cmpt ...]
//	traceinfo -verify tp.cmps
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpcache/internal/stats"
	"cmpcache/internal/trace"
)

func main() {
	lineBytes := flag.Int("line-bytes", 128, "cache line size for footprint accounting")
	verify := flag.Bool("verify", false, "re-hash sharded trace contents against the manifest")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-line-bytes N] [-verify] <trace file or sharded dir>...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := describe(path, *lineBytes, *verify); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func describe(path string, lineBytes int, verify bool) error {
	if trace.IsShardedDir(path) {
		return describeSharded(path, lineBytes, verify)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	report(path, tr.Name, tr.Threads, tr.Summarize(lineBytes), lineBytes)
	return nil
}

func describeSharded(path string, lineBytes int, verify bool) error {
	sh, err := trace.OpenSharded(path)
	if err != nil {
		return err
	}
	defer sh.Close()
	if verify {
		if err := sh.Verify(); err != nil {
			return err
		}
	}
	s, err := trace.SummarizeSource(sh, lineBytes)
	if err != nil {
		return err
	}
	report(path, sh.Name(), sh.Threads(), s, lineBytes)
	man := sh.Manifest()
	fmt.Printf("  shards          %d (batch %d records)\n", len(man.Shards), man.BatchRecords)
	fmt.Printf("  content hash    %s\n", man.ContentHash())
	if verify {
		fmt.Printf("  verified        all shard hashes match\n")
	}
	return nil
}

func report(path, name string, threads int, s trace.Stats, lineBytes int) {
	fmt.Printf("%s:\n", path)
	fmt.Printf("  name            %s\n", name)
	fmt.Printf("  records         %d\n", s.Records)
	fmt.Printf("  threads         %d\n", threads)
	fmt.Printf("  loads           %d (%.1f%%)\n", s.Loads, stats.Percent(uint64(s.Loads), uint64(s.Records)))
	fmt.Printf("  stores          %d (%.1f%%)\n", s.Stores, stats.Percent(uint64(s.Stores), uint64(s.Records)))
	fmt.Printf("  ifetches        %d (%.1f%%)\n", s.Ifetches, stats.Percent(uint64(s.Ifetches), uint64(s.Records)))
	fmt.Printf("  distinct lines  %d (%.1f MB footprint)\n",
		s.DistinctLines, float64(s.FootprintBytes(lineBytes))/(1<<20))
	fmt.Printf("  mean gap        %.1f cycles\n", s.MeanGap)
	min, max := s.Records, 0
	for _, n := range s.PerThread {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("  refs/thread     min %d, max %d\n", min, max)
}
