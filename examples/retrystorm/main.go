// Retry-storm example: watch the WBHT's adaptive retry switch track an
// L3 retry storm in time, using the metrics probe's interval series.
//
// The TP workload at 6 outstanding misses per thread floods the L3's
// incoming queue with write backs; the rejected ones retry, and the
// paper's adaptive switch (Section 4) turns the Write Back History
// Table on only while the observed retry rate crosses its threshold —
// 2,000 retries per 1M cycles, which at the simulator's scaled window
// is RetryThreshold retries per RetryWindow cycles. Sampling the run at
// exactly that window makes the series line up with the switch's own
// decisions: the chart below shows the retry rate spiking, the switch
// engaging one window later, and the WBHT then thinning the storm.
//
//	go run ./examples/retrystorm
//	go run ./examples/retrystorm -metrics-out series.json -trace-out storm.trace
//
// The -trace-out file is a Chrome trace_event JSON: open it at
// ui.perfetto.dev to see the same counters as zoomable tracks (use a
// .jsonl suffix for grep-able JSON Lines instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cmpcache"
	"cmpcache/internal/metrics"
)

func main() {
	metricsOut := flag.String("metrics-out", "", "write the interval series as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a structured event trace (.jsonl = JSON Lines, else Chrome trace_event)")
	flag.Parse()

	tr, err := cmpcache.GenerateWorkloadSized("tp", 30000)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
	cfg.MaxOutstanding = 6

	// Sample at the switch's own observation window so each row of the
	// series is one switch decision period.
	probe := cmpcache.NewMetricsProbe(cmpcache.MetricsConfig{Interval: cfg.WBHT.RetryWindow})
	var tw *metrics.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw = metrics.NewTraceWriter(f, metrics.FormatForPath(*traceOut))
		probe.SetTrace(tw)
	}

	res, err := cmpcache.RunWithProbe(cfg, tr, probe)
	if err != nil {
		log.Fatal(err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event trace: %s (%d records)\n", *traceOut, tw.Events())
	}
	if *metricsOut != "" {
		if err := writeJSON(*metricsOut, res.Metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval series: %s (%d windows)\n", *metricsOut, len(res.Metrics.Samples))
	}

	fmt.Printf("TP workload, WBHT mechanism, %d outstanding misses/thread\n", cfg.MaxOutstanding)
	fmt.Printf("switch threshold: %d retries per %d-cycle window (the paper's 2,000 per 1M cycles)\n\n",
		cfg.WBHT.RetryThreshold, cfg.WBHT.RetryWindow)

	// Scale the bar chart to the stormiest window.
	var peak uint64 = 1
	for _, s := range res.Metrics.Samples {
		if s.WBRetried > peak {
			peak = s.WBRetried
		}
	}
	const width = 50
	threshCol := int(cfg.WBHT.RetryThreshold * width / peak)

	fmt.Println("window |   cycles | wb retries | switch | consults")
	for _, s := range res.Metrics.Samples {
		bar := strings.Repeat("#", int(s.WBRetried*width/peak))
		// Mark the switch threshold inside the bar lane.
		lane := []byte(fmt.Sprintf("%-*s", width+1, bar))
		if threshCol < len(lane) && lane[threshCol] == ' ' {
			lane[threshCol] = '|'
		}
		state := "  off"
		if s.SwitchActive {
			state = "   ON"
		}
		fmt.Printf("%6d | %8d | %10d | %s  | %8d  %s\n",
			s.Window, s.End, s.WBRetried, state, s.WBHTConsults, lane)
	}

	fmt.Printf("\nrun total: %d cycles, %d write-back retries, switch active %d of %d windows\n",
		res.Cycles, res.WBRetried, res.SwitchActiveWindows, res.SwitchTotalWindows)
	fmt.Printf("WBHT: %d consults, %d write backs aborted (%.1f%% of consults)\n",
		res.WBHT.Consults, res.WBHT.Hits,
		100*float64(res.WBHT.Hits)/max1(res.WBHT.Consults))
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
