// Retry-storm example: watch the WBHT's adaptive retry switch track an
// L3 retry storm in time, using the metrics probe's interval series and
// the latency collector's per-window quantiles.
//
// The TP workload at 6 outstanding misses per thread floods the L3's
// incoming queue with write backs; the rejected ones retry, and the
// paper's adaptive switch (Section 4) turns the Write Back History
// Table on only while the observed retry rate crosses its threshold —
// 2,000 retries per 1M cycles, which at the simulator's scaled window
// is RetryThreshold retries per RetryWindow cycles. Sampling the run at
// exactly that window makes the series line up with the switch's own
// decisions: the chart below shows the retry rate spiking, the switch
// engaging one window later, and the WBHT then thinning the storm.
//
// A windowed latency collector rides the same run at the same window,
// so each chart row also carries that window's write-back p99 — the
// queueing delay the storm inflicts — and a final per-stage table
// splits write-back latency by switch state to show where those cycles
// sit (the wb_queue and wb_retry stages) and how the stages move when
// the switch flips.
//
//	go run ./examples/retrystorm
//	go run ./examples/retrystorm -metrics-out series.json -trace-out storm.trace
//
// The -trace-out file is a Chrome trace_event JSON: open it at
// ui.perfetto.dev to see the same counters as zoomable tracks (use a
// .jsonl suffix for grep-able JSON Lines instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cmpcache"
	"cmpcache/internal/metrics"
	"cmpcache/internal/stats"
)

func main() {
	metricsOut := flag.String("metrics-out", "", "write the interval series as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a structured event trace (.jsonl = JSON Lines, else Chrome trace_event)")
	flag.Parse()

	tr, err := cmpcache.GenerateWorkloadSized("tp", 30000)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
	cfg.MaxOutstanding = 6

	// Sample at the switch's own observation window so each row of the
	// series is one switch decision period; the latency collector bins
	// its quantiles at the same window so the two series line up row
	// for row.
	probe := cmpcache.NewMetricsProbe(cmpcache.MetricsConfig{Interval: cfg.WBHT.RetryWindow})
	lat := cmpcache.NewLatencyCollector(cmpcache.LatencyConfig{Interval: cfg.WBHT.RetryWindow})
	var tw *metrics.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw = metrics.NewTraceWriter(f, metrics.FormatForPath(*traceOut))
		probe.SetTrace(tw)
	}

	res, err := cmpcache.RunWith(cfg, tr, cmpcache.RunOptions{Probe: probe, Latency: lat})
	if err != nil {
		log.Fatal(err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event trace: %s (%d records)\n", *traceOut, tw.Events())
	}
	if *metricsOut != "" {
		if err := writeJSON(*metricsOut, res.Metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval series: %s (%d windows)\n", *metricsOut, len(res.Metrics.Samples))
	}

	fmt.Printf("TP workload, WBHT mechanism, %d outstanding misses/thread\n", cfg.MaxOutstanding)
	fmt.Printf("switch threshold: %d retries per %d-cycle window (the paper's 2,000 per 1M cycles)\n\n",
		cfg.WBHT.RetryThreshold, cfg.WBHT.RetryWindow)

	// Scale the bar chart to the stormiest window.
	var peak uint64 = 1
	for _, s := range res.Metrics.Samples {
		if s.WBRetried > peak {
			peak = s.WBRetried
		}
	}
	const width = 50
	threshCol := int(cfg.WBHT.RetryThreshold * width / peak)

	// The latency collector's windows align with the probe's samples by
	// construction (same interval, same engine); index them by window id
	// anyway so a missing final partial on either side cannot skew rows.
	wbP99 := map[int]float64{}
	if res.Latency != nil {
		for _, w := range res.Latency.Windows {
			wbP99[w.Window] = w.WriteBack.P99
		}
	}

	fmt.Println("window |   cycles | wb retries | switch | consults | wb p99")
	for _, s := range res.Metrics.Samples {
		bar := strings.Repeat("#", int(s.WBRetried*width/peak))
		// Mark the switch threshold inside the bar lane.
		lane := []byte(fmt.Sprintf("%-*s", width+1, bar))
		if threshCol < len(lane) && lane[threshCol] == ' ' {
			lane[threshCol] = '|'
		}
		state := "  off"
		if s.SwitchActive {
			state = "   ON"
		}
		fmt.Printf("%6d | %8d | %10d | %s  | %8d | %6.0f  %s\n",
			s.Window, s.End, s.WBRetried, state, s.WBHTConsults, wbP99[s.Window], lane)
	}

	fmt.Printf("\nrun total: %d cycles, %d write-back retries, switch active %d of %d windows\n",
		res.Cycles, res.WBRetried, res.SwitchActiveWindows, res.SwitchTotalWindows)
	fmt.Printf("WBHT: %d consults, %d write backs aborted (%.1f%% of consults)\n",
		res.WBHT.Consults, res.WBHT.Hits,
		100*float64(res.WBHT.Hits)/max1(res.WBHT.Consults))

	if res.Latency != nil {
		fmt.Println()
		fmt.Print(stageP99BySwitch(res.Latency))
	}
}

// stageP99BySwitch tabulates write-back per-stage p99 latency with the
// retry switch off versus on, pooling the write-back classes that occur
// in both states. The wb_queue and wb_retry rows are where the storm's
// queueing delay lives; the table shows how they move when the switch
// flips and the WBHT starts thinning the write-back stream.
func stageP99BySwitch(rep *cmpcache.LatencyReport) string {
	type cell struct{ off, on float64 }
	stages := map[string]*cell{}
	order := []string{}
	var totals cell
	for _, g := range rep.Groups {
		if !g.WriteBack {
			continue
		}
		for _, s := range g.Stages {
			c := stages[s.Stage]
			if c == nil {
				c = &cell{}
				stages[s.Stage] = c
				order = append(order, s.Stage)
			}
			// Keep the worst class per stage and state: the overlay is
			// about where delay can pool, not an average.
			if g.SwitchActive {
				if s.P99 > c.on {
					c.on = s.P99
				}
			} else if s.P99 > c.off {
				c.off = s.P99
			}
		}
		if g.SwitchActive {
			if g.Total.P99 > totals.on {
				totals.on = g.Total.P99
			}
		} else if g.Total.P99 > totals.off {
			totals.off = g.Total.P99
		}
	}
	t := stats.NewTable("Write-back stage p99 by retry-switch state (worst class per stage)",
		"stage", "switch off p99", "switch ON p99")
	for _, st := range order {
		t.AddRowf(st, stages[st].off, stages[st].on)
	}
	t.AddRowf("total", totals.off, totals.on)
	return t.Markdown()
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
