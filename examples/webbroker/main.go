// Web-brokerage example: a Trade2-like workload whose working set
// cycles between the L2s and the L3 victim cache, making it the paper's
// biggest Write Back History Table winner (Figure 2) and its most
// table-size-sensitive application (Figure 4).
//
// The example runs the WBHT at several table sizes and shows how hit
// rate, aborted write backs and runtime respond — plus the effect of
// the Figure 3 global-allocation variant.
//
//	go run ./examples/webbroker
package main

import (
	"fmt"
	"log"

	"cmpcache"
)

func main() {
	tr, err := cmpcache.GenerateWorkloadSized("trade2", 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trade2-like web brokerage: %d references, %d threads\n\n", len(tr.Records), tr.Threads)

	baseCfg := cmpcache.DefaultConfig()
	base, err := cmpcache.Run(baseCfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles, %d WB requests, %.1f%% of clean WBs already in L3\n\n",
		base.Cycles, base.WBRequests, base.PctCleanWBAlreadyInL3())

	fmt.Println("WBHT size sweep (Figure 4's axis):")
	fmt.Println("entries | cycles | vs base | WB requests | clean WBs aborted | correct")
	for _, entries := range []int{512, 2048, 8192, 32768} {
		cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
		cfg.WBHT.Entries = entries
		res, err := cmpcache.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d | %6d | %+6.2f%% | %11d | %17d | %5.1f%%\n",
			entries, res.Cycles,
			100*(float64(base.Cycles)-float64(res.Cycles))/float64(base.Cycles),
			res.WBRequests, res.L2.CleanWBAborted, 100*res.WBHT.CorrectRate())
	}

	// Figure 3 variant: every L2 allocates on the combined response.
	cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
	cfg.WBHT.GlobalAllocate = true
	global, err := cmpcache.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal WBHT allocation (Figure 3): %d cycles, %d allocations\n",
		global.Cycles, global.WBHT.Allocations)
}
