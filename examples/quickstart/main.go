// Quickstart: simulate one workload on the baseline system and on the
// paper's two mechanisms, and compare execution time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cmpcache"
)

func main() {
	// A modest synthetic Trade2-like trace keeps this example fast.
	tr, err := cmpcache.GenerateWorkloadSized("trade2", 30000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: %d references on %d threads\n\n",
		tr.Name, len(tr.Records), tr.Threads)

	var baseCycles uint64
	for _, m := range []cmpcache.Mechanism{
		cmpcache.Baseline, cmpcache.WBHT, cmpcache.Snarf, cmpcache.Combined,
	} {
		cfg := cmpcache.DefaultConfig().WithMechanism(m)
		res, err := cmpcache.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		if m == cmpcache.Baseline {
			baseCycles = res.Cycles
		}
		improvement := 100 * (float64(baseCycles) - float64(res.Cycles)) / float64(baseCycles)
		fmt.Printf("%-9s %12d cycles  (%+.2f%% vs baseline)  L3 load hit %.1f%%  L3 retries %d\n",
			m, res.Cycles, improvement, 100*res.L3LoadHitRate(), res.L3RetriesIssued)
	}

	fmt.Println("\nFor the full paper reproduction, run: go run ./cmd/cmpbench -experiment all")
}
