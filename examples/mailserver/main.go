// Mail-server example: a NotesBench-like workload whose memory demand
// is low. It demonstrates the paper's Section 2.2 safety mechanism: the
// WBHT's retry-rate switch keeps the table dormant when there is no
// contention to relieve, because aborting clean write backs without
// contention only risks turning future L3 hits into memory misses.
//
// The example contrasts the adaptive switch against a WBHT forced
// always-on, and shows a custom workload profile being built through
// the public API.
//
//	go run ./examples/mailserver
package main

import (
	"fmt"
	"log"

	"cmpcache"
)

func main() {
	// Start from the built-in NotesBench profile and trim it for a quick
	// run — profiles are plain data and can be customized freely.
	p, err := cmpcache.WorkloadByName("notesbench")
	if err != nil {
		log.Fatal(err)
	}
	p.RefsPerThread = 40000
	tr, err := p.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NotesBench-like mail server: %d references, mean gap %.0f cycles\n\n",
		len(tr.Records), p.MeanGap)

	base := run(tr, func(cfg *cmpcache.Config) {})
	adaptive := run(tr, func(cfg *cmpcache.Config) {
		*cfg = cfg.WithMechanism(cmpcache.WBHT)
	})
	forced := run(tr, func(cfg *cmpcache.Config) {
		*cfg = cfg.WithMechanism(cmpcache.WBHT)
		cfg.WBHT.SwitchEnabled = false // always consult the table
	})

	fmt.Printf("%-22s %12s %14s %10s %12s\n", "configuration", "cycles", "clean aborts", "L3 hit", "mem fills")
	for _, row := range []struct {
		name string
		r    *cmpcache.Results
	}{
		{"baseline", base},
		{"WBHT (adaptive)", adaptive},
		{"WBHT (forced on)", forced},
	} {
		fmt.Printf("%-22s %12d %14d %9.1f%% %12d\n",
			row.name, row.r.Cycles, row.r.L2.CleanWBAborted,
			100*row.r.L3LoadHitRate(), row.r.FillsFromMem)
	}

	fmt.Printf("\nretry switch: active in %d of %d windows (low pressure keeps it off)\n",
		adaptive.SwitchActiveWindows, adaptive.SwitchTotalWindows)
	fmt.Println("With the switch, the table stays maintained but unconsulted, so the")
	fmt.Println("adaptive run tracks the baseline; forcing it on aborts clean write")
	fmt.Println("backs and can cost L3 hits with nothing to gain at this load.")
}

func run(tr *cmpcache.Trace, mutate func(*cmpcache.Config)) *cmpcache.Results {
	cfg := cmpcache.DefaultConfig()
	mutate(&cfg)
	res, err := cmpcache.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
