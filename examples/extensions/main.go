// Extensions example: the paper's Section 7 future-work ideas,
// implemented and measurable.
//
//  1. Coarse-grained WBHT entries — "allow each entry in the table to
//     serve multiple cache lines, reducing the size of each entry and
//     providing greater coverage at the risk of increased prediction
//     errors." We sweep lines-per-entry at a fixed small table and watch
//     coverage (aborts) rise while prediction accuracy falls.
//
//  2. History-informed replacement — "new replacement algorithms that
//     take into account information contained in the history tables."
//     The L2 victim search prefers clean lines whose tags hit in the
//     WBHT: they are already in the L3, so evicting them costs neither a
//     write back nor, on re-reference, a memory access.
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"cmpcache"
)

func main() {
	tr, err := cmpcache.GenerateWorkloadSized("trade2", 30000)
	if err != nil {
		log.Fatal(err)
	}
	base, err := cmpcache.Run(cmpcache.DefaultConfig(), tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trade2-like workload, baseline %d cycles\n\n", base.Cycles)

	fmt.Println("Coarse WBHT entries (4K-entry table, forced on):")
	fmt.Println("lines/entry | aborts | correct | vs base")
	for _, gran := range []int{1, 2, 4, 8} {
		cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
		cfg.WBHT.Entries = 4096
		cfg.WBHT.SwitchEnabled = false
		cfg.WBHT.LinesPerEntry = gran
		res, err := cmpcache.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11d | %6d | %6.1f%% | %+.2f%%\n",
			gran, res.L2.CleanWBAborted, 100*res.WBHT.CorrectRate(),
			100*(float64(base.Cycles)-float64(res.Cycles))/float64(base.Cycles))
	}

	fmt.Println("\nHistory-informed L2 replacement (full-size WBHT):")
	for _, hist := range []bool{false, true} {
		cfg := cmpcache.DefaultConfig().WithMechanism(cmpcache.WBHT)
		cfg.WBHT.SwitchEnabled = false
		cfg.WBHT.HistoryReplacement = hist
		res, err := cmpcache.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("history=%v: %d cycles (%+.2f%% vs base), %d informed victims, %d WBs aborted\n",
			hist, res.Cycles,
			100*(float64(base.Cycles)-float64(res.Cycles))/float64(base.Cycles),
			res.L2.HistoryVictims, res.L2.CleanWBAborted)
	}
}
