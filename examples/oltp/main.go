// OLTP example: reproduce the paper's headline TP result — snarfing
// eliminates the L3 retry storm of a transaction-processing workload
// whose working set thrashes the L3 (Table 5: 13.1% faster, 99% fewer
// L3-issued retries).
//
// The example also sweeps the memory-pressure knob (max outstanding
// misses per thread, the x-axis of Figures 2/5/7) to show where the
// mechanisms start paying off.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"

	"cmpcache"
)

func main() {
	tr, err := cmpcache.GenerateWorkloadSized("tp", 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TP-like OLTP workload: %d references, %d threads\n\n", len(tr.Records), tr.Threads)

	fmt.Println("Memory-pressure sweep (baseline vs snarfing):")
	fmt.Println("outstanding | base cycles | snarf cycles | speedup | L3 retries base -> snarf")
	for _, outstanding := range []int{1, 2, 4, 6} {
		base := runWith(tr, cmpcache.Baseline, outstanding)
		snarf := runWith(tr, cmpcache.Snarf, outstanding)
		fmt.Printf("%11d | %11d | %12d | %+6.2f%% | %d -> %d (%.0f%% fewer)\n",
			outstanding, base.Cycles, snarf.Cycles,
			100*(float64(base.Cycles)-float64(snarf.Cycles))/float64(base.Cycles),
			base.L3RetriesIssued, snarf.L3RetriesIssued,
			100*(1-float64(snarf.L3RetriesIssued)/max1(base.L3RetriesIssued)))
	}

	base := runWith(tr, cmpcache.Baseline, 6)
	snarf := runWith(tr, cmpcache.Snarf, 6)
	fmt.Printf("\nAt 6 outstanding misses/thread:\n")
	fmt.Printf("  write backs snarfed by peers : %.1f%% of WB requests\n", snarf.PctWBSnarfed())
	fmt.Printf("  snarfed lines used locally   : %.1f%%\n", snarf.PctSnarfedUsedLocally())
	fmt.Printf("  snarfed lines -> interventions: %.1f%%\n", snarf.PctSnarfedInterventions())
	fmt.Printf("  off-chip accesses            : %d -> %d\n", base.OffChipAccesses(), snarf.OffChipAccesses())
	fmt.Printf("  local L2 hit rate            : %.2f%% -> %.2f%%\n",
		100*base.L2HitRate(), 100*snarf.L2HitRate())
}

func runWith(tr *cmpcache.Trace, m cmpcache.Mechanism, outstanding int) *cmpcache.Results {
	cfg := cmpcache.DefaultConfig().WithMechanism(m)
	cfg.MaxOutstanding = outstanding
	res, err := cmpcache.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
