package cmpcache_test

import (
	"strings"
	"testing"

	"cmpcache"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := cmpcache.DefaultConfig()
	if cfg.L2HitLatency() != 20 || cfg.L2ToL2Latency() != 77 ||
		cfg.L3HitLatency() != 167 || cfg.MemLatency() != 431 {
		t.Fatalf("Table 3 latencies broken: %d/%d/%d/%d",
			cfg.L2HitLatency(), cfg.L2ToL2Latency(), cfg.L3HitLatency(), cfg.MemLatency())
	}
	if cfg.Mechanism != cmpcache.Baseline {
		t.Fatal("default mechanism should be baseline")
	}
}

func TestWorkloadsListed(t *testing.T) {
	names := cmpcache.Workloads()
	if len(names) != 4 {
		t.Fatalf("Workloads = %v, want the paper's four", names)
	}
	for _, n := range names {
		if _, err := cmpcache.WorkloadByName(n); err != nil {
			t.Fatalf("WorkloadByName(%q): %v", n, err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	tr, err := cmpcache.GenerateWorkloadSized("trade2", 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmpcache.Run(cmpcache.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.RefsCompleted != uint64(len(tr.Records)) {
		t.Fatalf("degenerate run: %d cycles, %d/%d refs",
			res.Cycles, res.RefsCompleted, len(tr.Records))
	}
	if !strings.Contains(res.Summary(), "execution time") {
		t.Fatal("Summary missing expected content")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	tr, err := cmpcache.GenerateWorkloadSized("tp", 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cmpcache.DefaultConfig()
	cfg.MaxOutstanding = 0
	if _, err := cmpcache.Run(cfg, tr); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMechanismsAllRun(t *testing.T) {
	tr, err := cmpcache.GenerateWorkloadSized("cpw2", 500)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cmpcache.Run(cmpcache.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []cmpcache.Mechanism{cmpcache.WBHT, cmpcache.Snarf, cmpcache.Combined} {
		res, err := cmpcache.Run(cmpcache.DefaultConfig().WithMechanism(m), tr)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.RefsCompleted != base.RefsCompleted {
			t.Fatalf("%v completed %d refs, baseline %d",
				m, res.RefsCompleted, base.RefsCompleted)
		}
	}
}

func TestGenerateWorkloadUnknown(t *testing.T) {
	if _, err := cmpcache.GenerateWorkload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr, err := cmpcache.GenerateWorkloadSized("notesbench", 400)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cmpcache.Run(cmpcache.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cmpcache.Run(cmpcache.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.WBRequests != b.WBRequests {
		t.Fatal("identical inputs produced different results")
	}
}
