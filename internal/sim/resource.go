package sim

// This file contains analytic queued-resource models. Rather than
// enqueueing explicit arbitration events, a caller reserves a busy window
// on a resource and receives the cycle at which service begins; the
// caller then schedules its own downstream events at start+occupancy.
// Reservations are FIFO in call order, which matches the engine's
// deterministic same-cycle ordering.

// Server models a single FIFO-served resource (a bus slot allocator, a
// cache port, a DRAM channel). The zero value is an idle server.
type Server struct {
	nextFree Time

	// Stats, exported through accessors.
	reservations uint64
	busy         Time
	waited       Time
}

// Reserve books occupancy cycles of service beginning no earlier than
// now, returning the cycle service starts. occupancy must be positive.
func (s *Server) Reserve(now, occupancy Time) Time {
	if occupancy <= 0 {
		panic("sim: Server.Reserve with non-positive occupancy")
	}
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	s.waited += start - now
	s.nextFree = start + occupancy
	s.busy += occupancy
	s.reservations++
	return start
}

// NextFree returns the cycle at which the server next becomes idle.
func (s *Server) NextFree() Time { return s.nextFree }

// Reservations returns the number of Reserve calls.
func (s *Server) Reservations() uint64 { return s.reservations }

// BusyCycles returns the total cycles of booked service.
func (s *Server) BusyCycles() Time { return s.busy }

// WaitedCycles returns the cumulative queueing delay over all
// reservations.
func (s *Server) WaitedCycles() Time { return s.waited }

// Utilization returns busy cycles divided by elapsed cycles (0 when no
// time has elapsed).
func (s *Server) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busy) / float64(elapsed)
}

// MultiServer models k identical FIFO-served units fed by one queue
// (e.g. the interleaved slices of the L3 data array, DRAM banks).
type MultiServer struct {
	free []Time // next-free time per unit

	reservations uint64
	busy         Time
	waited       Time
}

// NewMultiServer returns a MultiServer with k units; k must be positive.
func NewMultiServer(k int) *MultiServer {
	if k <= 0 {
		panic("sim: NewMultiServer with non-positive k")
	}
	return &MultiServer{free: make([]Time, k)}
}

// Reserve books occupancy cycles on the earliest-available unit and
// returns the cycle service starts.
func (m *MultiServer) Reserve(now, occupancy Time) Time {
	if occupancy <= 0 {
		panic("sim: MultiServer.Reserve with non-positive occupancy")
	}
	best := 0
	for i := 1; i < len(m.free); i++ {
		if m.free[i] < m.free[best] {
			best = i
		}
	}
	start := now
	if m.free[best] > start {
		start = m.free[best]
	}
	m.waited += start - now
	m.free[best] = start + occupancy
	m.busy += occupancy
	m.reservations++
	return start
}

// Units returns the number of service units.
func (m *MultiServer) Units() int { return len(m.free) }

// Reservations returns the number of Reserve calls.
func (m *MultiServer) Reservations() uint64 { return m.reservations }

// BusyCycles returns the total cycles of booked service across units.
func (m *MultiServer) BusyCycles() Time { return m.busy }

// WaitedCycles returns the cumulative queueing delay.
func (m *MultiServer) WaitedCycles() Time { return m.waited }

// TokenQueue models a finite-capacity buffer: TryAcquire fails (the
// caller sees a retry) when all entries are in use. It is the mechanism
// behind L3-issued retries and the L2 write-back queue back-pressure.
type TokenQueue struct {
	capacity int
	inUse    int

	acquired   uint64
	rejected   uint64
	peak       int
	windowPeak int // high-water mark since the last TakeWindowPeak
}

// NewTokenQueue returns a TokenQueue with the given capacity; capacity
// must be positive.
func NewTokenQueue(capacity int) *TokenQueue {
	if capacity <= 0 {
		panic("sim: NewTokenQueue with non-positive capacity")
	}
	return &TokenQueue{capacity: capacity}
}

// TryAcquire takes one entry, reporting false (and counting a rejection)
// when the queue is full.
func (q *TokenQueue) TryAcquire() bool {
	if q.inUse >= q.capacity {
		q.rejected++
		return false
	}
	q.inUse++
	q.acquired++
	if q.inUse > q.peak {
		q.peak = q.inUse
	}
	if q.inUse > q.windowPeak {
		q.windowPeak = q.inUse
	}
	return true
}

// Release returns one entry; releasing an empty queue panics, as it
// indicates a protocol accounting bug.
func (q *TokenQueue) Release() {
	if q.inUse == 0 {
		panic("sim: TokenQueue.Release on empty queue")
	}
	q.inUse--
}

// InUse returns the number of occupied entries.
func (q *TokenQueue) InUse() int { return q.inUse }

// Capacity returns the total number of entries.
func (q *TokenQueue) Capacity() int { return q.capacity }

// Full reports whether no entries remain.
func (q *TokenQueue) Full() bool { return q.inUse >= q.capacity }

// Acquired returns the number of successful TryAcquire calls.
func (q *TokenQueue) Acquired() uint64 { return q.acquired }

// Rejected returns the number of failed TryAcquire calls.
func (q *TokenQueue) Rejected() uint64 { return q.rejected }

// Peak returns the high-water mark of occupancy.
func (q *TokenQueue) Peak() int { return q.peak }

// TakeWindowPeak returns the occupancy high-water mark since the
// previous call and rearms it at the current occupancy (so a queue that
// stays full across a sampling window keeps reporting its depth).
func (q *TokenQueue) TakeWindowPeak() int {
	p := q.windowPeak
	q.windowPeak = q.inUse
	return p
}
