package sim

import (
	"testing"
	"testing/quick"
)

func TestServerIdleStartsImmediately(t *testing.T) {
	var s Server
	if got := s.Reserve(100, 8); got != 100 {
		t.Fatalf("Reserve on idle server = %d, want 100", got)
	}
	if s.NextFree() != 108 {
		t.Fatalf("NextFree = %d, want 108", s.NextFree())
	}
}

func TestServerQueuesFIFO(t *testing.T) {
	var s Server
	a := s.Reserve(10, 5) // 10..15
	b := s.Reserve(10, 5) // 15..20
	c := s.Reserve(12, 5) // 20..25
	if a != 10 || b != 15 || c != 20 {
		t.Fatalf("starts = %d,%d,%d, want 10,15,20", a, b, c)
	}
	if s.WaitedCycles() != (15-10)+(20-12) {
		t.Fatalf("WaitedCycles = %d, want 13", s.WaitedCycles())
	}
	if s.BusyCycles() != 15 {
		t.Fatalf("BusyCycles = %d, want 15", s.BusyCycles())
	}
	if s.Reservations() != 3 {
		t.Fatalf("Reservations = %d, want 3", s.Reservations())
	}
}

func TestServerIdleGap(t *testing.T) {
	var s Server
	s.Reserve(0, 4)
	if got := s.Reserve(100, 4); got != 100 {
		t.Fatalf("Reserve after idle gap = %d, want 100", got)
	}
}

func TestServerUtilization(t *testing.T) {
	var s Server
	s.Reserve(0, 25)
	s.Reserve(50, 25)
	if got := s.Utilization(100); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

func TestServerNonPositiveOccupancyPanics(t *testing.T) {
	var s Server
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve(_, 0) did not panic")
		}
	}()
	s.Reserve(0, 0)
}

// Property: service periods booked on a Server never overlap and starts
// never precede request times.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct {
		Gap uint8
		Occ uint8
	}) bool {
		var s Server
		now := Time(0)
		lastEnd := Time(0)
		for _, r := range reqs {
			now += Time(r.Gap)
			occ := Time(r.Occ%32) + 1
			start := s.Reserve(now, occ)
			if start < now || start < lastEnd {
				return false
			}
			lastEnd = start + occ
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiServerParallelism(t *testing.T) {
	m := NewMultiServer(2)
	a := m.Reserve(0, 10)
	b := m.Reserve(0, 10)
	c := m.Reserve(0, 10)
	if a != 0 || b != 0 {
		t.Fatalf("two units should start both at 0: got %d, %d", a, b)
	}
	if c != 10 {
		t.Fatalf("third reservation = %d, want 10", c)
	}
	if m.Units() != 2 {
		t.Fatalf("Units = %d, want 2", m.Units())
	}
}

func TestMultiServerPicksEarliestUnit(t *testing.T) {
	m := NewMultiServer(2)
	m.Reserve(0, 100) // unit 0 busy to 100
	m.Reserve(0, 10)  // unit 1 busy to 10
	if got := m.Reserve(20, 5); got != 20 {
		t.Fatalf("Reserve should use the idle unit: got %d, want 20", got)
	}
}

func TestMultiServerInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMultiServer(0) did not panic")
		}
	}()
	NewMultiServer(0)
}

// Property: a MultiServer with k units never has more than k overlapping
// service periods.
func TestMultiServerConcurrencyBound(t *testing.T) {
	f := func(occs []uint8, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		m := NewMultiServer(k)
		type span struct{ start, end Time }
		var spans []span
		for i, o := range occs {
			occ := Time(o%16) + 1
			now := Time(i) // staggered arrivals
			start := m.Reserve(now, occ)
			spans = append(spans, span{start, start + occ})
		}
		// At any instant (checked at every span start, where concurrency
		// is maximal) at most k spans are active.
		for _, s := range spans {
			active := 0
			for _, u := range spans {
				if u.start <= s.start && s.start < u.end {
					active++
				}
			}
			if active > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenQueueBasics(t *testing.T) {
	q := NewTokenQueue(2)
	if !q.TryAcquire() || !q.TryAcquire() {
		t.Fatal("acquire on non-full queue failed")
	}
	if q.TryAcquire() {
		t.Fatal("acquire on full queue succeeded")
	}
	if !q.Full() {
		t.Fatal("Full = false on full queue")
	}
	q.Release()
	if !q.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	if q.Acquired() != 3 || q.Rejected() != 1 || q.Peak() != 2 {
		t.Fatalf("stats = %d/%d/%d, want 3/1/2", q.Acquired(), q.Rejected(), q.Peak())
	}
	if q.Capacity() != 2 {
		t.Fatalf("Capacity = %d, want 2", q.Capacity())
	}
}

func TestTokenQueueReleaseEmptyPanics(t *testing.T) {
	q := NewTokenQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release on empty queue did not panic")
		}
	}()
	q.Release()
}

func TestTokenQueueInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTokenQueue(0) did not panic")
		}
	}()
	NewTokenQueue(0)
}

// Property: occupancy always stays within [0, capacity].
func TestTokenQueueOccupancyBounds(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		q := NewTokenQueue(capacity)
		for _, acquire := range ops {
			if acquire {
				q.TryAcquire()
			} else if q.InUse() > 0 {
				q.Release()
			}
			if q.InUse() < 0 || q.InUse() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
