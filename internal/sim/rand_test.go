package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(11)
	const mean = 20.0
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(mean)
	}
	got := float64(sum) / n
	if got < mean*0.9 || got > mean*1.1 {
		t.Fatalf("sample mean %.2f not within 10%% of %v", got, mean)
	}
}

func TestGeometricZeroMean(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Geometric(0) != 0 {
			t.Fatal("Geometric(0) != 0")
		}
	}
}

func TestGeometricNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, meanRaw uint16) bool {
		r := NewRand(seed)
		mean := float64(meanRaw) / 16
		for i := 0; i < 50; i++ {
			if r.Geometric(mean) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(4, 0)
	r := NewRand(5)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("rank %d frequency %.3f, want ~0.25", i, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := NewRand(6)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] < counts[50]*5 {
		t.Fatalf("rank 0 (%d) not much hotter than rank 50 (%d)", counts[0], counts[50])
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		z := NewZipf(n, 0.8)
		if z.N() != n {
			return false
		}
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := z.Sample(r)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, ...) did not panic")
		}
	}()
	NewZipf(0, 1)
}
