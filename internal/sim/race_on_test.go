//go:build race

package sim

// raceEnabled gates allocation-count assertions; see race_off_test.go.
const raceEnabled = true
