package sim

import "testing"

type poolNode struct {
	id    int
	ready bool
}

func TestPoolGetPutReuse(t *testing.T) {
	built := 0
	p := NewPool(func() *poolNode { built++; return &poolNode{id: built} })
	a := p.Get()
	if built != 1 || a.id != 1 {
		t.Fatalf("first Get: built=%d id=%d, want 1/1", built, a.id)
	}
	a.ready = true
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("Get did not recycle the Put node")
	}
	if !b.ready {
		t.Fatal("Pool zeroed the recycled node; callers own field resets")
	}
	if built != 1 {
		t.Fatalf("constructor ran %d times, want 1", built)
	}
}

func TestPoolPrime(t *testing.T) {
	built := 0
	p := NewPool(func() *poolNode { built++; return &poolNode{} })
	p.Prime(8)
	if built != 8 || p.FreeLen() != 8 {
		t.Fatalf("Prime(8): built=%d free=%d, want 8/8", built, p.FreeLen())
	}
	p.Prime(4) // never shrinks
	if p.FreeLen() != 8 {
		t.Fatalf("Prime(4) shrank the free list to %d", p.FreeLen())
	}
	for i := 0; i < 8; i++ {
		p.Get()
	}
	if built != 8 {
		t.Fatalf("Get after Prime constructed %d extra nodes", built-8)
	}
}

func TestPoolNilConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(nil) did not panic")
		}
	}()
	NewPool[poolNode](nil)
}

func TestPoolSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	p := NewPool(func() *poolNode { return &poolNode{} })
	p.Prime(4)
	avg := testing.AllocsPerRun(1000, func() {
		a, b := p.Get(), p.Get()
		p.Put(a)
		p.Put(b)
	})
	if avg != 0 {
		t.Fatalf("primed Get/Put allocates %.1f objects per cycle, want 0", avg)
	}
}
