package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (xorshift64*), used by workload generators and randomized policies.
// math/rand would also do, but a self-contained generator guarantees the
// stream never changes across Go releases, keeping experiment outputs
// reproducible bit-for-bit.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped, since
// xorshift has a zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Rand.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric returns a sample from a geometric distribution over
// {0, 1, 2, ...} with the given mean. A non-positive mean returns zero.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	u := 1 - r.Float64() // in (0, 1]
	n := math.Log(u) / math.Log(1-p)
	if n < 0 {
		return 0
	}
	if n > 1<<30 {
		return 1 << 30
	}
	return int(n)
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta using a precomputed cumulative table. Build one with
// NewZipf; sampling is O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf CDF over n items with exponent theta
// (theta=0 is uniform). n must be positive.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N) using r.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
