package sim

// Pool is a LIFO free list of reusable objects, the companion to the
// engine's (Handler, EventData) scheduling form: per-event or
// per-transaction state lives in pooled nodes, so the steady-state hot
// path allocates nothing. Get returns a recycled object when one is
// available and otherwise invokes the constructor; Put recycles.
//
// Objects come back from Get exactly as Put left them — the Pool never
// zeroes. Callers reset the fields they use, which also lets them keep
// expensive once-per-node state (pre-bound callbacks, slice capacity)
// alive across reuses. Pools are not safe for concurrent use; each
// simulated system owns its own.
type Pool[T any] struct {
	newFn func() *T
	free  []*T
}

// NewPool returns an empty pool whose Get falls back to newFn.
func NewPool[T any](newFn func() *T) *Pool[T] {
	if newFn == nil {
		panic("sim: NewPool with nil constructor")
	}
	return &Pool[T]{newFn: newFn}
}

// Get returns a recycled object, or a newly constructed one when the
// free list is empty.
func (p *Pool[T]) Get() *T {
	if n := len(p.free) - 1; n >= 0 {
		x := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return x
	}
	return p.newFn()
}

// Put returns x to the free list for reuse.
func (p *Pool[T]) Put(x *T) { p.free = append(p.free, x) }

// Prime grows the free list to at least n constructed objects, so a
// run's warm-up does not allocate pool nodes mid-simulation.
func (p *Pool[T]) Prime(n int) {
	if n > cap(p.free) {
		grown := make([]*T, len(p.free), n)
		copy(grown, p.free)
		p.free = grown
	}
	for len(p.free) < n {
		p.free = append(p.free, p.newFn())
	}
}

// FreeLen reports the current free-list length (tests, diagnostics).
func (p *Pool[T]) FreeLen() int { return len(p.free) }
