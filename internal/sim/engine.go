// Package sim provides a minimal discrete-event simulation engine and a
// small set of queued-resource models (single servers, multi-servers and
// finite token queues) used by every timed component in the simulator.
//
// Time is measured in integer core cycles. Events scheduled for the same
// cycle fire in FIFO order of scheduling, which keeps simulations
// deterministic for a fixed input.
//
// The engine's hot path is allocation-free in steady state: the pending
// set is an inlined 4-ary min-heap specialized to the event record (no
// container/heap interface boxing), and the (Handler, EventData) event
// form lets components schedule work through handlers bound once at
// construction instead of allocating a closure per event. The classic
// closure form (Schedule/At with a func()) remains available for cold
// paths and tests.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in core clock cycles.
type Time int64

// Forever is a time later than any reachable simulation time.
const Forever Time = math.MaxInt64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// Handler is an event callback that receives the EventData it was
// scheduled with. Components bind their handlers once (typically as
// struct fields at construction) and pass per-event state through
// EventData, so scheduling allocates nothing.
type Handler func(d EventData)

// EventData is the payload carried by a scheduled event. The fields are
// generic slots — a component pointer, a cache-line key, an auxiliary
// integer, a discriminator and a flag — that cover every scheduling site
// in the simulator without per-event heap state. Ptr holds pointer-shaped
// values (pointers, funcs, maps); storing those in an interface does not
// allocate.
type EventData struct {
	Ptr  any
	Key  uint64
	Aux  int64
	Kind int8
	Flag bool
}

// scheduledEvent is one pending queue entry. Events are stored by value
// in the heap; nothing is boxed.
type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-cycle events
	h   Handler
	d   EventData
}

// before orders events by (time, scheduling sequence) — the total order
// every queue implementation must reproduce exactly.
func (a *scheduledEvent) before(b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// runClosure adapts the closure event form onto the handler form.
func runClosure(d EventData) { d.Ptr.(Event)() }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  []scheduledEvent // 4-ary min-heap ordered by before()
	stopped bool
	fired   uint64

	// tick, when non-nil, observes every event's timestamp just before
	// its handler runs (the metrics probe's window clock). Observation
	// only: it must not schedule events or mutate simulation state.
	tick func(Time)
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetTick installs fn as the per-event time observer (nil uninstalls
// it). fn sees each event's timestamp after Now has advanced to it and
// before the event's handler executes, so a sampler driven by it reads
// the state the simulation had strictly before the observed cycle.
func (e *Engine) SetTick(fn func(Time)) { e.tick = fn }

// Grow pre-sizes the pending-event queue to hold at least n events
// without reallocating, avoiding growth copies mid-run.
func (e *Engine) Grow(n int) {
	if n <= cap(e.events) {
		return
	}
	grown := make([]scheduledEvent, len(e.events), n)
	copy(grown, e.events)
	e.events = grown
}

// Schedule runs fn after delay cycles. A negative delay panics: the past
// is immutable.
func (e *Engine) Schedule(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %d cycles in the past", -delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle t, which must not precede Now.
func (e *Engine) At(t Time, fn Event) {
	if fn == nil {
		panic("sim: nil event")
	}
	e.AtCall(t, runClosure, EventData{Ptr: fn})
}

// ScheduleCall runs h with d after delay cycles. A negative delay
// panics: the past is immutable.
func (e *Engine) ScheduleCall(delay Time, h Handler, d EventData) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %d cycles in the past", -delay))
	}
	e.AtCall(e.now+delay, h, d)
}

// AtCall runs h with d at the absolute cycle t, which must not precede
// Now. This is the allocation-free scheduling primitive.
func (e *Engine) AtCall(t Time, h Handler, d EventData) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) before now (%d)", t, e.now))
	}
	if h == nil {
		panic("sim: nil event handler")
	}
	e.push(scheduledEvent{at: t, seq: e.seq, h: h, d: d})
	e.seq++
}

// Pending reports the number of events waiting to fire. The event whose
// handler is currently executing has already been popped, so a handler
// that schedules nothing observes Pending() == 0 when it is the last
// event in the queue — Pending counts the future, never the present.
func (e *Engine) Pending() int { return len(e.events) }

// NextTime returns the timestamp of the earliest pending event, or
// Forever when the queue is empty. It never fires or reorders anything;
// coordinators use it to bound how far a wheel may safely run.
func (e *Engine) NextTime() Time {
	if len(e.events) == 0 {
		return Forever
	}
	return e.events[0].at
}

// AdvanceTo moves the clock forward to t without firing events. t must
// not precede Now and must not skip over a pending event — the past
// stays immutable and no event may be jumped. The sharded coordinator
// uses it to keep parked shard wheels in step with the global wheel, so
// handlers invoked synchronously from global events (waiter wake-ups)
// read the correct Now.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) before now (%d)", t, e.now))
	}
	if len(e.events) > 0 && e.events[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) would skip event at %d", t, e.events[0].at))
	}
	e.now = t
}

// Stop makes the current Run, RunUntil or Step-driven loop observe the
// stop after the currently executing event's handler returns. Calling
// it from inside an event handler is the intended use (a watchdog or
// deadline event halting its own run); calling it between runs is a
// no-op because Run and RunUntil both clear the flag on entry. Stop
// never discards events: everything still pending (including events the
// stopping handler itself scheduled) remains queued and a subsequent
// Run/RunUntil resumes exactly where the stopped one left off.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and reports whether one
// was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.fired++
	if e.tick != nil {
		e.tick(ev.at)
	}
	ev.h(ev.d)
	return true
}

// Run executes events until none remain or Stop is called. It returns the
// final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps not exceeding deadline. Events
// scheduled beyond the deadline remain pending. It returns the final
// simulation time, which never exceeds deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now > deadline {
		panic("sim: time ran past deadline") // unreachable: guarded above
	}
	return e.now
}

// --- 4-ary min-heap, specialized to scheduledEvent ---
//
// A 4-ary heap halves tree depth versus the binary container/heap,
// trading a wider (cache-line-friendly) child scan per level for fewer
// levels, and its monomorphic sift routines avoid the Less/Swap/Pop
// interface dispatch and the per-Pop any boxing of container/heap.

// push appends ev and restores the heap invariant by sifting up.
func (e *Engine) push(ev scheduledEvent) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the minimum event.
func (e *Engine) pop() scheduledEvent {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = scheduledEvent{} // release the Ptr reference for GC
	h = h[:n]
	e.events = h
	if n == 0 {
		return top
	}
	// Sift last down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}
