// Package sim provides a minimal discrete-event simulation engine and a
// small set of queued-resource models (single servers, multi-servers and
// finite token queues) used by every timed component in the simulator.
//
// Time is measured in integer core cycles. Events scheduled for the same
// cycle fire in FIFO order of scheduling, which keeps simulations
// deterministic for a fixed input.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in core clock cycles.
type Time int64

// Forever is a time later than any reachable simulation time.
const Forever Time = math.MaxInt64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-cycle events
	fn  Event
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn after delay cycles. A negative delay panics: the past
// is immutable.
func (e *Engine) Schedule(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %d cycles in the past", -delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle t, which must not precede Now.
func (e *Engine) At(t Time, fn Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) before now (%d)", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	heap.Push(&e.events, scheduledEvent{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and reports whether one
// was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(scheduledEvent)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called. It returns the
// final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps not exceeding deadline. Events
// scheduled beyond the deadline remain pending. It returns the final
// simulation time, which never exceeds deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now > deadline {
		panic("sim: time ran past deadline") // unreachable: guarded above
	}
	return e.now
}
