//go:build !race

package sim

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation perturbs allocation behavior, so testing.AllocsPerRun
// checks only run in non-race builds.
const raceEnabled = false
