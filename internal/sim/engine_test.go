package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("Run of empty engine = %d, want 0", got)
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of FIFO order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(3, func() {
		hits = append(hits, e.Now())
		e.Schedule(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 3 || hits[1] != 7 {
		t.Fatalf("hits = %v, want [3 7]", hits)
	}
}

func TestEngineScheduleZeroDelayDuringEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(0, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event scheduled from an event did not run")
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEngineAtBeforeNowPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At before now did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("events after Stop: count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{2, 4, 6, 8} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired = %v, want [2 4]", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after full Run fired = %v, want 4 events", fired)
	}
}

func TestEngineMonotonicTime(t *testing.T) {
	// Property: regardless of the (delay) sequence scheduled, observed
	// firing times never decrease.
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}
