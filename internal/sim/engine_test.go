package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("Run of empty engine = %d, want 0", got)
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of FIFO order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(3, func() {
		hits = append(hits, e.Now())
		e.Schedule(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 3 || hits[1] != 7 {
		t.Fatalf("hits = %v, want [3 7]", hits)
	}
}

func TestEngineScheduleZeroDelayDuringEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(0, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event scheduled from an event did not run")
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEngineAtBeforeNowPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At before now did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("events after Stop: count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{2, 4, 6, 8} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired = %v, want [2 4]", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after full Run fired = %v, want 4 events", fired)
	}
}

func TestEngineMonotonicTime(t *testing.T) {
	// Property: regardless of the (delay) sequence scheduled, observed
	// firing times never decrease.
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEngineHandlerForm(t *testing.T) {
	e := NewEngine()
	var got []EventData
	h := func(d EventData) { got = append(got, d) }
	e.ScheduleCall(4, h, EventData{Key: 2})
	e.AtCall(1, h, EventData{Key: 1, Kind: 7, Flag: true, Aux: -3})
	e.Run()
	if len(got) != 2 || got[0].Key != 1 || got[1].Key != 2 {
		t.Fatalf("handler events = %+v, want Key order [1 2]", got)
	}
	if d := got[0]; d.Kind != 7 || !d.Flag || d.Aux != -3 {
		t.Fatalf("EventData payload not preserved: %+v", d)
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.AtCall(1, nil, EventData{})
}

func TestEngineGrow(t *testing.T) {
	e := NewEngine()
	var sum int64
	h := func(d EventData) { sum += d.Aux }
	e.ScheduleCall(3, h, EventData{Aux: 1})
	e.Grow(4096)
	e.ScheduleCall(1, h, EventData{Aux: 2})
	for i := 0; i < 100; i++ {
		e.ScheduleCall(Time(i%10), h, EventData{Aux: 10})
	}
	e.Run()
	if sum != 1003 {
		t.Fatalf("sum = %d, want 1003 (Grow lost or duplicated events)", sum)
	}
}

// --- Reference queue: the exact pre-rewrite container/heap semantics ---
//
// refEvent/refQueue reimplement the old engine's event queue verbatim —
// container/heap over an (at, seq)-ordered slice — as the ordering
// oracle the specialized 4-ary heap must match event for event.

type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refQueue []refEvent

func (h refQueue) Len() int { return len(h) }
func (h refQueue) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refQueue) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *refQueue) Push(x any)       { *h = append(*h, x.(refEvent)) }
func (h *refQueue) Pop() any         { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func (h *refQueue) popMin() refEvent { return heap.Pop(h).(refEvent) }
func (h *refQueue) add(ev refEvent)  { heap.Push(h, ev) }

// TestEngineMatchesReferenceQueue drives the engine and the reference
// queue with identical randomized schedules — including events that
// schedule further events — and asserts the firing order, firing times,
// Fired() count and final Now() are identical. This is the bit-exact
// determinism contract every experiment golden rests on: same-cycle
// events fire in FIFO scheduling order.
func TestEngineMatchesReferenceQueue(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := refQueue{}
		var refSeq uint64
		nextID := 0

		var engineOrder, refOrder []int
		var engineTimes []Time

		// Some events reschedule children; the child plan is derived
		// deterministically from the parent id so both sides agree.
		children := func(id int) []Time {
			if id%3 != 0 {
				return nil
			}
			return []Time{Time(id % 7), Time(id % 11)}
		}
		var h Handler
		h = func(d EventData) {
			id := int(d.Key)
			engineOrder = append(engineOrder, id)
			engineTimes = append(engineTimes, e.Now())
			for _, delay := range children(id) {
				e.ScheduleCall(delay, h, EventData{Key: uint64(nextID)})
				ref.add(refEvent{at: e.Now() + delay, seq: refSeq, id: nextID})
				refSeq++
				nextID++
			}
		}

		for i := 0; i < 200; i++ {
			delay := Time(rng.Intn(50))
			e.ScheduleCall(delay, h, EventData{Key: uint64(nextID)})
			ref.add(refEvent{at: delay, seq: refSeq, id: nextID})
			refSeq++
			nextID++
		}
		e.Run()

		// Drain the reference queue in its (container/heap) order. The
		// reference's firing times also must match the engine's.
		for i := 0; ref.Len() > 0; i++ {
			ev := ref.popMin()
			refOrder = append(refOrder, ev.id)
			if i < len(engineTimes) && engineTimes[i] != ev.at {
				t.Fatalf("seed %d: event %d fired at %d, reference says %d",
					seed, i, engineTimes[i], ev.at)
			}
		}
		if len(engineOrder) != len(refOrder) {
			t.Fatalf("seed %d: engine fired %d events, reference %d",
				seed, len(engineOrder), len(refOrder))
		}
		for i := range refOrder {
			if engineOrder[i] != refOrder[i] {
				t.Fatalf("seed %d: firing order diverges at event %d: engine %d, reference %d",
					seed, i, engineOrder[i], refOrder[i])
			}
		}
		if e.Fired() != uint64(len(refOrder)) {
			t.Fatalf("seed %d: Fired = %d, want %d", seed, e.Fired(), len(refOrder))
		}
	}
}

// TestEngineSameCycleFIFOProperty: for any batch sizes, events scheduled
// for one cycle from multiple scheduling rounds fire strictly in
// scheduling order.
func TestEngineSameCycleFIFOProperty(t *testing.T) {
	f := func(batches []uint8) bool {
		e := NewEngine()
		var order []int
		h := func(d EventData) { order = append(order, int(d.Key)) }
		id := 0
		for _, b := range batches {
			for j := 0; j < int(b%8); j++ {
				e.ScheduleCall(3, h, EventData{Key: uint64(id)})
				id++
			}
		}
		e.Run()
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return len(order) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineScheduleStepAllocationFree is the hot-path contract: once
// the queue slice has its capacity, ScheduleCall+Step cycles allocate
// nothing — no interface boxing, no closure, no growth.
func TestEngineScheduleStepAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	e := NewEngine()
	e.Grow(64)
	var sink uint64
	h := func(d EventData) { sink += d.Key }
	arg := &sink // a live pointer payload, as real handlers carry
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(1, h, EventData{Ptr: arg, Key: 1})
		e.ScheduleCall(2, h, EventData{Ptr: arg, Key: 2})
		e.Step()
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("ScheduleCall+Step allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestEngineDeepQueueAllocationFree exercises the same contract with a
// standing population of pending events, so both sift directions run.
func TestEngineDeepQueueAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	e := NewEngine()
	e.Grow(4096)
	h := func(d EventData) {}
	for i := 0; i < 1000; i++ {
		e.ScheduleCall(Time(1+i%97), h, EventData{Key: uint64(i)})
	}
	avg := testing.AllocsPerRun(500, func() {
		e.ScheduleCall(Time(1+e.Now()%89), h, EventData{})
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("deep-queue ScheduleCall+Step allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestEngineStopInsideHandlerResumes pins the documented Stop contract
// end to end: a handler stopping its own run discards nothing — not
// even events it scheduled itself — and the next Run resumes exactly
// where the stopped one left off, because Run clears the flag on entry
// (so a stale Stop between runs is a no-op).
func TestEngineStopInsideHandlerResumes(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func() {
		fired = append(fired, e.Now())
		// Schedule more work, then halt: both the pre-existing event at
		// 10 and this fresh one at 7 must survive the stop.
		e.Schedule(2, func() { fired = append(fired, e.Now()) })
		e.Stop()
	})
	e.Schedule(10, func() { fired = append(fired, e.Now()) })

	if at := e.Run(); at != 5 {
		t.Fatalf("stopped Run returned time %d, want 5", at)
	}
	if len(fired) != 1 || e.Pending() != 2 {
		t.Fatalf("after stop: fired %v, pending %d; want [5] and 2 queued", fired, e.Pending())
	}
	if nt := e.NextTime(); nt != 7 {
		t.Fatalf("NextTime after stop = %d, want 7 (handler's own event kept)", nt)
	}

	e.Stop() // between runs: must be a no-op, Run clears it on entry
	e.Run()
	want := []Time{5, 7, 10}
	if len(fired) != 3 || fired[1] != want[1] || fired[2] != want[2] {
		t.Fatalf("resumed run fired %v, want %v", fired, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain, want 0", e.Pending())
	}
	if nt := e.NextTime(); nt != Forever {
		t.Fatalf("NextTime on empty wheel = %d, want Forever", nt)
	}
}

// TestEngineStopInsideRunUntil: the same contract under a deadline.
func TestEngineStopInsideRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(3, func() { count++; e.Stop() })
	e.Schedule(4, func() { count++ })
	e.Schedule(9, func() { count++ })
	if at := e.RunUntil(6); at != 3 {
		t.Fatalf("stopped RunUntil returned %d, want 3", at)
	}
	if count != 1 || e.Pending() != 2 {
		t.Fatalf("after stop: count %d pending %d, want 1 and 2", count, e.Pending())
	}
	if at := e.RunUntil(6); at != 4 || count != 2 {
		t.Fatalf("resume ran to %d with count %d, want 4 and 2 (event at 9 past deadline)", at, count)
	}
}

// TestEngineAdvanceTo pins the clock-only advance used by the sharded
// coordinator: time moves without firing, never backward, and never
// over a pending event.
func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func() { fired = true })
	e.AdvanceTo(7)
	if e.Now() != 7 || fired {
		t.Fatalf("AdvanceTo(7): now %d fired %v, want 7 and false", e.Now(), fired)
	}
	e.AdvanceTo(7) // idempotent at the same instant
	e.AdvanceTo(10)
	if fired {
		t.Fatal("AdvanceTo(10) fired the event at 10; it must only move the clock")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("backward AdvanceTo", func() { e.AdvanceTo(9) })
	mustPanic("event-skipping AdvanceTo", func() { e.AdvanceTo(11) })
	e.Run()
	if !fired || e.Now() != 10 {
		t.Fatalf("drain after AdvanceTo: fired %v now %d, want true and 10", fired, e.Now())
	}
}
