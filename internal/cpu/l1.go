package cpu

import (
	"math/bits"

	"cmpcache/internal/cache"
	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// L1Filter turns a raw per-thread reference stream into the L2-traffic
// stream the simulator consumes, mirroring how the paper's traces were
// produced ("we have L2 cache traffic traces captured on a real SMP
// machine"): references that hit in a private Harvard L1 are absorbed,
// with their compute gaps folded into the next emitted record.
//
// The data cache is modeled write-through with a gathering store buffer:
// a store to a line resident in the L1 is absorbed (gathered into an
// existing L2 copy), while a store missing the L1 is emitted as L2
// store traffic without allocating an L1 line (no-write-allocate).
type L1Filter struct {
	dcache    *cache.Cache
	icache    *cache.Cache
	lineShift uint

	refs     uint64
	emitted  uint64
	absorbed uint64
}

// l1Valid is the single state used for filter lines (presence only).
const l1Valid int8 = 1

// NewL1Filter builds a filter with cfg's L1 geometry.
func NewL1Filter(cfg *config.Config) *L1Filter {
	dLines := cfg.L1KB * 1024 / cfg.LineBytes
	iLines := cfg.L1IKB * 1024 / cfg.LineBytes
	return &L1Filter{
		dcache:    cache.New(dLines/cfg.L1Assoc, cfg.L1Assoc),
		icache:    cache.New(iLines/cfg.L1IAssoc, cfg.L1IAssoc),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}
}

// Filter processes one thread's raw stream and returns the records that
// miss the L1. Each L1 hit's gap (plus a one-cycle hit cost) accumulates
// into the following emitted record so issue density is preserved.
func (f *L1Filter) Filter(recs []trace.Record) []trace.Record {
	out := make([]trace.Record, 0, len(recs)/2)
	var pendingGap uint64
	for _, r := range recs {
		f.refs++
		key := r.Addr >> f.lineShift
		var miss bool
		switch r.Op {
		case trace.Ifetch:
			miss = f.icache.LookupTouch(key) == nil
			if miss {
				f.icache.Insert(key, l1Valid, 0, true)
			}
		case trace.Load:
			miss = f.dcache.LookupTouch(key) == nil
			if miss {
				f.dcache.Insert(key, l1Valid, 0, true)
			}
		case trace.Store:
			// Write-through, no-write-allocate: emit only on miss.
			miss = f.dcache.LookupTouch(key) == nil
		default:
			miss = true
		}
		if !miss {
			f.absorbed++
			pendingGap += uint64(r.Gap) + 1 // +1: L1 hit occupies a cycle
			continue
		}
		f.emitted++
		r.Gap = saturate32(uint64(r.Gap) + pendingGap)
		pendingGap = 0
		out = append(out, r)
	}
	return out
}

func saturate32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

// Refs returns raw references seen.
func (f *L1Filter) Refs() uint64 { return f.refs }

// Emitted returns records passed through to the L2 stream.
func (f *L1Filter) Emitted() uint64 { return f.emitted }

// Absorbed returns references the L1 filtered out.
func (f *L1Filter) Absorbed() uint64 { return f.absorbed }

// HitRate returns the filter's absorption rate.
func (f *L1Filter) HitRate() float64 {
	if f.refs == 0 {
		return 0
	}
	return float64(f.absorbed) / float64(f.refs)
}

// FilterTrace applies per-thread L1 filters to a whole trace, returning
// the L2-traffic trace. Each thread gets private L1 state, matching the
// per-core Harvard caches of Figure 1 (SMT siblings sharing an L1 is a
// second-order effect we fold into per-thread filtering).
func FilterTrace(cfg *config.Config, t *trace.Trace) *trace.Trace {
	streams := t.PerThread()
	out := &trace.Trace{Name: t.Name, Threads: t.Threads}
	for _, recs := range streams {
		f := NewL1Filter(cfg)
		out.Records = append(out.Records, f.Filter(recs)...)
	}
	out.SortByThread()
	return out
}
