package cpu

import (
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/sim"
	"cmpcache/internal/trace"
)

// instantIssue completes every access after a fixed latency.
func instantIssue(e *sim.Engine, latency config.Cycles) (IssueFunc, *[]uint64) {
	var keys []uint64
	return func(tid int, op trace.Op, key uint64, done func(config.Cycles)) {
		keys = append(keys, key)
		at := e.Now() + latency
		e.At(at, func() { done(at) })
	}, &keys
}

func mkStream(tid int, n int, gap uint32) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Thread: uint16(tid), Op: trace.Load, Addr: uint64(i) * 128, Gap: gap}
	}
	return recs
}

func TestSerialIssueWithGaps(t *testing.T) {
	e := sim.NewEngine()
	cfg := config.Default()
	cfg.MaxOutstanding = 1
	issue, keys := instantIssue(e, 10)
	c := New(e, &cfg, [][]trace.Record{mkStream(0, 3, 5)}, issue)
	c.Start()
	e.Run()
	if !c.Done() {
		t.Fatal("not done after run")
	}
	// With max=1 and latency 10 > gap 5: issues at 5, then next issue
	// waits for completion at 15, but gap eligibility (15+... lastIssue
	// 15? issue2 at max(5+5,15)=15, completes 25, issue3 at 25.
	if got := c.FinishTime(); got != 35 {
		t.Fatalf("FinishTime = %d, want 35", got)
	}
	if c.Issued() != 3 || c.Completed() != 3 {
		t.Fatalf("issued/completed = %d/%d", c.Issued(), c.Completed())
	}
	if len(*keys) != 3 {
		t.Fatalf("keys = %v", *keys)
	}
	// Addresses are line-shifted.
	if (*keys)[1] != 1 {
		t.Fatalf("key[1] = %d, want 1 (128B lines)", (*keys)[1])
	}
}

func TestOutstandingLimitOverlapsMisses(t *testing.T) {
	// With latency 100 and gap 0, max outstanding misses bounds overlap:
	// total time for N refs ~= ceil(N/max)*100.
	run := func(max int) config.Cycles {
		e := sim.NewEngine()
		cfg := config.Default()
		cfg.MaxOutstanding = max
		issue, _ := instantIssue(e, 100)
		c := New(e, &cfg, [][]trace.Record{mkStream(0, 12, 0)}, issue)
		c.Start()
		e.Run()
		return c.FinishTime()
	}
	t1, t2, t6 := run(1), run(2), run(6)
	if t1 != 1200 || t2 != 600 || t6 != 200 {
		t.Fatalf("finish times = %d/%d/%d, want 1200/600/200", t1, t2, t6)
	}
}

func TestMaxOutstandingNeverExceeded(t *testing.T) {
	e := sim.NewEngine()
	cfg := config.Default()
	cfg.MaxOutstanding = 3
	var c *Complex
	maxSeen := 0
	issue := func(tid int, op trace.Op, key uint64, done func(config.Cycles)) {
		if c.Outstanding() > maxSeen {
			maxSeen = c.Outstanding()
		}
		at := e.Now() + 50
		e.At(at, func() { done(at) })
	}
	c = New(e, &cfg, [][]trace.Record{mkStream(0, 40, 1)}, issue)
	c.Start()
	e.Run()
	if maxSeen > 3 {
		t.Fatalf("outstanding reached %d, limit 3", maxSeen)
	}
	if !c.Done() {
		t.Fatal("not done")
	}
}

func TestMultipleThreadsIndependent(t *testing.T) {
	e := sim.NewEngine()
	cfg := config.Default()
	cfg.MaxOutstanding = 1
	issue, _ := instantIssue(e, 10)
	streams := [][]trace.Record{mkStream(0, 5, 0), mkStream(1, 5, 0), nil}
	c := New(e, &cfg, streams, issue)
	c.Start()
	e.Run()
	if !c.Done() {
		t.Fatal("not done")
	}
	// Each thread: 5 serial 10-cycle accesses = 50.
	if c.FinishTime() != 50 {
		t.Fatalf("FinishTime = %d, want 50 (threads overlap)", c.FinishTime())
	}
	if c.Issued() != 10 {
		t.Fatalf("Issued = %d, want 10", c.Issued())
	}
}

func TestEmptyStreamsDoneImmediately(t *testing.T) {
	e := sim.NewEngine()
	cfg := config.Default()
	issue, _ := instantIssue(e, 1)
	c := New(e, &cfg, [][]trace.Record{nil, nil}, issue)
	c.Start()
	e.Run()
	if !c.Done() || c.FinishTime() != 0 {
		t.Fatalf("done=%v finish=%d", c.Done(), c.FinishTime())
	}
}

func TestNilIssuePanics(t *testing.T) {
	cfg := config.Default()
	defer func() {
		if recover() == nil {
			t.Fatal("nil issue accepted")
		}
	}()
	New(sim.NewEngine(), &cfg, nil, nil)
}

func TestL1FilterAbsorbsHits(t *testing.T) {
	cfg := config.Default()
	f := NewL1Filter(&cfg)
	recs := []trace.Record{
		{Op: trace.Load, Addr: 0x1000, Gap: 5}, // miss
		{Op: trace.Load, Addr: 0x1008, Gap: 3}, // same line: hit
		{Op: trace.Load, Addr: 0x1000, Gap: 2}, // hit
		{Op: trace.Load, Addr: 0x2000, Gap: 4}, // miss
	}
	out := f.Filter(recs)
	if len(out) != 2 {
		t.Fatalf("emitted %d records, want 2", len(out))
	}
	// Gaps of the two hits (3+1, 2+1) fold into the second miss.
	if out[1].Gap != 4+3+1+2+1 {
		t.Fatalf("accumulated gap = %d, want 11", out[1].Gap)
	}
	if f.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", f.HitRate())
	}
}

func TestL1FilterStoreNoAllocate(t *testing.T) {
	cfg := config.Default()
	f := NewL1Filter(&cfg)
	recs := []trace.Record{
		{Op: trace.Store, Addr: 0x1000}, // miss: emitted, not allocated
		{Op: trace.Store, Addr: 0x1000}, // still a miss: emitted again
		{Op: trace.Load, Addr: 0x1000},  // load miss: allocates
		{Op: trace.Store, Addr: 0x1000}, // now resident: gathered
	}
	out := f.Filter(recs)
	if len(out) != 3 {
		t.Fatalf("emitted %d, want 3 (store-no-allocate then gather)", len(out))
	}
}

func TestL1FilterSeparatesIAndD(t *testing.T) {
	cfg := config.Default()
	f := NewL1Filter(&cfg)
	recs := []trace.Record{
		{Op: trace.Load, Addr: 0x4000},   // D miss
		{Op: trace.Ifetch, Addr: 0x4000}, // same line, I stream: still a miss
	}
	if out := f.Filter(recs); len(out) != 2 {
		t.Fatalf("emitted %d, want 2 (Harvard split)", len(out))
	}
}

func TestL1FilterCapacityEviction(t *testing.T) {
	cfg := config.Default()
	f := NewL1Filter(&cfg)
	lines := cfg.L1KB * 1024 / cfg.LineBytes
	var recs []trace.Record
	// Two passes over 2x the L1 capacity: second pass must still miss.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 2*lines; i++ {
			recs = append(recs, trace.Record{Op: trace.Load, Addr: uint64(i) * 128})
		}
	}
	out := f.Filter(recs)
	if len(out) != len(recs) {
		t.Fatalf("emitted %d of %d, want all (working set 2x L1)", len(out), len(recs))
	}
}

func TestFilterTrace(t *testing.T) {
	cfg := config.Default()
	tr := &trace.Trace{Name: "x", Threads: 2, Records: []trace.Record{
		{Thread: 0, Op: trace.Load, Addr: 0x1000},
		{Thread: 1, Op: trace.Load, Addr: 0x1000}, // private L1s: also a miss
		{Thread: 0, Op: trace.Load, Addr: 0x1000}, // hit in thread 0's L1
	}}
	out := FilterTrace(&cfg, tr)
	if len(out.Records) != 2 {
		t.Fatalf("filtered records = %d, want 2", len(out.Records))
	}
	if out.Threads != 2 || out.Name != "x" {
		t.Fatal("metadata lost")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
