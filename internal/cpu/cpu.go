// Package cpu models the processor front end of the simulated CMP: the
// sixteen SMT hardware threads that replay L2-traffic traces against the
// cache hierarchy, each limited to a configurable number of outstanding
// misses — the memory-pressure parameter the paper sweeps from one to
// six in every figure ("One parameter we vary is the maximum number of
// outstanding read and write misses per thread").
//
// A thread issues its references in order, separated by the per-record
// compute gaps captured in the trace. An access occupies one of the
// thread's outstanding-miss slots from issue until the hierarchy
// reports completion; when all slots are busy the thread stalls. This
// reproduces the paper's load/store-queue abstraction without modeling
// instruction execution.
package cpu

import (
	"fmt"
	"math/bits"

	"cmpcache/internal/config"
	"cmpcache/internal/sim"
	"cmpcache/internal/trace"
)

// IssueFunc submits one reference to the memory hierarchy. key is the
// line address (byte address pre-shifted by the line size); done must be
// called exactly once, at the simulation time the access completes.
type IssueFunc func(tid int, op trace.Op, key uint64, done func(config.Cycles))

// thread is one SMT hardware context. recs is the thread's current
// window into its reference stream: the whole stream on the in-memory
// path (src nil), or one chunk at a time on the streaming path, where
// draining recs refills it from src until the stream is exhausted.
type thread struct {
	id          int
	recs        []trace.Record
	idx         int
	src         trace.Stream // nil on the in-memory path
	exhausted   bool         // src returned its final chunk
	outstanding int
	lastIssue   config.Cycles
	wakePending bool
	done        bool

	// doneFn is the thread's completion callback, bound once at
	// construction so issuing a reference allocates nothing.
	doneFn func(config.Cycles)

	issued    uint64
	completed uint64
	finish    config.Cycles
}

// Complex is the full set of hardware threads bound to an engine and an
// issue path.
type Complex struct {
	engine    *sim.Engine
	issue     IssueFunc
	threads   []*thread
	lineShift uint
	max       int
	active    int
	finish    config.Cycles

	// hTryIssue is the wake/park event handler (EventData.Ptr is the
	// thread), bound once so per-cycle scheduling allocates nothing.
	hTryIssue sim.Handler
}

// New builds a thread complex. streams[i] is thread i's reference
// stream (use trace.Trace.PerThread); cfg supplies the line size and the
// outstanding-miss limit.
func New(engine *sim.Engine, cfg *config.Config, streams [][]trace.Record, issue IssueFunc) *Complex {
	if issue == nil {
		panic("cpu: nil issue function")
	}
	c := &Complex{
		engine:    engine,
		issue:     issue,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		max:       cfg.MaxOutstanding,
	}
	c.hTryIssue = func(d sim.EventData) { c.tryIssue(d.Ptr.(*thread)) }
	for i, recs := range streams {
		th := &thread{id: i, recs: recs}
		th.doneFn = func(at config.Cycles) { c.complete(th, at) }
		if len(recs) == 0 {
			th.done = true
		} else {
			c.active++
		}
		c.threads = append(c.threads, th)
	}
	return c
}

// NewStreams builds a thread complex fed by chunked per-thread streams
// (trace.Source.Stream) instead of materialized record slices; nil
// entries are idle threads. Each thread holds one chunk at a time, so
// replay memory is bounded by the source's chunk size rather than the
// trace length. The first chunk of every stream is fetched eagerly so
// open/decode errors surface at construction; a mid-run stream error
// panics — the simulation cannot meaningfully continue on a truncated
// stream, and the sweep worker's recover converts the panic into a
// per-job error.
func NewStreams(engine *sim.Engine, cfg *config.Config, streams []trace.Stream, issue IssueFunc) (*Complex, error) {
	if issue == nil {
		panic("cpu: nil issue function")
	}
	c := &Complex{
		engine:    engine,
		issue:     issue,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		max:       cfg.MaxOutstanding,
	}
	c.hTryIssue = func(d sim.EventData) { c.tryIssue(d.Ptr.(*thread)) }
	for i, src := range streams {
		th := &thread{id: i, src: src}
		th.doneFn = func(at config.Cycles) { c.complete(th, at) }
		if src == nil {
			th.done = true
		} else {
			chunk, err := src.NextChunk()
			if err != nil {
				return nil, fmt.Errorf("cpu: thread %d stream: %w", i, err)
			}
			if len(chunk) == 0 {
				th.exhausted = true
				th.done = true
			} else {
				th.recs = chunk
				c.active++
			}
		}
		c.threads = append(c.threads, th)
	}
	return c, nil
}

// refill advances the thread's stream window to its next chunk,
// reporting whether more records are available.
func (c *Complex) refill(th *thread) bool {
	if th.src == nil || th.exhausted {
		return false
	}
	chunk, err := th.src.NextChunk()
	if err != nil {
		panic(fmt.Sprintf("cpu: thread %d stream: %v", th.id, err))
	}
	if len(chunk) == 0 {
		th.exhausted = true
		return false
	}
	th.recs, th.idx = chunk, 0
	return true
}

// Start schedules each thread's first issue attempt at cycle zero.
func (c *Complex) Start() {
	for _, th := range c.threads {
		if !th.done {
			c.engine.ScheduleCall(0, c.hTryIssue, sim.EventData{Ptr: th})
		}
	}
}

// tryIssue drains as many references as the thread's gap schedule and
// outstanding-miss budget allow, then either parks until the next
// eligible time or waits for a completion to wake it.
func (c *Complex) tryIssue(th *thread) {
	th.wakePending = false
	now := c.engine.Now()
	for th.outstanding < c.max {
		if th.idx == len(th.recs) && !c.refill(th) {
			break
		}
		r := th.recs[th.idx]
		eligible := th.lastIssue + config.Cycles(r.Gap)
		if eligible > now {
			if !th.wakePending {
				th.wakePending = true
				c.engine.AtCall(eligible, c.hTryIssue, sim.EventData{Ptr: th})
			}
			return
		}
		th.idx++
		th.outstanding++
		th.issued++
		th.lastIssue = now
		key := r.Addr >> c.lineShift
		c.issue(th.id, r.Op, key, th.doneFn)
		now = c.engine.Now() // issue may run nested events
	}
	c.checkDone(th, now)
}

// complete returns an outstanding-miss slot and re-attempts issue.
func (c *Complex) complete(th *thread, at config.Cycles) {
	if th.outstanding <= 0 {
		panic("cpu: completion without outstanding access")
	}
	th.outstanding--
	th.completed++
	if at > th.finish {
		th.finish = at
	}
	c.tryIssue(th)
}

func (c *Complex) checkDone(th *thread, now config.Cycles) {
	if th.done || th.idx < len(th.recs) || th.outstanding > 0 {
		return
	}
	if th.src != nil && !th.exhausted {
		// The current chunk drained but the stream has more; the next
		// tryIssue will refill.
		return
	}
	th.done = true
	c.active--
	if th.finish > c.finish {
		c.finish = th.finish
	}
	if now > c.finish {
		c.finish = now
	}
}

// Done reports whether every thread has drained its stream.
func (c *Complex) Done() bool { return c.active == 0 }

// FinishTime returns the cycle the last reference completed (valid once
// Done).
func (c *Complex) FinishTime() config.Cycles { return c.finish }

// Issued returns total references issued across threads.
func (c *Complex) Issued() uint64 {
	var n uint64
	for _, th := range c.threads {
		n += th.issued
	}
	return n
}

// Completed returns total references completed across threads.
func (c *Complex) Completed() uint64 {
	var n uint64
	for _, th := range c.threads {
		n += th.completed
	}
	return n
}

// Outstanding returns the current number of in-flight accesses (test
// and diagnostics hook).
func (c *Complex) Outstanding() int {
	n := 0
	for _, th := range c.threads {
		n += th.outstanding
	}
	return n
}
