package cache

import (
	"testing"
	"testing/quick"
)

const (
	stInvalid int8 = iota
	stShared
	stExclusive
	stModified
)

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ sets, assoc int }{{0, 4}, {3, 4}, {4, 0}, {-8, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.sets, tc.assoc)
				}
			}()
			New(tc.sets, tc.assoc)
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(4, 2)
	if c.Lookup(5) != nil {
		t.Fatal("lookup on empty cache hit")
	}
	c.Insert(5, stShared, 0, true)
	l := c.Lookup(5)
	if l == nil || l.State != stShared || l.Key != 5 {
		t.Fatalf("lookup after insert = %+v", l)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(1, 2) // single set, two ways
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true)
	c.Touch(0) // 0 is now MRU, 1 is LRU
	evicted, did := c.Insert(2, stShared, 0, true)
	if !did || evicted.Key != 1 {
		t.Fatalf("evicted %+v (did=%v), want key 1", evicted, did)
	}
	if !c.Contains(0) || !c.Contains(2) {
		t.Fatal("expected keys 0 and 2 resident")
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := New(1, 4)
	c.Insert(0, stShared, 0, true)
	_, did := c.Insert(1, stShared, 0, true)
	if did {
		t.Fatal("insert evicted despite free ways")
	}
	if c.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0", c.Evictions())
	}
}

func TestInsertAtLRUIsEvictedFirst(t *testing.T) {
	c := New(1, 3)
	c.Insert(10, stShared, 0, true)
	c.Insert(11, stShared, 0, true)
	c.Insert(12, stShared, 0, false) // inserted at LRU
	evicted, did := c.Insert(13, stShared, 0, true)
	if !did || evicted.Key != 12 {
		t.Fatalf("evicted %+v, want the LRU-inserted key 12", evicted)
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := New(1, 2)
	c.Insert(7, stShared, 0, true)
	c.Insert(8, stShared, 0, true)
	evicted, did := c.Insert(7, stModified, 3, true)
	if did {
		t.Fatalf("re-insert evicted %+v", evicted)
	}
	l, _ := c.Peek(7)
	if l.State != stModified || l.Flags != 3 {
		t.Fatalf("line after re-insert = %+v", l)
	}
	if c.CountValid() != 2 {
		t.Fatalf("valid lines = %d, want 2", c.CountValid())
	}
}

func TestSetIsolation(t *testing.T) {
	c := New(4, 1) // direct mapped, 4 sets
	for k := uint64(0); k < 4; k++ {
		if _, did := c.Insert(k, stShared, 0, true); did {
			t.Fatalf("insert of key %d evicted despite distinct sets", k)
		}
	}
	// Key 4 maps to set 0 and must evict key 0 only.
	evicted, did := c.Insert(4, stShared, 0, true)
	if !did || evicted.Key != 0 {
		t.Fatalf("evicted %+v, want key 0", evicted)
	}
	for k := uint64(1); k < 4; k++ {
		if !c.Contains(k) {
			t.Fatalf("key %d lost from its set", k)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1, 2)
	c.Insert(1, stModified, 0, true)
	old, ok := c.Invalidate(1)
	if !ok || old.State != stModified {
		t.Fatalf("invalidate = %+v, %v", old, ok)
	}
	if c.Contains(1) {
		t.Fatal("key still present after invalidate")
	}
	if _, ok := c.Invalidate(1); ok {
		t.Fatal("double invalidate reported success")
	}
	// Freed way should be reused without eviction.
	c.Insert(2, stShared, 0, true)
	if _, did := c.Insert(3, stShared, 0, true); did {
		t.Fatal("insert after invalidate evicted")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true) // 1 MRU, 0 LRU
	h, m := c.Hits(), c.Misses()
	if !c.Contains(0) || c.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains perturbed statistics")
	}
	// 0 must still be the LRU victim.
	if v := c.PeekVictim(2); v.Key != 0 || !v.Valid {
		t.Fatalf("PeekVictim = %+v, want key 0", v)
	}
}

func TestPeekVictimEmptyWay(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, stShared, 0, true)
	if v := c.PeekVictim(1); v.Valid {
		t.Fatalf("PeekVictim with free way = %+v, want invalid", v)
	}
}

func TestSetState(t *testing.T) {
	c := New(1, 1)
	c.Insert(3, stShared, 0, true)
	if !c.SetState(3, stExclusive) {
		t.Fatal("SetState on present key failed")
	}
	if l, _ := c.Peek(3); l.State != stExclusive {
		t.Fatalf("state = %d, want exclusive", l.State)
	}
	if c.SetState(4, stShared) {
		t.Fatal("SetState on absent key succeeded")
	}
}

func TestReplaceableWayPrefersInvalid(t *testing.T) {
	c := New(1, 3)
	c.Insert(0, stShared, 0, true)
	way, line := c.ReplaceableWay(1, stShared)
	if way < 0 || line.Valid {
		t.Fatalf("ReplaceableWay = %d, %+v; want an invalid way", way, line)
	}
}

func TestReplaceableWayFindsSharedFromLRU(t *testing.T) {
	c := New(1, 3)
	c.Insert(0, stModified, 0, true)
	c.Insert(1, stShared, 0, true)
	c.Insert(2, stShared, 0, true) // MRU->LRU: 2, 1, 0
	way, line := c.ReplaceableWay(9, stShared)
	if way < 0 || line.Key != 1 {
		t.Fatalf("ReplaceableWay chose %+v (way %d), want LRU-most shared key 1", line, way)
	}
}

func TestReplaceableWayDeclines(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, stModified, 0, true)
	c.Insert(1, stExclusive, 0, true)
	if way, _ := c.ReplaceableWay(9, stShared); way != -1 {
		t.Fatalf("ReplaceableWay = %d, want -1 when only M/E lines present", way)
	}
}

func TestReplaceWay(t *testing.T) {
	c := New(1, 3)
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true)
	c.Insert(2, stShared, 0, true) // MRU->LRU: 2,1,0
	old := c.ReplaceWay(9, 2, stShared, 0, true)
	if old.Key != 0 {
		t.Fatalf("ReplaceWay displaced %+v, want key 0", old)
	}
	// Key 9 must now be MRU: inserting two more keys evicts 1 then 2.
	ev1, _ := c.Insert(10, stShared, 0, true)
	ev2, _ := c.Insert(11, stShared, 0, true)
	if ev1.Key != 1 || ev2.Key != 2 {
		t.Fatalf("subsequent evictions = %d, %d; want 1, 2", ev1.Key, ev2.Key)
	}
}

func TestReplaceWayAtLRU(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true) // MRU->LRU: 1, 0
	c.ReplaceWay(9, 1, stShared, 0, false)
	ev, _ := c.Insert(5, stShared, 0, true)
	if ev.Key != 9 {
		t.Fatalf("evicted %d, want the LRU-placed 9", ev.Key)
	}
}

func TestReplaceWayOutOfRangePanics(t *testing.T) {
	c := New(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceWay out of range did not panic")
		}
	}()
	c.ReplaceWay(0, 5, stShared, 0, true)
}

func TestCountState(t *testing.T) {
	c := New(2, 2)
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true)
	c.Insert(2, stModified, 0, true)
	if got := c.CountState(stShared); got != 2 {
		t.Fatalf("CountState(shared) = %d, want 2", got)
	}
	if got := c.CountState(stModified); got != 1 {
		t.Fatalf("CountState(modified) = %d, want 1", got)
	}
	n := 0
	c.ForEach(func(Line) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d lines, want 3", n)
	}
}

// Property: a cache never holds duplicate keys, never exceeds capacity,
// and occupancy equals inserts minus evictions minus invalidations.
func TestCacheInvariantsProperty(t *testing.T) {
	type op struct {
		Key        uint16
		Kind       uint8
		AtMRU      bool
		FlagsState uint8
	}
	f := func(ops []op) bool {
		c := New(8, 4)
		inserted, evicted, invalidated := 0, 0, 0
		for _, o := range ops {
			key := uint64(o.Key % 512)
			switch o.Kind % 4 {
			case 0:
				was := c.Contains(key)
				_, did := c.Insert(key, int8(o.FlagsState%4), o.FlagsState, o.AtMRU)
				if !was {
					inserted++
				}
				if did {
					evicted++
				}
			case 1:
				c.Touch(key)
			case 2:
				if _, ok := c.Invalidate(key); ok {
					invalidated++
				}
			case 3:
				c.Lookup(key)
			}
			// No duplicates.
			seen := map[uint64]int{}
			c.ForEach(func(l Line) { seen[l.Key]++ })
			for _, n := range seen {
				if n > 1 {
					return false
				}
			}
			if c.CountValid() > c.Capacity() {
				return false
			}
		}
		return c.CountValid() == inserted-evicted-invalidated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with single-set geometry, repeatedly inserting distinct keys
// evicts exactly in FIFO order of last use (true LRU).
func TestTrueLRUProperty(t *testing.T) {
	f := func(touchSeq []uint8) bool {
		const assoc = 4
		c := New(1, assoc)
		var order []uint64 // LRU order tracking, front = LRU
		touchModel := func(k uint64) {
			for i, v := range order {
				if v == k {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, k)
		}
		for _, tch := range touchSeq {
			k := uint64(tch % 8)
			if c.Contains(k) {
				c.Touch(k)
				touchModel(k)
				continue
			}
			ev, did := c.Insert(k, stShared, 0, true)
			if did {
				if len(order) == 0 || ev.Key != order[0] {
					return false
				}
				order = order[1:]
			}
			order = append(order, k)
			if len(order) != c.CountValid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
