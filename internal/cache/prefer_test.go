package cache

import (
	"testing"
	"testing/quick"
)

func TestInsertPreferUsesInvalidFirst(t *testing.T) {
	c := New(1, 3)
	c.Insert(0, stShared, 0, true)
	_, did := c.InsertPrefer(1, stShared, 0, true, 4, func(Line) bool { return true })
	if did {
		t.Fatal("evicted despite a free way")
	}
}

func TestInsertPreferPicksPreferredOverLRU(t *testing.T) {
	c := New(1, 4)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, stShared, 0, true)
	}
	// MRU->LRU order: 3,2,1,0. Prefer key 1 (not the LRU 0).
	ev, did := c.InsertPrefer(9, stShared, 0, true, 4, func(l Line) bool { return l.Key == 1 })
	if !did || ev.Key != 1 {
		t.Fatalf("evicted %+v, want preferred key 1", ev)
	}
	if !c.Contains(0) {
		t.Fatal("LRU line was displaced despite preference elsewhere")
	}
}

func TestInsertPreferScansLRUFirst(t *testing.T) {
	c := New(1, 4)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, stShared, 0, true)
	}
	// Both 0 (LRU) and 1 qualify; the LRU-most must win.
	ev, _ := c.InsertPrefer(9, stShared, 0, true, 4, func(l Line) bool {
		return l.Key == 0 || l.Key == 1
	})
	if ev.Key != 0 {
		t.Fatalf("evicted %d, want LRU-most preferred 0", ev.Key)
	}
}

func TestInsertPreferWindowLimitsSearch(t *testing.T) {
	c := New(1, 4)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, stShared, 0, true)
	}
	// Only key 3 (the MRU way) qualifies, but the window covers just the
	// two LRU-most ways: fall back to plain LRU.
	ev, _ := c.InsertPrefer(9, stShared, 0, true, 2, func(l Line) bool { return l.Key == 3 })
	if ev.Key != 0 {
		t.Fatalf("evicted %d, want LRU fallback 0", ev.Key)
	}
}

func TestInsertPreferNilPredicateIsPlainLRU(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, stShared, 0, true)
	c.Insert(1, stShared, 0, true)
	ev, _ := c.InsertPrefer(9, stShared, 0, true, 2, nil)
	if ev.Key != 0 {
		t.Fatalf("evicted %d, want 0", ev.Key)
	}
}

func TestInsertPreferExistingKeyUpdates(t *testing.T) {
	c := New(1, 2)
	c.Insert(7, stShared, 0, true)
	ev, did := c.InsertPrefer(7, stModified, 1, true, 2, func(Line) bool { return true })
	if did {
		t.Fatalf("re-insert evicted %+v", ev)
	}
	l, _ := c.Peek(7)
	if l.State != stModified || l.Flags != 1 {
		t.Fatalf("line = %+v", l)
	}
}

// Property: InsertPrefer preserves the no-duplicate and capacity
// invariants regardless of predicate behavior.
func TestInsertPreferInvariants(t *testing.T) {
	f := func(keys []uint16, acceptMask uint8) bool {
		c := New(4, 4)
		for _, kr := range keys {
			k := uint64(kr % 64)
			c.InsertPrefer(k, stShared, 0, true, 3, func(l Line) bool {
				return l.Key&uint64(acceptMask%7) == 0
			})
		}
		seen := map[uint64]int{}
		c.ForEach(func(l Line) { seen[l.Key]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return c.CountValid() <= c.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
