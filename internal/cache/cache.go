// Package cache implements a generic set-associative tag store with
// true-LRU replacement and state-aware victim search. It backs the L1
// filter, the L2 and L3 cache models, and — because the paper organizes
// them "just like a cache tag array" — the Write Back History Table and
// the L2-snarf reuse table.
//
// The store maps 64-bit keys (line addresses, pre-shifted by the caller)
// to a small per-line record: an int8 coherence state and a uint8 of
// caller-defined flag bits. Within a set, ways are kept physically
// ordered from MRU (index 0) to LRU (last index), so recency updates are
// a short memmove and victim search is a scan of at most Assoc entries.
package cache

import (
	"fmt"
	"math/bits"
)

// Line is one cache entry. Valid distinguishes a live entry from an
// empty way; State and Flags are caller-defined.
type Line struct {
	Key   uint64
	State int8
	Flags uint8
	Valid bool
}

// Cache is a set-associative store. It is not safe for concurrent use;
// the simulator is single-threaded by design.
type Cache struct {
	sets    int
	assoc   int
	setMask uint64
	lines   []Line // sets*assoc; set s occupies lines[s*assoc : (s+1)*assoc] in MRU->LRU order

	hits      uint64
	misses    uint64
	evictions uint64
}

// New returns a cache with the given geometry. sets must be a positive
// power of two and assoc positive.
func New(sets, assoc int) *Cache {
	if sets <= 0 || bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("cache: sets = %d, must be a positive power of two", sets))
	}
	if assoc <= 0 {
		panic(fmt.Sprintf("cache: assoc = %d, must be positive", assoc))
	}
	return &Cache{
		sets:    sets,
		assoc:   assoc,
		setMask: uint64(sets - 1),
		lines:   make([]Line, sets*assoc),
	}
}

// Geometry accessors.
func (c *Cache) Sets() int     { return c.sets }
func (c *Cache) Assoc() int    { return c.assoc }
func (c *Cache) Capacity() int { return c.sets * c.assoc }

// Stats accessors. Hits and misses count Lookup results; evictions count
// valid lines displaced by Insert.
func (c *Cache) Hits() uint64      { return c.hits }
func (c *Cache) Misses() uint64    { return c.misses }
func (c *Cache) Evictions() uint64 { return c.evictions }

// SetIndex returns the set a key maps to.
func (c *Cache) SetIndex(key uint64) int { return int(key & c.setMask) }

func (c *Cache) set(key uint64) []Line {
	s := int(key&c.setMask) * c.assoc
	return c.lines[s : s+c.assoc]
}

// find returns the way index of key within set, or -1.
func find(set []Line, key uint64) int {
	for i := range set {
		if set[i].Valid && set[i].Key == key {
			return i
		}
	}
	return -1
}

// moveToFront rotates set[0..way] right by one, placing set[way] at MRU.
func moveToFront(set []Line, way int) {
	if way == 0 {
		return
	}
	l := set[way]
	copy(set[1:way+1], set[:way])
	set[0] = l
}

// Lookup returns a pointer to the line holding key, or nil on miss. It
// does not update recency; pair with Touch for a demand access. The
// returned pointer is invalidated by any subsequent mutating call.
func (c *Cache) Lookup(key uint64) *Line {
	set := c.set(key)
	if w := find(set, key); w >= 0 {
		c.hits++
		return &set[w]
	}
	c.misses++
	return nil
}

// Contains reports whether key is present without touching hit/miss
// statistics or recency (used for oracle "peeks", e.g. measuring WBHT
// decision correctness against actual L3 contents).
func (c *Cache) Contains(key uint64) bool {
	return find(c.set(key), key) >= 0
}

// Peek is Contains returning the line value (zero Line when absent).
func (c *Cache) Peek(key uint64) (Line, bool) {
	set := c.set(key)
	if w := find(set, key); w >= 0 {
		return set[w], true
	}
	return Line{}, false
}

// Touch moves key to the MRU position, reporting whether it was present.
func (c *Cache) Touch(key uint64) bool {
	set := c.set(key)
	w := find(set, key)
	if w < 0 {
		return false
	}
	moveToFront(set, w)
	return true
}

// LookupTouch combines Lookup and Touch; on a hit the returned pointer
// refers to the (now) MRU way.
func (c *Cache) LookupTouch(key uint64) *Line {
	set := c.set(key)
	w := find(set, key)
	if w < 0 {
		c.misses++
		return nil
	}
	c.hits++
	moveToFront(set, w)
	return &set[0]
}

// PeekVictim returns the line that Insert(key, ...) would displace: the
// zero Line (Valid=false) when an invalid way exists, else the LRU line.
func (c *Cache) PeekVictim(key uint64) Line {
	set := c.set(key)
	for i := range set {
		if !set[i].Valid {
			return Line{}
		}
	}
	return set[len(set)-1]
}

// Insert places key with the given state, at MRU when atMRU is true and
// at LRU otherwise, returning the valid line it displaced, if any. When
// key is already present, its state is overwritten and the line's
// recency updated per atMRU; no eviction occurs.
func (c *Cache) Insert(key uint64, state int8, flags uint8, atMRU bool) (evicted Line, didEvict bool) {
	set := c.set(key)
	if w := find(set, key); w >= 0 {
		set[w].State = state
		set[w].Flags = flags
		if atMRU {
			moveToFront(set, w)
		}
		return Line{}, false
	}
	// Prefer an invalid way; otherwise displace the LRU way.
	victim := -1
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = len(set) - 1
		evicted = set[victim]
		didEvict = true
		c.evictions++
	}
	newLine := Line{Key: key, State: state, Flags: flags, Valid: true}
	if atMRU {
		// Shift [0, victim) right and place at front.
		copy(set[1:victim+1], set[:victim])
		set[0] = newLine
	} else {
		// Shift (victim, end] left and place at back.
		copy(set[victim:], set[victim+1:])
		set[len(set)-1] = newLine
	}
	return evicted, didEvict
}

// InsertPrefer is Insert with a victim-preference hook for the paper's
// Section 7 history-informed replacement: when no invalid way exists,
// the window LRU-most ways are scanned (LRU first) for a line the
// predicate accepts — e.g. a clean line known to reside in the L3,
// whose eviction costs neither a write back nor a memory access. When
// none qualifies, the plain LRU way is displaced.
func (c *Cache) InsertPrefer(key uint64, state int8, flags uint8, atMRU bool, window int, prefer func(Line) bool) (evicted Line, didEvict bool) {
	set := c.set(key)
	if w := find(set, key); w >= 0 {
		set[w].State = state
		set[w].Flags = flags
		if atMRU {
			moveToFront(set, w)
		}
		return Line{}, false
	}
	victim := -1
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
	}
	if victim < 0 && prefer != nil {
		lo := len(set) - window
		if lo < 0 {
			lo = 0
		}
		for i := len(set) - 1; i >= lo; i-- {
			if prefer(set[i]) {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = len(set) - 1
	}
	if set[victim].Valid {
		evicted = set[victim]
		didEvict = true
		c.evictions++
	}
	newLine := Line{Key: key, State: state, Flags: flags, Valid: true}
	if atMRU {
		copy(set[1:victim+1], set[:victim])
		set[0] = newLine
	} else {
		copy(set[victim:], set[victim+1:])
		set[len(set)-1] = newLine
	}
	return evicted, didEvict
}

// Invalidate removes key, reporting whether it was present. The freed
// way moves to the LRU end so it is reused first.
func (c *Cache) Invalidate(key uint64) (Line, bool) {
	set := c.set(key)
	w := find(set, key)
	if w < 0 {
		return Line{}, false
	}
	old := set[w]
	copy(set[w:], set[w+1:])
	set[len(set)-1] = Line{}
	return old, true
}

// SetState overwrites the state of key, reporting whether it was
// present.
func (c *Cache) SetState(key uint64, state int8) bool {
	set := c.set(key)
	w := find(set, key)
	if w < 0 {
		return false
	}
	set[w].State = state
	return true
}

// ReplaceableWay searches the set key maps to for a way the caller may
// displace without a demand miss: first any invalid way, then — scanning
// from LRU toward MRU — a way whose state appears in okStates. It
// returns the way index and the line currently there, or -1 when the set
// offers no candidate. This implements the snarf-recipient victim policy
// of Section 3 ("Our replacement algorithm first looks for invalid
// lines. If none are found, we search for lines in the Shared state.").
func (c *Cache) ReplaceableWay(key uint64, okStates ...int8) (int, Line) {
	set := c.set(key)
	for i := range set {
		if !set[i].Valid {
			return i, set[i]
		}
	}
	for i := len(set) - 1; i >= 0; i-- {
		for _, s := range okStates {
			if set[i].State == s {
				return i, set[i]
			}
		}
	}
	return -1, Line{}
}

// ReplaceWay overwrites the given way of key's set with key, placing it
// at MRU or LRU per atMRU, and returns the displaced line. The caller is
// responsible for having chosen way via ReplaceableWay.
func (c *Cache) ReplaceWay(key uint64, way int, state int8, flags uint8, atMRU bool) Line {
	set := c.set(key)
	if way < 0 || way >= len(set) {
		panic(fmt.Sprintf("cache: ReplaceWay way %d out of range", way))
	}
	old := set[way]
	if old.Valid {
		c.evictions++
	}
	newLine := Line{Key: key, State: state, Flags: flags, Valid: true}
	if atMRU {
		copy(set[1:way+1], set[:way])
		set[0] = newLine
	} else {
		copy(set[way:], set[way+1:])
		set[len(set)-1] = newLine
	}
	return old
}

// CountState returns how many valid lines currently hold the given
// state. It is O(capacity) and intended for reports and tests.
func (c *Cache) CountState(state int8) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].State == state {
			n++
		}
	}
	return n
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// ForEach invokes fn for every valid line in an unspecified order.
func (c *Cache) ForEach(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(c.lines[i])
		}
	}
}
