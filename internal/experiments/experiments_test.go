package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cmpcache/internal/config"
)

// tinyRunner keeps experiment tests fast: short traces, trimmed grids.
func tinyRunner() *Runner {
	return NewRunner(Options{RefsPerThread: 1500, Quick: true})
}

func TestRunnerCachesResults(t *testing.T) {
	r := tinyRunner()
	runs := 0
	r.Progress = func(string) { runs++ }
	if _, err := r.base("tp", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := r.base("tp", 6); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("cache miss: %d runs for identical key", runs)
	}
}

func TestRunnerDistinctKeysRunSeparately(t *testing.T) {
	r := tinyRunner()
	runs := 0
	r.Progress = func(string) { runs++ }
	keys := []runKey{
		{workload: "tp", mech: config.Baseline, outstanding: 6},
		{workload: "tp", mech: config.WBHT, outstanding: 6},
		{workload: "tp", mech: config.WBHT, outstanding: 6, global: true},
		{workload: "tp", mech: config.WBHT, outstanding: 6, wbhtEntries: 512},
	}
	for _, k := range keys {
		if _, err := r.result(k); err != nil {
			t.Fatal(err)
		}
	}
	if runs != len(keys) {
		t.Fatalf("runs = %d, want %d", runs, len(keys))
	}
}

func TestConfigForVariants(t *testing.T) {
	r := tinyRunner()
	cfg := r.configFor(runKey{workload: "tp", mech: config.Snarf, outstanding: 3,
		snarfEntries: 1024, snarfLRU: true, invalidOnly: true})
	if cfg.Mechanism != config.Snarf || cfg.MaxOutstanding != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Snarf.Entries != 1024 || cfg.Snarf.InsertMRU || cfg.Snarf.VictimizeShared {
		t.Fatalf("snarf overrides not applied: %+v", cfg.Snarf)
	}
	cfg = r.configFor(runKey{workload: "tp", mech: config.WBHT, outstanding: 6,
		wbhtEntries: 2048, global: true, noSwitch: true})
	if cfg.WBHT.Entries != 2048 || !cfg.WBHT.GlobalAllocate || cfg.WBHT.SwitchEnabled {
		t.Fatalf("wbht overrides not applied: %+v", cfg.WBHT)
	}
}

func TestTable3PrintsIdentities(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"20 cycles", "77 cycles", "167 cycles", "431 cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"CPW2", "NotesBench", "TP", "Trade2"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
	// The paper reference values must appear.
	if !strings.Contains(out, "79.10") && !strings.Contains(out, "79.1") {
		t.Fatalf("Table 1 missing paper reference values:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "out=1") || !strings.Contains(out, "out=6") {
		t.Fatalf("Figure 2 missing sweep columns:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	r := NewRunner(Options{RefsPerThread: 1500, Quick: true, CSV: true})
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "|") {
		t.Fatal("CSV output contains markdown pipes")
	}
	if !strings.Contains(buf.String(), "Parameter,Paper,Simulated") {
		t.Fatalf("CSV header missing:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := tinyRunner()
	if err := r.Run("fig99", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQuickGrids(t *testing.T) {
	quick := Options{Quick: true}
	if len(quick.outstanding()) >= len(OutstandingSweep) {
		t.Fatal("quick outstanding grid not reduced")
	}
	if len(quick.tableSizes()) >= len(TableSizeSweep) {
		t.Fatal("quick size grid not reduced")
	}
	full := Options{}
	if len(full.outstanding()) != 6 || len(full.tableSizes()) != 8 {
		t.Fatal("full grids wrong")
	}
}

// TestParallelRendersIdenticalArtifacts asserts that dispatching the
// experiment grid through the sweep pool cannot perturb the artifacts:
// a Runner at 1 worker and at 8 workers renders byte-identical output.
func TestParallelRendersIdenticalArtifacts(t *testing.T) {
	render := func(workers int) string {
		r := NewRunner(Options{RefsPerThread: 500, Quick: true, Workers: workers})
		var buf bytes.Buffer
		for _, name := range []string{"table1", "fig2"} {
			if err := r.Run(name, &buf); err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
		}
		return buf.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Fatalf("artifacts differ across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
}

// TestPrefetchDeduplicatesSharedBaselines asserts an artifact's shared
// baseline runs execute once even when prefetched as a batch.
func TestPrefetchDeduplicatesSharedBaselines(t *testing.T) {
	r := tinyRunner()
	runs := 0
	r.Progress = func(string) { runs++ }
	keys := []runKey{
		baseKey("tp", 6),
		baseKey("tp", 6),
		{workload: "tp", mech: config.WBHT, outstanding: 6},
	}
	if err := r.prefetch(keys); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("prefetch ran %d simulations, want 2", runs)
	}
	// A second prefetch of the same keys is fully cached.
	if err := r.prefetch(keys); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("cached prefetch reran simulations: %d", runs)
	}
}

func TestPrefetchReportsBadWorkload(t *testing.T) {
	r := tinyRunner()
	if err := r.prefetch([]runKey{{workload: "bogus", mech: config.Baseline, outstanding: 6}}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

// TestAllExperimentsProduceOutput smoke-tests every artifact end to end
// at tiny scale. This is the integration test for the whole harness.
func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass is not short")
	}
	r := NewRunner(Options{RefsPerThread: 800, Quick: true})
	for _, name := range Names {
		var buf bytes.Buffer
		if err := r.Run(name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}
