package experiments

import (
	"fmt"
	"io"

	"cmpcache/internal/config"
	"cmpcache/internal/stats"
	"cmpcache/internal/workload"
)

// baseKey is the baseline configuration every improvement figure
// compares against.
func baseKey(workload string, outstanding int) runKey {
	return runKey{workload: workload, mech: config.Baseline, outstanding: outstanding}
}

// sweepImprovement renders one pressure-sweep figure: percentage runtime
// improvement over the baseline at each outstanding-miss level. All
// grid points are prefetched through the sweep pool before rendering.
func (r *Runner) sweepImprovement(w io.Writer, title string, variant func(string, int) runKey) error {
	var keys []runKey
	for _, name := range Workloads {
		for _, o := range r.opts.outstanding() {
			keys = append(keys, baseKey(name, o), variant(name, o))
		}
	}
	if err := r.prefetch(keys); err != nil {
		return err
	}
	headers := []string{"Workload"}
	for _, o := range r.opts.outstanding() {
		headers = append(headers, fmt.Sprintf("out=%d", o))
	}
	headers = append(headers, "trend")
	t := stats.NewTable(title, headers...)
	for _, name := range Workloads {
		cells := []string{workload.PaperName(name)}
		var series []float64
		for _, o := range r.opts.outstanding() {
			base, err := r.base(name, o)
			if err != nil {
				return err
			}
			res, err := r.result(variant(name, o))
			if err != nil {
				return err
			}
			imp := stats.Improvement(base.Cycles, res.Cycles)
			series = append(series, imp)
			cells = append(cells, fmt.Sprintf("%+.2f%%", imp))
		}
		cells = append(cells, stats.Sparkline(series))
		t.AddRow(cells...)
	}
	return r.render(w, t)
}

// Figure2 reproduces "Runtime Improvement Over Baseline of Write Back
// History Table": improvement grows with memory pressure; NotesBench
// stays flat (retry switch dormant); TP dips negative at low pressure.
func (r *Runner) Figure2(w io.Writer) error {
	return r.sweepImprovement(w,
		"Figure 2 — WBHT runtime improvement vs outstanding misses (paper: rises with pressure to ~5-13%; NotesBench flat; TP negative at 2)",
		func(name string, o int) runKey {
			return runKey{workload: name, mech: config.WBHT, outstanding: o}
		})
}

// Figure3 reproduces "Runtime Improvement of Updating All WBHTs Using
// L3 Snoop Response" (global allocation variant).
func (r *Runner) Figure3(w io.Writer) error {
	return r.sweepImprovement(w,
		"Figure 3 — WBHT with global allocation vs outstanding misses (paper: same trends as Fig 2, small extra gain at high pressure)",
		func(name string, o int) runKey {
			return runKey{workload: name, mech: config.WBHT, outstanding: o, global: true}
		})
}

// sizeSweep renders one table-size figure: runtime normalized to the
// 512-entry configuration at 6 outstanding misses. All grid points are
// prefetched through the sweep pool before rendering.
func (r *Runner) sizeSweep(w io.Writer, title string, variant func(string, int) runKey) error {
	var keys []runKey
	for _, name := range Workloads {
		keys = append(keys, variant(name, 512))
		for _, entries := range r.opts.tableSizes() {
			keys = append(keys, variant(name, entries))
		}
	}
	if err := r.prefetch(keys); err != nil {
		return err
	}
	headers := []string{"Workload"}
	for _, n := range r.opts.tableSizes() {
		headers = append(headers, fmt.Sprintf("%d", n))
	}
	t := stats.NewTable(title, headers...)
	for _, name := range Workloads {
		baseKey := variant(name, 512)
		baseRes, err := r.result(baseKey)
		if err != nil {
			return err
		}
		cells := []string{workload.PaperName(name)}
		for _, entries := range r.opts.tableSizes() {
			res, err := r.result(variant(name, entries))
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.4f", stats.Normalized(baseRes.Cycles, res.Cycles)))
		}
		t.AddRow(cells...)
	}
	return r.render(w, t)
}

// Figure4 reproduces "Normalized Runtime of Varying L2 WBHT Sizes
// Normalized to 512-Entry WBHT System": bigger tables help every
// workload, Trade2 by far the most.
func (r *Runner) Figure4(w io.Writer) error {
	return r.sizeSweep(w,
		"Figure 4 — runtime vs WBHT entries, normalized to 512 (paper: all improve with size; Trade2 most, to ~0.78)",
		func(name string, entries int) runKey {
			return runKey{workload: name, mech: config.WBHT, outstanding: 6, wbhtEntries: entries}
		})
}

// Figure5 reproduces "Runtime Improvement Over Baseline of Allowing L2
// Snarfing".
func (r *Runner) Figure5(w io.Writer) error {
	return r.sweepImprovement(w,
		"Figure 5 — L2 snarfing runtime improvement vs outstanding misses (paper: TP largest ~13%; CPW2/NotesBench flat ~2%)",
		func(name string, o int) runKey {
			return runKey{workload: name, mech: config.Snarf, outstanding: o}
		})
}

// Figure6 reproduces "Runtime of Varying L2 Snarf Table Sizes Normalized
// to 512-Entry Snarf Table System": little sensitivity beyond a point,
// Trade2 the most sensitive (<= ~4.5%).
func (r *Runner) Figure6(w io.Writer) error {
	return r.sizeSweep(w,
		"Figure 6 — runtime vs snarf-table entries, normalized to 512 (paper: weak sensitivity; Trade2 up to ~4.5%)",
		func(name string, entries int) runKey {
			return runKey{workload: name, mech: config.Snarf, outstanding: 6, snarfEntries: entries}
		})
}

// Figure7 reproduces "Runtime Improvement Over Baseline of Combined
// Tables" (both mechanisms, 16K-entry tables each): benefits are not
// additive; TP beats either mechanism alone.
func (r *Runner) Figure7(w io.Writer) error {
	return r.sweepImprovement(w,
		"Figure 7 — combined WBHT+snarfing (16K-entry tables) vs outstanding misses (paper: not additive; TP better than either alone)",
		func(name string, o int) runKey {
			return runKey{workload: name, mech: config.Combined, outstanding: o}
		})
}

// Ablations exercises the design choices DESIGN.md calls out beyond the
// paper's own figures, at 6 outstanding misses.
func (r *Runner) Ablations(w io.Writer) error {
	t := stats.NewTable("Ablations (6 outstanding) — runtime improvement over baseline",
		"Workload", "WBHT", "WBHT no-switch", "Snarf", "Snarf LRU-insert",
		"Snarf invalid-only", "Combined", "WBHT coarse x4", "WBHT hist-repl")
	variants := []struct {
		name string
		key  func(string) runKey
	}{
		{"WBHT", func(n string) runKey { return runKey{workload: n, mech: config.WBHT, outstanding: 6} }},
		{"WBHT no-switch", func(n string) runKey {
			return runKey{workload: n, mech: config.WBHT, outstanding: 6, noSwitch: true}
		}},
		{"Snarf", func(n string) runKey { return runKey{workload: n, mech: config.Snarf, outstanding: 6} }},
		{"Snarf LRU-insert", func(n string) runKey {
			return runKey{workload: n, mech: config.Snarf, outstanding: 6, snarfLRU: true}
		}},
		{"Snarf invalid-only", func(n string) runKey {
			return runKey{workload: n, mech: config.Snarf, outstanding: 6, invalidOnly: true}
		}},
		{"Combined", func(n string) runKey { return runKey{workload: n, mech: config.Combined, outstanding: 6} }},
		{"WBHT coarse x4", func(n string) runKey {
			return runKey{workload: n, mech: config.WBHT, outstanding: 6, coarse: 4}
		}},
		{"WBHT hist-repl", func(n string) runKey {
			return runKey{workload: n, mech: config.WBHT, outstanding: 6, historyRepl: true}
		}},
	}
	var keys []runKey
	for _, name := range Workloads {
		keys = append(keys, baseKey(name, 6), baseKey(name, 1),
			runKey{workload: name, mech: config.WBHT, outstanding: 1},
			runKey{workload: name, mech: config.WBHT, outstanding: 1, noSwitch: true})
		for _, v := range variants {
			keys = append(keys, v.key(name))
		}
	}
	if err := r.prefetch(keys); err != nil {
		return err
	}
	for _, name := range Workloads {
		base, err := r.base(name, 6)
		if err != nil {
			return err
		}
		cells := []string{workload.PaperName(name)}
		for _, v := range variants {
			res, err := r.result(v.key(name))
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%+.2f%%", stats.Improvement(base.Cycles, res.Cycles)))
		}
		t.AddRow(cells...)
	}
	if err := r.render(w, t); err != nil {
		return err
	}

	// Low-pressure safety check (the Section 2.2 motivation): at 1
	// outstanding miss, the forced-on WBHT must not beat the adaptive one
	// by construction — the switch exists because forcing can hurt.
	t2 := stats.NewTable("Ablation — retry switch at low pressure (1 outstanding): improvement over baseline",
		"Workload", "WBHT adaptive", "WBHT forced on")
	for _, name := range Workloads {
		base, err := r.base(name, 1)
		if err != nil {
			return err
		}
		adaptive, err := r.result(runKey{workload: name, mech: config.WBHT, outstanding: 1})
		if err != nil {
			return err
		}
		forced, err := r.result(runKey{workload: name, mech: config.WBHT, outstanding: 1, noSwitch: true})
		if err != nil {
			return err
		}
		t2.AddRowf(workload.PaperName(name),
			fmt.Sprintf("%+.2f%%", stats.Improvement(base.Cycles, adaptive.Cycles)),
			fmt.Sprintf("%+.2f%%", stats.Improvement(base.Cycles, forced.Cycles)))
	}
	return r.render(w, t2)
}

// Summary returns a compact per-workload baseline characterization used
// by cmpbench's header output.
func (r *Runner) SummaryTable(w io.Writer) error {
	var keys []runKey
	for _, name := range Workloads {
		keys = append(keys, baseKey(name, 6))
	}
	if err := r.prefetch(keys); err != nil {
		return err
	}
	t := stats.NewTable("Baseline characterization (6 outstanding)",
		"Workload", "Cycles", "L2 hit %", "L3 load hit %", "Already-in-L3 %", "WB requests", "L3 retries")
	for _, name := range Workloads {
		res, err := r.base(name, 6)
		if err != nil {
			return err
		}
		t.AddRowf(workload.PaperName(name), res.Cycles,
			100*res.L2HitRate(), 100*res.L3LoadHitRate(),
			res.PctCleanWBAlreadyInL3(), res.WBRequests, res.L3RetriesIssued)
	}
	return r.render(w, t)
}
