// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulator, printing paper-reported
// values alongside measured ones. Results are cached per configuration
// within a Runner, so the baseline runs that several experiments share
// execute once.
//
// Each artifact first assembles the full set of configurations it
// needs, then dispatches the uncached ones through the internal/sweep
// worker pool, so independent simulation runs execute concurrently
// (Options.Workers; default GOMAXPROCS) while rendering stays fully
// deterministic.
//
// Absolute magnitudes differ from the paper by construction — the
// original traces are proprietary captures billions of references long,
// ours are synthetic and ~10^3 times shorter — so each artifact is
// judged on shape: orderings across workloads, signs of improvements,
// where curves rise with memory pressure, and where they saturate.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"cmpcache/internal/config"
	"cmpcache/internal/sweep"
	"cmpcache/internal/system"
)

// Workloads in the paper's presentation order.
var Workloads = []string{"cpw2", "notesbench", "tp", "trade2"}

// Outstanding-miss sweep of Figures 2, 3, 5 and 7.
var OutstandingSweep = []int{1, 2, 3, 4, 5, 6}

// Table-size sweep of Figures 4 and 6 (entries).
var TableSizeSweep = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Options controls experiment scale and output format.
type Options struct {
	// RefsPerThread overrides the workload length (0 = profile default).
	RefsPerThread int
	// Quick trims sweeps (outstanding {1,2,4,6}, sizes {512,2K,8K,32K})
	// for a fast end-to-end pass.
	Quick bool
	// CSV selects CSV output instead of markdown.
	CSV bool
	// Workers bounds concurrent simulation runs (0 = GOMAXPROCS). The
	// rendered artifacts are byte-identical at any worker count.
	Workers int
	// Shards sets each run's intra-run parallelism (sweep.Options
	// conventions: 0 = serial, < 0 = auto, N = N shard workers).
	// Artifacts are byte-identical at any shard count; an explicit
	// N > 1 clamps Workers so workers x shards fits GOMAXPROCS.
	Shards int
	// Overrides, when non-nil, applies the shared command-line policy
	// knob overrides (config.RegisterOverrides) to every simulation the
	// experiments dispatch, including explicit zeros — a knob zeroed on
	// the command line fails config.Validate instead of silently
	// reverting to its default.
	Overrides *config.Overrides
}

func (o Options) outstanding() []int {
	if o.Quick {
		return []int{1, 2, 4, 6}
	}
	return OutstandingSweep
}

func (o Options) tableSizes() []int {
	if o.Quick {
		return []int{512, 2048, 8192, 32768}
	}
	return TableSizeSweep
}

// runKey identifies a unique simulation configuration.
type runKey struct {
	workload     string
	mech         config.Mechanism
	outstanding  int
	wbhtEntries  int
	snarfEntries int
	global       bool
	noSwitch     bool
	snarfLRU     bool
	invalidOnly  bool
	coarse       int  // WBHT LinesPerEntry override (0 = 1)
	historyRepl  bool // WBHT-informed L2 replacement (Section 7)
}

// Runner executes and caches simulation runs for the experiment set.
// Fresh runs are dispatched through the internal/sweep pool.
type Runner struct {
	opts  Options
	sim   *sweep.Simulator
	cache map[runKey]*system.Results
	// simEvents accumulates engine events fired across fresh (uncached)
	// simulation runs — the throughput denominator for BENCH_core.json.
	simEvents uint64
	// Progress, when non-nil, receives a line per fresh simulation run.
	// It may be invoked from pool goroutines, but never concurrently.
	Progress func(string)
}

// NewRunner returns a Runner with an empty cache.
func NewRunner(opts Options) *Runner {
	// The runner supplies its own RunFunc to every sweep (for the shared
	// trace cache), so the worker/shard budget is arbitrated here rather
	// than in sweep.Run: explicit shard counts clamp the pool, auto
	// gives each run the spare cores.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers, _ = sweep.FitWorkers(workers, opts.Shards)
	opts.Workers = workers
	sim := sweep.NewSimulator()
	if sim.Shards = opts.Shards; sim.Shards < 0 {
		sim.Shards = sweep.AutoShards(workers)
	}
	return &Runner{
		opts:  opts,
		sim:   sim,
		cache: make(map[runKey]*system.Results),
	}
}

// jobFor translates a run key into its sweep job.
func (r *Runner) jobFor(k runKey) sweep.Job {
	return sweep.Job{
		Workload:      k.workload,
		Mechanism:     k.mech,
		Outstanding:   k.outstanding,
		WBHTEntries:   k.wbhtEntries,
		SnarfEntries:  k.snarfEntries,
		GlobalWBHT:    k.global,
		NoSwitch:      k.noSwitch,
		SnarfLRU:      k.snarfLRU,
		InvalidOnly:   k.invalidOnly,
		LinesPerEntry: k.coarse,
		HistoryRepl:   k.historyRepl,
		RefsPerThread: r.opts.RefsPerThread,
	}
}

// configFor materializes the simulated configuration for a key — the
// exact configuration the sweep executor runs.
func (r *Runner) configFor(k runKey) config.Config {
	return r.jobFor(k).Config()
}

// prefetch executes every uncached key on the sweep pool and fills the
// cache. Artifacts call it with their complete key set before
// rendering, so independent runs proceed concurrently while table
// rendering stays strictly ordered.
func (r *Runner) prefetch(keys []runKey) error {
	var jobs []sweep.Job
	var fresh []runKey
	seen := make(map[runKey]bool, len(keys))
	for _, k := range keys {
		if _, ok := r.cache[k]; ok || seen[k] {
			continue
		}
		seen[k] = true
		fresh = append(fresh, k)
		jobs = append(jobs, r.jobFor(k))
	}
	if len(jobs) == 0 {
		return nil
	}
	jobs = sweep.OverrideJobs(jobs, r.opts.Overrides)
	opts := sweep.Options{Workers: r.opts.Workers, Run: r.sim.Run}
	if r.Progress != nil {
		opts.Progress = func(p sweep.Progress) {
			if p.Err != nil || p.Cached {
				return
			}
			r.Progress(fmt.Sprintf("run %s mech=%s out=%d wbht=%d snarf=%d [%d/%d]",
				p.Job.Workload, p.Job.Mechanism, p.Job.Outstanding,
				p.Job.WBHTEntries, p.Job.SnarfEntries, p.Done, p.Total))
		}
	}
	results := sweep.Run(context.Background(), jobs, opts)
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("experiments: %w", res.Err)
		}
		r.cache[fresh[i]] = res.Results
		r.simEvents += res.Results.EventsFired
	}
	return nil
}

// SimEvents returns total engine events fired across all fresh
// simulation runs this Runner has executed (cache hits excluded).
func (r *Runner) SimEvents() uint64 { return r.simEvents }

// result runs (or recalls) one simulation.
func (r *Runner) result(k runKey) (*system.Results, error) {
	if res, ok := r.cache[k]; ok {
		return res, nil
	}
	if err := r.prefetch([]runKey{k}); err != nil {
		return nil, err
	}
	return r.cache[k], nil
}

// base returns the baseline run for a workload at an outstanding level.
func (r *Runner) base(workload string, outstanding int) (*system.Results, error) {
	return r.result(runKey{workload: workload, mech: config.Baseline, outstanding: outstanding})
}

// Experiment names accepted by Run, in presentation order.
var Names = []string{
	"summary",
	"table1", "table2", "table3", "table4", "table5",
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"ablation",
	"policies",
}

// Run executes one named experiment (or "all") and writes its artifact
// to w.
func (r *Runner) Run(name string, w io.Writer) error {
	switch name {
	case "summary":
		return r.SummaryTable(w)
	case "table1":
		return r.Table1(w)
	case "table2":
		return r.Table2(w)
	case "table3":
		return r.Table3(w)
	case "table4":
		return r.Table4(w)
	case "table5":
		return r.Table5(w)
	case "fig2":
		return r.Figure2(w)
	case "fig3":
		return r.Figure3(w)
	case "fig4":
		return r.Figure4(w)
	case "fig5":
		return r.Figure5(w)
	case "fig6":
		return r.Figure6(w)
	case "fig7":
		return r.Figure7(w)
	case "ablation":
		return r.Ablations(w)
	case "policies":
		return r.Policies(w)
	case "all":
		for _, n := range Names {
			if err := r.Run(n, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("experiments: unknown experiment %q (want %v or all)", name, Names)
	}
}
