package experiments

import (
	"fmt"
	"io"

	"cmpcache/internal/config"
	"cmpcache/internal/stats"
	"cmpcache/internal/system"
	"cmpcache/internal/workload"
)

// Paper-reported values, used as reference columns in every artifact.
var (
	// Table 1: % of clean L2 write backs already present in the L3.
	paperTable1 = map[string]float64{
		"cpw2": 60.0, "notesbench": 59.1, "tp": 42.1, "trade2": 79.1,
	}
	// Table 2: write-back reuse as % of total attempted / % of accepted.
	paperTable2Total = map[string]float64{
		"cpw2": 27.1, "notesbench": 33.9, "tp": 15.5, "trade2": 28.9,
	}
	paperTable2Accepted = map[string]float64{
		"cpw2": 38.4, "notesbench": 53.2, "tp": 18.6, "trade2": 58.7,
	}
	// Table 4 (6 outstanding loads): WBHT correct %, L3 load hit rates.
	paperTable4Correct = map[string]float64{
		"cpw2": 63.1, "notesbench": 67.3, "tp": 75.3, "trade2": 60.4,
	}
	paperTable4L3HitBase = map[string]float64{
		"cpw2": 50.5, "notesbench": 70.5, "tp": 32.4, "trade2": 79.0,
	}
	paperTable4L3HitWBHT = map[string]float64{
		"cpw2": 37.3, "notesbench": 70.4, "tp": 25.4, "trade2": 67.8,
	}
	// Table 5 (6 outstanding loads): snarfing effects.
	paperTable5Improvement = map[string]float64{
		"cpw2": 1.7, "notesbench": 2.4, "tp": 13.1, "trade2": 5.6,
	}
	paperTable5OffChip = map[string]float64{
		"cpw2": 1.2, "notesbench": 1.1, "tp": 0.8, "trade2": 5.2,
	}
	paperTable5Snarfed = map[string]float64{
		"cpw2": 3.7, "notesbench": 2.5, "tp": 2.8, "trade2": 7.0,
	}
	paperTable5UsedLocally = map[string]float64{
		"cpw2": 10, "notesbench": 6, "tp": 16, "trade2": 4,
	}
	paperTable5Interventions = map[string]float64{
		"cpw2": 16, "notesbench": 13, "tp": 14, "trade2": 10,
	}
	paperTable5RetryReduction = map[string]float64{
		"cpw2": 96, "notesbench": 94, "tp": 99, "trade2": 93,
	}
)

func (r *Runner) render(w io.Writer, t *stats.Table) error {
	var err error
	if r.opts.CSV {
		_, err = io.WriteString(w, t.CSV())
	} else {
		_, err = io.WriteString(w, t.Markdown())
	}
	return err
}

// Table1 reproduces "Percentage of Clean L2 Write Backs Already Present
// in the L3 Cache" on the baseline system.
func (r *Runner) Table1(w io.Writer) error {
	if err := r.prefetchBaselines(6); err != nil {
		return err
	}
	t := stats.NewTable("Table 1 — Clean L2 write backs already present in the L3 (baseline, 6 outstanding)",
		"Workload", "Paper %", "Measured %", "Clean WBs snooped")
	for _, name := range Workloads {
		res, err := r.base(name, 6)
		if err != nil {
			return err
		}
		t.AddRowf(workload.PaperName(name), paperTable1[name],
			res.PctCleanWBAlreadyInL3(), res.L3CleanWBSnooped)
	}
	return r.render(w, t)
}

// Table2 reproduces "Write Back Reuse Statistics" on the baseline
// system.
func (r *Runner) Table2(w io.Writer) error {
	if err := r.prefetchBaselines(6); err != nil {
		return err
	}
	t := stats.NewTable("Table 2 — Write-back reuse (baseline, 6 outstanding)",
		"Workload", "Paper % total", "Measured % total",
		"Paper % accepted", "Measured % accepted", "Max rerefs/line")
	for _, name := range Workloads {
		res, err := r.base(name, 6)
		if err != nil {
			return err
		}
		t.AddRowf(workload.PaperName(name),
			paperTable2Total[name], res.Reuse.PctTotalReused(),
			paperTable2Accepted[name], res.Reuse.PctAcceptedReused(),
			res.Reuse.Rerefs.Max())
	}
	return r.render(w, t)
}

// Table3 prints the system parameters actually simulated next to the
// paper's Table 3 values (they are definitionally equal; the latency
// identities are also enforced by config unit tests).
func (r *Runner) Table3(w io.Writer) error {
	cfg := config.Default()
	t := stats.NewTable("Table 3 — System parameters", "Parameter", "Paper", "Simulated")
	t.AddRowf("Processors", "8, 2-way SMT", fmt.Sprintf("%d, %d-way SMT", cfg.Cores, cfg.ThreadsPerCore))
	t.AddRowf("L2 size", "4 slices, 512 KB each", fmt.Sprintf("%d slices, %d KB each", cfg.L2Slices, cfg.L2SliceKB))
	t.AddRowf("Number of L2 caches", 4, cfg.NumL2())
	t.AddRowf("L2 associativity", 8, cfg.L2Assoc)
	t.AddRowf("L2 latency", "20 cycles", fmt.Sprintf("%d cycles", cfg.L2HitLatency()))
	t.AddRowf("L2-to-L2 transfer latency", "77 cycles", fmt.Sprintf("%d cycles", cfg.L2ToL2Latency()))
	t.AddRowf("L3 size", "4 slices, 4 MB each", fmt.Sprintf("%d slices, %d MB each", cfg.L3Slices, cfg.L3SliceMB))
	t.AddRowf("L3 associativity", 16, cfg.L3Assoc)
	t.AddRowf("L3 latency", "167 cycles", fmt.Sprintf("%d cycles", cfg.L3HitLatency()))
	t.AddRowf("Memory latency (from core)", "431 cycles", fmt.Sprintf("%d cycles", cfg.MemLatency()))
	t.AddRowf("Ring bus", "1:2 core speed, 32B wide",
		fmt.Sprintf("%d-cycle line occupancy, %d-cycle slots", cfg.DataRingOccupancy, cfg.AddrRingOccupancy))
	return r.render(w, t)
}

// Table4 reproduces "Effects of Write Back History Table (6 Loads per
// Thread Maximum)".
func (r *Runner) Table4(w io.Writer) error {
	if err := r.prefetchPairs(config.WBHT, 6); err != nil {
		return err
	}
	t := stats.NewTable("Table 4 — WBHT effects (6 outstanding)",
		"Workload", "Config", "WBHT correct % (paper)", "WBHT correct %",
		"L3 load hit % (paper)", "L3 load hit %", "L2 WB requests", "L3 retries")
	for _, name := range Workloads {
		base, err := r.base(name, 6)
		if err != nil {
			return err
		}
		wbht, err := r.result(runKey{workload: name, mech: config.WBHT, outstanding: 6})
		if err != nil {
			return err
		}
		t.AddRowf(workload.PaperName(name), "base", "N/A", "N/A",
			paperTable4L3HitBase[name], 100*base.L3LoadHitRate(),
			base.WBRequests, base.L3RetriesIssued)
		t.AddRowf("", "WBHT", paperTable4Correct[name], 100*wbht.WBHT.CorrectRate(),
			paperTable4L3HitWBHT[name], 100*wbht.L3LoadHitRate(),
			wbht.WBRequests, wbht.L3RetriesIssued)
	}
	return r.render(w, t)
}

// Table5 reproduces "Effects of L2-to-L2 Write Backs (6 Loads Per
// Thread Maximum)".
func (r *Runner) Table5(w io.Writer) error {
	t := stats.NewTable("Table 5 — L2-to-L2 write-back snarfing effects (6 outstanding)",
		"Metric", "CPW2 (paper/meas)", "NotesBench (paper/meas)",
		"TP (paper/meas)", "Trade2 (paper/meas)")
	type row struct {
		metric string
		paper  map[string]float64
		value  func(base, snarf *resultsPair) float64
	}
	if err := r.prefetchPairs(config.Snarf, 6); err != nil {
		return err
	}
	measured := map[string]*resultsPair{}
	for _, name := range Workloads {
		base, err := r.base(name, 6)
		if err != nil {
			return err
		}
		snarf, err := r.result(runKey{workload: name, mech: config.Snarf, outstanding: 6})
		if err != nil {
			return err
		}
		measured[name] = &resultsPair{base: base, snarf: snarf}
	}
	rows := []row{
		{"Performance improvement %", paperTable5Improvement, func(_, p *resultsPair) float64 {
			return stats.Improvement(p.base.Cycles, p.snarf.Cycles)
		}},
		{"Reduction in off-chip accesses %", paperTable5OffChip, func(_, p *resultsPair) float64 {
			return stats.Reduction(p.base.OffChipAccesses(), p.snarf.OffChipAccesses())
		}},
		{"Write backs snarfed %", paperTable5Snarfed, func(_, p *resultsPair) float64 {
			return p.snarf.PctWBSnarfed()
		}},
		{"Snarfed lines used locally %", paperTable5UsedLocally, func(_, p *resultsPair) float64 {
			return p.snarf.PctSnarfedUsedLocally()
		}},
		{"Snarfed lines for interventions %", paperTable5Interventions, func(_, p *resultsPair) float64 {
			return p.snarf.PctSnarfedInterventions()
		}},
		{"Increase in local L2 hit rate (pts)", map[string]float64{
			"cpw2": 0.4, "notesbench": 1.2, "tp": 0.3, "trade2": 3.7,
		}, func(_, p *resultsPair) float64 {
			return 100 * (p.snarf.L2HitRate() - p.base.L2HitRate())
		}},
		{"L3-issued retry reduction %", paperTable5RetryReduction, func(_, p *resultsPair) float64 {
			return stats.Reduction(p.base.L3RetriesIssued, p.snarf.L3RetriesIssued)
		}},
	}
	for _, rw := range rows {
		cells := []string{rw.metric}
		for _, name := range Workloads {
			p := measured[name]
			cells = append(cells, fmt.Sprintf("%.1f / %.1f", rw.paper[name], rw.value(p, p)))
		}
		t.AddRow(cells...)
	}
	return r.render(w, t)
}

type resultsPair struct {
	base  *system.Results
	snarf *system.Results
}

// prefetchBaselines warms the cache with every workload's baseline run
// at the given outstanding level.
func (r *Runner) prefetchBaselines(outstanding int) error {
	var keys []runKey
	for _, name := range Workloads {
		keys = append(keys, baseKey(name, outstanding))
	}
	return r.prefetch(keys)
}

// prefetchPairs warms the cache with (baseline, mech) pairs for every
// workload at the given outstanding level.
func (r *Runner) prefetchPairs(mech config.Mechanism, outstanding int) error {
	var keys []runKey
	for _, name := range Workloads {
		keys = append(keys, baseKey(name, outstanding),
			runKey{workload: name, mech: mech, outstanding: outstanding})
	}
	return r.prefetch(keys)
}
