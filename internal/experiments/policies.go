package experiments

import (
	"io"

	"cmpcache/internal/config"
	"cmpcache/internal/stats"
	"cmpcache/internal/workload"
)

// policyMechs is the full registered-policy set the comparison sweeps,
// in registry order: the paper's four configurations plus the two
// literature policies ported onto the wbpolicy plug-in interface.
var policyMechs = []config.Mechanism{
	config.Baseline, config.WBHT, config.Snarf, config.Combined,
	config.ReuseDist, config.HybridUI,
}

// Policies renders the policy plug-in comparison: every registered
// write-back policy on every workload at 6 outstanding loads, followed
// by the two literature policies' internal decision statistics. No
// paper reference columns exist here — the four paper configurations
// are judged against the paper by Tables 4/5 and Figures 2..7; this
// artifact ranks the plug-ins against each other on equal traces.
func (r *Runner) Policies(w io.Writer) error {
	var keys []runKey
	for _, name := range Workloads {
		for _, m := range policyMechs {
			keys = append(keys, runKey{workload: name, mech: m, outstanding: 6})
		}
	}
	if err := r.prefetch(keys); err != nil {
		return err
	}

	t := stats.NewTable("Policy comparison — all registered write-back policies (6 outstanding)",
		"Workload", "Policy", "Cycles", "Improvement %", "Off-chip accesses",
		"Off-chip reduction %", "L2 WB requests", "WB reduction %")
	for _, name := range Workloads {
		base, err := r.base(name, 6)
		if err != nil {
			return err
		}
		for i, m := range policyMechs {
			res, err := r.result(runKey{workload: name, mech: m, outstanding: 6})
			if err != nil {
				return err
			}
			label := workload.PaperName(name)
			if i > 0 {
				label = ""
			}
			t.AddRowf(label, m.String(), res.Cycles,
				stats.Improvement(base.Cycles, res.Cycles),
				res.OffChipAccesses(),
				stats.Reduction(base.OffChipAccesses(), res.OffChipAccesses()),
				res.WBRequests,
				stats.Reduction(base.WBRequests, res.WBRequests))
		}
	}
	if err := r.render(w, t); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}

	rd := stats.NewTable("reusedist — sketch gating detail (6 outstanding)",
		"Workload", "Evictions", "Samples", "Consults", "Cold passes",
		"Aborts", "Aborts w/ line in L3")
	for _, name := range Workloads {
		res, err := r.result(runKey{workload: name, mech: config.ReuseDist, outstanding: 6})
		if err != nil {
			return err
		}
		p := res.Policy
		rd.AddRowf(workload.PaperName(name), p.SketchEvictions, p.SketchSamples,
			p.PredictConsults, p.PredictCold, p.PredictAborts, p.AbortsLineInL3)
	}
	if err := r.render(w, rd); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}

	hy := stats.NewTable("hybridui — upgrade routing detail (6 outstanding)",
		"Workload", "Scored reads", "Update pushes", "Invalidate upgrades",
		"Update share %", "Upgrades committed as updates")
	for _, name := range Workloads {
		res, err := r.result(runKey{workload: name, mech: config.HybridUI, outstanding: 6})
		if err != nil {
			return err
		}
		p := res.Policy
		share := 0.0
		if total := p.UpdatePushes + p.InvalidateUpgrades; total > 0 {
			share = 100 * float64(p.UpdatePushes) / float64(total)
		}
		hy.AddRowf(workload.PaperName(name), p.ScoredReads, p.UpdatePushes,
			p.InvalidateUpgrades, share, res.UpgradeUpdates)
	}
	return r.render(w, hy)
}
