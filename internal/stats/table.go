package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented table that renders to GitHub
// markdown or CSV. The experiment harness uses it to print the paper's
// tables and figure series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count panic, short rows
// are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each value with %v, floats with two
// decimals.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// Markdown renders the table as GitHub-flavored markdown with aligned
// columns.
func (t *Table) Markdown() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders a sequence of values as a compact unicode bar chart
// ("▁▃▆█"), used by the experiment harness to make figure tables glanceable.
// Values are scaled to the series' own min..max; an empty or constant
// series renders mid-height bars.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(ramp) / 2
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
