// Package stats provides the counters, derived-rate helpers, histograms
// and table renderers from which every experiment artifact (the paper's
// Tables 1–5 and Figures 2–7) is produced.
package stats

import (
	"encoding/json"
	"fmt"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Inc adds one to the counter.
func (c *Counter) Inc() { *c++ }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Percent returns 100*n/d, or 0 when d is zero.
func Percent(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Ratio returns n/d, or 0 when d is zero.
func Ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Improvement returns the percentage runtime improvement of new over
// base: positive when new is faster. A zero base yields 0.
func Improvement(baseCycles, newCycles uint64) float64 {
	if baseCycles == 0 {
		return 0
	}
	return 100 * (float64(baseCycles) - float64(newCycles)) / float64(baseCycles)
}

// Reduction returns the percentage decrease from base to new (positive
// when new is smaller). A zero base yields 0.
func Reduction(base, new uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(new)) / float64(base)
}

// Normalized returns new/base, or 0 when base is zero. It is the y-axis
// of the paper's Figures 4 and 6 (runtime normalized to the 512-entry
// configuration).
func Normalized(base, new uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(new) / float64(base)
}

// Histogram accumulates integer samples into power-of-two buckets:
// bucket i holds samples in [2^(i-1), 2^i) with bucket 0 holding zero.
// It is used for write-back re-reference counts (the paper observes
// Trade2 lines re-referenced >300 times vs <20 for CPW2).
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	idx := 0
	for x := v; x > 0; x >>= 1 {
		idx++
	}
	for len(h.buckets) <= idx {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// CountAtLeast returns how many samples were >= v.
func (h *Histogram) CountAtLeast(v uint64) uint64 {
	var total uint64
	lo := uint64(1)
	for i, c := range h.buckets {
		if i == 0 {
			if v == 0 {
				total += c
			}
			continue
		}
		// bucket i spans [2^(i-1), 2^i)
		hi := lo * 2
		switch {
		case lo >= v:
			total += c
		case hi <= v:
			// entirely below threshold
		default:
			// straddling bucket: apportion conservatively as included,
			// since exact per-sample data is not retained.
			total += c
		}
		lo = hi
	}
	return total
}

// Merge folds other's samples into h, as if every sample observed by
// other had been observed by h. The result is independent of merge
// order because buckets, counts and sums are all additive and max is
// commutative — which is what lets per-shard histograms combine into a
// deterministic whole regardless of how the shards executed.
func (h *Histogram) Merge(other *Histogram) {
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Buckets returns a copy of the bucket counts; bucket 0 counts zero
// samples and bucket i>0 counts samples in [2^(i-1), 2^i).
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Reset empties the histogram, keeping the bucket storage for reuse
// (windowed collectors reset once per interval without reallocating).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) of the
// observed samples. The estimate locates the log bucket holding the
// ceil(q*count)-th smallest sample and interpolates linearly inside its
// [2^(i-1), 2^i) range; within the highest populated bucket it
// interpolates toward the exact recorded maximum instead of the bucket's
// upper edge, so Quantile(1) == Max. Zero samples yield exactly 0. An
// empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: the smallest r with r >= q*count.
	rank := q * float64(h.count)
	if rank < 1 {
		rank = 1
	}
	// Highest populated bucket: its upper edge is clamped to the max.
	top := 0
	for i, c := range h.buckets {
		if c > 0 {
			top = i
		}
	}
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		if i == 0 {
			return 0 // bucket 0 holds exact zeros
		}
		lo := float64(uint64(1) << (i - 1))
		hi := lo * 2
		if i == top {
			hi = float64(h.max)
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	return float64(h.max)
}

// Summary is the fixed quantile digest reports are built from.
type Summary struct {
	Count uint64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   uint64
}

// Summary returns the p50/p90/p99/max digest of the histogram.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}

// String renders the histogram compactly for reports.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f max=%d", h.count, h.Mean(), h.max)
}

// histogramJSON is the stable wire form of a Histogram; Buckets[0]
// counts zero samples and Buckets[i>0] samples in [2^(i-1), 2^i). The
// P50/P90/P99 fields are derived (recomputed on load, ignored by
// UnmarshalJSON) so exported histograms are useful without
// reimplementing the bucket interpolation.
type histogramJSON struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Mean    float64
	P50     float64
	P90     float64
	P99     float64
	Buckets []uint64
}

// MarshalJSON exports the histogram with stable field names, including
// the derived p50/p90/p99 quantile estimates.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Count: h.count, Sum: h.sum, Max: h.max, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		Buckets: h.Buckets(),
	})
}

// UnmarshalJSON reconstructs a histogram from its MarshalJSON form. The
// derived fields (Mean, P50/P90/P99) are recomputed from the bucket
// counts, not trusted from the input.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.buckets = w.Buckets
	h.count, h.sum, h.max = w.Count, w.Sum, w.Max
	return nil
}
