package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestPercent(t *testing.T) {
	cases := []struct {
		n, d uint64
		want float64
	}{
		{1, 2, 50},
		{3, 4, 75},
		{0, 10, 0},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := Percent(c.n, c.d); got != c.want {
			t.Errorf("Percent(%d,%d) = %v, want %v", c.n, c.d, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio by zero = %v, want 0", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(200, 174); got != 13 {
		t.Fatalf("Improvement = %v, want 13", got)
	}
	if got := Improvement(100, 110); got != -10 {
		t.Fatalf("Improvement (regression) = %v, want -10", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement with zero base = %v, want 0", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 1); got != 99 {
		t.Fatalf("Reduction = %v, want 99", got)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized(200, 150); got != 0.75 {
		t.Fatalf("Normalized = %v, want 0.75", got)
	}
	if got := Normalized(0, 5); got != 0 {
		t.Fatalf("Normalized with zero base = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 300} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Max() != 300 {
		t.Fatalf("Max = %d, want 300", h.Max())
	}
	if h.Sum() != 306 {
		t.Fatalf("Sum = %d, want 306", h.Sum())
	}
	if h.Mean() != 306.0/5 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramCountAtLeast(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 5, 300, 400} {
		h.Observe(v)
	}
	if got := h.CountAtLeast(256); got != 2 {
		t.Fatalf("CountAtLeast(256) = %d, want 2", got)
	}
	if got := h.CountAtLeast(0); got != 5 {
		t.Fatalf("CountAtLeast(0) = %d, want 5", got)
	}
	if got := h.CountAtLeast(1); got != 4 {
		t.Fatalf("CountAtLeast(1) = %d, want 4", got)
	}
}

func TestHistogramCountInvariant(t *testing.T) {
	// Property: sum of buckets equals Count for any sample set.
	f := func(samples []uint16) bool {
		var h Histogram
		for _, s := range samples {
			h.Observe(uint64(s))
		}
		var total uint64
		for _, b := range h.Buckets() {
			total += b
		}
		return total == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(10)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "App", "Value")
	tb.AddRow("TP", "42.1%")
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| App", "| TP ", "42.1%"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRowf("x", 1.2345, 7)
	if tb.Rows[0][1] != "1.23" {
		t.Fatalf("float cell = %q, want 1.23", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "7" {
		t.Fatalf("int cell = %q, want 7", tb.Rows[0][2])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 2 {
		t.Fatalf("row length = %d, want 2", len(tb.Rows[0]))
	}
}

func TestTableOverflowPanics(t *testing.T) {
	tb := NewTable("", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("overlong row did not panic")
		}
	}()
	tb.AddRow("x", "y")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "A", "B")
	tb.AddRow("plain", `has,comma "and quote"`)
	csv := tb.CSV()
	want := "A,B\nplain,\"has,comma \"\"and quote\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("Sparkline length = %d runes, want 4", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[3] != '█' {
		t.Fatalf("Sparkline = %q, want rising ramp", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty series should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	r := []rune(flat)
	if r[0] != r[1] || r[1] != r[2] {
		t.Fatalf("constant series should be uniform: %q", flat)
	}
}

func TestHistogramMarshalJSON(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 3, 300} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Count   uint64
		Sum     uint64
		Max     uint64
		Mean    float64
		Buckets []uint64
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("histogram export is not valid JSON: %v", err)
	}
	if decoded.Count != 4 || decoded.Sum != 304 || decoded.Max != 300 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Mean != h.Mean() || len(decoded.Buckets) == 0 {
		t.Fatalf("decoded = %+v", decoded)
	}
	// An empty histogram must export [] for buckets, not null.
	empty, err := json.Marshal(Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "null") {
		t.Fatalf("empty histogram exports null: %s", empty)
	}
}

// exactQuantile is the reference quantile over raw samples: the
// ceil(q*n)-th smallest value (the smallest v with CDF(v) >= q).
func exactQuantile(samples []uint64, q float64) uint64 {
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// bucketBounds returns the [lo, hi] range of the log bucket that holds
// v — the maximum error band a bucketed quantile estimate may occupy.
func bucketBounds(v uint64) (lo, hi float64) {
	if v == 0 {
		return 0, 0
	}
	i := 0
	for x := v; x > 0; x >>= 1 {
		i++
	}
	lo = float64(uint64(1) << (i - 1))
	return lo, lo * 2
}

func TestHistogramQuantileExact(t *testing.T) {
	// Cases where the bucket interpolation is exact by construction.
	var zeros Histogram
	for i := 0; i < 10; i++ {
		zeros.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := zeros.Quantile(q); got != 0 {
			t.Errorf("all-zero Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Quantile(1) is always the exact recorded maximum.
	var h Histogram
	for _, v := range []uint64{3, 17, 950, 12, 1, 7} {
		h.Observe(v)
	}
	if got := h.Quantile(1); got != 950 {
		t.Errorf("Quantile(1) = %v, want exact max 950", got)
	}

	// A single sample: every quantile is that sample (it is the top
	// bucket, whose upper edge clamps to the max).
	var one Histogram
	one.Observe(100)
	if got := one.Quantile(0.5); got > 100 || got < 64 {
		t.Errorf("single-sample Quantile(0.5) = %v, want within [64,100]", got)
	}
	if got := one.Quantile(1); got != 100 {
		t.Errorf("single-sample Quantile(1) = %v, want 100", got)
	}

	// Empty histogram.
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramQuantileWithinBucketOfReference(t *testing.T) {
	// Against exact reference quantiles computed from the raw samples,
	// the log-bucketed estimate must always land inside the bucket range
	// of the reference value — the scheme's guaranteed error bound.
	rng := rand.New(rand.NewSource(42))
	cases := [][]uint64{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{20, 20, 20, 20, 431, 431, 900, 900, 900, 4000},
	}
	long := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		long = append(long, uint64(rng.Intn(2000)))
	}
	cases = append(cases, long)

	for ci, samples := range cases {
		var h Histogram
		for _, v := range samples {
			h.Observe(v)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			ref := exactQuantile(samples, q)
			lo, hi := bucketBounds(ref)
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Errorf("case %d: Quantile(%v) = %v outside bucket [%v,%v] of exact %d",
					ci, q, got, lo, hi, ref)
			}
		}
		// Monotonicity in q.
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("case %d: Quantile not monotone at q=%v: %v < %v", ci, q, v, prev)
			}
			prev = v
		}
	}
}

func TestHistogramSummaryAndReset(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30, 40, 1000} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 5 || s.Max != 1000 || s.Mean != h.Mean() {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != h.Quantile(0.5) || s.P90 != h.Quantile(0.9) || s.P99 != h.Quantile(0.99) {
		t.Fatalf("Summary quantiles disagree with Quantile: %+v", s)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > float64(s.Max) {
		t.Fatalf("Summary quantiles not ordered: %+v", s)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("Reset left state behind: %+v", h.Summary())
	}
	h.Observe(7)
	if h.Count() != 1 || h.Max() != 7 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 5, 77, 431, 9000} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"P99"`) {
		t.Fatalf("export carries no quantile block: %s", data)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() || back.Max() != h.Max() {
		t.Fatalf("round trip lost counts: %v vs %v", back.Summary(), h.Summary())
	}
	if back.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatalf("round trip changed quantiles: %v vs %v", back.Quantile(0.99), h.Quantile(0.99))
	}
}
