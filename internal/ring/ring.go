// Package ring models the point-to-point, bi-directional intrachip
// connection network of Figure 1: an address ring that serializes and
// broadcasts coherence transactions to all bus agents, and two
// unidirectional data rings that carry cache lines.
//
// The ring runs at half the core clock with a 32-byte data path
// (Table 3), so a 128-byte line occupies a data ring for 4 beats x 2
// core cycles = 8 core cycles, and the address ring accepts one new
// transaction every 2 core cycles. Contention appears as FIFO queueing
// delay on these resources; propagation latency is part of the
// config.Config timing decomposition, not of this package.
package ring

import (
	"cmpcache/internal/config"
	"cmpcache/internal/sim"
)

// Ring is the intrachip interconnect. It is a timing resource only;
// routing and snooping semantics live in the system orchestrator.
type Ring struct {
	addr    sim.Server
	data    [2]sim.Server
	addrOcc config.Cycles
	dataOcc config.Cycles
}

// New builds a ring from the configuration's occupancy parameters.
func New(cfg *config.Config) *Ring {
	if cfg.AddrRingOccupancy <= 0 || cfg.DataRingOccupancy <= 0 {
		panic("ring: occupancies must be positive")
	}
	return &Ring{addrOcc: cfg.AddrRingOccupancy, dataOcc: cfg.DataRingOccupancy}
}

// ReserveAddress books an address-ring slot at or after now and returns
// the cycle the transaction begins its broadcast. Transactions are
// serialized here: this is the chip's coherence point of order.
func (r *Ring) ReserveAddress(now config.Cycles) config.Cycles {
	return r.addr.Reserve(now, r.addrOcc)
}

// AddressNextFree returns the cycle at which the address ring's
// arbitration pipeline next becomes idle. Observation only — the
// sharded coordinator folds it into its round horizon so that a bus
// request posted anywhere in a round combines no earlier than the
// horizon itself.
func (r *Ring) AddressNextFree() config.Cycles { return r.addr.NextFree() }

// ReserveData books a line transfer on whichever direction of the data
// ring frees up first, returning the transfer's start cycle. The
// returned completion is start + DataOccupancy.
func (r *Ring) ReserveData(now config.Cycles) config.Cycles {
	if r.data[0].NextFree() <= r.data[1].NextFree() {
		return r.data[0].Reserve(now, r.dataOcc)
	}
	return r.data[1].Reserve(now, r.dataOcc)
}

// DataOccupancy returns the per-line data transfer time.
func (r *Ring) DataOccupancy() config.Cycles { return r.dataOcc }

// AddressTransactions returns the number of address-ring slots granted.
func (r *Ring) AddressTransactions() uint64 { return r.addr.Reservations() }

// DataTransfers returns the number of line transfers granted.
func (r *Ring) DataTransfers() uint64 {
	return r.data[0].Reservations() + r.data[1].Reservations()
}

// AddressWaited returns cumulative address-ring queueing delay.
func (r *Ring) AddressWaited() config.Cycles { return r.addr.WaitedCycles() }

// DataWaited returns cumulative data-ring queueing delay.
func (r *Ring) DataWaited() config.Cycles {
	return r.data[0].WaitedCycles() + r.data[1].WaitedCycles()
}

// AddressBusyCycles returns cumulative booked address-ring service time
// (the numerator of AddressUtilization; samplers difference it to get
// per-window utilization).
func (r *Ring) AddressBusyCycles() config.Cycles { return r.addr.BusyCycles() }

// DataBusyCycles returns cumulative booked service time summed over
// both data-ring directions (full utilization of both rings over an
// interval w therefore reads as 2*w busy cycles).
func (r *Ring) DataBusyCycles() config.Cycles {
	return r.data[0].BusyCycles() + r.data[1].BusyCycles()
}

// AddressUtilization returns the address ring's busy fraction over
// elapsed cycles.
func (r *Ring) AddressUtilization(elapsed config.Cycles) float64 {
	return r.addr.Utilization(elapsed)
}

// DataUtilization returns the mean busy fraction of the two data rings.
func (r *Ring) DataUtilization(elapsed config.Cycles) float64 {
	return (r.data[0].Utilization(elapsed) + r.data[1].Utilization(elapsed)) / 2
}
