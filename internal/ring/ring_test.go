package ring

import (
	"testing"

	"cmpcache/internal/config"
)

func newRing() *Ring {
	cfg := config.Default()
	return New(&cfg)
}

func TestAddressSerialization(t *testing.T) {
	r := newRing()
	a := r.ReserveAddress(100)
	b := r.ReserveAddress(100)
	c := r.ReserveAddress(100)
	if a != 100 || b != 102 || c != 104 {
		t.Fatalf("starts = %d/%d/%d, want 100/102/104 (one txn per 2 cycles)", a, b, c)
	}
	if r.AddressTransactions() != 3 {
		t.Fatalf("AddressTransactions = %d, want 3", r.AddressTransactions())
	}
}

func TestDataRingUsesBothDirections(t *testing.T) {
	r := newRing()
	a := r.ReserveData(0)
	b := r.ReserveData(0)
	if a != 0 || b != 0 {
		t.Fatalf("two transfers should start concurrently on opposite rings: %d, %d", a, b)
	}
	c := r.ReserveData(0)
	if c != 8 {
		t.Fatalf("third transfer = %d, want 8 (both rings busy)", c)
	}
	if r.DataTransfers() != 3 {
		t.Fatalf("DataTransfers = %d, want 3", r.DataTransfers())
	}
}

func TestDataOccupancyMatchesTable3(t *testing.T) {
	// 128B line / 32B ring width * 2 core cycles per beat = 8 cycles.
	r := newRing()
	if r.DataOccupancy() != 8 {
		t.Fatalf("DataOccupancy = %d, want 8", r.DataOccupancy())
	}
}

func TestWaitAccounting(t *testing.T) {
	r := newRing()
	r.ReserveAddress(0)
	r.ReserveAddress(0) // waits 2
	if r.AddressWaited() != 2 {
		t.Fatalf("AddressWaited = %d, want 2", r.AddressWaited())
	}
	r.ReserveData(0)
	r.ReserveData(0)
	r.ReserveData(0) // waits 8
	if r.DataWaited() != 8 {
		t.Fatalf("DataWaited = %d, want 8", r.DataWaited())
	}
}

func TestUtilization(t *testing.T) {
	r := newRing()
	r.ReserveAddress(0) // 2 busy cycles
	if got := r.AddressUtilization(100); got != 0.02 {
		t.Fatalf("AddressUtilization = %v, want 0.02", got)
	}
	r.ReserveData(0) // 8 busy cycles on one of two rings
	if got := r.DataUtilization(100); got != 0.04 {
		t.Fatalf("DataUtilization = %v, want 0.04", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := config.Default()
	cfg.DataRingOccupancy = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero occupancy accepted")
		}
	}()
	New(&cfg)
}
