package system

import (
	"cmpcache/internal/audit"
	"cmpcache/internal/sim"
)

// AttachAuditor installs a as this run's shadow invariant checker: the
// engine's per-event tick drives its periodic sweeps, and the protocol
// commit points call its semantic hooks. Attach before Run. Like the
// metrics probe, an auditor is observation-only — it never perturbs the
// event sequence — and a system without one pays a single nil check per
// hook site.
func (s *System) AttachAuditor(a *audit.Auditor) {
	s.auditor = a
	a.Bind(audit.View{
		Cfg:        &s.cfg,
		L2s:        s.l2s,
		L3:         s.l3,
		WBInFlight: func(idx int) bool { return s.wbInFlight[idx] },
		Counters: func() audit.Counters {
			return audit.Counters{
				SnarfArbitrated: s.collector.SnarfArbitrated(),
				WBSnarfed:       s.wbSnarfed,
				SnarfFallbacks:  s.snarfFallbacks,
			}
		},
	})
	s.installTick()
}

// installTick composes the engine's single per-event tick slot from
// whichever observers are attached, so probe and auditor coexist in any
// attach order.
func (s *System) installTick() {
	probe, aud := s.probe, s.auditor
	switch {
	case probe != nil && aud != nil:
		s.engine.SetTick(func(t sim.Time) { probe.Tick(t); aud.Tick(t) })
	case probe != nil:
		s.engine.SetTick(probe.Tick)
	case aud != nil:
		s.engine.SetTick(aud.Tick)
	}
}

// releaseL3Token returns one L3 incoming-queue token, keeping the
// auditor's credit ledger in step. Every release in the system goes
// through here.
func (s *System) releaseL3Token() {
	s.l3.ReleaseToken()
	if s.auditor != nil {
		s.auditor.OnTokenReleased()
	}
}
