package system

import (
	"cmpcache/internal/audit"
)

// AttachAuditor installs a as this run's shadow invariant checker: the
// round coordinator drives its periodic sweeps (per event in the serial
// phase, batched to the horizon at each barrier), and the protocol
// commit points call its semantic hooks — directly from global context,
// through the barrier's deterministic replay from shard context. Attach
// before Run. Like the metrics probe, an auditor is observation-only —
// it never perturbs the event sequence — and a system without one pays
// a single nil check per hook site.
func (s *System) AttachAuditor(a *audit.Auditor) {
	s.auditor = a
	a.Bind(audit.View{
		Cfg:        &s.cfg,
		L2s:        s.l2s,
		L3:         s.l3,
		WBInFlight: func(idx int) bool { return s.wbInFlight[idx] },
		Counters: func() audit.Counters {
			return audit.Counters{
				SnarfArbitrated: s.collector.SnarfArbitrated(),
				WBSnarfed:       s.wbSnarfed,
				SnarfFallbacks:  s.snarfFallbacks,
			}
		},
	})
}

// releaseL3Token returns one L3 incoming-queue token, keeping the
// auditor's credit ledger in step. Every release in the system goes
// through here.
func (s *System) releaseL3Token() {
	s.l3.ReleaseToken()
	if s.auditor != nil {
		s.auditor.OnTokenReleased()
	}
}
