package system

import (
	"cmpcache/internal/audit"
	"cmpcache/internal/sim"
)

// AttachAuditor installs a as this run's shadow invariant checker: the
// engine's per-event tick drives its periodic sweeps, and the protocol
// commit points call its semantic hooks. Attach before Run. Like the
// metrics probe, an auditor is observation-only — it never perturbs the
// event sequence — and a system without one pays a single nil check per
// hook site.
func (s *System) AttachAuditor(a *audit.Auditor) {
	s.auditor = a
	a.Bind(audit.View{
		Cfg:        &s.cfg,
		L2s:        s.l2s,
		L3:         s.l3,
		WBInFlight: func(idx int) bool { return s.wbInFlight[idx] },
		Counters: func() audit.Counters {
			return audit.Counters{
				SnarfArbitrated: s.collector.SnarfArbitrated(),
				WBSnarfed:       s.wbSnarfed,
				SnarfFallbacks:  s.snarfFallbacks,
			}
		},
	})
	s.installTick()
}

// installTick composes the engine's single per-event tick slot from
// whichever observers are attached, so the probe, the auditor and a
// windowed latency collector coexist in any attach order. A non-windowed
// latency collector needs no tick at all: its hooks fire at the protocol
// commit points, so attaching one leaves the engine's hot loop untouched.
func (s *System) installTick() {
	ticks := make([]func(sim.Time), 0, 3)
	if s.probe != nil {
		ticks = append(ticks, s.probe.Tick)
	}
	if s.auditor != nil {
		ticks = append(ticks, s.auditor.Tick)
	}
	if s.lat != nil && s.lat.Windowed() {
		ticks = append(ticks, s.lat.Tick)
	}
	switch len(ticks) {
	case 0:
	case 1:
		s.engine.SetTick(ticks[0])
	default:
		all := ticks
		s.engine.SetTick(func(t sim.Time) {
			for _, f := range all {
				f(t)
			}
		})
	}
}

// releaseL3Token returns one L3 incoming-queue token, keeping the
// auditor's credit ledger in step. Every release in the system goes
// through here.
func (s *System) releaseL3Token() {
	s.l3.ReleaseToken()
	if s.auditor != nil {
		s.auditor.OnTokenReleased()
	}
}
