package system

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cmpcache/internal/audit"
	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/trace"
	"cmpcache/internal/txlat"
	"cmpcache/internal/workload"
)

// allowProcs raises GOMAXPROCS for the duration of a test so the worker
// pool actually spins up on single-CPU CI runners (the goroutines
// timeshare; determinism must hold regardless of physical parallelism).
func allowProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// parallelTrace synthesizes a deterministic tp-profile workload sized
// for the matrix: enough cross-shard sharing and write backs to
// exercise every bus path, small enough to run dozens of times.
func parallelTrace(t *testing.T, threads, refs int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName("tp")
	if err != nil {
		t.Fatal(err)
	}
	p.Threads = threads
	p.RefsPerThread = refs
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// matrixRun executes one (workers, attachments) cell and returns every
// observable byte the run produced: the marshalled Results (which carry
// the probe series and latency report), the probe's event trace, and
// the auditor's verdict.
type matrixOut struct {
	results  []byte
	trace    []byte
	auditOK  bool
	auditSum string
	sweeps   uint64
}

func matrixRun(t *testing.T, cfg config.Config, tr *trace.Trace, workers int, attach string) matrixOut {
	t.Helper()
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 1 {
		s.SetWorkers(workers)
	}
	var (
		tbuf bytes.Buffer
		aud  *audit.Auditor
	)
	withProbe := attach == "probe" || attach == "all"
	withAudit := attach == "auditor" || attach == "all"
	withLat := attach == "txlat" || attach == "all"
	var tw *metrics.TraceWriter
	if withProbe {
		p := metrics.NewProbe(metrics.Config{Interval: 700})
		tw = metrics.NewTraceWriter(&tbuf, metrics.JSONL)
		p.SetTrace(tw)
		s.Attach(p)
	}
	if withAudit {
		aud = audit.New(audit.Config{Differential: true, SweepEvery: 512})
		s.AttachAuditor(aud)
	}
	if withLat {
		s.AttachLatency(txlat.New(txlat.Config{TopK: 8, Interval: 2_000}))
	}
	res := s.Run()
	if tw != nil {
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	out := matrixOut{results: data, trace: tbuf.Bytes()}
	if aud != nil {
		out.auditOK = aud.Ok()
		out.auditSum = aud.Summary()
		out.sweeps = aud.Sweeps()
	}
	return out
}

// TestParallelBitIdentical is the determinism matrix of Issue 7: for
// every scenario × attachment combination, a run at 2, 4 and 8 workers
// must reproduce the single-worker run bit for bit — marshalled
// Results (including Metrics and Latency), the per-transaction event
// trace, and the auditor's verdict and sweep count.
func TestParallelBitIdentical(t *testing.T) {
	allowProcs(t, 8)

	big := config.Default()
	big.Cores = 32 // NumL2 = 16: room for 8 genuinely distinct workers

	type scenario struct {
		name    string
		cfg     config.Config
		tr      *trace.Trace
		attachs []string
	}
	all := []string{"none", "probe", "auditor", "txlat", "all"}
	scenarios := []scenario{
		// Full attachment sweep on the paper chip: one scenario per
		// mechanism (the ablation grid), sharing one tp trace.
		{"default-baseline", config.Default(), parallelTrace(t, 16, 400), []string{"none", "all"}},
		{"default-wbht", config.Default().WithMechanism(config.WBHT), parallelTrace(t, 16, 400), []string{"none", "all"}},
		{"default-snarf", config.Default().WithMechanism(config.Snarf), parallelTrace(t, 16, 400), []string{"none", "all"}},
		{"default-combined", config.Default().WithMechanism(config.Combined), parallelTrace(t, 16, 400), all},
		// Big chip: 16 shards, so 8 workers own 2 shards each.
		{"big-combined", big.WithMechanism(config.Combined), parallelTrace(t, 64, 120), all},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, attach := range sc.attachs {
				ref := matrixRun(t, sc.cfg, sc.tr, 1, attach)
				if attach == "auditor" || attach == "all" {
					if !ref.auditOK {
						t.Fatalf("%s: serial reference run failed audit:\n%s", attach, ref.auditSum)
					}
					if ref.sweeps == 0 {
						t.Fatalf("%s: serial reference run swept 0 times; matrix would not exercise the auditor", attach)
					}
				}
				for _, w := range []int{2, 4, 8} {
					got := matrixRun(t, sc.cfg, sc.tr, w, attach)
					if !bytes.Equal(got.results, ref.results) {
						t.Errorf("%s workers=%d: Results diverged from serial at %s",
							attach, w, firstDiff(ref.results, got.results))
					}
					if !bytes.Equal(got.trace, ref.trace) {
						t.Errorf("%s workers=%d: event trace diverged from serial at %s",
							attach, w, firstDiff(ref.trace, got.trace))
					}
					if got.auditOK != ref.auditOK || got.auditSum != ref.auditSum || got.sweeps != ref.sweeps {
						t.Errorf("%s workers=%d: audit verdict diverged: ok=%v/%v sweeps=%d/%d\nserial: %s\ngot:    %s",
							attach, w, ref.auditOK, got.auditOK, ref.sweeps, got.sweeps, ref.auditSum, got.auditSum)
					}
				}
			}
		})
	}
}

// firstDiff renders the first divergent window of two byte slices.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			clip := func(s []byte) []byte {
				if hi < len(s) {
					return s[lo:hi]
				}
				return s[lo:]
			}
			return fmt.Sprintf("byte %d: %q vs %q", i, clip(a), clip(b))
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestSetWorkersClamp pins the worker-count resolution: auto (<= 0)
// selects MaxWorkers = min(NumL2, GOMAXPROCS), and explicit requests
// clamp to that — extra workers beyond the shard count or the CPU
// budget would only contend.
func TestSetWorkersClamp(t *testing.T) {
	allowProcs(t, 8)
	cfg := config.Default() // NumL2 = 4
	if got := MaxWorkers(&cfg); got != 4 {
		t.Fatalf("MaxWorkers = %d, want 4 (NumL2) under GOMAXPROCS=8", got)
	}
	s, err := New(cfg, parallelTrace(t, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ req, want int }{
		{0, 4}, {-1, 4}, {1, 1}, {3, 3}, {4, 4}, {64, 4},
	} {
		s.SetWorkers(tc.req)
		if got := s.Workers(); got != tc.want {
			t.Errorf("SetWorkers(%d) -> Workers() = %d, want %d", tc.req, got, tc.want)
		}
	}
	runtime.GOMAXPROCS(2)
	if got := MaxWorkers(&cfg); got != 2 {
		t.Fatalf("MaxWorkers = %d, want 2 under GOMAXPROCS=2", got)
	}
	s.SetWorkers(0)
	if got := s.Workers(); got != 2 {
		t.Errorf("auto workers = %d, want 2 under GOMAXPROCS=2", got)
	}
}

// TestParallelGoroutineBound asserts the pool's footprint: a run at W
// workers holds at most W-1 goroutines beyond the caller (the
// coordinator doubles as worker 0), and they are all retired by the
// time Run returns.
func TestParallelGoroutineBound(t *testing.T) {
	allowProcs(t, 8)
	before := runtime.NumGoroutine()
	cfg := config.Default()
	s, err := New(cfg, parallelTrace(t, 16, 400))
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	peak := 0
	s.DebugWatchdog(func(int64, uint64, int, string) {
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
	})
	s.Run()
	if peak > before+3 {
		t.Errorf("observed %d goroutines mid-run with 4 workers (baseline %d); pool must add at most 3", peak, before)
	}
	// Worker retirement is asynchronous; under a loaded machine (the
	// full test suite saturating every core) the exiting goroutines can
	// need real time, not just yields, to be descheduled and counted out.
	for deadline := time.Now().Add(2 * time.Second); runtime.NumGoroutine() > before && time.Now().Before(deadline); {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("%d goroutines after Run, want <= %d: pool leaked workers", after, before)
	}
}

// TestRunContextParallelCancel: cancellation must work (and not hang
// the pool) when workers > 1.
func TestRunContextParallelCancel(t *testing.T) {
	allowProcs(t, 8)
	s, err := New(config.Default(), parallelTrace(t, 16, 2_000))
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); err == nil {
		t.Fatal("RunContext returned nil error under a cancelled context")
	}
}
