package system

import (
	"bytes"
	"testing"

	"cmpcache/internal/audit"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/wbpolicy"
	"cmpcache/internal/workload"
)

// conformanceMechanisms is every registered write-back policy. A new
// policy added to wbpolicy.New must be added here (and will then be
// held to the same determinism obligations as the paper mechanisms).
var conformanceMechanisms = []config.Mechanism{
	config.Baseline, config.WBHT, config.Snarf, config.Combined,
	config.ReuseDist, config.HybridUI,
}

// TestPolicyConformanceBitIdentity holds every registered policy to the
// engine's core guarantee: a sharded run at 2, 4 and 8 workers must
// reproduce the serial run bit for bit — marshalled Results and the
// differential auditor's verdict alike. A policy whose agent state
// leaks across shard boundaries, or whose chip hooks run outside the
// serial phase, diverges here.
func TestPolicyConformanceBitIdentity(t *testing.T) {
	allowProcs(t, 8)
	tr := parallelTrace(t, 16, 400)
	for _, m := range conformanceMechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			ref := matrixRun(t, cfg, tr, 1, "auditor")
			if !ref.auditOK {
				t.Fatalf("serial reference run failed audit:\n%s", ref.auditSum)
			}
			for _, w := range []int{2, 4, 8} {
				got := matrixRun(t, cfg, tr, w, "auditor")
				if !bytes.Equal(got.results, ref.results) {
					t.Errorf("workers=%d: Results diverged from serial at %s",
						w, firstDiff(ref.results, got.results))
				}
				if got.auditOK != ref.auditOK || got.auditSum != ref.auditSum {
					t.Errorf("workers=%d: audit verdict diverged\nserial: %s\ngot:    %s",
						w, ref.auditSum, got.auditSum)
				}
			}
		})
	}
}

// TestPolicyConformanceAuditSoak runs every registered policy over
// several workload seeds with the full differential auditor (invariant
// ledgers plus the reference coherence model) and requires a clean
// verdict on each. Seeds are fixed, not sampled at test time, so a
// failure reproduces.
func TestPolicyConformanceAuditSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	seeds := []uint64{1, 0x9E3779B97F4A7C15, 42424242}
	for _, m := range conformanceMechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			for _, seed := range seeds {
				p, err := workload.ByName("tp")
				if err != nil {
					t.Fatal(err)
				}
				p.Seed = seed
				p.Threads = 16
				p.RefsPerThread = 600
				tr, err := p.Generate()
				if err != nil {
					t.Fatal(err)
				}
				cfg := config.Default().WithMechanism(m)
				s, err := New(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				aud := audit.New(audit.Config{Differential: true, SweepEvery: 512})
				s.AttachAuditor(aud)
				s.Run()
				if !aud.Ok() {
					t.Fatalf("seed %#x: audit violations:\n%s", seed, aud.Summary())
				}
			}
		})
	}
}

// TestPolicyHooksZeroAlloc pins the observation hooks of every
// registered policy to zero steady-state allocations, the property the
// cmpbench bench-check throughput gate depends on: hooks fire per bus
// event, so a single allocation per call would dominate the allocs/op
// budget. Tables are warmed first — cold-path allocation (building a
// sketch row, inserting a score entry) is allowed.
func TestPolicyHooksZeroAlloc(t *testing.T) {
	// A peer-sourced read outcome: the shape that trains the hybridui
	// sharing score, so its hot path is exercised too.
	out := coherence.Outcome{Source: coherence.SourcePeerL2, SourceAgent: 2, SharedElsewhere: true}
	for _, m := range conformanceMechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			chip := wbpolicy.New(&cfg)
			agent := chip.Agent(0)
			// Warm every table with the keys the measurement loop uses.
			for key := uint64(0); key < 64; key++ {
				chip.ObserveWriteBack(key)
				chip.ObserveDemandMiss(key)
				chip.ObserveDemandOutcome(1, key, coherence.Read, out)
				chip.UseUpdate(key)
				agent.ObserveEviction(key)
				agent.ObserveLocalMiss(key)
				agent.AbortCleanWB(key, true, false)
				agent.FlagWriteBack(key)
			}
			allocs := testing.AllocsPerRun(100, func() {
				for key := uint64(0); key < 64; key++ {
					chip.ObserveWriteBack(key)
					chip.ObserveDemandMiss(key)
					chip.ObserveDemandOutcome(1, key, coherence.Read, out)
					chip.UseUpdate(key)
					agent.ObserveEviction(key)
					agent.ObserveLocalMiss(key)
					agent.AbortCleanWB(key, true, false)
					agent.FlagWriteBack(key)
					agent.AcceptOffer(key)
					agent.SnoopsWB()
				}
				chip.SnoopsWBRing()
				chip.GatedBySwitch()
			})
			if allocs != 0 {
				t.Fatalf("policy hooks allocate %.1f times per warm sweep; hooks must be allocation-free", allocs)
			}
		})
	}
}
