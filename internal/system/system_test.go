package system

import (
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// mkTrace builds a trace over the chip's 16 threads from explicit
// records.
func mkTrace(recs ...trace.Record) *trace.Trace {
	return &trace.Trace{Name: "test", Threads: 16, Records: recs}
}

// lineAddr turns an L2 (slice, set, tag) coordinate into a byte address:
// key = (tag*sets + set) << sliceBits | slice, addr = key * 128.
func lineAddr(cfg *config.Config, slice, set, tag int) uint64 {
	sets := cfg.L2Lines() / cfg.L2Slices / cfg.L2Assoc
	key := uint64(tag*sets+set)<<2 | uint64(slice)
	return key * uint64(cfg.LineBytes)
}

func run(t *testing.T, cfg config.Config, tr *trace.Trace) (*System, *Results) {
	t.Helper()
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Run()
}

func TestMemoryLatencyMatchesTable3(t *testing.T) {
	cfg := config.Default()
	_, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
	))
	if r.Cycles != uint64(cfg.MemLatency()) {
		t.Fatalf("single cold load = %d cycles, want %d", r.Cycles, cfg.MemLatency())
	}
	if r.FillsFromMem != 1 || r.FillsFromL3 != 0 || r.FillsFromPeer != 0 {
		t.Fatalf("fills = %d/%d/%d, want memory only",
			r.FillsFromPeer, r.FillsFromL3, r.FillsFromMem)
	}
}

func TestL2HitLatencyMatchesTable3(t *testing.T) {
	cfg := config.Default()
	cfg.MaxOutstanding = 1
	_, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
	))
	want := uint64(cfg.MemLatency() + cfg.L2HitLatency())
	if r.Cycles != want {
		t.Fatalf("miss+hit = %d cycles, want %d", r.Cycles, want)
	}
	if r.L2.Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1", r.L2.Hits)
	}
}

func TestPeerInterventionLatencyMatchesTable3(t *testing.T) {
	cfg := config.Default()
	// Thread 0 -> L2 0 warms the line; thread 4 -> L2 1 reads it later.
	_, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
		trace.Record{Thread: 4, Op: trace.Load, Addr: 0x10000, Gap: 1000},
	))
	want := uint64(1000 + cfg.L2ToL2Latency())
	if r.Cycles != want {
		t.Fatalf("intervention completes at %d, want %d", r.Cycles, want)
	}
	if r.FillsFromPeer != 1 {
		t.Fatalf("peer fills = %d, want 1", r.FillsFromPeer)
	}
}

func TestInterventionStateTransitions(t *testing.T) {
	cfg := config.Default()
	s, _ := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
		trace.Record{Thread: 4, Op: trace.Load, Addr: 0x10000, Gap: 1000},
	))
	key := uint64(0x10000 / cfg.LineBytes)
	if st := s.l2s[0].State(key); st != coherence.Shared {
		t.Fatalf("supplier state = %v, want S (downgraded from E)", st)
	}
	if st := s.l2s[1].State(key); st != coherence.SharedLast {
		t.Fatalf("requester state = %v, want SL (latest reader)", st)
	}
}

func TestDirtyInterventionKeepsTaggedSupplier(t *testing.T) {
	cfg := config.Default()
	s, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Store, Addr: 0x10000},
		trace.Record{Thread: 4, Op: trace.Load, Addr: 0x10000, Gap: 1000},
	))
	key := uint64(0x10000 / cfg.LineBytes)
	if st := s.l2s[0].State(key); st != coherence.Tagged {
		t.Fatalf("dirty supplier state = %v, want T", st)
	}
	if st := s.l2s[1].State(key); st != coherence.Shared {
		t.Fatalf("requester of dirty line = %v, want S", st)
	}
	if r.FillsFromPeer != 1 {
		t.Fatalf("peer fills = %d, want 1", r.FillsFromPeer)
	}
}

func TestStoreMissInstallsModified(t *testing.T) {
	cfg := config.Default()
	s, _ := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Store, Addr: 0x10000},
	))
	key := uint64(0x10000 / cfg.LineBytes)
	if st := s.l2s[0].State(key); st != coherence.Modified {
		t.Fatalf("state after store miss = %v, want M", st)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	cfg := config.Default()
	s, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000},
		trace.Record{Thread: 4, Op: trace.Load, Addr: 0x10000, Gap: 1000},
		trace.Record{Thread: 0, Op: trace.Store, Addr: 0x10000, Gap: 2000},
	))
	key := uint64(0x10000 / cfg.LineBytes)
	if st := s.l2s[0].State(key); st != coherence.Modified {
		t.Fatalf("claimer state = %v, want M", st)
	}
	if st := s.l2s[1].State(key); st != coherence.Invalid {
		t.Fatalf("sharer state = %v, want I", st)
	}
	if r.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", r.Upgrades)
	}
	// The upgrade completes at the combined response: gap 2000 is from
	// thread 0's first issue (cycle 0), so the store issues at 2000 and
	// completes at 2000 + 44.
	want := uint64(2000 + cfg.CombinedResponseLatency())
	if r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
}

// evictionTrace stores or loads assoc+1 lines of the same L2 set from
// one thread, forcing one eviction.
func evictionTrace(cfg *config.Config, op trace.Op, extraGap uint32) *trace.Trace {
	var recs []trace.Record
	for i := 0; i <= cfg.L2Assoc; i++ {
		recs = append(recs, trace.Record{
			Thread: 0, Op: op, Addr: lineAddr(cfg, 0, 0, i), Gap: 500,
		})
	}
	return mkTrace(recs...)
}

func TestDirtyEvictionReachesL3(t *testing.T) {
	cfg := config.Default()
	s, r := run(t, cfg, evictionTrace(&cfg, trace.Store, 0))
	if r.L2.DirtyVictims != 1 {
		t.Fatalf("dirty victims = %d, want 1", r.L2.DirtyVictims)
	}
	if r.WBToL3 != 1 {
		t.Fatalf("WBs to L3 = %d, want 1", r.WBToL3)
	}
	key := lineAddr(&cfg, 0, 0, 0) / uint64(cfg.LineBytes)
	if !s.l3.Contains(key) {
		t.Fatal("evicted dirty line not in L3 victim cache")
	}
}

func TestCleanEvictionWrittenBackBaseline(t *testing.T) {
	cfg := config.Default()
	s, r := run(t, cfg, evictionTrace(&cfg, trace.Load, 0))
	if r.L2.CleanVictims != 1 || r.L2.CleanWBQueued != 1 {
		t.Fatalf("clean victims/queued = %d/%d, want 1/1",
			r.L2.CleanVictims, r.L2.CleanWBQueued)
	}
	key := lineAddr(&cfg, 0, 0, 0) / uint64(cfg.LineBytes)
	if !s.l3.Contains(key) {
		t.Fatal("clean victim not written back to L3 (baseline policy)")
	}
}

func TestVictimReloadHitsL3(t *testing.T) {
	cfg := config.Default()
	tr := evictionTrace(&cfg, trace.Load, 0)
	tr.Records = append(tr.Records, trace.Record{
		Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, 0), Gap: 5000,
	})
	_, r := run(t, cfg, tr)
	if r.FillsFromL3 != 1 {
		t.Fatalf("L3 fills = %d, want 1 (victim cache hit)", r.FillsFromL3)
	}
}

func TestRedundantCleanWBSquashedByL3(t *testing.T) {
	cfg := config.Default()
	// Evict line 0 (clean WB to L3), reload it, evict it again: the
	// second write back must be squashed (Table 1's redundancy).
	var recs []trace.Record
	for round := 0; round < 2; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 2000,
			})
		}
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.WBSquashedL3 == 0 {
		t.Fatal("no clean write back squashed despite L3 residency")
	}
	if r.L3CleanWBAlready == 0 {
		t.Fatal("Table 1 redundancy counter still zero")
	}
}

func TestWBHTLearnsAndAborts(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false // always consult
	// Three eviction rounds of the same set: round 1 fills the L3,
	// round 2's write backs are squashed and allocate WBHT entries,
	// round 3's evictions are aborted before reaching the bus.
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 2000,
			})
		}
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.WBHT.Allocations == 0 {
		t.Fatal("WBHT never allocated")
	}
	if r.L2.CleanWBAborted == 0 {
		t.Fatal("WBHT never aborted a clean write back")
	}
	if r.WBHT.Correct == 0 {
		t.Fatal("no WBHT decisions scored")
	}
}

func TestWBHTSwitchKeepsTableDormantWithoutRetries(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	// Switch enabled (default): with this tiny workload there are no
	// retries, so the WBHT must never be consulted for decisions.
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 2000,
			})
		}
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.L2.CleanWBAborted != 0 {
		t.Fatalf("aborts = %d with dormant switch, want 0", r.L2.CleanWBAborted)
	}
	if r.WBHT.Allocations == 0 {
		t.Fatal("table must be kept up to date even while dormant")
	}
}

func TestSnarfEndToEnd(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	// Build reuse history for line 0: evict (WB recorded), miss again
	// (use bit set), evict again (snarfable -> peer absorbs), then a
	// third miss is served by the snarfing peer via intervention.
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 3000,
			})
		}
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.Snarf.TableRecorded == 0 || r.Snarf.TableReuse == 0 {
		t.Fatalf("snarf table never learned: %+v", r.Snarf)
	}
	if r.WBSnarfed == 0 {
		t.Fatal("no write back was snarfed")
	}
	if r.FillsFromPeer == 0 {
		t.Fatal("snarfed line never supplied an intervention")
	}
	if r.Snarf.Interventions == 0 {
		t.Fatal("snarfed-line intervention not scored")
	}
}

func TestReuseTrackerMatchesWorkload(t *testing.T) {
	cfg := config.Default()
	// Line 0 is evicted then re-missed: one reused write back.
	var recs []trace.Record
	for i := 0; i <= cfg.L2Assoc; i++ {
		recs = append(recs, trace.Record{
			Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 2000,
		})
	}
	recs = append(recs, trace.Record{
		Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, 0), Gap: 5000,
	})
	_, r := run(t, cfg, mkTrace(recs...))
	// Two write backs: line 0's eviction, plus the victim displaced by
	// reloading line 0. Only line 0's was reused.
	if r.Reuse.Attempted != 2 || r.Reuse.ReusedAttempt != 1 {
		t.Fatalf("reuse stats = %+v, want 2 attempted / 1 reused", r.Reuse)
	}
	if r.Reuse.PctTotalReused() != 50 {
		t.Fatalf("PctTotalReused = %v, want 50", r.Reuse.PctTotalReused())
	}
}

func TestConservationAndDeterminism(t *testing.T) {
	cfg := config.Default()
	var recs []trace.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, trace.Record{
			Thread: uint16(i % 16),
			Op:     trace.Op(i % 2), // alternate loads and stores
			Addr:   uint64((i * 7919) % 4096 * 128),
			Gap:    uint32(i % 17),
		})
	}
	_, r1 := run(t, cfg, mkTrace(recs...))
	_, r2 := run(t, cfg, mkTrace(recs...))
	if r1.RefsIssued != 200 || r1.RefsCompleted != 200 {
		t.Fatalf("conservation broken: %d issued, %d completed",
			r1.RefsIssued, r1.RefsCompleted)
	}
	if r1.Cycles != r2.Cycles || r1.WBRequests != r2.WBRequests {
		t.Fatalf("nondeterminism: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestCoherenceInvariants drives a shared-hot-set workload across all
// threads and checks single-owner invariants for every touched line.
func TestCoherenceInvariants(t *testing.T) {
	cfg := config.Default()
	const lines = 64
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, trace.Record{
			Thread: uint16((i * 5) % 16),
			Op:     trace.Op((i / 3) % 2),
			Addr:   uint64((i*37)%lines) * 128,
			Gap:    uint32(i % 5),
		})
	}
	s, r := run(t, cfg, mkTrace(recs...))
	if r.RefsCompleted != 2000 {
		t.Fatalf("completed %d of 2000", r.RefsCompleted)
	}
	for key := uint64(0); key < lines; key++ {
		var m, e, tg, sl, sh int
		for _, c := range s.l2s {
			switch c.State(key) {
			case coherence.Modified:
				m++
			case coherence.Exclusive:
				e++
			case coherence.Tagged:
				tg++
			case coherence.SharedLast:
				sl++
			case coherence.Shared:
				sh++
			}
		}
		if m+e > 0 && (m+e > 1 || tg+sl+sh > 0) {
			t.Fatalf("line %d: exclusive violation m=%d e=%d t=%d sl=%d s=%d",
				key, m, e, tg, sl, sh)
		}
		if tg > 1 || sl > 1 {
			t.Fatalf("line %d: duplicate supplier t=%d sl=%d", key, tg, sl)
		}
		if tg == 1 && sl > 0 {
			t.Fatalf("line %d: both T and SL present", key)
		}
	}
}

func TestMSHRCoalescing(t *testing.T) {
	cfg := config.Default()
	// Two threads on the same L2 miss the same line back to back: one
	// bus transaction, one memory fill, two completions.
	_, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x40000},
		trace.Record{Thread: 1, Op: trace.Load, Addr: 0x40000, Gap: 5},
	))
	if r.FillsFromMem != 1 {
		t.Fatalf("memory fills = %d, want 1 (coalesced)", r.FillsFromMem)
	}
	if r.L2.MSHRAttach != 1 {
		t.Fatalf("MSHR attaches = %d, want 1", r.L2.MSHRAttach)
	}
	if r.RefsCompleted != 2 {
		t.Fatalf("completed = %d, want 2", r.RefsCompleted)
	}
}

func TestStoreCoalescedOntoReadTriggersUpgrade(t *testing.T) {
	cfg := config.Default()
	// Thread 4 shares the line first so the read fill lands SL (not E);
	// the coalesced store then needs a real upgrade.
	_, r := run(t, cfg, mkTrace(
		trace.Record{Thread: 4, Op: trace.Load, Addr: 0x40000},
		trace.Record{Thread: 0, Op: trace.Load, Addr: 0x40000, Gap: 1000},
		trace.Record{Thread: 1, Op: trace.Store, Addr: 0x40000, Gap: 1010},
	))
	if r.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", r.Upgrades)
	}
	if r.RefsCompleted != 3 {
		t.Fatalf("completed = %d", r.RefsCompleted)
	}
}

func TestWBBufferHitRecoversLine(t *testing.T) {
	cfg := config.Default()
	// Evict a dirty line and touch it again immediately: the access must
	// hit the write-back buffer, not go to memory.
	var recs []trace.Record
	for i := 0; i <= cfg.L2Assoc; i++ {
		recs = append(recs, trace.Record{
			Thread: 0, Op: trace.Store, Addr: lineAddr(&cfg, 0, 0, i), Gap: 0,
		})
	}
	recs = append(recs, trace.Record{
		Thread: 1, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, 0), Gap: 0,
	})
	_, r := run(t, cfg, mkTrace(recs...))
	// Either the WB escaped first (load fills from L3) or it was caught
	// in the buffer; both must complete all references.
	if r.RefsCompleted != uint64(len(recs)) {
		t.Fatalf("completed %d of %d", r.RefsCompleted, len(recs))
	}
	if r.L2.WBBufferHits == 0 && r.FillsFromL3 == 0 && r.FillsFromMem == 0 {
		t.Fatal("evicted line neither recovered nor refetched")
	}
}

func TestTraceThreadOverflowRejected(t *testing.T) {
	cfg := config.Default()
	tr := &trace.Trace{Name: "big", Threads: 64, Records: nil}
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("trace with more threads than the chip accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 0
	if _, err := New(cfg, mkTrace()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOutstandingLimitThrottles(t *testing.T) {
	// The same miss-heavy trace must run strictly slower with 1
	// outstanding miss than with 6 (the Figure 2 x-axis).
	mk := func() *trace.Trace {
		var recs []trace.Record
		for i := 0; i < 300; i++ {
			recs = append(recs, trace.Record{
				Thread: uint16(i % 16),
				Op:     trace.Load,
				Addr:   uint64(i*997) % (1 << 20) * 128,
				Gap:    1,
			})
		}
		return mkTrace(recs...)
	}
	cfg1 := config.Default()
	cfg1.MaxOutstanding = 1
	_, r1 := run(t, cfg1, mk())
	cfg6 := config.Default()
	cfg6.MaxOutstanding = 6
	_, r6 := run(t, cfg6, mk())
	if r6.Cycles >= r1.Cycles {
		t.Fatalf("6 outstanding (%d cycles) not faster than 1 (%d cycles)",
			r6.Cycles, r1.Cycles)
	}
}
