package system

import "cmpcache/internal/stats"

// reuseTracker measures write-back reuse (the paper's Table 2): for
// every line it remembers whether a write back is "pending reuse" and
// scores the next demand miss on that line as a reuse of that write
// back. Attempted write backs and L3-accepted write backs are tracked
// separately, since the paper reports reuse as a percentage of both.
// It also accumulates the per-line re-reference-after-write-back counts
// behind the paper's Figure 4 discussion ("many lines in Trade2 are
// written back and then re-referenced more than 300 times").
type reuseTracker struct {
	lines map[uint64]*lineReuse

	attempted      uint64
	accepted       uint64
	reusedAttempt  uint64
	reusedAccepted uint64
}

type lineReuse struct {
	pendingAttempt  bool
	pendingAccepted bool
	everWrittenBack bool
	rerefs          uint32 // demand misses after the first write back
}

func newReuseTracker() *reuseTracker {
	return &reuseTracker{lines: make(map[uint64]*lineReuse)}
}

func (r *reuseTracker) line(key uint64) *lineReuse {
	l := r.lines[key]
	if l == nil {
		l = &lineReuse{}
		r.lines[key] = l
	}
	return l
}

// recordAttempt notes a write back entering an L2 write-back queue.
func (r *reuseTracker) recordAttempt(key uint64) {
	r.attempted++
	l := r.line(key)
	l.pendingAttempt = true
	l.everWrittenBack = true
}

// recordAccepted notes a write back absorbed by the L3.
func (r *reuseTracker) recordAccepted(key uint64) {
	r.accepted++
	r.line(key).pendingAccepted = true
}

// recordDemandMiss scores a demand miss against pending write backs.
func (r *reuseTracker) recordDemandMiss(key uint64) {
	l := r.lines[key]
	if l == nil {
		return
	}
	if l.pendingAttempt {
		l.pendingAttempt = false
		r.reusedAttempt++
	}
	if l.pendingAccepted {
		l.pendingAccepted = false
		r.reusedAccepted++
	}
	if l.everWrittenBack {
		l.rerefs++
	}
}

// ReuseStats is the Table 2 output plus the re-reference histogram.
type ReuseStats struct {
	Attempted      uint64
	Accepted       uint64
	ReusedAttempt  uint64
	ReusedAccepted uint64
	Rerefs         stats.Histogram // per-line misses after first write back
}

func (r *reuseTracker) snapshot() ReuseStats {
	out := ReuseStats{
		Attempted:      r.attempted,
		Accepted:       r.accepted,
		ReusedAttempt:  r.reusedAttempt,
		ReusedAccepted: r.reusedAccepted,
	}
	for _, l := range r.lines {
		if l.everWrittenBack {
			out.Rerefs.Observe(uint64(l.rerefs))
		}
	}
	return out
}

// PctTotalReused returns reused write backs as a percentage of all
// attempted write backs (Table 2, "% Total").
func (s ReuseStats) PctTotalReused() float64 {
	return stats.Percent(s.ReusedAttempt, s.Attempted)
}

// PctAcceptedReused returns reused write backs as a percentage of
// L3-accepted write backs (Table 2, "% Accepted").
func (s ReuseStats) PctAcceptedReused() float64 {
	return stats.Percent(s.ReusedAccepted, s.Accepted)
}
