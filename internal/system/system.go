// Package system wires the full chip multiprocessor of Figure 1 —
// sixteen SMT threads, four sliced L2 caches, the snoop-collecting ring,
// the off-chip L3 victim cache and the memory controller — and
// orchestrates every coherence transaction end to end under the
// configured write-back management mechanism.
//
// The protocol sequencing model: a transaction's snoop, combine and
// state transitions all occur atomically at its combined-response event
// (tag arrays are therefore never in transient states), while data
// movement books latency and bandwidth on the ring, L3 and memory
// resources and completes the requesting thread later. This is the
// standard state-at-commit simplification for bus-serialized protocols;
// the cycle cost of in-flight windows is preserved, only their
// observability is collapsed.
package system

import (
	"context"
	"fmt"

	"cmpcache/internal/audit"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
	"cmpcache/internal/cpu"
	"cmpcache/internal/l2"
	"cmpcache/internal/l3"
	"cmpcache/internal/mem"
	"cmpcache/internal/metrics"
	"cmpcache/internal/ring"
	"cmpcache/internal/sim"
	"cmpcache/internal/stats"
	"cmpcache/internal/trace"
	"cmpcache/internal/txlat"
)

// System is one fully wired simulated chip.
type System struct {
	cfg    config.Config
	engine *sim.Engine

	l2s       []*l2.Cache
	l3        *l3.Cache
	mem       *mem.Controller
	ring      *ring.Ring
	collector *coherence.Collector
	rswitch   *core.RetrySwitch
	threads   *cpu.Complex

	wbInFlight []bool // one write-back bus transaction at a time per L2

	reuse *reuseTracker

	// accessPool recycles pendingAccess nodes; each node's completeFn is
	// bound once by the pool constructor, so the demand path's per-access
	// bookkeeping allocates nothing in steady state.
	accessPool *sim.Pool[pendingAccess]

	// responses is the reused snoop-response buffer for combine events
	// (the collector never retains it).
	responses []coherence.AgentResponse

	// Event handlers, bound once in New so scheduling a transaction
	// phase never allocates a closure.
	hResolve        sim.Handler
	hCombineDemand  sim.Handler
	hFillReady      sim.Handler
	hCompleteFill   sim.Handler
	hCombineWB      sim.Handler
	hFinishWB       sim.Handler
	hWBArriveL3     sim.Handler
	hRetireL3Write  sim.Handler
	hReleaseL3Token sim.Handler

	// fillLatency accumulates demand-miss service times (issue-to-data),
	// the distribution behind the execution-time differences the paper
	// reports.
	fillLatency stats.Histogram

	// everInL3 tracks lines that have ever completed an L3 insert,
	// splitting non-redundant clean write backs into first-time writes
	// vs. lines the L3 has since lost (diagnostics for Table 1).
	everInL3     map[uint64]struct{}
	cleanWBFirst uint64
	cleanWBLost  uint64

	// probe, when attached, samples the interval metrics series; tracer
	// is its per-transaction event trace (nil unless tracing). Both are
	// nil in normal runs — the hot paths pay one nil check each.
	probe  *metrics.Probe
	tracer *metrics.TraceWriter

	// auditor, when attached, is the shadow invariant checker (nil in
	// normal runs — hook sites pay one nil check each).
	auditor *audit.Auditor

	// lat, when attached, is the per-transaction latency-attribution
	// collector (nil in normal runs — hook sites pay one nil check each).
	lat *txlat.Collector

	// System-level counters (component-level ones live in the
	// components).
	fillsFromPeer   uint64
	fillsFromL3     uint64
	fillsFromMem    uint64
	upgrades        uint64
	demandTxns      uint64
	wbTxns          uint64
	wbSquashedByL3  uint64
	wbSquashedPeer  uint64
	wbSnarfed       uint64
	wbToL3          uint64
	wbRetried       uint64
	wbCancelled     uint64
	snarfFallbacks  uint64 // winner could not install after all
	upgradeRestarts uint64 // upgrade found its line invalidated; became RWITM
}

// New validates cfg, builds all components and loads tr's per-thread
// streams. Run() executes the workload to completion.
func New(cfg config.Config, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Threads > cfg.Threads() {
		return nil, fmt.Errorf("system: trace has %d threads, chip has %d", tr.Threads, cfg.Threads())
	}
	s := &System{
		cfg:       cfg,
		engine:    sim.NewEngine(),
		l3:        l3.New(&cfg),
		mem:       mem.New(&cfg),
		ring:      ring.New(&cfg),
		collector: coherence.NewCollector(),
		rswitch:   core.NewRetrySwitch(cfg.WBHT),
		reuse:     newReuseTracker(),
		everInL3:  make(map[uint64]struct{}),
	}
	for i := 0; i < cfg.NumL2(); i++ {
		s.l2s = append(s.l2s, l2.New(i, &s.cfg))
	}
	s.wbInFlight = make([]bool, cfg.NumL2())
	s.responses = make([]coherence.AgentResponse, 0, cfg.NumL2()+2)

	s.accessPool = sim.NewPool(func() *pendingAccess {
		p := &pendingAccess{}
		p.completeFn = func(at config.Cycles) { s.finishAccess(p, at) }
		return p
	})
	s.hResolve = func(d sim.EventData) { s.resolve(d.Ptr.(*pendingAccess)) }
	s.hCombineDemand = func(d sim.EventData) {
		s.combineDemand(d.Ptr.(l2Handle), d.Key, coherence.TxnKind(d.Kind))
	}
	s.hFillReady = s.fillDataReady
	s.hCompleteFill = func(d sim.EventData) {
		s.completeFill(d.Ptr.(l2Handle), d.Key, coherence.TxnKind(d.Kind))
	}
	s.hCombineWB = func(d sim.EventData) {
		s.combineWB(d.Ptr.(l2Handle), d.Key, coherence.TxnKind(d.Kind), d.Flag)
	}
	s.hFinishWB = func(d sim.EventData) { s.finishWB(int(d.Key)) }
	s.hWBArriveL3 = s.wbArriveL3
	s.hRetireL3Write = func(d sim.EventData) { s.retireL3Write(d.Key, coherence.TxnKind(d.Kind)) }
	s.hReleaseL3Token = func(sim.EventData) { s.releaseL3Token() }

	streams := tr.PerThread()
	// Pad to the chip's thread count so thread->L2 mapping stays fixed.
	for len(streams) < cfg.Threads() {
		streams = append(streams, nil)
	}
	s.threads = cpu.New(s.engine, &s.cfg, streams, s.access)

	// Pre-size the event queue and access pool from the workload: the
	// queue's high-water mark tracks in-flight accesses (each spans a
	// handful of scheduled phases), bounded by what the trace can ever
	// put in flight at once.
	events := cfg.Threads()*cfg.MaxOutstanding*8 + 64
	if limit := 2*len(tr.Records) + 64; events > limit {
		events = limit
	}
	s.engine.Grow(events)
	inflight := cfg.Threads() * cfg.MaxOutstanding
	if inflight > len(tr.Records) {
		inflight = len(tr.Records)
	}
	s.accessPool.Prime(inflight)
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() *config.Config { return &s.cfg }

// l2For maps a hardware thread to its L2 cache (each pair of cores —
// four threads — shares one).
func (s *System) l2For(tid int) *l2.Cache {
	return s.l2s[tid/s.cfg.ThreadsPerL2()]
}

// Run executes the workload to completion and returns the results. It
// panics if the event queue drains while threads still have work, which
// would indicate a lost completion (a simulator bug, not a workload
// property).
func (s *System) Run() *Results {
	s.threads.Start()
	s.engine.Run()
	return s.finish()
}

// cancelCheckEvery is how many fired events RunContext lets pass
// between context polls. Polling happens outside the event stream —
// nothing is scheduled, Fired does not move, the simulation is
// bit-identical to Run — so the granularity only bounds cancellation
// latency: at ~2M events/sec this is a few-millisecond response.
const cancelCheckEvery = 8192

// RunContext is Run with cooperative cancellation: it executes the
// workload to completion unless ctx is cancelled first, in which case
// it abandons the remaining events and returns ctx's error. A completed
// run is bit-identical to Run() — the context poll observes the engine
// between events and never perturbs it.
func (s *System) RunContext(ctx context.Context) (*Results, error) {
	s.threads.Start()
	n := 0
	for s.engine.Step() {
		if n++; n >= cancelCheckEvery {
			n = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// finish asserts the drained engine left no thread mid-access, drains
// the auditor and gathers results.
func (s *System) finish() *Results {
	if !s.threads.Done() {
		panic(fmt.Sprintf("system: engine drained with %d accesses outstanding", s.threads.Outstanding()))
	}
	if s.auditor != nil {
		s.auditor.Drain(s.engine.Now())
	}
	return s.results()
}

// snarfing reports whether L2-to-L2 write-back absorption is active.
func (s *System) snarfing() bool {
	return s.cfg.Mechanism == config.Snarf || s.cfg.Mechanism == config.Combined
}

// wbhtEnabled reports whether the WBHT mechanism is configured (the
// retry switch decides whether it is consulted at any instant).
func (s *System) wbhtEnabled() bool {
	return s.cfg.Mechanism == config.WBHT || s.cfg.Mechanism == config.Combined
}

// DebugWatchdog installs a periodic progress probe: every million fired
// events, cb receives the current cycle, total events fired, pending
// event count and a one-line system snapshot. Diagnostics only.
func (s *System) DebugWatchdog(cb func(cycles int64, fired uint64, pending int, extra string)) {
	var probe func()
	probe = func() {
		extra := fmt.Sprintf("outstanding=%d wbq=[%d %d %d %d] inflight=%v mshr=[%d %d %d %d] l3tok=%d",
			s.threads.Outstanding(),
			s.l2s[0].WBQueueLen(), s.l2s[1].WBQueueLen(), s.l2s[2].WBQueueLen(), s.l2s[3].WBQueueLen(),
			s.wbInFlight,
			s.l2s[0].MSHRCount(), s.l2s[1].MSHRCount(), s.l2s[2].MSHRCount(), s.l2s[3].MSHRCount(),
			s.l3.QueueInUse())
		cb(int64(s.engine.Now()), s.engine.Fired(), s.engine.Pending(), extra)
		if !s.threads.Done() {
			s.engine.Schedule(100_000, probe)
		}
	}
	s.engine.Schedule(0, probe)
}
