// Package system wires the full chip multiprocessor of Figure 1 —
// sixteen SMT threads, four sliced L2 caches, the snoop-collecting ring,
// the off-chip L3 victim cache and the memory controller — and
// orchestrates every coherence transaction end to end under the
// configured write-back management mechanism.
//
// The protocol sequencing model: a transaction's snoop, combine and
// state transitions all occur atomically at its combined-response event
// (tag arrays are therefore never in transient states), while data
// movement books latency and bandwidth on the ring, L3 and memory
// resources and completes the requesting thread later. This is the
// standard state-at-commit simplification for bus-serialized protocols;
// the cycle cost of in-flight windows is preserved, only their
// observability is collapsed.
//
// Execution is sharded by L2 slice: each slice's front end (threads,
// tag probes, MSHRs, write-back queue) runs on its own event wheel,
// and the bus FIFO — the chip's only global ordering point — lives on a
// global wheel that a deterministic round coordinator interleaves with
// the shards (see parallel.go and DESIGN.md §15). Results are
// bit-identical at every worker count; SetWorkers only changes wall
// clock.
package system

import (
	"context"
	"fmt"
	"strings"

	"cmpcache/internal/audit"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
	"cmpcache/internal/l2"
	"cmpcache/internal/l3"
	"cmpcache/internal/mem"
	"cmpcache/internal/metrics"
	"cmpcache/internal/ring"
	"cmpcache/internal/sim"
	"cmpcache/internal/trace"
	"cmpcache/internal/txlat"
	"cmpcache/internal/wbpolicy"
)

// System is one fully wired simulated chip.
type System struct {
	cfg    config.Config
	engine *sim.Engine // global wheel: bus combines and everything behind them

	shards []*shard // one per L2 slice; shards[i] owns l2s[i]

	l2s       []*l2.Cache
	l3        *l3.Cache
	mem       *mem.Controller
	ring      *ring.Ring
	collector *coherence.Collector
	rswitch   *core.RetrySwitch

	// policy is the configured write-back policy's chip-wide half; its
	// per-L2 agents live inside the l2.Caches. All chip hooks run at
	// bus combine events (serial phase).
	policy wbpolicy.Chip

	// workers is the parallel-phase goroutine count (1 = fully serial
	// execution of the identical round structure).
	workers int

	// pstats accumulates the round coordinator's execution-shape
	// counters and (pool mode only) wall-clock barrier attribution;
	// copied into Results.Sharding at the end of the run.
	pstats ShardingStats

	wbInFlight []bool // one write-back bus transaction at a time per L2

	reuse *reuseTracker

	// responses is the reused snoop-response buffer for combine events
	// (the collector never retains it).
	responses []coherence.AgentResponse

	// Event handlers, bound once in New so scheduling a transaction
	// phase never allocates a closure.
	hCombineDemand  sim.Handler
	hFillReady      sim.Handler
	hCompleteFill   sim.Handler
	hCombineWB      sim.Handler
	hFinishWB       sim.Handler
	hWBArriveL3     sim.Handler
	hRetireL3Write  sim.Handler
	hReleaseL3Token sim.Handler

	// everInL3 tracks lines that have ever completed an L3 insert,
	// splitting non-redundant clean write backs into first-time writes
	// vs. lines the L3 has since lost (diagnostics for Table 1).
	everInL3     map[uint64]struct{}
	cleanWBFirst uint64
	cleanWBLost  uint64

	// probe, when attached, samples the interval metrics series; tracer
	// is its per-transaction event trace (nil unless tracing). Both are
	// nil in normal runs — the hot paths pay one nil check each.
	probe  *metrics.Probe
	tracer *metrics.TraceWriter

	// auditor, when attached, is the shadow invariant checker (nil in
	// normal runs — hook sites pay one nil check each). auditedFired
	// tracks how many shard events have been credited to its sweep
	// cadence.
	auditor      *audit.Auditor
	auditedFired uint64

	// lat, when attached, is the per-transaction latency-attribution
	// collector (nil in normal runs — hook sites pay one nil check each).
	lat *txlat.Collector

	// System-level counters (component-level ones live in the
	// components).
	fillsFromPeer   uint64
	fillsFromL3     uint64
	fillsFromMem    uint64
	upgrades        uint64
	upgradeUpdates  uint64 // upgrades that updated sharers in place (hybridui)
	updatePushes    uint64 // update commits that pushed data to surviving sharers
	demandTxns      uint64
	wbTxns          uint64
	wbSquashedByL3  uint64
	wbSquashedPeer  uint64
	wbSnarfed       uint64
	wbToL3          uint64
	wbRetried       uint64
	wbCancelled     uint64
	snarfFallbacks  uint64 // winner could not install after all
	upgradeRestarts uint64 // upgrade found its line invalidated; became RWITM
}

// newCore builds everything but the thread feed: components, policy,
// and the bound event handlers. New and NewStream attach the shards.
func newCore(cfg config.Config) *System {
	s := &System{
		cfg:       cfg,
		engine:    sim.NewEngine(),
		l3:        l3.New(&cfg),
		mem:       mem.New(&cfg),
		ring:      ring.New(&cfg),
		collector: coherence.NewCollector(),
		rswitch:   core.NewRetrySwitch(cfg.WBHT),
		reuse:     newReuseTracker(),
		everInL3:  make(map[uint64]struct{}),
		workers:   1,
	}
	s.policy = wbpolicy.New(&s.cfg)
	for i := 0; i < cfg.NumL2(); i++ {
		s.l2s = append(s.l2s, l2.New(i, &s.cfg, s.policy.Agent(i)))
	}
	s.wbInFlight = make([]bool, cfg.NumL2())
	s.responses = make([]coherence.AgentResponse, 0, cfg.NumL2()+2)

	s.hCombineDemand = func(d sim.EventData) {
		s.combineDemand(d.Ptr.(l2Handle), d.Key, coherence.TxnKind(d.Kind))
	}
	s.hFillReady = s.fillDataReady
	s.hCompleteFill = func(d sim.EventData) {
		s.shards[d.Ptr.(l2Handle).ID()].completeFill(d.Key, coherence.TxnKind(d.Kind))
	}
	s.hCombineWB = func(d sim.EventData) {
		s.combineWB(d.Ptr.(l2Handle), d.Key, coherence.TxnKind(d.Kind), d.Flag)
	}
	s.hFinishWB = func(d sim.EventData) { s.finishWB(int(d.Key)) }
	s.hWBArriveL3 = s.wbArriveL3
	s.hRetireL3Write = func(d sim.EventData) { s.retireL3Write(d.Key, coherence.TxnKind(d.Kind)) }
	s.hReleaseL3Token = func(sim.EventData) { s.releaseL3Token() }
	return s
}

// New validates cfg, builds all components and loads tr's per-thread
// streams. Run() executes the workload to completion.
func New(cfg config.Config, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Threads > cfg.Threads() {
		return nil, fmt.Errorf("system: trace has %d threads, chip has %d", tr.Threads, cfg.Threads())
	}
	s := newCore(cfg)

	streams := tr.PerThread()
	// Pad to the chip's thread count so thread->L2 mapping stays fixed.
	for len(streams) < cfg.Threads() {
		streams = append(streams, nil)
	}
	tpl := cfg.ThreadsPerL2()
	for i := 0; i < cfg.NumL2(); i++ {
		sub := streams[i*tpl : (i+1)*tpl]
		recs := 0
		for _, st := range sub {
			recs += len(st)
		}
		s.shards = append(s.shards, newShard(s, i, sub, recs))
	}

	// Pre-size the global event queue from the workload: its high-water
	// mark tracks in-flight bus transactions, bounded by what the trace
	// can ever put in flight at once.
	events := cfg.Threads()*cfg.MaxOutstanding*4 + 64
	if limit := 2*len(tr.Records) + 64; events > limit {
		events = limit
	}
	s.engine.Grow(events)
	return s, nil
}

// NewStream is New over a streaming trace source: the thread feeds pull
// chunked per-thread iterators (trace.Source.Stream) instead of
// materialized record slices, so replay memory is bounded by the
// source's chunk size rather than the trace length. A completed run is
// bit-identical to New over the equivalent in-memory trace — the feed
// only changes where records are buffered, never when they issue.
func NewStream(cfg config.Config, src trace.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.Threads() <= 0 {
		return nil, fmt.Errorf("system: source has %d threads, must be positive", src.Threads())
	}
	if src.Threads() > cfg.Threads() {
		return nil, fmt.Errorf("system: trace has %d threads, chip has %d", src.Threads(), cfg.Threads())
	}
	s := newCore(cfg)

	// clamp converts a record count to the int sizing hints expect,
	// saturating on (hypothetical) >2^62-record sources.
	clamp := func(n int64) int {
		if n > int64(1)<<31 {
			return 1 << 31
		}
		return int(n)
	}
	tpl := cfg.ThreadsPerL2()
	for i := 0; i < cfg.NumL2(); i++ {
		streams := make([]trace.Stream, tpl)
		var recs int64
		for j := 0; j < tpl; j++ {
			tid := i*tpl + j
			if tid < src.Threads() && src.ThreadRecords(tid) > 0 {
				streams[j] = src.Stream(tid)
				recs += src.ThreadRecords(tid)
			}
		}
		sh, err := newShardStream(s, i, streams, clamp(recs))
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}

	events := cfg.Threads()*cfg.MaxOutstanding*4 + 64
	if limit := 2*clamp(src.Records()) + 64; events > limit {
		events = limit
	}
	s.engine.Grow(events)
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() *config.Config { return &s.cfg }

// Run executes the workload to completion and returns the results. It
// panics if every event wheel drains while threads still have work,
// which would indicate a lost completion (a simulator bug, not a
// workload property).
func (s *System) Run() *Results {
	if err := s.runRounds(context.Background()); err != nil {
		panic(err) // unreachable: the background context never cancels
	}
	return s.finish()
}

// cancelCheckEvery is how many serial-phase events RunContext lets pass
// between context polls (the coordinator also polls once per round).
// Polling happens outside the event stream — nothing is scheduled,
// Fired does not move, the simulation is bit-identical to Run — so the
// granularity only bounds cancellation latency.
const cancelCheckEvery = 8192

// RunContext is Run with cooperative cancellation: it executes the
// workload to completion unless ctx is cancelled first, in which case
// it abandons the remaining events and returns ctx's error. A completed
// run is bit-identical to Run() — the context poll observes the engines
// between events and never perturbs them.
func (s *System) RunContext(ctx context.Context) (*Results, error) {
	if err := s.runRounds(ctx); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// finish asserts the drained wheels left no thread mid-access, drains
// the auditor and gathers results.
func (s *System) finish() *Results {
	if !s.threadsDone() {
		panic(fmt.Sprintf("system: engine drained with %d accesses outstanding", s.threadsOutstanding()))
	}
	if s.auditor != nil {
		s.auditor.Drain(s.lastTime())
	}
	return s.results()
}

// lastTime returns the latest clock across all wheels — the time the
// simulation ended.
func (s *System) lastTime() config.Cycles {
	t := s.engine.Now()
	for _, sh := range s.shards {
		if n := sh.engine.Now(); n > t {
			t = n
		}
	}
	return t
}

// --- thread-complex aggregation across shards ---

func (s *System) threadsDone() bool {
	for _, sh := range s.shards {
		if !sh.threads.Done() {
			return false
		}
	}
	return true
}

func (s *System) threadsOutstanding() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.threads.Outstanding()
	}
	return n
}

func (s *System) threadsIssued() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.threads.Issued()
	}
	return n
}

func (s *System) threadsCompleted() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.threads.Completed()
	}
	return n
}

func (s *System) finishTime() config.Cycles {
	var t config.Cycles
	for _, sh := range s.shards {
		if f := sh.threads.FinishTime(); f > t {
			t = f
		}
	}
	return t
}

func (s *System) eventsFired() uint64 {
	n := s.engine.Fired()
	for _, sh := range s.shards {
		n += sh.engine.Fired()
	}
	return n
}

// DebugWatchdog installs a periodic progress probe: every hundred
// thousand cycles, cb receives the current cycle, total events fired,
// pending event count and a one-line system snapshot. Diagnostics only.
func (s *System) DebugWatchdog(cb func(cycles int64, fired uint64, pending int, extra string)) {
	var probe func()
	probe = func() {
		var wbq, mshr strings.Builder
		for i, c := range s.l2s {
			if i > 0 {
				wbq.WriteByte(' ')
				mshr.WriteByte(' ')
			}
			fmt.Fprintf(&wbq, "%d", c.WBQueueLen())
			fmt.Fprintf(&mshr, "%d", c.MSHRCount())
		}
		extra := fmt.Sprintf("outstanding=%d wbq=[%s] inflight=%v mshr=[%s] l3tok=%d",
			s.threadsOutstanding(), wbq.String(), s.wbInFlight, mshr.String(), s.l3.QueueInUse())
		pending := s.engine.Pending()
		for _, sh := range s.shards {
			pending += sh.engine.Pending()
		}
		cb(int64(s.engine.Now()), s.eventsFired(), pending, extra)
		if !s.threadsDone() {
			s.engine.Schedule(100_000, probe)
		}
	}
	s.engine.Schedule(0, probe)
}
