package system

import "encoding/json"

// DerivedMetrics are the rates and percentages the paper's tables are
// built from, precomputed so exported results are useful without
// reimplementing the formulas.
type DerivedMetrics struct {
	L2HitRate               float64
	L3LoadHitRate           float64
	OffChipAccesses         uint64
	PctCleanWBAlreadyInL3   float64
	PctWBSnarfed            float64
	PctSnarfedUsedLocally   float64
	PctSnarfedInterventions float64
	PctTotalReused          float64
	PctAcceptedReused       float64
	WBHTCorrectRate         float64
	MeanFillLatency         float64
	P50FillLatency          float64
	P90FillLatency          float64
	P99FillLatency          float64
	MaxFillLatency          uint64
}

// Derived computes the full derived-metric block for the run.
func (r *Results) Derived() DerivedMetrics {
	return DerivedMetrics{
		L2HitRate:               r.L2HitRate(),
		L3LoadHitRate:           r.L3LoadHitRate(),
		OffChipAccesses:         r.OffChipAccesses(),
		PctCleanWBAlreadyInL3:   r.PctCleanWBAlreadyInL3(),
		PctWBSnarfed:            r.PctWBSnarfed(),
		PctSnarfedUsedLocally:   r.PctSnarfedUsedLocally(),
		PctSnarfedInterventions: r.PctSnarfedInterventions(),
		PctTotalReused:          r.Reuse.PctTotalReused(),
		PctAcceptedReused:       r.Reuse.PctAcceptedReused(),
		WBHTCorrectRate:         r.WBHT.CorrectRate(),
		MeanFillLatency:         r.FillLatency.Mean(),
		P50FillLatency:          r.FillLatency.Quantile(0.50),
		P90FillLatency:          r.FillLatency.Quantile(0.90),
		P99FillLatency:          r.FillLatency.Quantile(0.99),
		MaxFillLatency:          r.FillLatency.Max(),
	}
}

// MarshalJSON exports the complete result set under the stable Go field
// names, appending a Derived block with the rates behind each paper
// table. Identical runs marshal to identical bytes (the simulator is
// deterministic and encoding/json orders struct fields by declaration).
func (r *Results) MarshalJSON() ([]byte, error) {
	type plain Results // shed MarshalJSON to avoid recursion
	return json.Marshal(struct {
		*plain
		Derived DerivedMetrics
	}{(*plain)(r), r.Derived()})
}
