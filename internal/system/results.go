package system

import (
	"fmt"
	"strings"

	"cmpcache/internal/config"
	"cmpcache/internal/l2"
	"cmpcache/internal/metrics"
	"cmpcache/internal/stats"
	"cmpcache/internal/txlat"
	"cmpcache/internal/wbpolicy"
)

// WBHTStats aggregates the Write Back History Tables across L2s.
type WBHTStats struct {
	Allocations uint64
	Consults    uint64
	Hits        uint64
	Correct     uint64
	Wrong       uint64
}

// CorrectRate returns the Table 4 "WBHT Correct" fraction in [0,1].
func (w WBHTStats) CorrectRate() float64 {
	return stats.Ratio(w.Correct, w.Correct+w.Wrong)
}

// SnarfStats aggregates the snarf machinery across L2s.
type SnarfStats struct {
	TableRecorded uint64
	TableReuse    uint64
	Offers        uint64
	Accepts       uint64
	Installs      uint64
	DeclinedMSHR  uint64
	DeclinedFull  uint64
	UsedLocally   uint64
	Interventions uint64
	SharedDropped uint64
}

// Results is the complete statistical outcome of one simulation run —
// every figure and table in the paper derives from these fields.
type Results struct {
	Config config.Config

	// Execution time: the cycle at which the last thread reference
	// completed — the paper's runtime metric.
	Cycles uint64

	RefsIssued    uint64
	RefsCompleted uint64

	L2 l2.Stats // summed over the four caches

	// Demand fill sources. OffChipAccesses = L3 + memory fills, the
	// Table 5 "Reduction in Off-Chip Accesses" metric.
	FillsFromPeer uint64
	FillsFromL3   uint64
	FillsFromMem  uint64
	Upgrades      uint64

	// Write-back traffic. WBRequests is the paper's Table 4 "L2 Write
	// Back Requests": write backs issued on the bus. A retried entry is
	// requeued and re-issued through the write-back pump, so each retry
	// already appears here as its own bus issue — WBRetried is a subset
	// of, not an addition to, this count.
	WBRequests     uint64
	WBSquashedL3   uint64
	WBSquashedPeer uint64
	WBSnarfed      uint64
	WBToL3         uint64
	WBRetried      uint64
	WBCancelled    uint64

	// L3 statistics (Table 1, Table 4).
	L3LoadLookups    uint64
	L3LoadHits       uint64
	L3DemandLookups  uint64
	L3DemandHits     uint64
	L3RetriesIssued  uint64
	L3Castouts       uint64
	L3Evictions      uint64
	L3Invalidations  uint64
	L3CleanWBSnooped uint64
	L3CleanWBAlready uint64
	L3Occupancy      int
	CleanWBFirstTime uint64
	CleanWBLostL3    uint64
	L3QueueAcquired  uint64
	L3QueueRejected  uint64
	L3QueuePeak      int
	L3SliceWaited    uint64

	// Interconnect and memory.
	AddressTxns     uint64
	DataTransfers   uint64
	AddressUtil     float64
	DataUtil        float64
	AddressWaited   uint64
	DataWaited      uint64
	MemReads        uint64
	MemWrites       uint64
	TotalBusRetries uint64

	WBHT  WBHTStats
	Snarf SnarfStats

	// Policy carries counters specific to plug-in write-back policies
	// (reuse-distance gating, hybrid update/invalidate). It is nil for
	// the paper mechanisms so their JSON exports keep unchanged bytes.
	Policy *wbpolicy.Stats `json:",omitempty"`

	// Update-mode ownership claims (hybrid update/invalidate policy).
	// UpgradeUpdates counts claims committed as updates; UpdatePushes
	// the subset that found live sharers and pushed data to them. Both
	// are omitted when zero so paper-mechanism exports are unchanged.
	UpgradeUpdates uint64 `json:",omitempty"`
	UpdatePushes   uint64 `json:",omitempty"`

	// Adaptive switch activity.
	SwitchActiveWindows uint64
	SwitchTotalWindows  uint64

	Reuse ReuseStats

	// FillLatency is the distribution of issue-to-completion times over
	// all references (hits and misses).
	FillLatency stats.Histogram

	UpgradeRestarts uint64
	SnarfFallbacks  uint64

	// End-of-run residuals: resources still held when the engine
	// drained. System teardown does not flush anything — a drained
	// event queue with completed threads already implies the write-back
	// pump and L3 queue have emptied — so Results reports the residual
	// counts explicitly and the audit checker asserts they are zero
	// (see DESIGN.md §12).
	ResidualMSHRs         int
	ResidualWBQueued      int
	ResidualWBInFlight    int
	ResidualL3QueueTokens int

	// EventsFired counts discrete events executed by the engine during
	// the run — the denominator for the events/sec throughput metric
	// tracked in BENCH_core.json.
	EventsFired uint64

	// Sharding describes the round-coordinator's execution shape: how
	// many rounds the run took, how many had a parallel phase, which
	// constraint set the horizon each time, and — for sharded runs — the
	// wall-clock barrier cost. The counters are identical at every worker
	// count, but attachments that schedule their own wake-ups (the
	// metrics probe, windowed latency) add rounds, so the whole record is
	// engine telemetry, not simulated outcome: it stays out of the JSON
	// (result bytes keep the observation-only contract) and is read in
	// process — cmpbench lifts it into BENCH_core.json measurements.
	Sharding ShardingStats `json:"-"`

	// Metrics is the per-interval time series collected when a metrics
	// probe was attached (nil otherwise, and omitted from JSON so runs
	// without a probe export unchanged bytes).
	Metrics *metrics.Series `json:",omitempty"`

	// Latency is the stage-attributed latency report collected when a
	// latency collector was attached (nil otherwise, and omitted from
	// JSON so runs without one export unchanged bytes).
	Latency *txlat.Report `json:",omitempty"`
}

// results gathers all component statistics after a run.
func (s *System) results() *Results {
	elapsed := s.finishTime()
	var fillLatency stats.Histogram
	for _, sh := range s.shards {
		fillLatency.Merge(&sh.fillLatency)
	}
	r := &Results{
		Config:        s.cfg,
		Cycles:        uint64(elapsed),
		RefsIssued:    s.threadsIssued(),
		RefsCompleted: s.threadsCompleted(),

		FillsFromPeer: s.fillsFromPeer,
		FillsFromL3:   s.fillsFromL3,
		FillsFromMem:  s.fillsFromMem,
		Upgrades:      s.upgrades,

		WBRequests:     s.wbTxns,
		WBSquashedL3:   s.wbSquashedByL3,
		WBSquashedPeer: s.wbSquashedPeer,
		WBSnarfed:      s.wbSnarfed,
		WBToL3:         s.wbToL3,
		WBRetried:      s.wbRetried,
		WBCancelled:    s.wbCancelled,

		L3LoadLookups:    s.l3.LoadLookups(),
		L3LoadHits:       s.l3.LoadHits(),
		L3DemandLookups:  s.l3.DemandLookups(),
		L3DemandHits:     s.l3.DemandHits(),
		L3RetriesIssued:  s.l3.RetriesIssued(),
		L3Castouts:       s.l3.Castouts(),
		L3Evictions:      s.l3.Evictions(),
		L3Invalidations:  s.l3.Invalidations(),
		L3CleanWBSnooped: s.l3.CleanWBSnooped(),
		L3CleanWBAlready: s.l3.CleanWBRedundant(),
		L3Occupancy:      s.l3.Occupancy(),

		AddressTxns:     s.ring.AddressTransactions(),
		DataTransfers:   s.ring.DataTransfers(),
		AddressUtil:     s.ring.AddressUtilization(elapsed),
		DataUtil:        s.ring.DataUtilization(elapsed),
		AddressWaited:   uint64(s.ring.AddressWaited()),
		DataWaited:      uint64(s.ring.DataWaited()),
		MemReads:        s.mem.Reads(),
		MemWrites:       s.mem.Writes(),
		TotalBusRetries: s.collector.Retries(),

		SwitchActiveWindows: s.rswitch.ActiveWindows(),
		SwitchTotalWindows:  s.rswitch.TotalWindows(),

		Reuse:       s.reuse.snapshot(),
		FillLatency: fillLatency,

		UpgradeRestarts: s.upgradeRestarts,
		SnarfFallbacks:  s.snarfFallbacks,

		Policy:         s.policy.Stats(),
		UpgradeUpdates: s.upgradeUpdates,
		UpdatePushes:   s.updatePushes,

		ResidualL3QueueTokens: s.l3.QueueInUse(),

		EventsFired: s.eventsFired(),
	}
	r.Sharding = s.pstats
	r.Sharding.Workers = s.workers
	for i, c := range s.l2s {
		r.ResidualMSHRs += c.MSHRCount()
		r.ResidualWBQueued += c.WBQueueLen()
		if s.wbInFlight[i] {
			r.ResidualWBInFlight++
		}
	}
	if s.probe != nil {
		r.Metrics = s.probe.Finish(elapsed)
	}
	if s.lat != nil {
		r.Latency = s.lat.Finish(elapsed)
	}
	r.CleanWBFirstTime, r.CleanWBLostL3 = s.cleanWBFirst, s.cleanWBLost
	r.L3QueueAcquired, r.L3QueueRejected, r.L3QueuePeak = s.l3.QueueStats()
	r.L3SliceWaited = uint64(s.l3.SliceWaited())
	for _, c := range s.l2s {
		st := c.StatsSnapshot()
		r.L2.Accesses += st.Accesses
		r.L2.Hits += st.Hits
		r.L2.MSHRAttach += st.MSHRAttach
		r.L2.WBBufferHits += st.WBBufferHits
		r.L2.Misses += st.Misses
		r.L2.CleanVictims += st.CleanVictims
		r.L2.DirtyVictims += st.DirtyVictims
		r.L2.CleanWBQueued += st.CleanWBQueued
		r.L2.CleanWBAborted += st.CleanWBAborted
		r.L2.HistoryVictims += st.HistoryVictims
		r.L2.SharedDropped += st.SharedDropped
		r.L2.SnarfOffers += st.SnarfOffers
		r.L2.SnarfAccepts += st.SnarfAccepts
		r.L2.SnarfInstalls += st.SnarfInstalls
		r.L2.SnarfDeclinedMSHR += st.SnarfDeclinedMSHR
		r.L2.SnarfDeclinedFull += st.SnarfDeclinedFull
		r.L2.SnarfedUsedLocally += st.SnarfedUsedLocally
		r.L2.SnarfedIntervention += st.SnarfedIntervention
		r.L2.SnoopsObserved += st.SnoopsObserved
		r.L2.Invalidations += st.Invalidations
		r.L2.Interventions += st.Interventions

		if w := c.WBHT(); w != nil {
			r.WBHT.Allocations += w.Allocations()
			r.WBHT.Consults += w.Consults()
			r.WBHT.Hits += w.Hits()
			r.WBHT.Correct += w.Correct()
			r.WBHT.Wrong += w.Wrong()
		}
		if t := c.SnarfTable(); t != nil {
			r.Snarf.TableRecorded += t.RecordedWriteBacks()
			r.Snarf.TableReuse += t.ReuseMarks()
			r.Snarf.Offers += st.SnarfOffers
			r.Snarf.Accepts += st.SnarfAccepts
			r.Snarf.Installs += st.SnarfInstalls
			r.Snarf.DeclinedMSHR += st.SnarfDeclinedMSHR
			r.Snarf.DeclinedFull += st.SnarfDeclinedFull
			r.Snarf.UsedLocally += st.SnarfedUsedLocally
			r.Snarf.Interventions += st.SnarfedIntervention
			r.Snarf.SharedDropped += st.SharedDropped
		}
	}
	return r
}

// --- Derived metrics used by the experiment harness ---

// L2HitRate returns local L2 hit rate including write-back-buffer hits
// (Table 5's "Increase in Local L2 Hit Rate" compares this across runs).
func (r *Results) L2HitRate() float64 {
	return stats.Ratio(r.L2.Hits+r.L2.WBBufferHits, r.L2.Accesses)
}

// L3LoadHitRate returns the Table 4 "L3 Load Hit Rate".
func (r *Results) L3LoadHitRate() float64 {
	return stats.Ratio(r.L3LoadHits, r.L3LoadLookups)
}

// OffChipAccesses returns demand fills serviced off chip (L3 + memory).
func (r *Results) OffChipAccesses() uint64 {
	return r.FillsFromL3 + r.FillsFromMem
}

// PctCleanWBAlreadyInL3 returns Table 1's percentage: clean write backs
// snooped by the L3 whose line was already valid there.
func (r *Results) PctCleanWBAlreadyInL3() float64 {
	return stats.Percent(r.L3CleanWBAlready, r.L3CleanWBSnooped)
}

// PctWBSnarfed returns Table 5's "Write Backs Snarfed": snarfed write
// backs as a percentage of write backs issued.
func (r *Results) PctWBSnarfed() float64 {
	return stats.Percent(r.WBSnarfed, r.WBRequests)
}

// PctSnarfedUsedLocally returns Table 5's "Snarfed Lines Used Locally".
func (r *Results) PctSnarfedUsedLocally() float64 {
	return stats.Percent(r.Snarf.UsedLocally, r.Snarf.Installs)
}

// PctSnarfedInterventions returns Table 5's "Snarfed Lines Provided for
// Interventions".
func (r *Results) PctSnarfedInterventions() float64 {
	return stats.Percent(r.Snarf.Interventions, r.Snarf.Installs)
}

// Summary renders a human-readable multi-line report (cmpsim output).
func (r *Results) Summary() string {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	p("mechanism            %s", r.Config.Mechanism)
	p("max outstanding      %d / thread", r.Config.MaxOutstanding)
	p("execution time       %d cycles", r.Cycles)
	p("references           %d issued, %d completed", r.RefsIssued, r.RefsCompleted)
	p("L2 accesses          %d (hit rate %.2f%%, %d MSHR attaches, %d WB-buffer hits)",
		r.L2.Accesses, 100*r.L2HitRate(), r.L2.MSHRAttach, r.L2.WBBufferHits)
	p("demand fills         peer-L2 %d, L3 %d, memory %d (off-chip %d)",
		r.FillsFromPeer, r.FillsFromL3, r.FillsFromMem, r.OffChipAccesses())
	p("upgrades             %d (+%d restarted as RWITM)", r.Upgrades, r.UpgradeRestarts)
	p("L2 write backs       %d requests: %d to L3, %d squashed by L3, %d clean aborts (WBHT)",
		r.WBRequests, r.WBToL3, r.WBSquashedL3, r.L2.CleanWBAborted)
	p("L3 load hit rate     %.2f%% (%d/%d)", 100*r.L3LoadHitRate(), r.L3LoadHits, r.L3LoadLookups)
	p("L3-issued retries    %d", r.L3RetriesIssued)
	p("clean WBs already L3 %.1f%% (Table 1 metric)", r.PctCleanWBAlreadyInL3())
	p("WB reuse             %.1f%% of attempted, %.1f%% of accepted (Table 2 metric)",
		r.Reuse.PctTotalReused(), r.Reuse.PctAcceptedReused())
	if r.Config.Mechanism == config.WBHT || r.Config.Mechanism == config.Combined {
		p("WBHT                 %d allocs, %d consults, %d aborts, correct %.1f%%",
			r.WBHT.Allocations, r.WBHT.Consults, r.WBHT.Hits, 100*r.WBHT.CorrectRate())
		p("retry switch         active %d / %d windows", r.SwitchActiveWindows, r.SwitchTotalWindows)
	}
	if r.Config.Mechanism == config.Snarf || r.Config.Mechanism == config.Combined {
		p("snarfing             %d offers, %d installs (%.1f%% of WBs), %d peer squashes",
			r.Snarf.Offers, r.Snarf.Installs, r.PctWBSnarfed(), r.WBSquashedPeer)
		p("snarfed-line use     %.1f%% locally, %.1f%% interventions",
			r.PctSnarfedUsedLocally(), r.PctSnarfedInterventions())
	}
	if r.Config.Mechanism == config.ReuseDist && r.Policy != nil {
		p("reuse-dist sketch    %d samples over %d evictions, %d cold passes",
			r.Policy.SketchSamples, r.Policy.SketchEvictions, r.Policy.PredictCold)
		p("reuse-dist gating    %d consults, %d aborts (%d with line already in L3)",
			r.Policy.PredictConsults, r.Policy.PredictAborts, r.Policy.AbortsLineInL3)
	}
	if r.Config.Mechanism == config.HybridUI && r.Policy != nil {
		p("hybrid upd/inv       %d scored reads; upgrades: %d updates (%d pushes), %d invalidates",
			r.Policy.ScoredReads, r.UpgradeUpdates, r.UpdatePushes, r.Policy.InvalidateUpgrades)
	}
	p("ring                 addr util %.1f%%, data util %.1f%%",
		100*r.AddressUtil, 100*r.DataUtil)
	p("memory               %d reads, %d writes; L3 castouts %d",
		r.MemReads, r.MemWrites, r.L3Castouts)
	p("access latency       mean %.1f cycles, max %d", r.FillLatency.Mean(), r.FillLatency.Max())
	return b.String()
}
