package system

import (
	"strings"
	"testing"
	"testing/quick"

	"cmpcache/internal/config"
)

func TestReuseTrackerScoresNextMissOnly(t *testing.T) {
	r := newReuseTracker()
	r.recordAttempt(1)
	r.recordDemandMiss(1)
	r.recordDemandMiss(1) // second miss without an intervening WB: no double count
	s := r.snapshot()
	if s.Attempted != 1 || s.ReusedAttempt != 1 {
		t.Fatalf("attempted/reused = %d/%d, want 1/1", s.Attempted, s.ReusedAttempt)
	}
}

func TestReuseTrackerSeparatesAcceptedFromAttempted(t *testing.T) {
	r := newReuseTracker()
	r.recordAttempt(1) // attempted, not accepted (e.g. squashed)
	r.recordAttempt(2)
	r.recordAccepted(2)
	r.recordDemandMiss(1)
	r.recordDemandMiss(2)
	s := r.snapshot()
	if s.Attempted != 2 || s.Accepted != 1 {
		t.Fatalf("attempted/accepted = %d/%d", s.Attempted, s.Accepted)
	}
	if s.ReusedAttempt != 2 || s.ReusedAccepted != 1 {
		t.Fatalf("reused attempt/accepted = %d/%d", s.ReusedAttempt, s.ReusedAccepted)
	}
	if s.PctTotalReused() != 100 || s.PctAcceptedReused() != 100 {
		t.Fatalf("percentages = %v/%v", s.PctTotalReused(), s.PctAcceptedReused())
	}
}

func TestReuseTrackerMissWithoutWBIgnored(t *testing.T) {
	r := newReuseTracker()
	r.recordDemandMiss(9)
	s := r.snapshot()
	if s.ReusedAttempt != 0 || s.Rerefs.Count() != 0 {
		t.Fatalf("phantom reuse recorded: %+v", s)
	}
}

func TestReuseTrackerRerefHistogram(t *testing.T) {
	r := newReuseTracker()
	r.recordAttempt(5)
	for i := 0; i < 7; i++ {
		r.recordDemandMiss(5)
	}
	s := r.snapshot()
	if s.Rerefs.Max() != 7 {
		t.Fatalf("reref max = %d, want 7", s.Rerefs.Max())
	}
	if s.Rerefs.Count() != 1 {
		t.Fatalf("reref lines = %d, want 1", s.Rerefs.Count())
	}
}

// Property: reused counts never exceed their denominators regardless of
// event interleaving.
func TestReuseTrackerBoundsProperty(t *testing.T) {
	f := func(events []struct {
		Key  uint8
		Kind uint8
	}) bool {
		r := newReuseTracker()
		for _, e := range events {
			k := uint64(e.Key % 8)
			switch e.Kind % 3 {
			case 0:
				r.recordAttempt(k)
			case 1:
				r.recordAccepted(k)
			case 2:
				r.recordDemandMiss(k)
			}
		}
		s := r.snapshot()
		return s.ReusedAttempt <= s.Attempted && s.PctTotalReused() <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResultsSummaryMentionsMechanism(t *testing.T) {
	_, r := run(t, config.Default(), mkTrace())
	out := r.Summary()
	for _, want := range []string{"mechanism", "execution time", "L3 load hit rate", "access latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Summary missing %q:\n%s", want, out)
		}
	}
}
