package system

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/workload"
)

// TestRunContextBitIdentical proves the cooperative-cancellation run
// loop fires exactly the same events as Run: a completed RunContext
// exports byte-identical results.
func TestRunContextBitIdentical(t *testing.T) {
	prof, err := workload.ByName("tp")
	if err != nil {
		t.Fatal(err)
	}
	prof.RefsPerThread = 2000
	tr, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithMechanism(config.Combined)

	sysA, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	plain := sysA.Run()

	sysB, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := sysB.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}

	ja, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(ctxRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("RunContext results differ from Run (EventsFired %d vs %d)",
			ctxRes.EventsFired, plain.EventsFired)
	}
}

// TestRunContextCancel proves a cancelled context stops the run mid-way
// with the context's error instead of completing.
func TestRunContextCancel(t *testing.T) {
	prof, err := workload.ByName("tp")
	if err != nil {
		t.Fatal(err)
	}
	prof.RefsPerThread = 100_000 // long enough to be mid-flight when cancelled
	tr, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(config.Default(), tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := sys.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("RunContext = (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled run returned results")
	}
	// Cancellation latency is bounded by the poll granularity, not the
	// run length; give CI plenty of slack.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestRunContextAlreadyCancelled proves a pre-cancelled context stops
// the run before any meaningful work.
func TestRunContextAlreadyCancelled(t *testing.T) {
	prof, err := workload.ByName("tp")
	if err != nil {
		t.Fatal(err)
	}
	prof.RefsPerThread = 50_000
	tr, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(config.Default(), tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}
