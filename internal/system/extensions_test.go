package system

import (
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// Section 7 extension tests: coarse WBHT entries and history-informed
// replacement, exercised through full-system runs.

func recyclingTrace(cfg *config.Config, rounds int) *trace.Trace {
	var recs []trace.Record
	for round := 0; round < rounds; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(cfg, 0, 0, i), Gap: 2000,
			})
		}
	}
	return mkTrace(recs...)
}

func TestCoarseWBHTEndToEnd(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	cfg.WBHT.LinesPerEntry = 4
	_, r := run(t, cfg, recyclingTrace(&cfg, 3))
	if r.L2.CleanWBAborted == 0 {
		t.Fatal("coarse WBHT never aborted")
	}
	// Coarse entries cover whole groups: aborts must be at least as
	// frequent as with per-line entries on the same trace.
	fine := config.Default().WithMechanism(config.WBHT)
	fine.WBHT.SwitchEnabled = false
	_, rf := run(t, fine, recyclingTrace(&fine, 3))
	if r.L2.CleanWBAborted < rf.L2.CleanWBAborted {
		t.Fatalf("coarse aborts (%d) < fine aborts (%d); coverage should not shrink",
			r.L2.CleanWBAborted, rf.L2.CleanWBAborted)
	}
}

func TestCoarseWBHTGreaterCoverageUnderSmallTable(t *testing.T) {
	// With a tiny table, coarse entries must cover strictly more lines.
	mk := func(gran int) uint64 {
		cfg := config.Default().WithMechanism(config.WBHT)
		cfg.WBHT.SwitchEnabled = false
		cfg.WBHT.Entries = 32
		cfg.WBHT.Assoc = 4
		cfg.WBHT.LinesPerEntry = gran
		// Recycle 4 full sets (36 lines) through one L2.
		var recs []trace.Record
		for round := 0; round < 3; round++ {
			for set := 0; set < 4; set++ {
				for i := 0; i <= cfg.L2Assoc; i++ {
					recs = append(recs, trace.Record{
						Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, set, i), Gap: 1500,
					})
				}
			}
		}
		_, r := run(t, cfg, mkTrace(recs...))
		return r.L2.CleanWBAborted
	}
	fine, coarse := mk(1), mk(8)
	if coarse <= fine {
		t.Fatalf("coarse(8) aborts = %d, fine = %d; want coverage gain", coarse, fine)
	}
}

func TestHistoryReplacementPrefersL3ResidentVictims(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	cfg.WBHT.HistoryReplacement = true
	_, r := run(t, cfg, recyclingTrace(&cfg, 4))
	if r.L2.HistoryVictims == 0 {
		t.Fatal("history-informed replacement never chose a victim")
	}
	if r.RefsCompleted == 0 || r.RefsCompleted != r.RefsIssued {
		t.Fatalf("conservation broken: %d/%d", r.RefsCompleted, r.RefsIssued)
	}
}

func TestHistoryReplacementOffByDefault(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	_, r := run(t, cfg, recyclingTrace(&cfg, 4))
	if r.L2.HistoryVictims != 0 {
		t.Fatalf("HistoryVictims = %d without the feature enabled", r.L2.HistoryVictims)
	}
}

func TestHistoryReplacementCoherent(t *testing.T) {
	// The alternate victim choice must not break coherence invariants
	// under a shared read/write mix.
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	cfg.WBHT.HistoryReplacement = true
	const lines = 64
	var recs []trace.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, trace.Record{
			Thread: uint16((i * 7) % 16),
			Op:     trace.Op((i / 5) % 2),
			Addr:   uint64((i*31)%lines) * 128,
			Gap:    uint32(i % 4),
		})
	}
	s, r := run(t, cfg, mkTrace(recs...))
	if r.RefsCompleted != 3000 {
		t.Fatalf("completed %d of 3000", r.RefsCompleted)
	}
	for key := uint64(0); key < lines; key++ {
		var owners int
		for _, c := range s.l2s {
			if st := c.State(key); st.SoleCopy() {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("line %d has %d exclusive owners", key, owners)
		}
	}
}
