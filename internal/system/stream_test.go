package system

import (
	"encoding/json"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// marshalResults reduces a run to its full observable byte stream.
func marshalResults(t *testing.T, s *System) []byte {
	t.Helper()
	b, err := json.Marshal(s.Run())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamMatchesMemory is the tentpole acceptance criterion: replaying
// a capture through the streaming path (sharded store on disk, chunked
// per-thread iterators, bounded memory) must be bit-identical to the
// in-memory path, across mechanisms and intra-run worker counts.
func TestStreamMatchesMemory(t *testing.T) {
	allowProcs(t, 4)
	for _, wl := range []string{"tp", "trade2"} {
		p, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		p.RefsPerThread = 400
		tr, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := trace.WriteSharded(dir, tr, trace.ShardOptions{Shards: 3, BatchRecords: 128}); err != nil {
			t.Fatal(err)
		}
		for _, mech := range []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined} {
			for _, workers := range []int{0, 2} {
				cfg := config.Default().WithMechanism(mech)

				mem, err := New(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				if workers > 0 {
					mem.SetWorkers(workers)
				}
				want := marshalResults(t, mem)

				sh, err := trace.OpenSharded(dir)
				if err != nil {
					t.Fatal(err)
				}
				str, err := NewStream(cfg, sh)
				if err != nil {
					t.Fatal(err)
				}
				if workers > 0 {
					str.SetWorkers(workers)
				}
				got := marshalResults(t, str)

				if string(want) != string(got) {
					t.Fatalf("%s/%s/workers=%d: streaming run diverged from in-memory run",
						wl, mech, workers)
				}
				// Bounded memory held during the replay itself.
				if max := sh.MaxBufferedRecords(); max == 0 || max > int64(tr.Threads)*128 {
					t.Fatalf("%s: MaxBufferedRecords = %d, want in (0, %d]",
						wl, max, tr.Threads*128)
				}
				sh.Close()
			}
		}
	}
}

// TestStreamMemSourceMatchesMemory pins the other Source implementation:
// the in-memory adapter used when cmpsim replays flat traces.
func TestStreamMemSourceMatchesMemory(t *testing.T) {
	p, err := workload.ByName("cpw2")
	if err != nil {
		t.Fatal(err)
	}
	p.RefsPerThread = 300
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithMechanism(config.WBHT)
	mem, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	str, err := NewStream(cfg, trace.NewMemSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if string(marshalResults(t, mem)) != string(marshalResults(t, str)) {
		t.Fatal("MemSource streaming run diverged from in-memory run")
	}
}

// TestNewStreamValidation covers the source-shape errors.
func TestNewStreamValidation(t *testing.T) {
	cfg := config.Default()
	if _, err := NewStream(cfg, trace.NewMemSource(&trace.Trace{Name: "none", Threads: 0})); err == nil {
		t.Fatal("zero-thread source accepted")
	}
	over := &trace.Trace{Name: "over", Threads: cfg.Threads() + 1}
	for i := 0; i <= cfg.Threads(); i++ {
		over.Records = append(over.Records, trace.Record{Thread: uint16(i), Op: trace.Load, Addr: 0x100})
	}
	if _, err := NewStream(cfg, trace.NewMemSource(over)); err == nil {
		t.Fatal("source with more threads than the machine accepted")
	}
}
