package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"cmpcache/internal/audit"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/l2"
	"cmpcache/internal/metrics"
	"cmpcache/internal/workload"
)

// TestAuditorObservationOnly asserts the auditor's zero-perturbation
// contract, mirroring TestProbeObservationOnly: a run with the shadow
// checker attached (alone, and composed with a metrics probe) produces
// bit-identical results to the same run without one.
func TestAuditorObservationOnly(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Combined)
	tr := wbStormTrace(&cfg, 24)

	_, plain := run(t, cfg, tr)

	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	a := audit.New(audit.Config{Differential: true, SweepEvery: 512})
	s.AttachAuditor(a)
	audited := s.Run()
	if !a.Ok() {
		t.Fatalf("auditor on a healthy run: %s", a.Summary())
	}
	if a.Sweeps() == 0 {
		t.Fatal("auditor never swept; the tick hook is not wired")
	}
	want, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(audited)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("attaching the auditor perturbed the simulation")
	}

	// Probe and auditor share the engine's single tick slot; composing
	// them must still perturb nothing but the Metrics series.
	s2, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	a2 := audit.New(audit.Config{Differential: true, SweepEvery: 512})
	s2.AttachAuditor(a2)
	probe := metrics.NewProbe(metrics.Config{Interval: 500})
	s2.Attach(probe)
	both := s2.Run()
	if !a2.Ok() {
		t.Fatalf("auditor composed with probe: %s", a2.Summary())
	}
	if both.Metrics == nil || len(both.Metrics.Samples) == 0 {
		t.Fatal("probed run carries no metrics series")
	}
	stripped := *both
	stripped.Metrics = nil
	got2, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got2) {
		t.Error("auditor+probe run diverged from the plain run")
	}
}

// TestAuditorCatchesInjectedDirtyLoss deliberately discards a queued
// dirty write back mid-run — the fault class the conservation ledger
// exists for — and requires the auditor to flag the exact line within
// the run's final drain check.
func TestAuditorCatchesInjectedDirtyLoss(t *testing.T) {
	cfg := config.Default()
	cfg.L3QueueEntries = 1 // starve the L3 queue so dirty entries linger
	tr := wbStormTrace(&cfg, 32)

	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	a := audit.New(audit.Config{SweepEvery: 256})
	s.AttachAuditor(a)

	var lostKey uint64
	injected := false
	attempts := 0
	var hunt func()
	hunt = func() {
		if injected || attempts > 5000 {
			return
		}
		attempts++
		for _, c := range s.l2s {
			var k uint64
			found := false
			c.ForEachWB(func(e l2.WBEntry) {
				if !found && e.Kind == coherence.DirtyWB && !e.InFlight && !e.Cancelled {
					k, found = e.Key, true
				}
			})
			if found {
				c.CancelWB(k) // drop the only copy of the modified data
				lostKey, injected = k, true
				return
			}
		}
		s.engine.At(s.engine.Now()+100, hunt)
	}
	s.engine.At(1, hunt)

	s.Run()
	if !injected {
		t.Fatal("scenario never staged a quiescent dirty write back to discard")
	}
	if a.Ok() {
		t.Fatal("auditor reported a clean run despite a discarded dirty line")
	}
	for _, v := range a.Violations() {
		if v.Kind == "dirty-lost" && v.Key == lostKey {
			return
		}
	}
	t.Fatalf("no dirty-lost violation for key %#x; got: %s", lostKey, a.Summary())
}

// TestStaleUpgradeDoesNotDestroyDirtyCopy is the regression test for
// the stale-claim gate in combineDemand. Bus ordering permits this
// window: X's RWITM invalidates claimer B, then Y's Read demotes X to
// Tagged, and only then does B's (now stale) Upgrade reach its combine.
// Before the gate, the stale claim snooped everyone and invalidated the
// only dirty copy (X's Tagged line) plus the sharer — the line's data
// was lost. The claim must instead restart as a full RWITM without
// snooping anyone.
func TestStaleUpgradeDoesNotDestroyDirtyCopy(t *testing.T) {
	cfg := config.Default()
	s, err := New(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	K := key(&cfg, 0, 0, 7)
	B, X, Y := s.l2s[1], s.l2s[2], s.l2s[3]
	X.InstallFill(K, coherence.Tagged) // dirty supplier, demoted by a Read
	Y.InstallFill(K, coherence.Shared)
	// B's copy was invalidated between its Upgrade's issue and combine.
	B.AllocMSHR(K, coherence.Upgrade)

	s.combineDemand(B, K, coherence.Upgrade)

	if s.upgradeRestarts != 1 {
		t.Fatalf("upgradeRestarts = %d, want 1", s.upgradeRestarts)
	}
	if st := X.State(K); st != coherence.Tagged {
		t.Fatalf("stale upgrade changed the dirty supplier: %v, want T", st)
	}
	if st := Y.State(K); st != coherence.Shared {
		t.Fatalf("stale upgrade changed the sharer: %v, want S", st)
	}

	s.engine.Run() // the restarted RWITM combines and fills
	if st := B.State(K); st != coherence.Modified {
		t.Fatalf("restarted claim ended in %v, want M", st)
	}
	if st := X.State(K); st != coherence.Invalid {
		t.Fatalf("RWITM left the old supplier in %v, want I", st)
	}
	if s.fillsFromPeer != 1 {
		t.Fatalf("fillsFromPeer = %d, want 1 (T supplier intervention)", s.fillsFromPeer)
	}
}

// TestRWITMCancelsStaleQueuedWB: the castout buffer snoops demand
// transactions like the tag array does. An invalidating RWITM must
// cancel a queued clean entry — otherwise a later reinstall or snarf
// resurrects the stale copy alongside the new owner.
func TestRWITMCancelsStaleQueuedWB(t *testing.T) {
	cfg := config.Default()
	s, err := New(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	K := key(&cfg, 0, 0, 5)
	A, B := s.l2s[0], s.l2s[1]
	if got := A.ProcessVictim(K, coherence.Exclusive, false, false); got != l2.VictimQueued {
		t.Fatalf("ProcessVictim = %v, want queued", got)
	}

	B.AllocMSHR(K, coherence.RWITM)
	s.combineDemand(B, K, coherence.RWITM)

	if n := A.WBQueueLen(); n != 0 {
		t.Fatalf("stale queue entry survived the RWITM (len %d)", n)
	}
	if st := B.State(K); st != coherence.Modified {
		t.Fatalf("RWITM installed %v, want M", st)
	}
	if s.fillsFromPeer != 1 {
		t.Fatalf("fillsFromPeer = %d, want 1 (queued E entry supplies)", s.fillsFromPeer)
	}
	s.engine.Run()
	if got := A.Probe(K, false, false); got != l2.ProbeMiss {
		t.Fatalf("cancelled entry still reachable: probe = %v", got)
	}
}

// TestUpgradeCancelsStaleQueuedWB: a committed ownership claim
// invalidates peer copies wherever they live, including a clean entry
// parked in a peer's castout buffer.
func TestUpgradeCancelsStaleQueuedWB(t *testing.T) {
	cfg := config.Default()
	s, err := New(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	K := key(&cfg, 0, 0, 6)
	A, B := s.l2s[0], s.l2s[1]
	A.ProcessVictim(K, coherence.SharedLast, false, false)
	B.InstallFill(K, coherence.Shared)

	B.AllocMSHR(K, coherence.Upgrade)
	s.combineDemand(B, K, coherence.Upgrade)

	if s.upgrades != 1 || s.upgradeRestarts != 0 {
		t.Fatalf("upgrades = %d restarts = %d, want 1/0", s.upgrades, s.upgradeRestarts)
	}
	if n := A.WBQueueLen(); n != 0 {
		t.Fatalf("stale queue entry survived the upgrade (len %d)", n)
	}
	if st := B.State(K); st != coherence.Modified {
		t.Fatalf("upgrade left claimer in %v, want M", st)
	}
}

// TestReadSnoopsWBQueueAndDemotes: a queued entry answers a peer Read
// exactly like an array line — a dirty entry supplies and demotes to
// Tagged (reader installs Shared), a clean supplier entry demotes to
// plain Shared and the reader becomes the new SharedLast.
func TestReadSnoopsWBQueueAndDemotes(t *testing.T) {
	cfg := config.Default()
	s, err := New(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	A, B := s.l2s[0], s.l2s[1]
	K1 := key(&cfg, 0, 0, 21)
	K2 := key(&cfg, 0, 1, 22)
	A.ProcessVictim(K1, coherence.Modified, false, false)
	A.ProcessVictim(K2, coherence.SharedLast, false, false)

	B.AllocMSHR(K1, coherence.Read)
	s.combineDemand(B, K1, coherence.Read)
	B.AllocMSHR(K2, coherence.Read)
	s.combineDemand(B, K2, coherence.Read)

	if st := B.State(K1); st != coherence.Shared {
		t.Fatalf("read of a queued M entry installed %v, want S", st)
	}
	if st := B.State(K2); st != coherence.SharedLast {
		t.Fatalf("read of a queued SL entry installed %v, want SL", st)
	}
	states := map[uint64]coherence.State{}
	kinds := map[uint64]coherence.TxnKind{}
	A.ForEachWB(func(e l2.WBEntry) { states[e.Key], kinds[e.Key] = e.State, e.Kind })
	if states[K1] != coherence.Tagged || kinds[K1] != coherence.DirtyWB {
		t.Fatalf("dirty entry after peer read: %v/%v, want T/DirtyWB", states[K1], kinds[K1])
	}
	if states[K2] != coherence.Shared {
		t.Fatalf("supplier entry after peer read: %v, want S", states[K2])
	}
	if s.fillsFromPeer != 2 {
		t.Fatalf("fillsFromPeer = %d, want 2", s.fillsFromPeer)
	}
	s.engine.Run()
}

// TestRequeueWBOrderingAcrossRetrySwitchFlip: a retried write back
// requeues at the FRONT of the castout buffer (it is the oldest entry,
// and FIFO order bounds how long a dirty line sits outside any array),
// and this holds while the retry burst itself flips the WBHT's
// adaptive switch. All entries must still reach the L3 exactly once.
func TestRequeueWBOrderingAcrossRetrySwitchFlip(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.RetryThreshold = 1
	s, err := New(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	A := s.l2s[0]
	K1 := key(&cfg, 0, 0, 11)
	K2 := key(&cfg, 0, 1, 12)
	K3 := key(&cfg, 0, 2, 13)
	for _, k := range []uint64{K1, K2, K3} {
		if got := A.ProcessVictim(k, coherence.Modified, false, false); got != l2.VictimQueued {
			t.Fatalf("ProcessVictim(%#x) = %v, want queued", k, got)
		}
	}

	// Exhaust the L3 queue tokens so the head entry's combine retries.
	for i := 0; s.l3.QueueInUse() < cfg.L3QueueEntries; i++ {
		s.l3.SnoopWB(key(&cfg, 1, i%16, 99), coherence.DirtyWB)
	}
	if s.rswitch.Active(0) {
		t.Fatal("retry switch active before any retry")
	}

	e, ok := A.HeadWB()
	if !ok || e.Key != K1 {
		t.Fatalf("HeadWB = %v/%v, want K1", e, ok)
	}
	s.wbInFlight[0] = true
	entry, wasCancelled := A.CompleteWB(K1)
	if wasCancelled {
		t.Fatal("entry unexpectedly cancelled")
	}
	s.retryWB(A, entry, 0)

	var order []uint64
	A.ForEachWB(func(e l2.WBEntry) { order = append(order, e.Key) })
	want := []uint64{K1, K2, K3}
	if len(order) != len(want) {
		t.Fatalf("queue length %d after requeue, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("queue order %#x, want %#x (retry must requeue at the front)", order, want)
		}
	}
	if !s.rswitch.Active(cfg.WBHT.RetryWindow) {
		t.Fatal("threshold-1 switch did not arm at the next window boundary")
	}

	for s.l3.QueueInUse() > 0 {
		s.l3.ReleaseToken()
	}
	s.engine.Run() // backoff expires, pump drains K1, K2, K3 in order
	for _, k := range want {
		if !s.l3.Contains(k) {
			t.Errorf("key %#x never reached the L3", k)
		}
	}
	if n := A.WBQueueLen(); n != 0 {
		t.Errorf("castout buffer not drained: %d entries", n)
	}
	if s.wbInFlight[0] {
		t.Error("write-back slot still marked in flight")
	}
	if s.wbRetried != 1 {
		t.Errorf("wbRetried = %d, want 1", s.wbRetried)
	}
}

// TestAuditorCleanOnWorkloads runs every built-in workload under every
// mechanism with the full differential auditor attached: the invariant
// set must hold on all the configurations the experiments report.
func TestAuditorCleanOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the fuzz soak in short mode")
	}
	for _, name := range workload.Names() {
		for _, mech := range []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined} {
			p, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p.RefsPerThread = 1200
			tr, err := p.Generate()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cfg := config.Default().WithMechanism(mech)
			s, err := New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			a := audit.New(audit.Config{Differential: true, SweepEvery: 1024})
			s.AttachAuditor(a)
			s.Run()
			if !a.Ok() {
				t.Errorf("%s/%s: %s", name, mech, a.Summary())
			}
		}
	}
}
