package system

import (
	"testing"

	"cmpcache/internal/config"
)

// TestShardingStatsDeterministic pins the ShardingStats contract: the
// round/horizon counters are identical at every worker count (they are
// what Results JSON carries), the attribution counters sum to the
// parallel-round count, and the wall-clock barrier fields appear only
// in pool mode.
func TestShardingStatsDeterministic(t *testing.T) {
	allowProcs(t, 8)
	cfg := config.Default()
	tr := parallelTrace(t, cfg.Threads(), 400)

	run := func(workers int) *Results {
		s, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			s.SetWorkers(workers)
		}
		return s.Run()
	}

	serial := run(1)
	st := serial.Sharding
	if st.Rounds == 0 {
		t.Fatal("serial run recorded zero rounds")
	}
	if st.ParallelRounds == 0 {
		t.Fatal("serial run recorded zero parallel rounds (workload too small?)")
	}
	if got := st.HorizonNextGlobal + st.HorizonRingCredit + st.HorizonWindow; got != st.ParallelRounds {
		t.Fatalf("horizon attribution %d does not sum to parallel rounds %d", got, st.ParallelRounds)
	}
	if st.Workers != 1 {
		t.Fatalf("serial Workers = %d, want 1", st.Workers)
	}
	if st.BarrierWaitNs != nil || st.BarrierDrainNs != 0 {
		t.Fatalf("serial run collected barrier timing: wait=%v drain=%d", st.BarrierWaitNs, st.BarrierDrainNs)
	}

	for _, workers := range []int{2, 4} {
		res := run(workers)
		ps := res.Sharding
		if ps.Rounds != st.Rounds || ps.ParallelRounds != st.ParallelRounds ||
			ps.HorizonNextGlobal != st.HorizonNextGlobal ||
			ps.HorizonRingCredit != st.HorizonRingCredit ||
			ps.HorizonWindow != st.HorizonWindow {
			t.Fatalf("workers=%d: deterministic counters drifted:\nserial %+v\ngot    %+v", workers, st, ps)
		}
		if ps.Workers != workers {
			t.Fatalf("workers=%d: Workers field = %d", workers, ps.Workers)
		}
		if len(ps.BarrierWaitNs) != cfg.NumL2() {
			t.Fatalf("workers=%d: BarrierWaitNs has %d entries, want %d (one per shard)",
				workers, len(ps.BarrierWaitNs), cfg.NumL2())
		}
		for i, ns := range ps.BarrierWaitNs {
			if ns < 0 {
				t.Fatalf("workers=%d: negative barrier wait for shard %d: %d", workers, i, ns)
			}
		}
		if ps.BarrierWaitTotalNs() < 0 {
			t.Fatalf("workers=%d: negative total barrier wait", workers)
		}
	}
}
