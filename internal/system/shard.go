package system

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/cpu"
	"cmpcache/internal/l2"
	"cmpcache/internal/sim"
	"cmpcache/internal/stats"
	"cmpcache/internal/trace"
)

// shard is one independently runnable slice of the simulated chip: one
// L2 cache, the hardware threads that feed it, and a private event
// wheel. Everything a shard touches between bus-combine points is owned
// by the shard alone — its L2's front end (probe, MSHRs, write-back
// queue), its threads, its access pool and its fill-latency histogram —
// so shards run concurrently between rounds with no locks.
//
// Anything global (the rings, the L3, memory, system counters, the
// observability attachments and the shared reuse tracker) is reached
// only through two deterministic channels drained at the round barrier:
//
//   - obs: an append-only log of observation hook calls (auditor,
//     latency collector, tracer, reuse tracker), replayed in canonical
//     (time, shard) order;
//   - posts: bus requests (demand starts and write-back pumps), which
//     arbitrate for the address ring in canonical (time, shard) order.
//
// Because every shard-side record carries its own timestamp and the
// merge orders are fixed, the drained effect is a pure function of the
// simulated workload — independent of how many worker goroutines ran
// the shards, which is the whole bit-identity argument (DESIGN.md §15).
type shard struct {
	sys    *System
	idx    int
	cache  l2Handle
	engine *sim.Engine

	threads    *cpu.Complex
	accessPool *sim.Pool[pendingAccess]

	// fillLatency is this shard's slice of the issue-to-completion
	// distribution; Results merges the per-shard histograms (merge order
	// cannot matter — histograms are additive).
	fillLatency stats.Histogram

	hResolve sim.Handler

	obs   []obsRec
	posts []busPost

	// obsNext / postNext are the merge cursors used by the barrier.
	obsNext  int
	postNext int

	// doneAtNs is the wall-clock instant this shard finished the current
	// parallel phase, stamped by its worker and read by the coordinator
	// after the barrier (the pool's done channel orders the accesses).
	// Only set in pool mode; zero means the shard did not run this round.
	doneAtNs int64
}

// obsKind discriminates replayed observation records.
type obsKind int8

const (
	obsStoreHit obsKind = iota
	obsWBReinstall
	obsWBCancelled
	obsDemandIssued
	obsDemandComplete
	obsVictim
)

// obsRec is one shard-context observation hook call, deferred to the
// round barrier. Records are appended in shard execution order, so each
// shard's log is nondecreasing in at; the barrier merges logs by
// (at, shard index, append order).
type obsRec struct {
	kind     obsKind
	at       config.Cycles
	key      uint64
	issued   config.Cycles   // obsDemandIssued: the access's issue time
	wbe      l2.WBEntry      // obsWBReinstall
	vState   coherence.State // obsVictim
	vAction  l2.VictimAction // obsVictim
	inL3     bool            // obsVictim
	switchOn bool            // obsVictim: retry-switch state at the hook
}

// postKind discriminates deferred bus requests.
type postKind int8

const (
	postDemand postKind = iota
	postPump
)

// busPost is one deferred address-ring request from shard context. The
// issuing L2 is the shard's own cache, so the record carries only the
// request itself; the barrier executes posts in (when, shard index,
// append order) — the canonical bus arbitration order.
type busPost struct {
	kind postKind
	when config.Cycles
	key  uint64
	txn  coherence.TxnKind
}

// newShardCore builds the shard shell common to both feeds: the access
// pool, the resolve handler and the engine. The caller attaches the
// thread complex and calls size().
func newShardCore(s *System, idx int) *shard {
	sh := &shard{sys: s, idx: idx, cache: s.l2s[idx], engine: sim.NewEngine()}
	sh.accessPool = sim.NewPool(func() *pendingAccess {
		p := &pendingAccess{}
		p.completeFn = func(at config.Cycles) { sh.finishAccess(p, at) }
		return p
	})
	sh.hResolve = func(d sim.EventData) { sh.resolve(d.Ptr.(*pendingAccess)) }
	return sh
}

// issueFn is the shard's cpu issue path, shared by both constructors.
func (sh *shard) issueFn() cpu.IssueFunc {
	return func(_ int, op trace.Op, key uint64, done func(config.Cycles)) {
		sh.access(op, key, done)
	}
}

// size pre-sizes the shard's event wheel and access pool from the
// shard's trace record count.
func (sh *shard) size(traceRecs int) {
	s := sh.sys
	perShard := s.cfg.ThreadsPerL2() * s.cfg.MaxOutstanding
	events := perShard*8 + 64
	if limit := 2*traceRecs + 64; events > limit {
		events = limit
	}
	sh.engine.Grow(events)
	inflight := perShard
	if inflight > traceRecs {
		inflight = traceRecs
	}
	sh.accessPool.Prime(inflight)
}

// newShard wires shard idx over streams (this shard's thread
// sub-slice).
func newShard(s *System, idx int, streams [][]trace.Record, traceRecs int) *shard {
	sh := newShardCore(s, idx)
	sh.threads = cpu.New(sh.engine, &s.cfg, streams, sh.issueFn())
	sh.size(traceRecs)
	return sh
}

// newShardStream wires shard idx over chunked per-thread streams
// (the bounded-memory replay path). Construction fails if any stream's
// first chunk cannot be decoded.
func newShardStream(s *System, idx int, streams []trace.Stream, traceRecs int) (*shard, error) {
	sh := newShardCore(s, idx)
	threads, err := cpu.NewStreams(sh.engine, &s.cfg, streams, sh.issueFn())
	if err != nil {
		return nil, err
	}
	sh.threads = threads
	sh.size(traceRecs)
	return sh, nil
}

// --- observation log appenders (shard context only) ---

func (sh *shard) logStoreHit(at config.Cycles, key uint64) {
	if sh.sys.auditor == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{kind: obsStoreHit, at: at, key: key})
}

func (sh *shard) logWBReinstall(at config.Cycles, e l2.WBEntry) {
	if sh.sys.auditor == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{kind: obsWBReinstall, at: at, key: e.Key, wbe: e})
}

func (sh *shard) logWBCancelled(at config.Cycles, key uint64) {
	if sh.sys.lat == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{kind: obsWBCancelled, at: at, key: key})
}

func (sh *shard) logDemandIssued(at config.Cycles, key uint64, issued config.Cycles) {
	if sh.sys.lat == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{kind: obsDemandIssued, at: at, key: key, issued: issued})
}

func (sh *shard) logDemandComplete(at config.Cycles, key uint64) {
	if sh.sys.lat == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{kind: obsDemandComplete, at: at, key: key})
}

// logVictim is appended unconditionally when the victim queued a write
// back (the reuse tracker scores every attempt, attachments or not);
// non-queued victims log only when an observer wants them.
func (sh *shard) logVictim(at config.Cycles, key uint64, st coherence.State, action l2.VictimAction, inL3, switchOn bool) {
	s := sh.sys
	if action != l2VictimQueued && s.tracer == nil && s.auditor == nil {
		return
	}
	sh.obs = append(sh.obs, obsRec{
		kind: obsVictim, at: at, key: key,
		vState: st, vAction: action, inL3: inL3, switchOn: switchOn,
	})
}

// postDemandTxn defers a demand transaction's address-ring arbitration
// to the round barrier. when is the shard-context cycle the request
// would have arbitrated; the barrier preserves it.
func (sh *shard) postDemandTxn(when config.Cycles, key uint64, kind coherence.TxnKind) {
	sh.posts = append(sh.posts, busPost{kind: postDemand, when: when, key: key, txn: kind})
}

// postPumpWB defers a write-back pump wake to the round barrier.
func (sh *shard) postPumpWB(when config.Cycles) {
	sh.posts = append(sh.posts, busPost{kind: postPump, when: when})
}

// --- the L2 front end (shard context) ---

// access is the shard's cpu issue path: one thread reference enters the
// hierarchy. The request crosses the core interface unit, reserves an
// L2 slice port and resolves against the tag array; hits complete at
// the Table 3 L2 latency, everything else becomes a bus transaction.
func (sh *shard) access(op trace.Op, key uint64, done func(config.Cycles)) {
	p := sh.accessPool.Get()
	p.sh = sh
	p.key = key
	p.issued = sh.engine.Now()
	p.done = done
	p.isStore = op == trace.Store
	p.count = true
	// The port is booked for the cycle the request reaches the slice
	// (issue + CoreToL2); booking it from the issue event keeps
	// reservations time-ordered while avoiding an intermediate event.
	cfg := &sh.sys.cfg
	start := sh.cache.ReservePort(key, sh.engine.Now()+cfg.CoreToL2)
	sh.engine.AtCall(start+cfg.L2Access, sh.hResolve, sim.EventData{Ptr: p})
}

// finishAccess completes a pending access: the issue-to-completion
// latency is recorded, the node returns to the pool and the thread's
// completion callback runs (which may synchronously issue new work that
// reuses the node). Called from shard context at delivery time, and
// from the serial phase when a bus commit wakes coalesced waiters — the
// coordinator keeps the shard clock in step for exactly that case.
func (sh *shard) finishAccess(p *pendingAccess, at config.Cycles) {
	sh.fillLatency.Observe(uint64(at - p.issued))
	done := p.done
	p.done = nil
	p.sh = nil
	sh.accessPool.Put(p)
	done(at)
}

// resolve classifies the probe outcome and dispatches. p.count is false
// on re-attempts after a structural stall so statistics stay truthful.
func (sh *shard) resolve(p *pendingAccess) {
	s := sh.sys
	now := sh.engine.Now()
	cache, key, isStore := sh.cache, p.key, p.isStore
	switch cache.Probe(key, isStore, p.count) {
	case probeHit:
		if isStore {
			sh.logStoreHit(now, key)
		}
		sh.finishAccess(p, now)

	case probeHitStoreUpgrade:
		// A store hit an Exclusive line: commit the silent E→M upgrade
		// here — through SetState and the store-hit observation, exactly
		// like the completeFill path — rather than as a Probe side
		// effect invisible to the hooks.
		cache.SetState(key, coherence.Modified)
		sh.logStoreHit(now, key)
		sh.finishAccess(p, now)

	case probeWBBufferHit:
		// The line was caught in the write-back queue before leaving the
		// chip: cancel the write back and put the line home.
		e, ok := cache.CancelWB(key)
		if !ok {
			// The in-flight write back combined in this same cycle;
			// treat as a plain miss on re-resolution.
			p.count = false
			sh.resolve(p)
			return
		}
		sh.logWBReinstall(now, e)
		if !e.InFlight {
			// Queued entries close here; an in-flight one closes at its
			// bus combine (the cancelled disposition).
			sh.logWBCancelled(now, key)
		}
		vKey, vState, evicted := cache.Reinstall(e)
		if evicted {
			sh.handleVictim(vKey, vState, now)
		}
		if isStore && e.State != coherence.Modified {
			// Stores to a reinstalled clean/shared line still need
			// ownership.
			p.count = false
			sh.resolve(p)
			return
		}
		sh.finishAccess(p, now)

	case probeHitNeedsUpgrade:
		if cache.AttachMSHR(key, true, p.completeFn) {
			cache.CountMSHRAttach()
			return // an upgrade or fill in flight will complete us
		}
		cache.AllocMSHR(key, coherence.Upgrade)
		cache.AttachMSHR(key, true, p.completeFn)
		sh.logDemandIssued(now, key, p.issued)
		sh.postDemandTxn(now, key, coherence.Upgrade)

	case probeMiss:
		if cache.AttachMSHR(key, isStore, p.completeFn) {
			cache.CountMSHRAttach()
			return
		}
		if cache.WBQueueFull() || cache.MSHRFull() {
			// Structural stall: the miss blocks until a slot opens
			// ("misses to the L2 cache will be blocked and will have to
			// wait for an open slot").
			p.count = false
			sh.engine.ScheduleCall(s.cfg.RetryBackoff, sh.hResolve, sim.EventData{Ptr: p})
			return
		}
		kind := coherence.Read
		if isStore {
			kind = coherence.RWITM
		}
		cache.CountMiss(key)
		cache.AllocMSHR(key, kind)
		cache.AttachMSHR(key, isStore, p.completeFn)
		sh.logDemandIssued(now, key, p.issued)
		sh.postDemandTxn(now, key, kind)
	}
}

// completeFill delivers the arrived data to the coalesced waiters and
// resolves any store-ownership follow-up. Ownership is serialized at
// the transaction's bus combine, not at data arrival: an RWITM's stores
// complete unconditionally even if a later transaction has already
// invalidated the line (the store is ordered before that transaction in
// coherence order). Restarting in that case would let two stable
// storers invalidate each other's in-flight fills forever.
func (sh *shard) completeFill(key uint64, kind coherence.TxnKind) {
	cache := sh.cache
	at := sh.engine.Now()
	sh.logDemandComplete(at, key)
	loads, stores := cache.TakeWaiters(key)
	for _, w := range loads {
		w(at)
	}
	if len(stores) == 0 {
		return
	}
	if kind == coherence.RWITM {
		for _, w := range stores {
			w(at)
		}
		return
	}
	// Stores coalesced onto a Read miss still need ownership, unless the
	// fill landed Exclusive (silent upgrade).
	switch cache.State(key) {
	case coherence.Modified:
		for _, w := range stores {
			w(at)
		}
	case coherence.Exclusive:
		cache.SetState(key, coherence.Modified)
		sh.logStoreHit(at, key)
		for _, w := range stores {
			w(at)
		}
	case coherence.Invalid:
		// The clean fill was invalidated before its data arrived; the
		// store claims the line outright. The RWITM completes its stores
		// at arrival unconditionally, so this cannot recurse.
		cache.AllocMSHR(key, coherence.RWITM)
		for _, w := range stores {
			cache.AttachMSHR(key, true, w)
		}
		sh.postDemandTxn(at, key, coherence.RWITM)
	default: // S, SL, T: claim ownership on the bus
		cache.AllocMSHR(key, coherence.Upgrade)
		for _, w := range stores {
			cache.AttachMSHR(key, true, w)
		}
		sh.postDemandTxn(at, key, coherence.Upgrade)
	}
}

// handleVictim is the shard-context half of the Section 2 write-back
// policy: the victim is classified against the shard's own L2 (and the
// frozen retry-switch and L3-membership oracles, both read-only between
// rounds), the observation hooks are logged for barrier replay, and a
// queued entry posts a pump wake. The global-context half lives in
// demand.go (handleVictimGlobal).
func (sh *shard) handleVictim(vKey uint64, vState coherence.State, now config.Cycles) {
	s := sh.sys
	// ActiveNow (not Active): the coordinator advanced the switch's
	// window at the round boundary; shard context must not mutate it.
	switchActive := s.policy.GatedBySwitch() && s.rswitch.ActiveNow()
	inL3 := s.l3.Contains(vKey) // oracle peek, used only for scoring
	action := sh.cache.ProcessVictim(vKey, vState, switchActive, inL3)
	sh.logVictim(now, vKey, vState, action, inL3, s.rswitch.ActiveNow())
	if action == l2VictimQueued {
		sh.postPumpWB(now)
	}
}

// replayObs applies one observation record to the attachments in
// canonical order at the round barrier. The auditor's clock is restamped
// per record so violations carry the hook's own cycle.
func (s *System) replayObs(sh *shard, rec *obsRec) {
	idx := sh.idx
	switch rec.kind {
	case obsStoreHit:
		if s.auditor != nil {
			s.auditor.AdvanceEvents(rec.at, 0)
			s.auditor.OnStoreHit(idx, rec.key)
		}
	case obsWBReinstall:
		if s.auditor != nil {
			s.auditor.AdvanceEvents(rec.at, 0)
			s.auditor.OnWBReinstall(idx, rec.wbe)
		}
	case obsWBCancelled:
		if s.lat != nil {
			s.lat.WBCancelled(idx, rec.key, rec.at)
		}
	case obsDemandIssued:
		if s.lat != nil {
			s.lat.DemandIssued(idx, rec.key, rec.issued, rec.at)
		}
	case obsDemandComplete:
		if s.lat != nil {
			s.lat.DemandComplete(idx, rec.key, rec.at)
		}
	case obsVictim:
		queued := rec.vAction == l2VictimQueued
		if s.tracer != nil {
			s.tracer.Victim(rec.at, idx, rec.key, rec.vState.String(), rec.vAction.String(), rec.inL3)
		}
		if s.auditor != nil {
			s.auditor.AdvanceEvents(rec.at, 0)
			s.auditor.OnVictim(idx, rec.key, rec.vState, queued)
		}
		if queued {
			if s.lat != nil {
				wbKind := coherence.CleanWB
				if rec.vState.Dirty() {
					wbKind = coherence.DirtyWB
				}
				s.lat.WBQueued(idx, rec.key, wbKind, rec.switchOn, rec.at)
			}
			s.reuse.recordAttempt(rec.key)
		}
	}
}

// executePost performs one deferred bus request at the round barrier,
// in canonical order. rec.when is the shard-context cycle the request
// was raised; address-ring arbitration sees exactly that time.
func (s *System) executePost(sh *shard, rec *busPost) {
	switch rec.kind {
	case postDemand:
		s.startDemand(sh.cache, rec.key, rec.txn, rec.when)
	case postPump:
		s.pumpWB(sh.idx, rec.when)
	}
}
