package system

import (
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// sharedEvictionTrace makes two L2s (threads 0 and 4) walk the same
// assoc+1 lines of one set so both hold copies and both eventually evict
// them.
func sharedEvictionTrace(cfg *config.Config, rounds int) *trace.Trace {
	var recs []trace.Record
	for round := 0; round < rounds; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs,
				trace.Record{Thread: 0, Op: trace.Load, Addr: lineAddr(cfg, 0, 0, i), Gap: 3000},
				trace.Record{Thread: 4, Op: trace.Load, Addr: lineAddr(cfg, 0, 0, i), Gap: 3000},
			)
		}
	}
	return mkTrace(recs...)
}

func TestGlobalWBHTAllocatesEverywhere(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	cfg.WBHT.GlobalAllocate = true
	s, r := run(t, cfg, sharedEvictionTrace(&cfg, 3))
	if r.WBHT.Allocations == 0 {
		t.Fatal("no WBHT allocations")
	}
	// With global allocation, the number of table entries created must be
	// a multiple of the L2 count per redundant write back; verify tables
	// other than the writer's hold entries.
	populated := 0
	for _, c := range s.l2s {
		if c.WBHT().Occupancy() > 0 {
			populated++
		}
	}
	if populated < len(s.l2s) {
		t.Fatalf("only %d of %d WBHTs populated under global allocation",
			populated, len(s.l2s))
	}
}

func TestLocalWBHTAllocatesOnlyWriter(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.SwitchEnabled = false
	// Only thread 0 (L2 0) runs: entries may appear only in table 0.
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 2000,
			})
		}
	}
	s, _ := run(t, cfg, mkTrace(recs...))
	for i, c := range s.l2s[1:] {
		if c.WBHT().Occupancy() != 0 {
			t.Fatalf("L2 %d's WBHT populated without writing back", i+1)
		}
	}
	if s.l2s[0].WBHT().Occupancy() == 0 {
		t.Fatal("writer's WBHT empty")
	}
}

func TestSnarfModePeerSquash(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	_, r := run(t, cfg, sharedEvictionTrace(&cfg, 2))
	if r.WBSquashedPeer == 0 {
		t.Fatal("no peer squashes despite shared eviction pattern")
	}
}

func TestDirtyWBSquashTransfersObligation(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	// Thread 0 dirties line 0; thread 4 reads it (both L2s share it,
	// supplier L2 0 holds T). Evict from L2 0 -> dirty WB -> L2 1 holds a
	// valid copy -> squash; L2 1 must inherit the Tagged obligation.
	var recs []trace.Record
	recs = append(recs, trace.Record{Thread: 0, Op: trace.Store, Addr: lineAddr(&cfg, 0, 0, 0)})
	recs = append(recs, trace.Record{Thread: 4, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, 0), Gap: 2000})
	// Evict line 0 from L2 0 only.
	for i := 1; i <= cfg.L2Assoc; i++ {
		recs = append(recs, trace.Record{Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 1000})
	}
	s, r := run(t, cfg, mkTrace(recs...))
	if r.WBSquashedPeer == 0 {
		t.Fatal("dirty write back not squashed by the sharing peer")
	}
	key := lineAddr(&cfg, 0, 0, 0) / uint64(cfg.LineBytes)
	if st := s.l2s[1].State(key); st != coherence.Tagged {
		t.Fatalf("peer state = %v, want T (inherited write-back obligation)", st)
	}
}

func TestSnarfConvertsL3AccessToIntervention(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	// Build reuse history on thread 0's private set, then let the line be
	// snarfed and measure that a subsequent miss is peer-served.
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for i := 0; i <= cfg.L2Assoc; i++ {
			recs = append(recs, trace.Record{
				Thread: 0, Op: trace.Load, Addr: lineAddr(&cfg, 0, 0, i), Gap: 3000,
			})
		}
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.WBSnarfed == 0 {
		t.Fatal("no snarfs on a recycling private set")
	}
	if r.FillsFromPeer == 0 {
		t.Fatal("snarfed lines never supplied interventions")
	}
}

func TestCastoutBackpressure(t *testing.T) {
	// Shrink the L3 to force castouts and verify memory writes occur.
	cfg := config.Default()
	cfg.L3SliceMB = 1
	var recs []trace.Record
	// Stream dirty lines through the L2s at four times the shrunken L3's
	// capacity: the L2s' dirty write backs overflow the L3, whose dirty
	// victims must be cast out to memory.
	lines := 4 * cfg.L3Lines()
	for i := 0; i < lines; i++ {
		recs = append(recs, trace.Record{
			Thread: uint16(i % 16), Op: trace.Store, Addr: uint64(i) * 128, Gap: 2,
		})
	}
	_, r := run(t, cfg, mkTrace(recs...))
	if r.L3Castouts == 0 {
		t.Fatal("no L3 castouts despite overflow of dirty lines")
	}
	if r.MemWrites == 0 {
		t.Fatal("castouts produced no memory writes")
	}
}

func TestRetrySwitchStatsExposed(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	_, r := run(t, cfg, sharedEvictionTrace(&cfg, 2))
	if r.SwitchTotalWindows == 0 && r.Cycles > uint64(cfg.WBHT.RetryWindow) {
		t.Fatal("retry switch windows not accounted")
	}
}

func TestMechanismRunsProduceIdenticalRefCounts(t *testing.T) {
	tr := sharedEvictionTrace(ptr(config.Default()), 2)
	var counts []uint64
	for _, m := range []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined} {
		cfg := config.Default().WithMechanism(m)
		_, r := run(t, cfg, tr)
		counts = append(counts, r.RefsCompleted)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("mechanisms completed different ref counts: %v", counts)
		}
	}
}

func ptr(c config.Config) *config.Config { return &c }
