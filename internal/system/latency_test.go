package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"cmpcache/internal/audit"
	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/txlat"
	"cmpcache/internal/workload"
)

// TestObservationOnlySubsets is the composition contract for the whole
// observation surface: every subset of {probe, auditor, latency
// collector} attached together must leave the simulated outcome
// bit-identical to a plain run (only the Metrics/Latency carrier fields
// may differ, by construction).
func TestObservationOnlySubsets(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Combined)
	tr := wbStormTrace(&cfg, 24)

	_, plain := run(t, cfg, tr)
	want, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name            string
		probe, aud, lat bool
		windowed        bool
	}{
		{name: "probe", probe: true},
		{name: "auditor", aud: true},
		{name: "latency", lat: true},
		{name: "latency-windowed", lat: true, windowed: true},
		{name: "probe+auditor", probe: true, aud: true},
		{name: "probe+latency", probe: true, lat: true},
		{name: "auditor+latency", aud: true, lat: true},
		{name: "all", probe: true, aud: true, lat: true},
		{name: "all-windowed", probe: true, aud: true, lat: true, windowed: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			var a *audit.Auditor
			var c *txlat.Collector
			if tc.probe {
				s.Attach(metrics.NewProbe(metrics.Config{Interval: 500}))
			}
			if tc.aud {
				a = audit.New(audit.Config{Differential: true, SweepEvery: 512})
				s.AttachAuditor(a)
			}
			if tc.lat {
				lcfg := txlat.Config{}
				if tc.windowed {
					lcfg.Interval = 500
				}
				c = txlat.New(lcfg)
				s.AttachLatency(c)
			}
			res := s.Run()
			if a != nil && !a.Ok() {
				t.Fatalf("auditor on a healthy run: %s", a.Summary())
			}
			if tc.probe && (res.Metrics == nil || len(res.Metrics.Samples) == 0) {
				t.Fatal("probed run carries no metrics series")
			}
			if tc.lat {
				if res.Latency == nil || len(res.Latency.Groups) == 0 {
					t.Fatal("latency run carries no report")
				}
				if res.Latency.Dropped != 0 {
					t.Errorf("collector dropped %d open records (unhooked protocol path)", res.Latency.Dropped)
				}
				if tc.windowed && len(res.Latency.Windows) == 0 {
					t.Error("windowed collector produced no windows")
				}
			}
			stripped := *res
			stripped.Metrics = nil
			stripped.Latency = nil
			got, err := json.Marshal(&stripped)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s attachment perturbed the simulation", tc.name)
			}
		})
	}
}

// TestLatencyAttributionOnWorkload runs a real workload with the
// collector attached and checks the attribution is internally
// consistent: per-class counts reconcile with the run's own counters,
// stage sums bound totals, and the paper's latency ordering (peer-L2
// intervention < L3 fill < memory fill) emerges from the measured
// source stages.
func TestLatencyAttributionOnWorkload(t *testing.T) {
	p, err := workload.ByName("tp")
	if err != nil {
		t.Fatal(err)
	}
	// Large enough that the L3 victim cache starts supplying fills (it
	// only holds previously written-back lines), small enough to stay a
	// sub-second unit test.
	p.RefsPerThread = 12000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithMechanism(config.Snarf)
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	c := txlat.New(txlat.Config{TopK: 8})
	s.AttachLatency(c)
	res := s.Run()
	rep := res.Latency
	if rep == nil {
		t.Fatal("no latency report")
	}
	if rep.Dropped != 0 {
		t.Fatalf("collector dropped %d records", rep.Dropped)
	}

	// Fill-outcome counts must reconcile exactly with the system's own
	// fill-source counters.
	counts := map[string]uint64{}
	wbCounts := map[string]uint64{}
	means := map[string]float64{}
	for _, g := range rep.Groups {
		if g.WriteBack {
			wbCounts[g.Outcome] += g.Total.Count
			continue
		}
		counts[g.Outcome] += g.Total.Count
		if g.Kind == "READ" {
			// Compare on service latency (arbitration onward): the
			// frontend MSHR-stall wait reflects load, not the fill
			// source.
			means[g.Outcome] = g.Service.Mean
		}
	}
	if counts["peer"] != res.FillsFromPeer || counts["l3"] != res.FillsFromL3 || counts["mem"] != res.FillsFromMem {
		t.Errorf("fill counts (peer %d l3 %d mem %d) != counters (%d %d %d)",
			counts["peer"], counts["l3"], counts["mem"],
			res.FillsFromPeer, res.FillsFromL3, res.FillsFromMem)
	}
	if counts["none"] != res.Upgrades {
		t.Errorf("upgrade count %d != %d", counts["none"], res.Upgrades)
	}

	// Bus-resolved write-back dispositions reconcile exactly with the
	// run's counters; to-l3 can lag (records still awaiting L3
	// retirement when the engine drains never commit) and cancelled can
	// lead (demand accesses also reclaim entries that never reached the
	// bus).
	if wbCounts["snarf"] != res.WBSnarfed {
		t.Errorf("snarf records %d != counter %d", wbCounts["snarf"], res.WBSnarfed)
	}
	if wbCounts["squash-l3"] != res.WBSquashedL3 {
		t.Errorf("squash-l3 records %d != counter %d", wbCounts["squash-l3"], res.WBSquashedL3)
	}
	if wbCounts["squash-peer"] != res.WBSquashedPeer {
		t.Errorf("squash-peer records %d != counter %d", wbCounts["squash-peer"], res.WBSquashedPeer)
	}
	if n := wbCounts["to-l3"]; n == 0 || n > res.WBToL3+res.SnarfFallbacks {
		t.Errorf("to-l3 records %d vs counters toL3=%d fallbacks=%d", n, res.WBToL3, res.SnarfFallbacks)
	}
	if wbCounts["cancelled"] < res.WBCancelled {
		t.Errorf("cancelled records %d < on-bus cancellations %d", wbCounts["cancelled"], res.WBCancelled)
	}

	// The paper's ordering: on-chip intervention beats the off-chip L3,
	// which beats memory.
	if means["peer"] == 0 || means["l3"] == 0 {
		t.Fatalf("workload produced no peer/L3 fills to compare: %v", means)
	}
	if !(means["peer"] < means["l3"]) {
		t.Errorf("peer fill mean %.1f not below L3 fill mean %.1f", means["peer"], means["l3"])
	}
	if means["mem"] != 0 && !(means["l3"] < means["mem"]) {
		t.Errorf("L3 fill mean %.1f not below memory fill mean %.1f", means["l3"], means["mem"])
	}

	// Stage sums must equal the recorded totals (no unattributed gaps):
	// spot-check via the slowest-transaction vectors, which carry exact
	// per-transaction stages.
	if len(rep.Slowest) == 0 {
		t.Fatal("empty slowest reservoir")
	}
	for _, tx := range rep.Slowest {
		var sum uint64
		for _, v := range tx.Stages {
			sum += v
		}
		if sum != tx.Total {
			t.Errorf("slow txn %#x: stage sum %d != total %d (%v)", tx.Key, sum, tx.Total, tx.Stages)
		}
	}
}
