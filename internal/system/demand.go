package system

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/sim"
)

// pendingAccess carries one thread reference through the L2 front end:
// issue, probe (including structural-stall retries) and completion.
// Nodes are pooled per shard; completeFn is bound once per node, so in
// steady state an access consumes no allocations from issue to the
// latency observation at completion.
type pendingAccess struct {
	sh      *shard
	key     uint64
	issued  config.Cycles
	done    func(config.Cycles) // thread completion (cpu doneFn)
	isStore bool
	count   bool // false on re-attempts after a structural stall

	// completeFn is this node's completion callback: it observes the
	// fill latency, releases the node and calls done. It is what gets
	// attached to MSHRs, so coalescing waiters allocates nothing.
	completeFn func(config.Cycles)
}

// startDemand arbitrates for the address ring at cycle now and
// schedules the transaction's combined-response event. Global context
// only: shard context posts a busPost instead, and the barrier calls
// this with the post's own cycle — so a request arbitrates at the same
// time whether it was raised serially or on a shard wheel.
func (s *System) startDemand(cache l2Handle, key uint64, kind coherence.TxnKind, now config.Cycles) {
	s.demandTxns++
	slot := s.ring.ReserveAddress(now)
	combineAt := slot + s.cfg.AddressPhase
	if s.lat != nil {
		s.lat.DemandStart(cache.ID(), key, kind, s.rswitch.ActiveNow(), now, combineAt)
	}
	s.engine.AtCall(combineAt, s.hCombineDemand,
		sim.EventData{Ptr: cache, Key: key, Kind: int8(kind)})
}

// combineDemand is the transaction's atomic snoop-and-commit point: all
// agents snoop, the Snoop Collector combines, and the requester's tag
// state (including victim handling) updates. Data movement is scheduled
// onto the ring and source resources and completes the waiters later.
//
// Combine events fire only in the coordinator's serial phase, after
// every shard wheel has drained strictly past this cycle — so the tag
// state a snoop observes is exactly the state at the combine cycle,
// regardless of worker count.
func (s *System) combineDemand(cache l2Handle, key uint64, kind coherence.TxnKind) {
	now := s.engine.Now()
	isLoad := kind == coherence.Read

	if kind == coherence.Upgrade && !cache.State(key).Valid() {
		// The claim lost its race: a transaction serialized before this
		// one already invalidated the requester's copy. A stale claim
		// must be a complete no-op for everyone else — bus ordering
		// allows a Read to have demoted the new owner to Tagged in the
		// meantime, and snooping the claim would invalidate that only
		// dirty copy (and the L3's). Restart as a full RWITM without
		// snooping anyone.
		s.commitUpgrade(cache, key, now, false, false)
		return
	}

	// The policy chip observes every demand miss on the bus (the snarf
	// reuse tables record it: "missed on either locally or by another
	// L2 cache"), and the Table 2 tracker scores write-back reuse.
	s.policy.ObserveDemandMiss(key)
	s.reuse.recordDemandMiss(key)

	// A non-stale ownership claim asks the policy whether to update the
	// known sharers in place instead of invalidating them (the hybrid
	// update/invalidate policy; always false for the paper mechanisms).
	useUpdate := kind == coherence.Upgrade && s.policy.UseUpdate(key)

	responses := s.responses[:0]
	for _, peer := range s.l2s {
		if peer.ID() == cache.ID() {
			continue
		}
		var resp coherence.Response
		if useUpdate {
			resp = peer.SnoopUpdate(key)
		} else {
			resp = peer.SnoopDemand(key, kind)
		}
		if resp == coherence.RespNull {
			// The castout buffer snoops too: a queued write back supplies
			// data like an array copy would, and an invalidating
			// transaction cancels it before it can be resurrected stale.
			wbResp, wbe, wbDropped := peer.SnoopDemandWB(key, kind)
			resp = wbResp
			if s.lat != nil && wbDropped && !wbe.InFlight {
				// The peer's queued write back died here; an in-flight
				// one closes at its own combine as cancelled.
				s.lat.WBCancelled(peer.ID(), key, now)
			}
		}
		peer.ReservePort(key, now) // snoop consumes peer tag bandwidth
		responses = append(responses, coherence.AgentResponse{Agent: peer.ID(), Resp: resp})
	}
	responses = append(responses, coherence.AgentResponse{
		Agent: agentL3, Resp: s.l3.SnoopDemand(key, kind, isLoad),
	})
	if kind != coherence.Upgrade {
		responses = append(responses, coherence.AgentResponse{Agent: agentMem, Resp: coherence.RespMemAck})
	}

	out := s.collector.Combine(kind, responses)
	if s.tracer != nil {
		s.tracer.Demand(now, cache.ID(), key, kind.String(), out.Source.String(), out.L3Valid, out.SharedElsewhere)
	}
	if s.lat != nil && kind != coherence.Upgrade {
		s.lat.DemandCombine(cache.ID(), key, out.Source, now)
	}
	s.policy.ObserveDemandOutcome(cache.ID(), key, kind, out)

	if kind == coherence.Upgrade {
		s.commitUpgrade(cache, key, now, useUpdate, out.SharedElsewhere)
		return
	}
	s.commitFill(cache, key, kind, out, now)
}

// commitUpgrade finishes an ownership claim. On the invalidate path
// (the protocol default) peers and the L3 relinquished their copies
// during the snoop and our line becomes Modified. On the update path
// (hybrid update/invalidate policy) peers kept demoted-Shared copies:
// the writer becomes Tagged when sharers survived — pushing the new
// data to them across the data ring — and Modified otherwise. If a
// racing transaction invalidated our copy between issue and combine,
// the claim restarts as a full RWITM either way.
func (s *System) commitUpgrade(cache l2Handle, key uint64, now config.Cycles, update, sharers bool) {
	if !cache.State(key).Valid() {
		s.upgradeRestarts++
		if s.auditor != nil {
			s.auditor.OnUpgrade(cache.ID(), key, true)
		}
		// Keep the MSHR (with its waiters) but change the kind by
		// re-allocating after draining.
		loads, stores := cache.TakeWaiters(key)
		cache.AllocMSHR(key, coherence.RWITM)
		for _, w := range loads {
			cache.AttachMSHR(key, false, w)
		}
		for _, w := range stores {
			cache.AttachMSHR(key, true, w)
		}
		s.startDemand(cache, key, coherence.RWITM, now)
		return
	}
	s.upgrades++
	st := coherence.Modified
	if update {
		s.upgradeUpdates++
		if sharers {
			// At least one peer copy (or in-flight castout) survived the
			// snoop as a plain sharer: we stay its dirty supplier and the
			// update push occupies one data-ring beat (fire and forget —
			// the store's completion is ordered at the combine, like
			// every ownership transition).
			st = coherence.Tagged
			s.updatePushes++
			s.ring.ReserveData(now)
		}
		if s.auditor != nil {
			s.auditor.OnUpdate(cache.ID(), key, st)
		}
	} else if s.auditor != nil {
		s.auditor.OnUpgrade(cache.ID(), key, false)
	}
	if s.lat != nil {
		s.lat.DemandComplete(cache.ID(), key, now)
	}
	cache.SetState(key, st)
	loads, stores := cache.TakeWaiters(key)
	for _, w := range loads {
		w(now)
	}
	for _, w := range stores {
		w(now)
	}
}

// fillState decides the requester's installed state per the POWER4-style
// rules.
func fillState(kind coherence.TxnKind, out coherence.Outcome) coherence.State {
	if kind == coherence.RWITM {
		return coherence.Modified
	}
	switch {
	case out.DirtySource:
		// The supplier retains the write-back obligation as Tagged; we
		// are a plain sharer.
		return coherence.Shared
	case out.SharedElsewhere:
		// Most recent reader becomes the designated clean supplier.
		return coherence.SharedLast
	default:
		return coherence.Exclusive
	}
}

// commitFill installs the miss response, processes the displaced victim
// and schedules data arrival from the chosen source.
func (s *System) commitFill(cache l2Handle, key uint64, kind coherence.TxnKind, out coherence.Outcome, now config.Cycles) {
	st := fillState(kind, out)
	vKey, vState, evicted := cache.InstallFill(key, st)
	if evicted {
		s.handleVictimGlobal(cache, vKey, vState, now)
	}
	if s.auditor != nil {
		s.auditor.OnFill(cache.ID(), key, kind, st, out)
	}

	// Data movement: the source access runs first; the data ring is
	// booked at the cycle the line is actually ready to leave, so
	// resource reservations always occur in nondecreasing time order
	// (booking a resource at a future instant would block earlier
	// requests behind phantom occupancy).
	var readyAt config.Cycles
	switch out.Source {
	case coherence.SourcePeerL2:
		// The supplier's port was already reserved during its snoop; the
		// source-access latency covers the data read.
		s.fillsFromPeer++
		readyAt = now + s.cfg.PeerSourceLatency - s.cfg.DataRingOccupancy
	case coherence.SourceL3:
		s.fillsFromL3++
		sStart := s.l3.ReserveSlice(key, now)
		readyAt = sStart + s.cfg.L3SourceLatency - s.cfg.DataRingOccupancy
	case coherence.SourceMemory:
		s.fillsFromMem++
		mStart := s.mem.ReserveRead(now)
		readyAt = mStart + s.cfg.MemSourceLatency - s.cfg.DataRingOccupancy
	default:
		panic("system: demand combine without a data source")
	}

	s.engine.AtCall(readyAt, s.hFillReady,
		sim.EventData{Ptr: cache, Key: key, Kind: int8(kind)})
}

// fillDataReady books the data ring for the arrived source line and
// schedules delivery (hFillReady). Delivery is a shard-local event —
// waking waiters touches only the requesting L2's front end — so it is
// scheduled onto the requester's shard wheel.
func (s *System) fillDataReady(d sim.EventData) {
	cache := d.Ptr.(l2Handle)
	if s.lat != nil {
		s.lat.DemandSourceReady(cache.ID(), d.Key, s.engine.Now())
	}
	dStart := s.ring.ReserveData(s.engine.Now())
	s.shards[cache.ID()].engine.AtCall(dStart+s.cfg.DataRingOccupancy, s.hCompleteFill, d)
}

// handleVictimGlobal routes an evicted line through the Section 2
// write-back policy from global context (fill installs and snarf
// displacements, which commit at bus events): the observation hooks run
// directly and a queued entry pumps the write-back machinery in place.
// Shard-context evictions go through (*shard).handleVictim instead.
func (s *System) handleVictimGlobal(cache l2Handle, vKey uint64, vState coherence.State, now config.Cycles) {
	// Active (mutating) advances the retry-switch window; it runs only
	// for switch-gated policies so ungated runs never touch the switch
	// outside round boundaries (short-circuit order is load-bearing).
	switchActive := s.policy.GatedBySwitch() && s.rswitch.Active(now)
	inL3 := s.l3.Contains(vKey) // oracle peek, used only for scoring
	action := cache.ProcessVictim(vKey, vState, switchActive, inL3)
	if s.tracer != nil {
		s.tracer.Victim(now, cache.ID(), vKey, vState.String(), action.String(), inL3)
	}
	if s.auditor != nil {
		s.auditor.OnVictim(cache.ID(), vKey, vState, action == l2VictimQueued)
	}
	if action == l2VictimQueued {
		if s.lat != nil {
			wbKind := coherence.CleanWB
			if vState.Dirty() {
				wbKind = coherence.DirtyWB
			}
			s.lat.WBQueued(cache.ID(), vKey, wbKind, s.rswitch.ActiveNow(), now)
		}
		s.reuse.recordAttempt(vKey)
		s.pumpWB(cache.ID(), now)
	}
}
