package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/l2"
	"cmpcache/internal/metrics"
	"cmpcache/internal/trace"
)

// key turns the lineAddr byte address back into a chip-wide line key
// (what the L2/L3 APIs take directly).
func key(cfg *config.Config, slice, set, tag int) uint64 {
	return lineAddr(cfg, slice, set, tag) / uint64(cfg.LineBytes)
}

// TestSnarfSettleWithoutTokenRequeuesEntry is the regression test for
// the lost-write-back bug: a snarf winner whose candidate way vanished
// combined with a full L3 queue used to drop the entry on the floor —
// a dirty line silently vanished. The fix requeues it like any retried
// write back, so the line must eventually reach the L3.
func TestSnarfSettleWithoutTokenRequeuesEntry(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	s, err := New(cfg, mkTrace(trace.Record{Thread: 0, Op: trace.Load, Addr: 0x10000}))
	if err != nil {
		t.Fatal(err)
	}
	cache, winner := s.l2s[0], s.l2s[1]

	// Fill the winner's target set with Exclusive lines: AcceptSnarf
	// finds no invalid (or shared) way and must reject the install.
	for tag := 0; tag < cfg.L2Assoc; tag++ {
		winner.InstallFill(key(&cfg, 0, 0, 100+tag), coherence.Exclusive)
	}

	// Queue a dirty write back and put it on the bus, as pumpWB would.
	victim := key(&cfg, 0, 0, 1)
	if got := cache.ProcessVictim(victim, coherence.Modified, false, false); got != l2.VictimQueued {
		t.Fatalf("ProcessVictim = %v, want queued", got)
	}
	if _, ok := cache.HeadWB(); !ok {
		t.Fatal("no issuable write-back entry")
	}
	s.wbInFlight[0] = true
	entry, cancelled := cache.CompleteWB(victim)
	if cancelled {
		t.Fatal("entry unexpectedly cancelled")
	}

	// Exhaust the L3's incoming queue so no token is held (l3Accepted
	// false), then settle the snarf with the rejecting winner.
	for i := 0; i < cfg.L3QueueEntries; i++ {
		if resp := s.l3.SnoopWB(key(&cfg, 0, 7, 500+i), coherence.DirtyWB); resp != coherence.RespWBAccept {
			t.Fatalf("token %d: SnoopWB = %v, want accept", i, resp)
		}
	}
	s.settleSnarf(cache, entry, winner, false, s.engine.Now())

	if got := cache.WBQueueLen(); got != 1 {
		t.Fatalf("write-back queue holds %d entries after failed snarf settle, want 1 (entry requeued, not dropped)", got)
	}
	if s.wbRetried != 1 {
		t.Fatalf("wbRetried = %d, want 1", s.wbRetried)
	}
	if s.snarfFallbacks != 1 {
		t.Fatalf("snarfFallbacks = %d, want 1", s.snarfFallbacks)
	}

	// Free the queue and let the retry re-arbitrate: the dirty line must
	// arrive in the L3 rather than vanish.
	for i := 0; i < cfg.L3QueueEntries; i++ {
		s.l3.ReleaseToken()
	}
	s.engine.Run()
	if !s.l3.Contains(victim) {
		t.Fatal("dirty line never reached the L3: write back was lost")
	}
	if s.wbInFlight[0] {
		t.Fatal("write-back bus slot still held after queue drained")
	}
}

// wbStormTrace builds a trace in which each L2's threads keep storing
// to fresh tags of one set, so every store past the associativity
// evicts a dirty line — a sustained write-back storm from all four L2s
// at once.
func wbStormTrace(cfg *config.Config, rounds int) *trace.Trace {
	var recs []trace.Record
	for round := 0; round < rounds; round++ {
		for _, th := range []int{0, 4, 8, 12} {
			recs = append(recs, trace.Record{
				Thread: uint16(th),
				Op:     trace.Store,
				Addr:   lineAddr(cfg, 0, 0, 1000*th+round+1),
			})
		}
	}
	return mkTrace(recs...)
}

// TestWBRequestsCountsBusIssues is the regression test for the retry
// double-count: WBRequests used to be wbTxns + wbRetried, but a retried
// entry re-issues through the pump and increments wbTxns again, so each
// retry was counted twice. The structured event trace emits exactly one
// "wb" record per combine (= per bus issue), giving an independent
// count to check against.
func TestWBRequestsCountsBusIssues(t *testing.T) {
	cfg := config.Default()
	cfg.L3QueueEntries = 1 // starve the L3 queue so write backs retry
	tr := wbStormTrace(&cfg, 48)

	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	probe := metrics.NewProbe(metrics.Config{Interval: 10_000})
	var buf bytes.Buffer
	tw := metrics.NewTraceWriter(&buf, metrics.JSONL)
	probe.SetTrace(tw)
	s.Attach(probe)
	r := s.Run()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	if r.WBRetried == 0 {
		t.Fatal("scenario produced no write-back retries; the double-count cannot be exercised")
	}
	busIssues := uint64(bytes.Count(buf.Bytes(), []byte(`"ev":"wb"`)))
	if r.WBRequests != busIssues {
		t.Fatalf("WBRequests = %d, want %d bus issues observed on the trace (WBRetried = %d)",
			r.WBRequests, busIssues, r.WBRetried)
	}
}

// TestProbeObservationOnly asserts the zero-perturbation contract: a
// run with a probe (and tracer) attached produces bit-identical results
// to the same run without one — only the Metrics series is added — and
// a probeless run marshals with no Metrics key at all.
func TestProbeObservationOnly(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Combined)
	tr := wbStormTrace(&cfg, 24)

	_, plain := run(t, cfg, tr)

	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	probe := metrics.NewProbe(metrics.Config{Interval: 500})
	var buf bytes.Buffer
	probe.SetTrace(metrics.NewTraceWriter(&buf, metrics.JSONL))
	s.Attach(probe)
	probed := s.Run()

	if probed.Metrics == nil || len(probed.Metrics.Samples) == 0 {
		t.Fatal("probed run carries no metrics series")
	}
	stripped := *probed
	stripped.Metrics = nil
	want, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("attaching a probe changed the simulated outcome")
	}
	if bytes.Contains(want, []byte(`"Metrics"`)) {
		t.Fatal("probeless results marshal a Metrics key; export bytes changed for no-metrics runs")
	}
}
