package system

import (
	"context"
	"runtime"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/sim"
)

// This file is the intra-run parallel coordinator (DESIGN.md §15).
//
// The simulated chip is partitioned by L2 slice into shards, each with
// its own event wheel, plus one global wheel holding every bus-combine
// event and everything behind it (ring, L3, memory). Execution proceeds
// in rounds:
//
//  1. Boundary tick — close observability windows up to the next event
//     time and advance the retry switch's sampling window. After this,
//     shard context may only *read* the switch (ActiveNow).
//  2. Parallel phase — every shard runs its wheel up to a horizon H on
//     worker goroutines. H is chosen so no shard event can causally
//     precede any global event: H never exceeds the next global event
//     time, never reaches an observability window boundary, and never
//     exceeds the earliest cycle a freshly posted bus request could
//     combine (min over shards of next-event time, floored by the
//     address ring's free cycle, plus the address phase).
//  3. Barrier — replay the shards' observation logs into the
//     attachments in canonical (time, shard) order, then execute the
//     deferred bus posts in canonical (time, shard) order, arbitrating
//     each at its own recorded cycle.
//  4. Serial phase — fire global events in time order while they
//     precede every pending shard event and the next window boundary.
//     Before each, all shard clocks advance to the event's cycle so
//     waiter wake-ups that re-enter shard code observe the right Now.
//
// Every merge order above is a pure function of simulated time and
// shard index, and the phases never overlap, so the complete execution
// — Results, probe series, audit verdicts, latency reports — is
// bit-identical at any worker count. Workers == 1 runs the identical
// round structure inline; that *is* the serial engine.

// ShardingStats records the round-coordinator's execution shape for a
// run, answering the scaling question BENCH_core.json could not: not
// just that a sharded run is slow, but *why* — which constraint limited
// each parallel horizon, and how long shard results sat at the barrier.
//
// The counters (Rounds, ParallelRounds, Horizon*) are pure functions of
// simulated time: workers only change which goroutine executes a shard,
// never the round structure, so they are identical at every worker
// count. They are NOT invariant under observation attachments — the
// metrics probe and windowed latency collector schedule their own
// wake-ups, adding rounds — so the whole record stays out of Results
// JSON (Results.Sharding is json:"-", preserving the observation-only
// result-byte contract) and is read in process: cmpbench surfaces it as
// separate BENCH_core.json columns. The wall-clock fields (Workers,
// BarrierWaitNs, BarrierDrainNs) additionally vary by host and worker
// count.
type ShardingStats struct {
	// Rounds counts coordinator iterations (boundary tick → horizon
	// choice → optional parallel phase → serial phase).
	Rounds uint64
	// ParallelRounds counts rounds whose horizon admitted at least one
	// shard event, i.e. rounds that ran a parallel phase and a barrier.
	ParallelRounds uint64
	// Horizon-limiter attribution: which constraint bounded the horizon
	// on each parallel round. NextGlobal: the next global (bus/ring/L3/
	// memory) event time tg. RingCredit: the earliest cycle a freshly
	// posted bus request could combine (shard lookahead floored by the
	// address ring's free cycle, plus the address phase). Window: an
	// observability window boundary (metrics probe or windowed latency
	// collector). Sums to ParallelRounds.
	HorizonNextGlobal uint64
	HorizonRingCredit uint64
	HorizonWindow     uint64

	// Wall-clock barrier attribution, collected only when a worker pool
	// ran (Workers > 1); nil/zero on serial runs so the serial hot path
	// pays nothing. BarrierWaitNs[i] accumulates, per shard, the time
	// between shard i finishing its parallel phase and the round's last
	// shard finishing — the idle tail the barrier imposes. Excluded from
	// JSON: results must stay bit-identical across worker counts.
	Workers        int     `json:"-"`
	BarrierWaitNs  []int64 `json:"-"`
	BarrierDrainNs int64   `json:"-"`
}

// BarrierWaitTotalNs sums the per-shard barrier idle time.
func (p *ShardingStats) BarrierWaitTotalNs() int64 {
	var total int64
	for _, ns := range p.BarrierWaitNs {
		total += ns
	}
	return total
}

// horizon-limiter tags for the attribution counters above.
type horizonLimit uint8

const (
	limNextGlobal horizonLimit = iota
	limRingCredit
	limWindow
)

// MaxWorkers returns the largest useful intra-run worker count for cfg:
// one worker per L2 slice, capped by GOMAXPROCS. This is the "auto"
// resolution for the -shards flags.
func MaxWorkers(cfg *config.Config) int {
	n := cfg.NumL2()
	if g := runtime.GOMAXPROCS(0); g < n {
		n = g
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers sets how many goroutines execute the parallel phase.
// n <= 0 selects auto (MaxWorkers); anything larger than MaxWorkers is
// clamped — extra workers would only contend. The choice affects wall
// clock only: results are bit-identical at every worker count. Call
// before Run.
func (s *System) SetWorkers(n int) {
	max := MaxWorkers(&s.cfg)
	if n <= 0 || n > max {
		n = max
	}
	s.workers = n
}

// Workers returns the effective parallel-phase worker count.
func (s *System) Workers() int { return s.workers }

// runRounds executes the workload to completion (or ctx cancellation)
// using the round structure above.
func (s *System) runRounds(ctx context.Context) error {
	for _, sh := range s.shards {
		sh.threads.Start()
	}
	workers := s.workers
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	var pool *workerPool
	if workers > 1 {
		pool = s.startPool(workers)
		defer pool.stop()
	}

	windowed := s.lat != nil && s.lat.Windowed()
	serialBudget := 0
	for {
		minLocal := s.minShardTime()
		tg := s.engine.NextTime()
		tNext := minLocal
		if tg < tNext {
			tNext = tg
		}
		if tNext == sim.Forever {
			break // every wheel is empty: the run is complete
		}
		s.pstats.Rounds++

		// (1) Boundary tick: windows ending at or before the next event
		// close now, seeing exactly the state after all earlier events.
		if s.probe != nil {
			s.probe.Tick(tNext)
		}
		if windowed {
			s.lat.Tick(tNext)
		}
		s.rswitch.AdvanceTo(tNext)
		boundary := sim.Forever
		if s.probe != nil {
			boundary = s.probe.NextBoundary()
		}
		if windowed {
			if b := s.lat.NextBoundary(); b < boundary {
				boundary = b
			}
		}

		// (2) Horizon: the largest cycle shards may run to freely.
		h := tg
		limiter := limNextGlobal
		if minLocal != sim.Forever {
			look := minLocal
			if nf := s.ring.AddressNextFree(); nf > look {
				look = nf
			}
			look += s.cfg.AddressPhase
			if look < h {
				h = look
				limiter = limRingCredit
			}
			if boundary-1 < h {
				h = boundary - 1
				limiter = limWindow
			}
			if minLocal <= h {
				s.pstats.ParallelRounds++
				switch limiter {
				case limRingCredit:
					s.pstats.HorizonRingCredit++
				case limWindow:
					s.pstats.HorizonWindow++
				default:
					s.pstats.HorizonNextGlobal++
				}
				if pool != nil {
					pool.runRound(h)
					t0 := time.Now()
					s.drainBarrier(h)
					s.pstats.BarrierDrainNs += time.Since(t0).Nanoseconds()
				} else {
					for _, sh := range s.shards {
						if sh.engine.NextTime() <= h {
							sh.engine.RunUntil(h)
						}
					}
					s.drainBarrier(h)
				}
			}
		}

		// (4) Serial phase: global events that precede every pending
		// shard event and the next window boundary.
		for {
			g := s.engine.NextTime()
			if g >= boundary || g >= s.minShardTime() {
				break
			}
			if s.auditor != nil {
				s.auditor.AdvanceEvents(g, 1)
			}
			for _, sh := range s.shards {
				sh.engine.AdvanceTo(g)
			}
			s.engine.Step()
			if serialBudget++; serialBudget >= cancelCheckEvery {
				serialBudget = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}

		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// minShardTime returns the earliest pending shard event time.
func (s *System) minShardTime() config.Cycles {
	m := sim.Forever
	for _, sh := range s.shards {
		if t := sh.engine.NextTime(); t < m {
			m = t
		}
	}
	return m
}

// drainBarrier is the rendezvous after a parallel phase: observation
// logs replay in (time, shard) order, the auditor's event clock catches
// up to the horizon, and the deferred bus posts arbitrate in (time,
// shard) order at their recorded cycles.
func (s *System) drainBarrier(h config.Cycles) {
	var fired uint64
	for {
		var best *shard
		bestAt := sim.Forever
		for _, sh := range s.shards {
			if sh.obsNext < len(sh.obs) && sh.obs[sh.obsNext].at < bestAt {
				best, bestAt = sh, sh.obs[sh.obsNext].at
			}
		}
		if best == nil {
			break
		}
		s.replayObs(best, &best.obs[best.obsNext])
		best.obsNext++
	}
	if s.auditor != nil {
		for _, sh := range s.shards {
			fired += sh.engine.Fired()
		}
		s.auditor.AdvanceEvents(h, fired-s.auditedFired)
		s.auditedFired = fired
	}
	for {
		var best *shard
		bestAt := sim.Forever
		for _, sh := range s.shards {
			if sh.postNext < len(sh.posts) && sh.posts[sh.postNext].when < bestAt {
				best, bestAt = sh, sh.posts[sh.postNext].when
			}
		}
		if best == nil {
			break
		}
		s.executePost(best, &best.posts[best.postNext])
		best.postNext++
	}
	for _, sh := range s.shards {
		sh.obs, sh.obsNext = sh.obs[:0], 0
		sh.posts, sh.postNext = sh.posts[:0], 0
	}
}

// workerPool runs the parallel phase on persistent goroutines. Shards
// are statically striped across workers (worker w owns shards w, w+W,
// …) so ownership never changes; the coordinator doubles as worker 0.
// Per round, only workers whose shards have events at or before the
// horizon are woken — idle-shard rounds cost nothing.
type workerPool struct {
	s       *System
	workers int
	horizon config.Cycles // published before wake sends; read after receives
	wake    []chan struct{}
	done    chan struct{}
}

func (s *System) startPool(n int) *workerPool {
	p := &workerPool{s: s, workers: n, done: make(chan struct{}, n)}
	s.pstats.BarrierWaitNs = make([]int64, len(s.shards))
	for w := 1; w < n; w++ {
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.serve(w, ch)
	}
	return p
}

func (p *workerPool) serve(w int, wake <-chan struct{}) {
	for range wake {
		p.runShards(w)
		p.done <- struct{}{}
	}
}

// runShards executes worker w's shards up to the published horizon,
// stamping each shard's finish instant for barrier-wait attribution.
func (p *workerPool) runShards(w int) {
	h := p.horizon
	for i := w; i < len(p.s.shards); i += p.workers {
		sh := p.s.shards[i]
		if sh.engine.NextTime() <= h {
			sh.engine.RunUntil(h)
			sh.doneAtNs = time.Now().UnixNano()
		}
	}
}

// hasWork reports whether worker w owns a shard with an event due by h.
func (p *workerPool) hasWork(w int, h config.Cycles) bool {
	for i := w; i < len(p.s.shards); i += p.workers {
		if p.s.shards[i].engine.NextTime() <= h {
			return true
		}
	}
	return false
}

// runRound executes one parallel phase across the pool and returns
// after every woken worker has quiesced (the epoch barrier).
func (p *workerPool) runRound(h config.Cycles) {
	p.horizon = h
	woken := 0
	for w := 1; w < p.workers; w++ {
		if p.hasWork(w, h) {
			p.wake[w-1] <- struct{}{}
			woken++
		}
	}
	p.runShards(0)
	for ; woken > 0; woken-- {
		<-p.done
	}
	// All workers have quiesced (the done receives order their shard
	// stamps before these reads). Charge each shard that ran the gap
	// between its finish and now — the idle time the barrier imposed.
	now := time.Now().UnixNano()
	waits := p.s.pstats.BarrierWaitNs
	for i, sh := range p.s.shards {
		if sh.doneAtNs != 0 {
			waits[i] += now - sh.doneAtNs
			sh.doneAtNs = 0
		}
	}
}

// stop retires the pool's goroutines (between rounds, so none is
// running a shard).
func (p *workerPool) stop() {
	for _, ch := range p.wake {
		close(ch)
	}
}
