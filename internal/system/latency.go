package system

import "cmpcache/internal/txlat"

// AttachLatency installs c as this run's transaction-latency collector:
// the protocol commit points in the demand and write-back paths stamp
// every transaction's stage boundaries into it, and Results.Latency
// carries the finished report. Attach before Run, one collector per
// run. Like the metrics probe and the auditor, a latency collector is
// observation-only — it never perturbs the event sequence — and a
// system without one pays a single nil check per hook site. A windowed
// collector's windows close at the coordinator's round boundaries;
// shard-context hooks reach it through the barrier's deterministic
// replay, so its report is bit-identical at any worker count.
func (s *System) AttachLatency(c *txlat.Collector) {
	s.lat = c
}
