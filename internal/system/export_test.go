package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// exportTrace builds a minimal multi-thread trace for export tests.
func exportTrace() *trace.Trace {
	var recs []trace.Record
	for t := 0; t < 4; t++ {
		for i := 0; i < 64; i++ {
			recs = append(recs, trace.Record{
				Thread: uint16(t),
				Op:     trace.Load,
				Addr:   uint64(i*128 + t*1<<20),
			})
		}
	}
	return &trace.Trace{Name: "export", Threads: 4, Records: recs}
}

func TestResultsMarshalJSON(t *testing.T) {
	sys, err := New(config.Default(), exportTrace())
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Stable top-level names the downstream tooling keys on.
	for _, field := range []string{"Config", "Cycles", "L2", "WBHT", "Snarf", "FillLatency", "Derived"} {
		if _, ok := decoded[field]; !ok {
			t.Fatalf("export missing field %q:\n%s", field, data)
		}
	}
	if got := decoded["Cycles"].(float64); uint64(got) != res.Cycles {
		t.Fatalf("Cycles = %v, want %d", got, res.Cycles)
	}
	derived := decoded["Derived"].(map[string]any)
	if got := derived["L2HitRate"].(float64); got != res.L2HitRate() {
		t.Fatalf("Derived.L2HitRate = %v, want %v", got, res.L2HitRate())
	}
	hist := decoded["FillLatency"].(map[string]any)
	if uint64(hist["Count"].(float64)) != res.FillLatency.Count() {
		t.Fatalf("FillLatency.Count = %v, want %d", hist["Count"], res.FillLatency.Count())
	}
}

// TestResultsMarshalDeterministic: identical runs export identical
// bytes — the property the sweep determinism guarantee rests on.
func TestResultsMarshalDeterministic(t *testing.T) {
	marshal := func() []byte {
		sys, err := New(config.Default(), exportTrace())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(sys.Run())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := marshal(), marshal(); !bytes.Equal(a, b) {
		t.Fatal("identical runs exported different bytes")
	}
}
