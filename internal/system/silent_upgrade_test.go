package system

import (
	"bytes"
	"testing"

	"cmpcache/internal/audit"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/trace"
)

// TestSilentStoreUpgradeNoBusTraffic is the regression test for the
// suspected E→M auditor miss. The suspicion: a store hitting an
// Exclusive line upgraded to Modified inside l2.Probe — a mutation the
// auditor's reference model never saw, so a differential sweep between
// the probe and the next observed event could report a phantom state.
// The analysis concluded there is NO such miss: the reference model
// applies the same silent upgrade when it replays the store-hit
// observation, so the two models were never out of sync at a sweep
// point. What WAS wrong is structural — Probe, a read-mostly
// classification call, mutated tag state as a side effect, invisible
// to policy hooks and impossible to commit in a different event than
// the probe. The fix makes Probe pure: it returns
// ProbeHitStoreUpgrade and the shard commits the E→M transition
// through SetState beside the store-hit observation (shard.resolve).
//
// This test documents both halves: the upgrade is still silent (no bus
// Upgrade transaction, no extra address traffic) and still committed
// (the line lands in M), while the differential auditor — which would
// now catch any probe-side mutation, since the reference model only
// learns state at observed events — stays clean.
func TestSilentStoreUpgradeNoBusTraffic(t *testing.T) {
	cfg := config.Default()
	line := uint64(0x10000)
	tr := mkTrace(
		trace.Record{Thread: 0, Op: trace.Load, Addr: line},
		trace.Record{Thread: 0, Op: trace.Store, Addr: line, Gap: 1000},
	)
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	aud := audit.New(audit.Config{Differential: true, SweepEvery: 1})
	s.AttachAuditor(aud)
	r := s.Run()

	key := line / uint64(cfg.LineBytes)
	if got := s.l2s[0].State(key); got != coherence.Modified {
		t.Fatalf("after store on E line: state = %v, want Modified", got)
	}
	if r.Upgrades != 0 {
		t.Fatalf("silent E→M upgrade issued %d bus Upgrade transactions, want 0", r.Upgrades)
	}
	// Exactly one address transaction: the cold load. The store must not
	// re-arbitrate the ring.
	if r.AddressTxns != 1 {
		t.Fatalf("address transactions = %d, want 1 (cold load only)", r.AddressTxns)
	}
	if r.L2.Hits != 1 {
		t.Fatalf("store on E line counted %d hits, want 1", r.L2.Hits)
	}
	if !aud.Ok() {
		t.Fatalf("differential audit violations on silent upgrade:\n%s", aud.Summary())
	}
}

// TestSilentStoreUpgradeShardEquivalence pins the second property of
// the Probe purity fix: the upgrade commit moved from inside Probe to
// the shard's resolve dispatch, which runs on a shard's event wheel in
// parallel runs — so a store-heavy private-line workload (all hits
// after first touch, maximal silent-upgrade density) must stay
// bit-identical between serial and sharded execution.
func TestSilentStoreUpgradeShardEquivalence(t *testing.T) {
	allowProcs(t, 8)
	cfg := config.Default()
	var recs []trace.Record
	// 16 threads, each load-then-store cycling over 8 private lines:
	// every store after the first touch is a silent E→M or M-hit commit.
	for i := 0; i < 1500; i++ {
		th := uint16(i % 16)
		ln := uint64((i/16)%8) + uint64(th)*8
		op := trace.Load
		if i%2 == 1 {
			op = trace.Store
		}
		recs = append(recs, trace.Record{Thread: th, Op: op, Addr: ln * 128, Gap: uint32(i % 3)})
	}
	tr := mkTrace(recs...)
	ref := matrixRun(t, cfg, tr, 1, "auditor")
	if !ref.auditOK {
		t.Fatalf("serial reference failed audit:\n%s", ref.auditSum)
	}
	for _, w := range []int{2, 4, 8} {
		got := matrixRun(t, cfg, tr, w, "auditor")
		if !bytes.Equal(got.results, ref.results) {
			t.Errorf("workers=%d: results diverged at %s", w, firstDiff(ref.results, got.results))
		}
		if !got.auditOK {
			t.Errorf("workers=%d: audit violations:\n%s", w, got.auditSum)
		}
	}
}
