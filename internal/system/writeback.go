package system

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/l2"
	"cmpcache/internal/sim"
	"cmpcache/internal/txlat"
)

// Local aliases keep the transaction-flow code readable.
type l2Handle = *l2.Cache

const (
	probeHit             = l2.ProbeHit
	probeHitStoreUpgrade = l2.ProbeHitStoreUpgrade
	probeHitNeedsUpgrade = l2.ProbeHitNeedsUpgrade
	probeWBBufferHit     = l2.ProbeWBBufferHit
	probeMiss            = l2.ProbeMiss
	l2VictimQueued       = l2.VictimQueued
)

// Bus agent identities for the Snoop Collector: L2 caches use their own
// indices; the L3 and memory controllers take ids beyond any L2's.
const (
	agentL3  = 100
	agentMem = 101
)

// pumpWB issues the next write back from l2idx's queue onto the ring,
// one bus transaction in flight per L2 (the queue drains head-first, as
// a hardware castout machine would). now is the cycle the pump was
// woken — the global clock in serial context, or the posting shard
// event's cycle when the wake arrives through the round barrier.
func (s *System) pumpWB(l2idx int, now config.Cycles) {
	if s.wbInFlight[l2idx] {
		return
	}
	cache := s.l2s[l2idx]
	entry, ok := cache.HeadWB()
	if !ok {
		return
	}
	s.wbInFlight[l2idx] = true
	s.wbTxns++

	slot := s.ring.ReserveAddress(now)
	combineAt := slot + s.cfg.AddressPhase
	if s.lat != nil {
		s.lat.WBIssued(cache.ID(), entry.Key, now, combineAt)
	}
	s.engine.AtCall(combineAt, s.hCombineWB, sim.EventData{
		Ptr: cache, Key: entry.Key, Kind: int8(entry.Kind), Flag: entry.Snarfable,
	})
}

// combineWB is the write back's atomic snoop-and-commit point.
func (s *System) combineWB(cache l2Handle, key uint64, kind coherence.TxnKind, snarfable bool) {
	now := s.engine.Now()

	// Every write back on the bus is observed by the policy chip (the
	// snarf reuse tables record it: "The tag for a line is entered into
	// the table when the line is written back by any L2 cache").
	s.policy.ObserveWriteBack(key)

	l3resp := s.l3.SnoopWB(key, kind)
	if kind == coherence.CleanWB && l3resp != coherence.RespWBRedundant {
		if _, ok := s.everInL3[key]; ok {
			s.cleanWBLost++
		} else {
			s.cleanWBFirst++
		}
	}
	responses := append(s.responses[:0], coherence.AgentResponse{Agent: agentL3, Resp: l3resp})
	var peerSquasher l2Handle
	if s.policy.SnoopsWBRing() {
		for _, peer := range s.l2s {
			if peer.ID() == cache.ID() {
				continue
			}
			resp := peer.SnoopWB(key, kind, snarfable)
			if snarfable {
				peer.ReservePort(key, now) // tag access for the snarf check
			}
			if resp == coherence.RespWBSquash && peerSquasher == nil {
				peerSquasher = peer
			}
			responses = append(responses, coherence.AgentResponse{Agent: peer.ID(), Resp: resp})
		}
	}

	out := s.collector.Combine(kind, responses)
	// l3Accepted tracks whether the L3's incoming-queue token is still
	// held and must be released before this transaction retires (unless
	// sendToL3 takes over the obligation).
	l3Accepted := l3resp == coherence.RespWBAccept
	if l3Accepted && s.auditor != nil {
		s.auditor.OnTokenAcquired()
	}

	// The policy chip learns from the L3's snoop response to clean
	// write backs (Section 2, step 3: the WBHT allocation point,
	// writer-local or global per the Figure 3 variant). Tables are kept
	// up to date even while the retry switch has disabled their use.
	if kind == coherence.CleanWB {
		s.policy.ObserveCleanWBOutcome(cache.ID(), key, l3resp == coherence.RespWBRedundant)
	}

	entry, cancelled := cache.CompleteWB(key)

	if s.tracer != nil {
		s.tracer.WriteBack(now, cache.ID(), key, kind.String(), wbDisposition(cancelled, out), snarfable)
	}

	switch {
	case cancelled:
		// A demand access reclaimed the line while this transaction was
		// on the bus: ignore the outcome entirely.
		s.wbCancelled++
		if s.auditor != nil {
			s.auditor.OnWBCancelled(cache.ID(), key, out.WBSnarfed)
		}
		if s.lat != nil {
			s.lat.WBDone(cache.ID(), key, txlat.OutWBCancelled, now)
		}
		if l3Accepted {
			s.releaseL3Token()
		}
		s.finishWB(cache.ID())

	case out.Retry:
		// The L3 had no queue space and nobody else took the line: the
		// entry re-arbitrates after a backoff. This is the retry traffic
		// the adaptive mechanisms exist to reduce.
		s.retryWB(cache, entry, now)

	case out.WBSquashed:
		if out.SquashedByL3 {
			s.wbSquashedByL3++
		} else {
			s.wbSquashedPeer++
			if peerSquasher != nil {
				if kind == coherence.DirtyWB {
					// Our dirty data dies with the squash; the squashing
					// peer holds an identical copy and inherits the
					// write-back obligation.
					peerSquasher.TakeWBObligation(key)
				} else if entry.State == coherence.SharedLast {
					// The designated clean supplier just left the chip's
					// L2s; hand the supplier role to the squasher so the
					// remaining sharers keep an intervention source.
					peerSquasher.TakeSupplierRole(key)
				}
			}
		}
		if s.auditor != nil {
			squasher := -1
			if peerSquasher != nil && !out.SquashedByL3 {
				squasher = peerSquasher.ID()
			}
			s.auditor.OnWBSquashed(cache.ID(), entry, out.SquashedByL3, squasher)
		}
		if s.lat != nil {
			o := txlat.OutWBSquashPeer
			if out.SquashedByL3 {
				o = txlat.OutWBSquashL3
			}
			s.lat.WBDone(cache.ID(), key, o, now)
		}
		if l3Accepted {
			s.releaseL3Token()
		}
		s.finishWB(cache.ID())

	case out.WBSnarfed:
		s.settleSnarf(cache, entry, s.l2s[out.SnarfWinner], l3Accepted, now)

	case out.WBToL3:
		s.wbToL3++
		if s.auditor != nil {
			s.auditor.OnWBToL3(cache.ID(), entry)
		}
		if s.lat != nil {
			s.lat.WBToL3(cache.ID(), key, now)
		}
		s.reuse.recordAccepted(key)
		s.sendToL3(key, kind, now) // token released by sendToL3's completion
		s.finishWB(cache.ID())

	default:
		panic("system: write-back combine with no disposition")
	}
}

// retryWB counts a retried write back, requeues entry at the head of
// its queue, and re-arbitrates after the configured backoff (hFinishWB
// releases the L2's bus slot when the backoff expires).
func (s *System) retryWB(cache l2Handle, entry l2.WBEntry, now config.Cycles) {
	s.wbRetried++
	s.rswitch.RecordRetry(now)
	if s.lat != nil {
		s.lat.WBRetry(cache.ID(), entry.Key, now)
	}
	cache.RequeueWB(entry)
	s.engine.ScheduleCall(s.cfg.RetryBackoff, s.hFinishWB,
		sim.EventData{Key: uint64(cache.ID())})
}

// settleSnarf finishes a write back whose combined response elected a
// snarf winner. If the winner can no longer install the line (its
// candidate way vanished within this cycle — extremely rare), the line
// falls back to the L3 when its queue token is held, and otherwise is
// requeued to re-arbitrate like any retried write back. The requeue is
// load-bearing: dropping the entry here would silently lose a dirty
// line.
func (s *System) settleSnarf(cache l2Handle, entry l2.WBEntry, winner l2Handle, l3Accepted bool, now config.Cycles) {
	displaced, dropped, accepted := winner.AcceptSnarf(entry)
	switch {
	case accepted:
		s.wbSnarfed++
		if s.auditor != nil {
			s.auditor.OnWBSnarfed(cache.ID(), entry, winner.ID(), displaced, dropped)
		}
		if s.lat != nil {
			s.lat.WBDone(cache.ID(), entry.Key, txlat.OutWBSnarf, now)
		}
		if l3Accepted {
			s.releaseL3Token()
		}
		// The line moves L2-to-L2 across the data ring.
		s.ring.ReserveData(now)
	case l3Accepted:
		s.snarfFallbacks++
		if s.tracer != nil {
			s.tracer.WriteBack(now, cache.ID(), entry.Key, entry.Kind.String(), "snarf-fallback", entry.Snarfable)
		}
		if s.auditor != nil {
			s.auditor.OnWBToL3(cache.ID(), entry)
		}
		if s.lat != nil {
			s.lat.WBToL3(cache.ID(), entry.Key, now)
		}
		s.reuse.recordAccepted(entry.Key)
		s.sendToL3(entry.Key, entry.Kind, now)
	default:
		s.snarfFallbacks++
		if s.tracer != nil {
			s.tracer.WriteBack(now, cache.ID(), entry.Key, entry.Kind.String(), "snarf-retry", entry.Snarfable)
		}
		s.retryWB(cache, entry, now)
		return // the entry re-arbitrates; the bus slot is not yet free
	}
	s.finishWB(cache.ID())
}

// wbDisposition names a write-back combine outcome for the event trace.
func wbDisposition(cancelled bool, out coherence.Outcome) string {
	switch {
	case cancelled:
		return "cancelled"
	case out.Retry:
		return "retry"
	case out.WBSquashed && out.SquashedByL3:
		return "squash-l3"
	case out.WBSquashed:
		return "squash-peer"
	case out.WBSnarfed:
		return "snarf"
	case out.WBToL3:
		return "to-l3"
	}
	return "none"
}

// finishWB retires l2idx's in-flight write-back transaction and pumps
// the next queued entry.
func (s *System) finishWB(l2idx int) {
	s.wbInFlight[l2idx] = false
	s.pumpWB(l2idx, s.engine.Now())
}

// sendToL3 moves an accepted write back across the data ring into the
// L3 array, casting out any displaced dirty victim to memory, and
// releases the L3's incoming-queue token when the array write retires —
// the token hold time is what makes bursts of write backs overflow the
// queue and draw retries.
func (s *System) sendToL3(key uint64, kind coherence.TxnKind, now config.Cycles) {
	dStart := s.ring.ReserveData(now)
	arrive := dStart + s.cfg.DataRingOccupancy
	s.engine.AtCall(arrive, s.hWBArriveL3, sim.EventData{Key: key, Kind: int8(kind)})
}

// wbArriveL3 books the L3 slice for an arrived write back and schedules
// the array-write retirement (hWBArriveL3).
func (s *System) wbArriveL3(d sim.EventData) {
	wStart := s.l3.ReserveSlice(d.Key, s.engine.Now())
	s.engine.AtCall(wStart+s.cfg.L3SliceOccupancy, s.hRetireL3Write, d)
}

// retireL3Write installs the line, drains any displaced dirty victim to
// memory, and frees the incoming-queue token.
func (s *System) retireL3Write(key uint64, kind coherence.TxnKind) {
	if s.lat != nil {
		s.lat.WBRetired(key, s.engine.Now())
	}
	s.everInL3[key] = struct{}{}
	co, castout := s.l3.Insert(key, kind)
	if s.auditor != nil {
		s.auditor.OnL3Retire(key, kind, co.Key, castout)
	}
	if castout {
		// The displaced dirty victim must drain to memory before the
		// L3's buffer entry frees: under memory pressure this castout
		// backpressure is what turns an L3-thrashing workload (TP) into
		// a retry storm.
		memStart := s.mem.ReserveWrite(s.engine.Now())
		s.engine.AtCall(memStart, s.hReleaseL3Token, sim.EventData{})
		return
	}
	s.releaseL3Token()
}
