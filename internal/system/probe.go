package system

import "cmpcache/internal/metrics"

// Attach installs p as this run's observability probe: the round
// coordinator's boundary tick drives p's sampling windows, and p's
// sampler callback reads the system's cumulative counters at each
// window close. Attach must be called before Run; Run's results then
// carry the completed interval series. Attaching a probe never perturbs
// the simulation — sampling is observation-only (see internal/metrics)
// and windows close only at round boundaries, after every event
// strictly before the window's end has fired at any worker count.
func (s *System) Attach(p *metrics.Probe) {
	s.probe = p
	s.tracer = p.Trace()
	p.Bind(s.sampleMetrics)
}

// sampleMetrics copies the system's cumulative counters and occupancy
// gauges into snap. The probe differences consecutive snapshots, so
// everything here is a plain read — no counter is reset, and the retry
// switch is peeked without advancing its window.
func (s *System) sampleMetrics(snap *metrics.Snapshot) {
	snap.Retries = s.collector.Retries()
	snap.WBRetried = s.wbRetried
	snap.WBIssued = s.wbTxns
	snap.DemandTxns = s.demandTxns
	snap.FillsPeer = s.fillsFromPeer
	snap.FillsL3 = s.fillsFromL3
	snap.FillsMem = s.fillsFromMem
	snap.MemReads = s.mem.Reads()
	snap.MemWrites = s.mem.Writes()
	snap.AddrBusy = s.ring.AddressBusyCycles()
	snap.DataBusy = s.ring.DataBusyCycles()
	snap.SwitchActive = s.rswitch.ActiveNow()
	snap.L3QueueDepth = s.l3.QueueInUse()
	snap.L3QueuePeak = s.l3.TakeQueueWindowPeak()
	for _, c := range s.l2s {
		st := c.StatsSnapshot()
		snap.SnarfOffers += st.SnarfOffers
		snap.SnarfAccepts += st.SnarfAccepts
		snap.SnarfInstall += st.SnarfInstalls
		snap.MSHROccupancy += c.MSHRCount()
		snap.WBQueueOccupancy += c.WBQueueLen()
		if w := c.WBHT(); w != nil {
			snap.WBHTConsults += w.Consults()
			snap.WBHTHits += w.Hits()
			snap.WBHTCorrect += w.Correct()
			snap.WBHTWrong += w.Wrong()
		}
	}
}
