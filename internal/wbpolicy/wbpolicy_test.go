package wbpolicy

import (
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
)

// tinySketch is a 4-set x 2-way sketch with an abort threshold of 4
// misses and an EWMA half-weight (shift 1), small enough to exercise
// set conflicts and LRU displacement directly. Set index = key & 3.
func tinySketch() *reuseAgent {
	return newReuseAgent(config.ReuseDistConfig{
		Entries: 8, Assoc: 2, MaxDistance: 4, EWMAShift: 1,
	})
}

func TestReuseSketchTrainsDistance(t *testing.T) {
	a := tinySketch()
	const k = uint64(16) // set 0

	// Untrained lines copy back (conservative default) and count cold.
	if a.AbortCleanWB(k, false, false) {
		t.Fatal("untrained line aborted its copy-back")
	}
	if a.cold != 1 || a.consults != 0 {
		t.Fatalf("cold=%d consults=%d, want 1/0", a.cold, a.consults)
	}

	// Evict at miss 0, re-miss 7 misses later: distance 7 > 4 aborts.
	a.ObserveEviction(k)
	for i := 0; i < 6; i++ {
		a.ObserveLocalMiss(uint64(100 + 4*i)) // distinct sets, no training
	}
	a.ObserveLocalMiss(k)
	if a.samples != 1 {
		t.Fatalf("samples = %d, want 1", a.samples)
	}
	if !a.AbortCleanWB(k, false, true) {
		t.Fatal("distance 7 > max 4 did not abort")
	}
	if a.consults != 1 || a.aborts != 1 || a.abortsInL3 != 1 {
		t.Fatalf("consults/aborts/inL3 = %d/%d/%d, want 1/1/1",
			a.consults, a.aborts, a.abortsInL3)
	}
}

func TestReuseSketchEWMAFold(t *testing.T) {
	a := tinySketch()
	const k = uint64(16)

	// First sample: 7 (evict at 0, re-miss at 7).
	a.ObserveEviction(k)
	for i := 0; i < 6; i++ {
		a.ObserveLocalMiss(uint64(100 + 4*i))
	}
	a.ObserveLocalMiss(k)

	// Second sample: 1 (evict at 7, immediate re-miss). With shift 1 the
	// fold is dist += (1>>1) - (7>>1) = 7 - 3 = 4, which is on the
	// threshold: 4 > 4 is false, so the line copies back again.
	a.ObserveEviction(k)
	a.ObserveLocalMiss(k)
	if a.samples != 2 {
		t.Fatalf("samples = %d, want 2", a.samples)
	}
	if e := a.lookup(k); e == nil || e.dist != 4 {
		t.Fatalf("EWMA after samples 7,1 = %+v, want dist 4", e)
	}
	if a.AbortCleanWB(k, false, false) {
		t.Fatal("dist 4 at threshold 4 aborted; threshold is strict")
	}
}

// TestReuseSketchLRUDisplacement: a 2-way set tracks at most two tags;
// the least recently touched one is forgotten, and a consult (even a
// cold one) refreshes recency.
func TestReuseSketchLRUDisplacement(t *testing.T) {
	a := tinySketch()
	k0, k4, k8 := uint64(0), uint64(4), uint64(8) // all map to set 0

	a.ObserveEviction(k0)
	a.ObserveEviction(k4)
	a.AbortCleanWB(k0, false, false) // cold consult moves k0 to MRU
	a.ObserveEviction(k8)            // displaces k4, the LRU way

	a.ObserveLocalMiss(k4) // forgotten: no interval to close
	if a.samples != 0 {
		t.Fatalf("displaced tag still produced a sample (samples=%d)", a.samples)
	}
	a.ObserveLocalMiss(k0) // retained: closes the pending interval
	if a.samples != 1 {
		t.Fatalf("retained tag lost its interval (samples=%d)", a.samples)
	}
}

func TestReuseSketchRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	newReuseAgent(config.ReuseDistConfig{Entries: 6, Assoc: 2})
}

// tinyHybrid is a 4-set x 2-way score table with update threshold 2.
func tinyHybrid() *hybridChip {
	cfg := config.Default().WithMechanism(config.HybridUI)
	cfg.HybridUI = config.HybridUIConfig{Entries: 8, Assoc: 2, UpdateThreshold: 2}
	return newHybridChip(&cfg)
}

// peerRead is the outcome shape that scores a consumer touch: the line
// was found on chip.
var peerRead = coherence.Outcome{Source: coherence.SourcePeerL2, SourceAgent: 1, SharedElsewhere: true}

func TestHybridScoreRoutesUpgrades(t *testing.T) {
	p := tinyHybrid()
	const k = uint64(5)

	// Below threshold: invalidate, and the miss resets the score.
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	if p.UseUpdate(k) {
		t.Fatal("score 1 < threshold 2 chose update")
	}
	if p.stats.InvalidateUpgrades != 1 {
		t.Fatalf("InvalidateUpgrades = %d, want 1", p.stats.InvalidateUpgrades)
	}

	// Two consumer reads reach the threshold: update, score halves so a
	// single further read keeps the line in update mode.
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	if !p.UseUpdate(k) {
		t.Fatal("score 2 at threshold 2 chose invalidate")
	}
	if p.stats.UpdatePushes != 1 || p.stats.ScoredReads != 3 {
		t.Fatalf("UpdatePushes=%d ScoredReads=%d, want 1/3", p.stats.UpdatePushes, p.stats.ScoredReads)
	}
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead) // 1 + 1 = 2
	if !p.UseUpdate(k) {
		t.Fatal("halved score + one read fell out of update mode")
	}
}

func TestHybridUnsharedReadsDoNotScore(t *testing.T) {
	p := tinyHybrid()
	const k = uint64(5)
	// A read satisfied by L3/memory with no other sharers trains nothing.
	p.ObserveDemandOutcome(0, k, coherence.Read, coherence.Outcome{Source: coherence.SourceMemory, SourceAgent: -1})
	p.ObserveDemandOutcome(0, k, coherence.Read, coherence.Outcome{Source: coherence.SourceMemory, SourceAgent: -1})
	if p.stats.ScoredReads != 0 {
		t.Fatalf("ScoredReads = %d, want 0", p.stats.ScoredReads)
	}
	if p.UseUpdate(k) {
		t.Fatal("unscored line chose update")
	}
}

func TestHybridRWITMClearsScore(t *testing.T) {
	p := tinyHybrid()
	const k = uint64(5)
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	p.ObserveDemandOutcome(1, k, coherence.RWITM, coherence.Outcome{Source: coherence.SourcePeerL2, SourceAgent: 0})
	if p.UseUpdate(k) {
		t.Fatal("RWITM did not clear the sharing score")
	}
}

func TestHybridScoreSaturates(t *testing.T) {
	p := tinyHybrid()
	const k = uint64(5)
	for i := 0; i < 300; i++ {
		p.ObserveDemandOutcome(0, k, coherence.Read, peerRead)
	}
	l := p.score.Lookup(k)
	if l == nil || l.Flags != 255 {
		t.Fatalf("score after 300 reads = %+v, want saturation at 255", l)
	}
}

// TestNewDispatch pins the policy registry: each mechanism gets its own
// chip type, and only the paper mechanisms ride the retry switch or
// snoop write backs on the ring.
func TestNewDispatch(t *testing.T) {
	cases := []struct {
		m        config.Mechanism
		snoops   bool
		gated    bool
		hasStats bool
	}{
		{config.Baseline, false, false, false},
		{config.WBHT, false, true, false},
		{config.Snarf, true, false, false},
		{config.Combined, true, true, false},
		{config.ReuseDist, false, false, true},
		{config.HybridUI, false, false, true},
	}
	for _, c := range cases {
		cfg := config.Default().WithMechanism(c.m)
		p := New(&cfg)
		if got := p.SnoopsWBRing(); got != c.snoops {
			t.Errorf("%v: SnoopsWBRing = %v, want %v", c.m, got, c.snoops)
		}
		if got := p.GatedBySwitch(); got != c.gated {
			t.Errorf("%v: GatedBySwitch = %v, want %v", c.m, got, c.gated)
		}
		if got := p.Stats() != nil; got != c.hasStats {
			t.Errorf("%v: Stats() != nil is %v, want %v", c.m, got, c.hasStats)
		}
		for i := 0; i < 4; i++ {
			if p.Agent(i) == nil {
				t.Fatalf("%v: Agent(%d) = nil", c.m, i)
			}
		}
	}
}
