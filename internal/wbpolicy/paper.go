package wbpolicy

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
)

// paperChip implements the paper's four configurations — baseline,
// WBHT, snarf, combined — as one policy parameterized by which tables
// exist. The port is behaviorally exact: every table consult, counter
// update and gating condition happens at the same point, under the same
// condition, as the pre-extraction hard-coded paths (the experiment
// goldens are byte-identical across the refactor).
type paperChip struct {
	agents   []paperAgent // one backing array; Agent(i) hands out &agents[i]
	wbht     bool         // WBHT configured (Mechanism WBHT or Combined)
	snarf    bool         // snarfing configured (Mechanism Snarf or Combined)
	globalWB bool         // Figure 3 global WBHT allocation variant
}

func newPaperChip(cfg *config.Config) *paperChip {
	p := &paperChip{
		agents:   make([]paperAgent, cfg.NumL2()),
		wbht:     cfg.Mechanism == config.WBHT || cfg.Mechanism == config.Combined,
		snarf:    cfg.Mechanism == config.Snarf || cfg.Mechanism == config.Combined,
		globalWB: cfg.WBHT.GlobalAllocate,
	}
	for i := range p.agents {
		if p.wbht {
			p.agents[i].wbht = core.NewWBHT(cfg.WBHT)
		}
		if p.snarf {
			p.agents[i].snarf = core.NewSnarfTable(cfg.Snarf)
		}
	}
	return p
}

func (p *paperChip) Agent(idx int) Agent   { return &p.agents[idx] }
func (p *paperChip) SnoopsWBRing() bool    { return p.snarf }
func (p *paperChip) GatedBySwitch() bool   { return p.wbht }
func (p *paperChip) UseUpdate(uint64) bool { return false }
func (p *paperChip) Stats() *Stats         { return nil }

// ObserveWriteBack: "The tag for a line is entered into the table when
// the line is written back by any L2 cache" — every table observes
// every write back on the bus.
func (p *paperChip) ObserveWriteBack(key uint64) {
	if !p.snarf {
		return
	}
	for _, a := range p.agents {
		a.snarf.RecordWriteBack(key)
	}
}

// ObserveCleanWBOutcome: the WBHT learns from the L3's snoop response
// to clean write backs — on the writing L2's table, or on every table
// under the global-allocation variant. The table is kept up to date
// even while the retry switch has disabled its use.
func (p *paperChip) ObserveCleanWBOutcome(writer int, key uint64, l3Has bool) {
	if !p.wbht || !l3Has {
		return
	}
	if p.globalWB {
		for _, a := range p.agents {
			a.wbht.Allocate(key)
		}
		return
	}
	p.agents[writer].wbht.Allocate(key)
}

// ObserveDemandMiss: the snarf reuse tables observe every demand miss
// on the bus ("missed on either locally or by another L2 cache").
func (p *paperChip) ObserveDemandMiss(key uint64) {
	if !p.snarf {
		return
	}
	for _, a := range p.agents {
		a.snarf.RecordMiss(key)
	}
}

func (p *paperChip) ObserveDemandOutcome(int, uint64, coherence.TxnKind, coherence.Outcome) {}

// paperAgent is one L2's share of the paper mechanisms: its WBHT and
// snarf reuse table (either may be nil).
type paperAgent struct {
	wbht  *core.WBHT
	snarf *core.SnarfTable
}

func (a *paperAgent) AbortCleanWB(key uint64, switchActive, inL3 bool) bool {
	if a.wbht == nil || !switchActive {
		return false
	}
	abort := a.wbht.ShouldAbort(key)
	a.wbht.RecordDecision(abort, inL3)
	return abort
}

func (a *paperAgent) FlagWriteBack(key uint64) bool {
	if a.snarf == nil {
		return false
	}
	return a.snarf.Snarfable(key)
}

func (a *paperAgent) SnoopsWB() bool { return a.snarf != nil }

// AcceptOffer: the paper's snarf algorithm accepts whenever the
// structural checks pass (the reuse filter already ran at the writer).
func (a *paperAgent) AcceptOffer(uint64) bool { return true }

func (a *paperAgent) ObserveLocalMiss(uint64) {}
func (a *paperAgent) ObserveEviction(uint64)  {}

func (a *paperAgent) WBHT() *core.WBHT             { return a.wbht }
func (a *paperAgent) SnarfTable() *core.SnarfTable { return a.snarf }
