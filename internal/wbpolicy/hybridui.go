package wbpolicy

import (
	"cmpcache/internal/cache"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
)

// hybridChip implements the hybrid update/invalidate coherence variant
// (after arXiv 1502.00101): a chip-wide score table counts, per line
// tag, how many peer-sourced reads combined since the last write. When
// a store's ownership claim (Upgrade) combines on a line whose score
// has reached the threshold — a producer-consumer line whose sharers
// will re-read it anyway — the writer updates the known sharers in
// place instead of invalidating them: sharers stay Shared, the writer
// becomes Tagged (dirty, shared, supplier) and pushes the new data
// across the data ring, and the consumers' next reads hit locally
// instead of re-missing on the bus. Lines below the threshold — and
// every RWITM — invalidate as usual, so migratory data keeps the
// invalidate protocol's single-copy behavior.
//
// All score state lives on the chip half and is touched only at bus
// combine events (serial phase), so the policy is deterministic at any
// worker count. Scores saturate at 255 and decay by halving on each
// update push (retaining producer-consumer history) or reset on an
// invalidation (the sharer set is gone).
type hybridChip struct {
	score     *cache.Cache // score lives in Line.Flags
	threshold uint8
	agents    []hybridAgent
	stats     Stats
}

func newHybridChip(cfg *config.Config) *hybridChip {
	thr := cfg.HybridUI.UpdateThreshold
	if thr < 1 {
		thr = 1
	}
	if thr > 255 {
		thr = 255
	}
	return &hybridChip{
		score:     cache.New(cfg.HybridUI.Entries/cfg.HybridUI.Assoc, cfg.HybridUI.Assoc),
		threshold: uint8(thr),
		agents:    make([]hybridAgent, cfg.NumL2()),
	}
}

func (p *hybridChip) Agent(idx int) Agent                     { return &p.agents[idx] }
func (p *hybridChip) SnoopsWBRing() bool                      { return false }
func (p *hybridChip) GatedBySwitch() bool                     { return false }
func (p *hybridChip) ObserveWriteBack(uint64)                 {}
func (p *hybridChip) ObserveCleanWBOutcome(int, uint64, bool) {}
func (p *hybridChip) ObserveDemandMiss(uint64)                {}
func (p *hybridChip) Stats() *Stats                           { return &p.stats }

// ObserveDemandOutcome trains the sharing score: a read that found the
// line on chip (a peer supplied it or holds it shared) is one consumer
// touch; an RWITM is an invalidating write and clears the line's score.
func (p *hybridChip) ObserveDemandOutcome(_ int, key uint64, kind coherence.TxnKind, out coherence.Outcome) {
	switch kind {
	case coherence.Read:
		if !out.SharedElsewhere && !out.DirtySource {
			return
		}
		p.stats.ScoredReads++
		if l := p.score.LookupTouch(key); l != nil {
			if l.Flags < 255 {
				l.Flags++
			}
			return
		}
		p.score.Insert(key, 0, 1, true)
	case coherence.RWITM:
		if l := p.score.Lookup(key); l != nil {
			l.Flags = 0
		}
	}
}

// UseUpdate routes a non-stale ownership claim: update the sharers when
// the line's consumer score has reached the threshold (halving the
// score so sustained producer-consumer lines stay in update mode),
// otherwise invalidate (resetting the score — the sharer set this
// score described no longer exists).
func (p *hybridChip) UseUpdate(key uint64) bool {
	if l := p.score.LookupTouch(key); l != nil {
		if l.Flags >= p.threshold {
			l.Flags >>= 1
			p.stats.UpdatePushes++
			return true
		}
		l.Flags = 0
	}
	p.stats.InvalidateUpgrades++
	return false
}

// hybridAgent: the per-L2 half is entirely passive — the policy changes
// only how upgrades commit, which is chip-level.
type hybridAgent struct{}

func (hybridAgent) AbortCleanWB(uint64, bool, bool) bool { return false }
func (hybridAgent) FlagWriteBack(uint64) bool            { return false }
func (hybridAgent) SnoopsWB() bool                       { return false }
func (hybridAgent) AcceptOffer(uint64) bool              { return true }
func (hybridAgent) ObserveLocalMiss(uint64)              {}
func (hybridAgent) ObserveEviction(uint64)               {}
func (hybridAgent) WBHT() *core.WBHT                     { return nil }
func (hybridAgent) SnarfTable() *core.SnarfTable         { return nil }
