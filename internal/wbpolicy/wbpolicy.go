// Package wbpolicy defines the write-back policy plug-in interface: the
// three decision points the paper's adaptive mechanisms occupy —
// clean-write-back abort (the WBHT squash), snarf flagging at the ring,
// and peer accept/reject — plus the observation hooks a policy trains
// on. The simulator core (internal/system, internal/l2) is policy-
// agnostic: it calls through these interfaces at exactly the sites the
// hard-coded mechanisms used to own, so new policies drop in without
// touching ring, L3 or protocol code.
//
// A policy splits into two halves:
//
//   - Agent: the per-L2 half. Its hooks run wherever that L2's events
//     run — including a shard's event wheel during the parallel phase —
//     so an Agent may touch only its own state plus read-only
//     configuration. One Agent instance serves exactly one L2.
//
//   - Chip: the chip-wide half. Its hooks run only at bus combine
//     events, which fire in the coordinator's serial phase, so a Chip
//     may hold global state (tables indexed by all L2s, sharing
//     scores) without synchronization.
//
// Determinism obligations (DESIGN.md §16): hooks must not consult wall
// clocks, map iteration order, or randomness; any state an Agent reads
// must be owned by its L2 or mutated only in the serial phase; and a
// detached policy (every hook a no-op) must not perturb the event
// sequence. The conformance suite in internal/system enforces all three
// for every registered policy (serial-vs-sharded bit-identity, auditor
// soak, zero-alloc observation).
package wbpolicy

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
)

// Agent is the per-L2 half of a write-back policy.
type Agent interface {
	// AbortCleanWB is decision point 1: a clean line was evicted; return
	// true to suppress its copy-back to the L3 entirely (the paper's
	// WBHT squash). switchActive is the adaptive retry-rate switch state
	// for policies gated by it (Chip.GatedBySwitch); inL3 is the
	// simulator's oracle peek, passed solely so policies can score their
	// own prediction accuracy — it must not influence the decision
	// beyond bookkeeping.
	AbortCleanWB(key uint64, switchActive, inL3 bool) bool

	// FlagWriteBack is decision point 2: a write back is about to be
	// queued; return true to mark it snarfable on the bus so peers run
	// their accept logic when it combines.
	FlagWriteBack(key uint64) bool

	// SnoopsWB reports whether this L2 participates in write-back
	// snooping at all (squash detection and snarf volunteering). When
	// false the L2 answers every write-back snoop with RespNull without
	// a tag lookup.
	SnoopsWB() bool

	// AcceptOffer is decision point 3: a snarfable peer write back
	// passed the structural checks (no miss in flight for the line, a
	// replaceable way exists); return true to volunteer for it.
	AcceptOffer(key uint64) bool

	// ObserveLocalMiss: this L2 started a new demand bus transaction
	// for key (shard context).
	ObserveLocalMiss(key uint64)

	// ObserveEviction: a valid line left this L2's tag array (any
	// state, before the write-back decision runs; shard or serial
	// context, always single-threaded per L2).
	ObserveEviction(key uint64)

	// WBHT exposes the agent's Write Back History Table for statistics
	// and history-informed replacement, or nil.
	WBHT() *core.WBHT

	// SnarfTable exposes the agent's snarf reuse table for statistics,
	// or nil.
	SnarfTable() *core.SnarfTable
}

// Chip is the chip-wide half of a write-back policy. All hooks run in
// the serial phase only.
type Chip interface {
	// Agent returns the policy half owned by L2 idx.
	Agent(idx int) Agent

	// SnoopsWBRing reports whether write backs are snooped by peer L2s
	// at all; when false the system skips the peer loop at write-back
	// combines entirely.
	SnoopsWBRing() bool

	// GatedBySwitch reports whether AbortCleanWB should receive the
	// adaptive retry-rate switch state (true only for policies that
	// opt into Section 2.2's gating; others always receive false and
	// the switch is never advanced on their behalf).
	GatedBySwitch() bool

	// ObserveWriteBack: a write-back transaction for key combined on
	// the bus (fires for every WB, before snooping).
	ObserveWriteBack(key uint64)

	// ObserveCleanWBOutcome: a clean write back from L2 writer
	// combined; l3Has reports the L3 redundancy filter held the line
	// (the WBHT allocation point, Section 2 step 3).
	ObserveCleanWBOutcome(writer int, key uint64, l3Has bool)

	// ObserveDemandMiss: a demand transaction for key combined on the
	// bus (fires for every non-stale demand, before snooping).
	ObserveDemandMiss(key uint64)

	// ObserveDemandOutcome: the combined response for a demand
	// transaction is known (fires after the Snoop Collector, before
	// commit).
	ObserveDemandOutcome(requester int, key uint64, kind coherence.TxnKind, out coherence.Outcome)

	// UseUpdate decides, at a non-stale ownership claim's combine,
	// whether to update the known sharers in place instead of
	// invalidating them (the hybrid update/invalidate policy). The
	// decision itself may train the policy's state.
	UseUpdate(key uint64) bool

	// Stats returns policy-specific counters for Results, or nil when
	// the policy has none (the four paper mechanisms report through
	// their WBHT/snarf tables instead).
	Stats() *Stats
}

// Stats aggregates the counters of the two literature policies. A field
// is meaningful only for the policy that owns it; unused fields stay
// zero and are omitted from JSON.
type Stats struct {
	// reusedist: sketch training and gating.
	SketchEvictions uint64 `json:",omitempty"` // evictions recorded into the sketch
	SketchSamples   uint64 `json:",omitempty"` // reuse-distance samples folded into EWMAs
	PredictConsults uint64 `json:",omitempty"` // clean-WB gates with a trained entry
	PredictCold     uint64 `json:",omitempty"` // clean-WB gates without training (copy back)
	PredictAborts   uint64 `json:",omitempty"` // clean copy-backs suppressed
	AbortsLineInL3  uint64 `json:",omitempty"` // suppressed while the L3 held the line (free)

	// hybridui: sharing scores and upgrade routing.
	ScoredReads        uint64 `json:",omitempty"` // peer-sourced reads that bumped a score
	UpdatePushes       uint64 `json:",omitempty"` // upgrades routed to the update path
	InvalidateUpgrades uint64 `json:",omitempty"` // upgrades routed to invalidation
}

// New builds the write-back policy chip for cfg's mechanism. cfg must
// already be validated; the returned Chip owns one Agent per L2.
func New(cfg *config.Config) Chip {
	switch cfg.Mechanism {
	case config.ReuseDist:
		return newReuseChip(cfg)
	case config.HybridUI:
		return newHybridChip(cfg)
	default:
		return newPaperChip(cfg)
	}
}
