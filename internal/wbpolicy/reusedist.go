package wbpolicy

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
)

// reuseChip implements the reuse-distance clean copy-back policy (after
// arXiv 2105.14442): each L2 keeps a small sketch tracking, per line
// tag, the EWMA of its reuse distance — how many of this L2's demand
// misses elapse between evicting the line and missing on it again. A
// clean victim whose trained distance exceeds MaxDistance is predicted
// to age out of the L3 before its next use, so its copy-back is
// suppressed outright; short-distance lines copy back so their re-fetch
// hits the L3 instead of memory. Unlike the WBHT — which learns where a
// line IS (already L3-resident) — the sketch learns when the line will
// be WANTED, so it also suppresses the long tail of dead lines the L3
// holds but will evict before any reuse.
//
// Everything is per-L2 (agent-owned) and counted in that L2's own
// misses, so training runs on the shard wheels with no shared state and
// no switch gating; the chip half is entirely passive.
type reuseChip struct {
	agents []*reuseAgent
	stats  Stats
}

func newReuseChip(cfg *config.Config) *reuseChip {
	p := &reuseChip{}
	for i := 0; i < cfg.NumL2(); i++ {
		p.agents = append(p.agents, newReuseAgent(cfg.ReuseDist))
	}
	return p
}

func (p *reuseChip) Agent(idx int) Agent                                                    { return p.agents[idx] }
func (p *reuseChip) SnoopsWBRing() bool                                                     { return false }
func (p *reuseChip) GatedBySwitch() bool                                                    { return false }
func (p *reuseChip) UseUpdate(uint64) bool                                                  { return false }
func (p *reuseChip) ObserveWriteBack(uint64)                                                {}
func (p *reuseChip) ObserveCleanWBOutcome(int, uint64, bool)                                {}
func (p *reuseChip) ObserveDemandMiss(uint64)                                               {}
func (p *reuseChip) ObserveDemandOutcome(int, uint64, coherence.TxnKind, coherence.Outcome) {}

// Stats sums the per-agent counters (serial context, results time).
func (p *reuseChip) Stats() *Stats {
	p.stats = Stats{}
	for _, a := range p.agents {
		p.stats.SketchEvictions += a.evictions
		p.stats.SketchSamples += a.samples
		p.stats.PredictConsults += a.consults
		p.stats.PredictCold += a.cold
		p.stats.PredictAborts += a.aborts
		p.stats.AbortsLineInL3 += a.abortsInL3
	}
	return &p.stats
}

// sketchEntry tracks one line tag's reuse behavior.
type sketchEntry struct {
	tag     uint64
	evictAt uint64 // this L2's miss count at the last eviction
	dist    uint64 // EWMA reuse distance, in misses
	trained bool   // dist holds at least one sample
	pending bool   // evicted and not yet re-missed
}

// reuseAgent is one L2's sketch. The table is set-associative with true
// LRU inside each set (MRU at index 0), sized and replaced like the
// mechanism tables; all hooks are allocation-free.
type reuseAgent struct {
	sets    [][]sketchEntry
	setMask uint64
	maxDist uint64
	shift   uint // EWMA weight: sample contributes 1/2^shift

	misses uint64 // this L2's demand-miss clock

	evictions  uint64
	samples    uint64
	consults   uint64
	cold       uint64
	aborts     uint64
	abortsInL3 uint64
}

func newReuseAgent(cfg config.ReuseDistConfig) *reuseAgent {
	nsets := cfg.Entries / cfg.Assoc
	if nsets < 1 || nsets&(nsets-1) != 0 {
		panic("wbpolicy: reusedist sets must be a positive power of two")
	}
	a := &reuseAgent{
		sets:    make([][]sketchEntry, nsets),
		setMask: uint64(nsets - 1),
		maxDist: cfg.MaxDistance,
		shift:   cfg.EWMAShift,
	}
	backing := make([]sketchEntry, nsets*cfg.Assoc)
	for i := range a.sets {
		a.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return a
}

// lookup returns key's entry moved to MRU, or nil.
func (a *reuseAgent) lookup(key uint64) *sketchEntry {
	set := a.sets[key&a.setMask]
	for i := range set {
		if set[i].tag == key && (set[i].trained || set[i].pending) {
			if i > 0 {
				e := set[i]
				copy(set[1:i+1], set[:i])
				set[0] = e
			}
			return &set[0]
		}
	}
	return nil
}

// touch returns key's entry moved to MRU, allocating the LRU way when
// absent (the displaced tag's history is forgotten).
func (a *reuseAgent) touch(key uint64) *sketchEntry {
	if e := a.lookup(key); e != nil {
		return e
	}
	set := a.sets[key&a.setMask]
	last := len(set) - 1
	copy(set[1:], set[:last])
	set[0] = sketchEntry{tag: key}
	return &set[0]
}

// ObserveLocalMiss advances the miss clock and closes any pending
// eviction interval for key, folding the measured distance into the
// tag's EWMA.
func (a *reuseAgent) ObserveLocalMiss(key uint64) {
	a.misses++
	e := a.lookup(key)
	if e == nil || !e.pending {
		return
	}
	sample := a.misses - e.evictAt
	if e.trained {
		e.dist += (sample >> a.shift) - (e.dist >> a.shift)
	} else {
		e.dist = sample
		e.trained = true
	}
	e.pending = false
	a.samples++
}

// ObserveEviction opens a reuse interval: the next local miss on key
// measures one reuse distance. Re-evicting before any re-miss just
// restarts the interval (the first eviction's interval was unbounded
// anyway).
func (a *reuseAgent) ObserveEviction(key uint64) {
	e := a.touch(key)
	e.evictAt = a.misses
	e.pending = true
	a.evictions++
}

// AbortCleanWB suppresses the copy-back when the trained distance says
// the L3 will have evicted the line before its reuse. Untrained lines
// copy back — the baseline-conservative default. The policy ignores
// switchActive (it is not retry-gated; its cost model is the sketch
// itself) and uses inL3 only to score how often a suppressed copy-back
// was free because the L3 already held the line.
func (a *reuseAgent) AbortCleanWB(key uint64, _ bool, inL3 bool) bool {
	e := a.lookup(key)
	if e == nil || !e.trained {
		a.cold++
		return false
	}
	a.consults++
	if e.dist > a.maxDist {
		a.aborts++
		if inL3 {
			a.abortsInL3++
		}
		return true
	}
	return false
}

func (a *reuseAgent) FlagWriteBack(uint64) bool { return false }
func (a *reuseAgent) SnoopsWB() bool            { return false }
func (a *reuseAgent) AcceptOffer(uint64) bool   { return true }

func (a *reuseAgent) WBHT() *core.WBHT             { return nil }
func (a *reuseAgent) SnarfTable() *core.SnarfTable { return nil }
