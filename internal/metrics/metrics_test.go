package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"cmpcache/internal/config"
)

// countingSampler returns a sampler that reports a monotonically rising
// counter (+delta per sample call) and records how often it ran.
func countingSampler(delta uint64, calls *int) func(*Snapshot) {
	var total uint64
	return func(s *Snapshot) {
		*calls++
		total += delta
		s.Retries = total
		s.L3QueueDepth = *calls // gauge: reported as-is
	}
}

func TestProbeWindowMath(t *testing.T) {
	p := NewProbe(Config{Interval: 100})
	calls := 0
	p.Bind(countingSampler(7, &calls))

	p.Tick(50) // inside window 0: nothing closes
	if calls != 0 {
		t.Fatalf("sampler ran %d times before any window closed", calls)
	}
	p.Tick(100) // closes [0,100)
	p.Tick(100) // same cycle again: no further close
	if calls != 1 {
		t.Fatalf("sampler ran %d times after one window close, want 1", calls)
	}
	p.Tick(350) // closes [100,200) and [200,300)
	if calls != 3 {
		t.Fatalf("sampler ran %d times, want 3", calls)
	}

	s := p.Finish(350) // partial tail [300,350)
	if calls != 4 {
		t.Fatalf("sampler ran %d times after Finish, want 4", calls)
	}
	if got := len(s.Samples); got != 4 {
		t.Fatalf("series has %d samples, want 4", got)
	}
	for i, sm := range s.Samples {
		if sm.Window != i {
			t.Fatalf("sample %d has window %d", i, sm.Window)
		}
		if sm.Retries != 7 {
			t.Fatalf("sample %d delta = %d, want 7 (cumulative values must be differenced)", i, sm.Retries)
		}
		if sm.L3QueueDepth != i+1 {
			t.Fatalf("sample %d gauge = %d, want %d (gauges are not differenced)", i, sm.L3QueueDepth, i+1)
		}
	}
	tail := s.Samples[3]
	if tail.Start != 300 || tail.End != 350 {
		t.Fatalf("tail covers [%d,%d), want [300,350)", tail.Start, tail.End)
	}

	// Finish is idempotent.
	if again := p.Finish(350); len(again.Samples) != 4 || calls != 4 {
		t.Fatalf("second Finish changed the series: %d samples, %d sampler calls", len(again.Samples), calls)
	}
}

func TestProbeIdleWindowsHaveNoGaps(t *testing.T) {
	p := NewProbe(Config{Interval: 10})
	calls := 0
	p.Bind(countingSampler(0, &calls))
	p.Tick(55) // a long idle stretch crossing five boundaries at once
	s := p.Finish(55)
	if got := len(s.Samples); got != 6 {
		t.Fatalf("series has %d samples, want 6 (5 full + partial tail)", got)
	}
	for i, sm := range s.Samples {
		if int(sm.Start) != i*10 {
			t.Fatalf("sample %d starts at %d: the series has gaps", i, sm.Start)
		}
		if sm.Retries != 0 {
			t.Fatalf("idle sample %d reports %d retries", i, sm.Retries)
		}
	}
}

func TestProbeFinishOnBoundaryEmitsNoEmptyTail(t *testing.T) {
	p := NewProbe(Config{Interval: 100})
	p.Bind(func(*Snapshot) {})
	s := p.Finish(200)
	if got := len(s.Samples); got != 2 {
		t.Fatalf("series has %d samples, want exactly 2 (no zero-width tail)", got)
	}
}

func TestDefaultIntervalApplied(t *testing.T) {
	p := NewProbe(Config{})
	if p.Interval() != DefaultInterval {
		t.Fatalf("Interval() = %d, want DefaultInterval %d", p.Interval(), DefaultInterval)
	}
}

// writeExampleTrace exercises every record type on a TraceWriter.
func writeExampleTrace(tw *TraceWriter) {
	tw.Demand(10, 0, 42, "read", "l3", true, false)
	tw.WriteBack(20, 1, 43, "dirty-wb", "to-l3", true)
	tw.Victim(30, 2, 44, "M", "queued", false)
	tw.Counters(&Sample{Window: 0, Start: 0, End: 100, Retries: 5, SwitchActive: true, AddrRingUtil: 0.25})
}

func TestTraceWriterJSONLLinesParse(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, JSONL)
	writeExampleTrace(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 4 {
		t.Fatalf("Events() = %d, want 4", tw.Events())
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, field := range []string{"t", "ev"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("line %d lacks %q: %s", lines, field, sc.Text())
			}
		}
	}
	if lines != 4 {
		t.Fatalf("trace has %d lines, want 4", lines)
	}
}

func TestTraceWriterChromeIsValidJSONArray(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, ChromeTrace)
	writeExampleTrace(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a valid JSON array: %v\n%s", err, buf.String())
	}
	// 3 instant events + 9 counter tracks per sample.
	if len(events) != 12 {
		t.Fatalf("chrome trace has %d events, want 12", len(events))
	}
	phases := map[string]int{}
	for i, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event %d lacks ts: %v", i, ev)
		}
		if _, ok := ev["name"]; !ok {
			t.Fatalf("event %d lacks name: %v", i, ev)
		}
	}
	if phases["i"] != 3 || phases["C"] != 9 {
		t.Fatalf("phase mix = %v, want 3 instant + 9 counter", phases)
	}
}

func TestTraceWriterEmptyChromeTraceCloses(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, ChromeTrace)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty trace decodes to %d events", len(events))
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"out.jsonl":     JSONL,
		"dir/run.jsonl": JSONL,
		"out.json":      ChromeTrace,
		"trace":         ChromeTrace,
		"x.jsonl.gz":    ChromeTrace,
		"retries.trace": ChromeTrace,
		"l.jsonl.jsonl": JSONL,
		"short.j":       ChromeTrace,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestNilSamplerProbe covers a probe that was never bound to a system:
// windows still close, with all-zero deltas.
func TestNilSamplerProbe(t *testing.T) {
	p := NewProbe(Config{Interval: config.Cycles(10)})
	p.Tick(25)
	s := p.Finish(25)
	if len(s.Samples) != 3 {
		t.Fatalf("series has %d samples, want 3", len(s.Samples))
	}
}
