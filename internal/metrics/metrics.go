// Package metrics is the simulator's observability layer: an optional
// probe that turns one run's end-of-run aggregates into a per-interval
// time series, plus a structured per-transaction event trace (JSONL or
// Chrome trace_event, viewable in Perfetto).
//
// The design contract is zero cost when disabled. A system without an
// attached probe takes exactly one nil check per engine event and
// allocates nothing; all per-window state lives in the probe, and the
// system only supplies a sampler callback that copies its cumulative
// counters into a Snapshot. The probe differences consecutive snapshots
// at each window close, so the simulation's own hot paths carry no
// extra arithmetic.
//
// Sampling is driven by the engine's per-event tick, not by scheduled
// sampler events: a probe therefore never changes the event sequence,
// Results.EventsFired, or any simulated outcome. A window [start, end)
// closes at the first event whose timestamp reaches end, and the
// sampled state is exactly the state after all events strictly before
// end — deterministic for a fixed workload, independent of wall clock
// and worker count.
package metrics

import "cmpcache/internal/config"

// DefaultInterval is the paper's retry-rate observation window: the
// adaptive switch's operating point is 2,000 retries per 1M cycles, so
// series sampled at this interval line up with the switch's decisions.
const DefaultInterval config.Cycles = 1_000_000

// Config parameterizes a Probe.
type Config struct {
	// Interval is the sampling window in cycles; <= 0 selects
	// DefaultInterval.
	Interval config.Cycles
}

// Snapshot is what the system's sampler fills at each window close: its
// cumulative counters (differenced against the previous window by the
// probe) and a few instantaneous gauges (reported as-is).
type Snapshot struct {
	// Cumulative counters.
	Retries      uint64 // retry combined-responses (all transaction kinds)
	WBRetried    uint64 // write-back retries
	WBIssued     uint64 // write-back bus issues (retries re-issue)
	DemandTxns   uint64 // demand bus transactions
	WBHTConsults uint64
	WBHTHits     uint64 // consults that aborted the write back
	WBHTCorrect  uint64
	WBHTWrong    uint64
	SnarfOffers  uint64
	SnarfAccepts uint64
	SnarfInstall uint64
	FillsPeer    uint64
	FillsL3      uint64
	FillsMem     uint64
	MemReads     uint64
	MemWrites    uint64
	AddrBusy     config.Cycles // address-ring busy cycles
	DataBusy     config.Cycles // data-ring busy cycles, both directions summed

	// Instantaneous gauges.
	SwitchActive     bool // retry switch state as of its last advance
	L3QueueDepth     int  // incoming-queue occupancy now
	L3QueuePeak      int  // incoming-queue peak within the window
	MSHROccupancy    int  // outstanding misses summed over L2s
	WBQueueOccupancy int  // write-back queue entries summed over L2s
}

// Sample is one closed window of the interval series. Counter fields
// are per-window deltas; gauge fields are the state at window close.
type Sample struct {
	Window int           `json:"window"` // Start / Interval
	Start  config.Cycles `json:"start"`
	End    config.Cycles `json:"end"`

	Retries      uint64 `json:"retries"`
	WBRetried    uint64 `json:"wb_retried"`
	WBIssued     uint64 `json:"wb_issued"`
	DemandTxns   uint64 `json:"demand_txns"`
	SwitchActive bool   `json:"switch_active"`

	WBHTConsults uint64 `json:"wbht_consults"`
	WBHTHits     uint64 `json:"wbht_hits"`
	WBHTCorrect  uint64 `json:"wbht_correct"`
	WBHTWrong    uint64 `json:"wbht_wrong"`

	SnarfOffers  uint64 `json:"snarf_offers"`
	SnarfAccepts uint64 `json:"snarf_accepts"`
	SnarfInstall uint64 `json:"snarf_installs"`

	AddrRingUtil float64 `json:"addr_ring_util"`
	DataRingUtil float64 `json:"data_ring_util"`

	L3QueueDepth     int `json:"l3_queue_depth"`
	L3QueuePeak      int `json:"l3_queue_peak"`
	MSHROccupancy    int `json:"mshr_occupancy"`
	WBQueueOccupancy int `json:"wb_queue_occupancy"`

	FillsPeer uint64 `json:"fills_peer"`
	FillsL3   uint64 `json:"fills_l3"`
	FillsMem  uint64 `json:"fills_mem"`
	MemReads  uint64 `json:"mem_reads"`
	MemWrites uint64 `json:"mem_writes"`
}

// Series is the complete interval time series of one run. The final
// sample may cover a partial window (End - Start < Interval); rate
// fields are normalized by the actual covered span.
type Series struct {
	Interval config.Cycles `json:"interval"`
	Samples  []Sample      `json:"samples"`
}

// Probe collects the interval series (and optionally forwards events to
// a TraceWriter) for one simulation run. A Probe is single-use and not
// safe for concurrent use — one probe per system, like the system's own
// counters.
type Probe struct {
	interval  config.Cycles
	nextClose config.Cycles
	sampler   func(*Snapshot)
	prev, cur Snapshot
	series    Series
	trace     *TraceWriter
	finished  bool
}

// NewProbe returns a probe sampling at cfg.Interval.
func NewProbe(cfg Config) *Probe {
	iv := cfg.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	return &Probe{interval: iv, nextClose: iv, series: Series{Interval: iv}}
}

// Interval returns the sampling window length.
func (p *Probe) Interval() config.Cycles { return p.interval }

// SetTrace attaches a per-transaction event trace writer. The writer
// also receives one set of Perfetto counter events per closed window.
func (p *Probe) SetTrace(tw *TraceWriter) { p.trace = tw }

// Trace returns the attached trace writer, or nil.
func (p *Probe) Trace() *TraceWriter { return p.trace }

// Bind installs the system's sampler; the system calls this when the
// probe attaches.
func (p *Probe) Bind(sampler func(*Snapshot)) { p.sampler = sampler }

// Tick is the engine's per-event time observer: it closes every window
// whose end the simulation clock has reached. Idle stretches close as
// zero-delta windows, so the series has no gaps.
func (p *Probe) Tick(now config.Cycles) {
	for now >= p.nextClose {
		p.close(p.nextClose)
	}
}

// NextBoundary returns the end of the currently open window — the
// earliest cycle at which a Tick would close a sample. The sharded
// coordinator caps each round's horizon strictly below it so every event
// preceding the boundary has fired before the window closes, preserving
// the serial sampling contract ("state after all events strictly before
// end") at any worker count.
func (p *Probe) NextBoundary() config.Cycles { return p.nextClose }

// close emits the window ending at end and arms the next one.
func (p *Probe) close(end config.Cycles) {
	p.emit(p.nextClose-p.interval, end)
	p.nextClose += p.interval
}

// emit samples the system and appends the [start, end) window.
func (p *Probe) emit(start, end config.Cycles) {
	p.cur = Snapshot{}
	if p.sampler != nil {
		p.sampler(&p.cur)
	}
	c, q := &p.cur, &p.prev
	span := float64(end - start)
	s := Sample{
		Window: int(start / p.interval),
		Start:  start,
		End:    end,

		Retries:      c.Retries - q.Retries,
		WBRetried:    c.WBRetried - q.WBRetried,
		WBIssued:     c.WBIssued - q.WBIssued,
		DemandTxns:   c.DemandTxns - q.DemandTxns,
		SwitchActive: c.SwitchActive,

		WBHTConsults: c.WBHTConsults - q.WBHTConsults,
		WBHTHits:     c.WBHTHits - q.WBHTHits,
		WBHTCorrect:  c.WBHTCorrect - q.WBHTCorrect,
		WBHTWrong:    c.WBHTWrong - q.WBHTWrong,

		SnarfOffers:  c.SnarfOffers - q.SnarfOffers,
		SnarfAccepts: c.SnarfAccepts - q.SnarfAccepts,
		SnarfInstall: c.SnarfInstall - q.SnarfInstall,

		AddrRingUtil: float64(c.AddrBusy-q.AddrBusy) / span,
		DataRingUtil: float64(c.DataBusy-q.DataBusy) / (2 * span),

		L3QueueDepth:     c.L3QueueDepth,
		L3QueuePeak:      c.L3QueuePeak,
		MSHROccupancy:    c.MSHROccupancy,
		WBQueueOccupancy: c.WBQueueOccupancy,

		FillsPeer: c.FillsPeer - q.FillsPeer,
		FillsL3:   c.FillsL3 - q.FillsL3,
		FillsMem:  c.FillsMem - q.FillsMem,
		MemReads:  c.MemReads - q.MemReads,
		MemWrites: c.MemWrites - q.MemWrites,
	}
	p.series.Samples = append(p.series.Samples, s)
	if p.trace != nil {
		p.trace.Counters(&s)
	}
	p.prev = p.cur
}

// Finish closes every remaining window up to the run's final cycle —
// including a trailing partial window when the run did not end on a
// boundary — and returns the completed series. Idempotent.
func (p *Probe) Finish(end config.Cycles) *Series {
	if !p.finished {
		p.finished = true
		p.Tick(end)
		if start := p.nextClose - p.interval; end > start {
			p.emit(start, end)
		}
	}
	return &p.series
}
