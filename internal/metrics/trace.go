package metrics

import (
	"bufio"
	"io"
	"strconv"

	"cmpcache/internal/config"
)

// Format selects the event-trace file format.
type Format int

const (
	// JSONL writes one self-describing JSON object per line — easy to
	// grep, stream and post-process.
	JSONL Format = iota
	// ChromeTrace writes the Chrome trace_event JSON array (instant
	// events per transaction plus counter tracks per sampling window),
	// loadable directly in Perfetto (ui.perfetto.dev) or
	// chrome://tracing. Simulated cycles are reported as microseconds,
	// the trace format's native unit.
	ChromeTrace
)

// FormatForPath picks the format by file extension: ".jsonl" selects
// JSONL, anything else the Chrome trace_event format.
func FormatForPath(path string) Format {
	if len(path) >= 6 && path[len(path)-6:] == ".jsonl" {
		return JSONL
	}
	return ChromeTrace
}

// TraceWriter emits the structured per-transaction event stream. All
// encoding uses strconv appends into a reused buffer — no fmt, no
// reflection — so tracing costs file I/O, not allocation churn.
// Event payload strings (transaction kinds, dispositions, states) must
// come from fixed sets without characters needing JSON escaping.
type TraceWriter struct {
	w      *bufio.Writer
	format Format
	buf    []byte
	events uint64
	err    error
}

// NewTraceWriter starts a trace on w. For ChromeTrace the JSON array is
// opened immediately; Close finishes it.
func NewTraceWriter(w io.Writer, format Format) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriterSize(w, 1<<16), format: format, buf: make([]byte, 0, 256)}
	if format == ChromeTrace {
		_, t.err = t.w.WriteString("[\n")
	}
	return t
}

// Events returns the number of trace records written, counter samples
// included.
func (t *TraceWriter) Events() uint64 { return t.events }

// Err returns the first write error encountered, if any.
func (t *TraceWriter) Err() error { return t.err }

// Close flushes buffered output and, for ChromeTrace, closes the JSON
// array. It does not close the underlying writer.
func (t *TraceWriter) Close() error {
	if t.format == ChromeTrace && t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Demand records a demand transaction's combined response.
func (t *TraceWriter) Demand(now config.Cycles, l2 int, key uint64, kind, source string, l3Valid, shared bool) {
	b := t.begin(now, "demand", l2)
	b = t.strField(b, "kind", kind)
	b = t.strField(b, "src", source)
	b = t.boolField(b, "l3_valid", l3Valid)
	b = t.boolField(b, "shared", shared)
	t.end(b, key)
}

// WriteBack records a write-back transaction's combined response and
// disposition (to-l3, squash-l3, squash-peer, snarf, retry, cancelled,
// snarf-fallback).
func (t *TraceWriter) WriteBack(now config.Cycles, l2 int, key uint64, kind, disposition string, snarfable bool) {
	b := t.begin(now, "wb", l2)
	b = t.strField(b, "kind", kind)
	b = t.strField(b, "out", disposition)
	b = t.boolField(b, "snarfable", snarfable)
	t.end(b, key)
}

// Victim records the write-back policy's decision for an evicted line.
func (t *TraceWriter) Victim(now config.Cycles, l2 int, key uint64, state, action string, inL3 bool) {
	b := t.begin(now, "victim", l2)
	b = t.strField(b, "state", state)
	b = t.strField(b, "action", action)
	b = t.boolField(b, "in_l3", inL3)
	t.end(b, key)
}

// Counters emits one closed interval sample. In ChromeTrace these are
// "C"-phase counter tracks, which Perfetto plots as time series — the
// retry-storm and switch-toggle view; in JSONL they are "sample" lines.
func (t *TraceWriter) Counters(s *Sample) {
	if t.err != nil {
		return
	}
	if t.format == JSONL {
		b := t.buf[:0]
		b = append(b, `{"t":`...)
		b = strconv.AppendInt(b, int64(s.End), 10)
		b = append(b, `,"ev":"sample","window":`...)
		b = strconv.AppendInt(b, int64(s.Window), 10)
		b = appendUintField(b, "retries", s.Retries)
		b = appendUintField(b, "wb_retried", s.WBRetried)
		b = appendUintField(b, "wb_issued", s.WBIssued)
		b = append(b, `,"switch_active":`...)
		b = strconv.AppendBool(b, s.SwitchActive)
		b = appendUintField(b, "l3_queue_peak", uint64(s.L3QueuePeak))
		b = appendUintField(b, "mshr_occupancy", uint64(s.MSHROccupancy))
		b = append(b, "}\n"...)
		t.buf = b
		t.events++
		t.write(b)
		return
	}
	t.counter(s.End, "retries/window", float64(s.Retries))
	t.counter(s.End, "wb retries/window", float64(s.WBRetried))
	t.counter(s.End, "wb issues/window", float64(s.WBIssued))
	t.counter(s.End, "retry switch", b2f(s.SwitchActive))
	t.counter(s.End, "addr ring util", s.AddrRingUtil)
	t.counter(s.End, "data ring util", s.DataRingUtil)
	t.counter(s.End, "l3 queue peak", float64(s.L3QueuePeak))
	t.counter(s.End, "mshr occupancy", float64(s.MSHROccupancy))
	t.counter(s.End, "wb queue occupancy", float64(s.WBQueueOccupancy))
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// begin opens an event record through the common prefix; the returned
// buffer is continued by the field appenders and finished by end.
func (t *TraceWriter) begin(now config.Cycles, ev string, l2 int) []byte {
	b := t.buf[:0]
	if t.format == JSONL {
		b = append(b, `{"t":`...)
		b = strconv.AppendInt(b, int64(now), 10)
		b = append(b, `,"ev":"`...)
		b = append(b, ev...)
		b = append(b, `","l2":`...)
		b = strconv.AppendInt(b, int64(l2), 10)
	} else {
		if t.events > 0 {
			b = append(b, ",\n"...)
		}
		b = append(b, `{"name":"`...)
		b = append(b, ev...)
		b = append(b, `","ph":"i","s":"t","pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(l2), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, int64(now), 10)
		b = append(b, `,"args":{`...)
	}
	return b
}

// end closes an event record (appending the line key) and writes it.
func (t *TraceWriter) end(b []byte, key uint64) {
	if t.format == JSONL {
		b = append(b, `,"key":`...)
		b = strconv.AppendUint(b, key, 10)
		b = append(b, "}\n"...)
	} else {
		b = append(b, `,"key":`...)
		b = strconv.AppendUint(b, key, 10)
		b = append(b, "}}"...)
	}
	t.buf = b
	t.events++
	t.write(b)
}

// strField appends ,"name":"value". For ChromeTrace the first args
// field has no leading comma.
func (t *TraceWriter) strField(b []byte, name, value string) []byte {
	b = t.sep(b)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, `":"`...)
	b = append(b, value...)
	b = append(b, '"')
	return b
}

func (t *TraceWriter) boolField(b []byte, name string, value bool) []byte {
	b = t.sep(b)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, `":`...)
	return strconv.AppendBool(b, value)
}

// sep writes the field separator; inside a ChromeTrace args object the
// first field follows the opening brace directly.
func (t *TraceWriter) sep(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] == '{' {
		return b
	}
	return append(b, ',')
}

func appendUintField(b []byte, name string, v uint64) []byte {
	b = append(b, `,"`...)
	b = append(b, name...)
	b = append(b, `":`...)
	return strconv.AppendUint(b, v, 10)
}

// counter emits one ChromeTrace counter event.
func (t *TraceWriter) counter(ts config.Cycles, name string, v float64) {
	b := t.buf[:0]
	if t.events > 0 {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","ph":"C","pid":0,"ts":`...)
	b = strconv.AppendInt(b, int64(ts), 10)
	b = append(b, `,"args":{"value":`...)
	b = strconv.AppendFloat(b, v, 'g', 6, 64)
	b = append(b, "}}"...)
	t.buf = b
	t.events++
	t.write(b)
}

func (t *TraceWriter) write(b []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}
