package l3

import (
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
)

func smallCfg() config.Config {
	cfg := config.Default()
	// Shrink to 4 slices x 8KB for fast eviction testing.
	cfg.L3SliceMB = 1
	return cfg
}

func newL3(t *testing.T) (*Cache, *config.Config) {
	t.Helper()
	cfg := smallCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(&cfg), &cfg
}

func acceptWB(t *testing.T, c *Cache, key uint64, kind coherence.TxnKind) {
	t.Helper()
	if resp := c.SnoopWB(key, kind); resp != coherence.RespWBAccept {
		t.Fatalf("SnoopWB(%d, %v) = %v, want accept", key, kind, resp)
	}
	c.Insert(key, kind)
	c.ReleaseToken()
}

func TestDemandMissThenVictimHit(t *testing.T) {
	c, _ := newL3(t)
	if resp := c.SnoopDemand(42, coherence.Read, true); resp != coherence.RespNull {
		t.Fatalf("empty L3 demand = %v, want null", resp)
	}
	acceptWB(t, c, 42, coherence.CleanWB)
	if resp := c.SnoopDemand(42, coherence.Read, true); resp != coherence.RespL3Hit {
		t.Fatalf("demand after WB = %v, want L3 hit", resp)
	}
	if c.LoadHitRate() != 0.5 {
		t.Fatalf("LoadHitRate = %v, want 0.5", c.LoadHitRate())
	}
}

func TestRWITMInvalidates(t *testing.T) {
	c, _ := newL3(t)
	acceptWB(t, c, 7, coherence.CleanWB)
	if resp := c.SnoopDemand(7, coherence.RWITM, false); resp != coherence.RespL3Hit {
		t.Fatalf("RWITM on valid line = %v, want hit (supplies data)", resp)
	}
	if c.Contains(7) {
		t.Fatal("line still valid after RWITM")
	}
	if c.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1", c.Invalidations())
	}
}

func TestUpgradeInvalidatesWithoutData(t *testing.T) {
	c, _ := newL3(t)
	acceptWB(t, c, 9, coherence.CleanWB)
	if resp := c.SnoopDemand(9, coherence.Upgrade, false); resp != coherence.RespNull {
		t.Fatalf("Upgrade = %v, want null (no data supplied)", resp)
	}
	if c.Contains(9) {
		t.Fatal("line still valid after Upgrade claim")
	}
}

func TestBaselineCleanWBSquash(t *testing.T) {
	c, _ := newL3(t)
	acceptWB(t, c, 5, coherence.CleanWB)
	resp := c.SnoopWB(5, coherence.CleanWB)
	if resp != coherence.RespWBRedundant {
		t.Fatalf("redundant clean WB = %v, want redundant", resp)
	}
	// A squash consumes no queue token.
	if c.QueueInUse() != 0 {
		t.Fatalf("queue in use = %d after squash, want 0", c.QueueInUse())
	}
	if c.CleanWBSnooped() != 2 || c.CleanWBRedundant() != 1 {
		t.Fatalf("Table 1 stats = %d/%d, want 2/1", c.CleanWBRedundant(), c.CleanWBSnooped())
	}
}

func TestDirtyWBOnPresentLineIsUpdate(t *testing.T) {
	c, _ := newL3(t)
	acceptWB(t, c, 5, coherence.CleanWB)
	resp := c.SnoopWB(5, coherence.DirtyWB)
	if resp != coherence.RespWBAccept {
		t.Fatalf("dirty WB on valid clean line = %v, want accept (update)", resp)
	}
	c.Insert(5, coherence.DirtyWB)
	c.ReleaseToken()
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1 (update, not duplicate)", c.Occupancy())
	}
}

func TestQueueFullRetries(t *testing.T) {
	cfg := smallCfg()
	cfg.L3QueueEntries = 2
	c := New(&cfg)
	if c.SnoopWB(0, coherence.DirtyWB) != coherence.RespWBAccept {
		t.Fatal("first WB rejected")
	}
	if c.SnoopWB(1, coherence.DirtyWB) != coherence.RespWBAccept {
		t.Fatal("second WB rejected")
	}
	if resp := c.SnoopWB(2, coherence.DirtyWB); resp != coherence.RespRetry {
		t.Fatalf("WB with full queue = %v, want retry", resp)
	}
	if c.RetriesIssued() != 1 {
		t.Fatalf("RetriesIssued = %d, want 1", c.RetriesIssued())
	}
	c.ReleaseToken()
	if resp := c.SnoopWB(2, coherence.DirtyWB); resp != coherence.RespWBAccept {
		t.Fatalf("WB after release = %v, want accept", resp)
	}
}

func TestDirtyEvictionCastsOutToMemory(t *testing.T) {
	cfg := smallCfg()
	c := New(&cfg)
	// Fill one set of slice 0 with dirty lines: keys k where slice(k)=0
	// and same set. Slice-local key = key >> 2; set = sliceKey & (sets-1).
	sets := cfg.L3Lines() / cfg.L3Slices / cfg.L3Assoc
	var keys []uint64
	for i := 0; i <= cfg.L3Assoc; i++ { // one more than assoc
		sliceKey := uint64(i * sets) // same set, different tags
		keys = append(keys, sliceKey<<2)
	}
	var castouts int
	for _, k := range keys {
		if c.SnoopWB(k, coherence.DirtyWB) != coherence.RespWBAccept {
			t.Fatal("WB rejected unexpectedly")
		}
		if co, ok := c.Insert(k, coherence.DirtyWB); ok {
			castouts++
			// The castout key must be one of the inserted keys.
			if co.Key != keys[0] {
				t.Fatalf("castout key = %#x, want LRU key %#x", co.Key, keys[0])
			}
		}
		c.ReleaseToken()
	}
	if castouts != 1 {
		t.Fatalf("castouts = %d, want 1", castouts)
	}
	if c.Castouts() != 1 {
		t.Fatalf("Castouts() = %d, want 1", c.Castouts())
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	cfg := smallCfg()
	c := New(&cfg)
	sets := cfg.L3Lines() / cfg.L3Slices / cfg.L3Assoc
	for i := 0; i <= cfg.L3Assoc; i++ {
		k := uint64(i*sets) << 2
		if c.SnoopWB(k, coherence.CleanWB) != coherence.RespWBAccept {
			t.Fatal("WB rejected")
		}
		if _, ok := c.Insert(k, coherence.CleanWB); ok {
			t.Fatal("clean eviction produced a castout")
		}
		c.ReleaseToken()
	}
}

func TestSliceDistribution(t *testing.T) {
	c, cfg := newL3(t)
	// Consecutive line keys must land in different slices.
	for k := uint64(0); k < uint64(cfg.L3Slices); k++ {
		acceptWB(t, c, k, coherence.CleanWB)
	}
	if c.Occupancy() != cfg.L3Slices {
		t.Fatalf("occupancy = %d, want %d", c.Occupancy(), cfg.L3Slices)
	}
	// All in set 0 of their slice: no evictions can have happened.
	if c.Castouts() != 0 {
		t.Fatal("unexpected castouts")
	}
}

func TestReserveSliceSerializesPerSlice(t *testing.T) {
	c, cfg := newL3(t)
	a := c.ReserveSlice(0, 100)
	b := c.ReserveSlice(0, 100) // same slice: serialized
	d := c.ReserveSlice(1, 100) // different slice: parallel
	if a != 100 || b != 100+cfg.L3SliceOccupancy || d != 100 {
		t.Fatalf("starts = %d/%d/%d", a, b, d)
	}
}

func TestContainsIsNonPerturbing(t *testing.T) {
	c, _ := newL3(t)
	acceptWB(t, c, 3, coherence.CleanWB)
	before := c.DemandLookups()
	if !c.Contains(3) || c.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if c.DemandLookups() != before {
		t.Fatal("Contains perturbed lookup stats")
	}
}
