// Package l3 models the off-chip L3 victim cache of Figure 1: a sliced,
// 16-way set-associative array with an on-chip directory, fed by both
// clean and dirty write backs from the L2 caches and servicing demand
// misses that no on-chip L2 can intervene for.
//
// Two protocol behaviors from the paper live here:
//
//   - The baseline clean-write-back filter: "This baseline configuration
//     does filter lines written back from the L2 if the line appears in
//     the L3 cache by having the L3 cache squash the initial write back
//     request after it is snooped."
//   - Retry generation: "Lines may be rejected by the L3 if there are
//     not enough hardware resources to take the line immediately (e.g.,
//     the incoming data queue is full)", producing the L3-issued retries
//     that both mechanisms reduce.
package l3

import (
	"math/bits"

	"cmpcache/internal/cache"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/sim"
)

// line states stored in the tag array: the L3 only distinguishes clean
// from dirty.
const (
	stClean = int8(coherence.Shared)
	stDirty = int8(coherence.Modified)
)

// Castout describes a dirty L3 victim that must be written to memory.
type Castout struct {
	Key uint64
}

// Cache is the L3 victim cache controller.
type Cache struct {
	cfg        *config.Config
	slices     []*cache.Cache
	servers    []sim.Server // one per slice: off-chip array bandwidth
	queue      *sim.TokenQueue
	sliceMask  uint64
	sliceShift uint

	demandLookups    uint64
	demandHits       uint64
	loadLookups      uint64
	loadHits         uint64
	wbSnooped        uint64
	wbSquashed       uint64
	wbAccepted       uint64
	retriesIssued    uint64
	inserts          uint64
	castouts         uint64
	evictions        uint64
	invalidations    uint64
	cleanWBRedundant uint64 // clean WBs snooped whose line was already valid (Table 1 numerator)
	cleanWBSnooped   uint64 // clean WBs snooped (Table 1 denominator)
}

// New builds the L3 from cfg.
func New(cfg *config.Config) *Cache {
	linesPerSlice := cfg.L3Lines() / cfg.L3Slices
	sets := linesPerSlice / cfg.L3Assoc
	slices := make([]*cache.Cache, cfg.L3Slices)
	for i := range slices {
		slices[i] = cache.New(sets, cfg.L3Assoc)
	}
	return &Cache{
		cfg:        cfg,
		slices:     slices,
		servers:    make([]sim.Server, cfg.L3Slices),
		queue:      sim.NewTokenQueue(cfg.L3QueueEntries),
		sliceMask:  uint64(cfg.L3Slices - 1),
		sliceShift: uint(bits.TrailingZeros(uint(cfg.L3Slices))),
	}
}

// slice returns the slice array and the slice-local key for a line key.
func (c *Cache) slice(key uint64) (*cache.Cache, int, uint64) {
	idx := int(key & c.sliceMask)
	return c.slices[idx], idx, key >> c.sliceShift
}

// Contains reports (without perturbing stats or recency) whether key is
// valid in the L3 — the oracle peek the paper uses to score WBHT
// decisions.
func (c *Cache) Contains(key uint64) bool {
	s, _, k := c.slice(key)
	return s.Contains(k)
}

// PeekLine reports (without perturbing stats or recency) whether key is
// valid in the L3 and whether that copy is dirty. Shadow checkers use
// it for dirty-line conservation.
func (c *Cache) PeekLine(key uint64) (present, dirty bool) {
	s, _, k := c.slice(key)
	if l, ok := s.Peek(k); ok {
		return true, l.State == stDirty
	}
	return false, false
}

// SnoopDemand is the L3 directory's response to a demand transaction.
// Read hits keep the line (and refresh its recency); RWITM hits supply
// data but invalidate the L3 copy, which would otherwise go stale the
// moment the requester stores. isLoad tags the lookup for the Table 4
// "L3 load hit rate" statistic.
func (c *Cache) SnoopDemand(key uint64, kind coherence.TxnKind, isLoad bool) coherence.Response {
	c.demandLookups++
	if isLoad {
		c.loadLookups++
	}
	s, _, k := c.slice(key)
	line := s.LookupTouch(k)
	if line == nil {
		return coherence.RespNull
	}
	c.demandHits++
	if isLoad {
		c.loadHits++
	}
	if kind == coherence.RWITM || kind == coherence.Upgrade {
		s.Invalidate(k)
		c.invalidations++
		if kind == coherence.Upgrade {
			// Ownership claims carry no data; the directory hit only
			// triggered the invalidation.
			return coherence.RespNull
		}
	}
	return coherence.RespL3Hit
}

// SnoopWB is the L3's response to a snooped write back. Clean write
// backs of lines already valid are squashed (baseline filter); anything
// else needs an incoming-queue entry, whose absence produces the retry
// response central to Section 2's contention story. A successful accept
// holds one queue token that the caller must return via ReleaseToken
// once the data transfer and array write complete.
func (c *Cache) SnoopWB(key uint64, kind coherence.TxnKind) coherence.Response {
	c.wbSnooped++
	s, _, k := c.slice(key)
	present := s.Contains(k)
	if kind == coherence.CleanWB {
		c.cleanWBSnooped++
		if present {
			c.cleanWBRedundant++
			c.wbSquashed++
			s.Touch(k)
			return coherence.RespWBRedundant
		}
	}
	if kind == coherence.DirtyWB && present {
		// The copy is stale relative to the incoming dirty data: accept
		// as an update if queue space allows (no new allocation needed,
		// but the data transfer still uses a queue entry).
		if !c.queue.TryAcquire() {
			c.retriesIssued++
			return coherence.RespRetry
		}
		c.wbAccepted++
		return coherence.RespWBAccept
	}
	if !c.queue.TryAcquire() {
		c.retriesIssued++
		return coherence.RespRetry
	}
	c.wbAccepted++
	return coherence.RespWBAccept
}

// ReleaseToken returns one incoming-queue entry, either because the
// accepted write back completed its array write or because the combined
// response cancelled it (squash by a peer, snarf win by a peer L2).
func (c *Cache) ReleaseToken() { c.queue.Release() }

// Insert installs a written-back line (dirty per kind), returning a
// dirty victim that must be cast out to memory, if any. Insertion is at
// MRU. A line already present is updated in place (dirty data overwrite).
func (c *Cache) Insert(key uint64, kind coherence.TxnKind) (Castout, bool) {
	c.inserts++
	s, idx, k := c.slice(key)
	state := stClean
	if kind == coherence.DirtyWB {
		state = stDirty
	}
	if l := s.Lookup(k); l != nil {
		if state == stDirty {
			l.State = stDirty
		}
		s.Touch(k)
		return Castout{}, false
	}
	evicted, did := s.Insert(k, state, 0, true)
	if did {
		c.evictions++
		if evicted.State == stDirty {
			c.castouts++
			return Castout{Key: evicted.Key<<c.sliceShift | uint64(idx)}, true
		}
	}
	return Castout{}, false
}

// Evictions returns total capacity evictions (clean and dirty).
func (c *Cache) Evictions() uint64 { return c.evictions }

// ReserveSlice books off-chip array bandwidth on key's slice beginning
// at or after now, returning the access start cycle.
func (c *Cache) ReserveSlice(key uint64, now config.Cycles) config.Cycles {
	_, idx, _ := c.slice(key)
	return c.servers[idx].Reserve(now, c.cfg.L3SliceOccupancy)
}

// QueueInUse exposes current incoming-queue occupancy (tests/diagnostics).
func (c *Cache) QueueInUse() int { return c.queue.InUse() }

// TakeQueueWindowPeak returns the incoming queue's occupancy high-water
// mark since the previous call and rearms it (the metrics probe calls
// this once per sampling window).
func (c *Cache) TakeQueueWindowPeak() int { return c.queue.TakeWindowPeak() }

// Stats accessors.
func (c *Cache) DemandLookups() uint64  { return c.demandLookups }
func (c *Cache) DemandHits() uint64     { return c.demandHits }
func (c *Cache) LoadLookups() uint64    { return c.loadLookups }
func (c *Cache) LoadHits() uint64       { return c.loadHits }
func (c *Cache) WBSnooped() uint64      { return c.wbSnooped }
func (c *Cache) WBSquashed() uint64     { return c.wbSquashed }
func (c *Cache) WBAccepted() uint64     { return c.wbAccepted }
func (c *Cache) RetriesIssued() uint64  { return c.retriesIssued }
func (c *Cache) Inserts() uint64        { return c.inserts }
func (c *Cache) Castouts() uint64       { return c.castouts }
func (c *Cache) Invalidations() uint64  { return c.invalidations }
func (c *Cache) CleanWBSnooped() uint64 { return c.cleanWBSnooped }

// CleanWBRedundant returns how many snooped clean write backs found
// their line already valid in the L3 — the numerator of the paper's
// Table 1.
func (c *Cache) CleanWBRedundant() uint64 { return c.cleanWBRedundant }

// LoadHitRate returns the L3 load hit rate (Table 4).
func (c *Cache) LoadHitRate() float64 {
	if c.loadLookups == 0 {
		return 0
	}
	return float64(c.loadHits) / float64(c.loadLookups)
}

// Occupancy returns the number of valid lines across all slices.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.slices {
		n += s.CountValid()
	}
	return n
}

// QueueStats exposes the incoming queue's token accounting for
// diagnostics: successful acquisitions, rejections (retries at the
// snoop filter), and the occupancy high-water mark.
func (c *Cache) QueueStats() (acquired, rejected uint64, peak int) {
	return c.queue.Acquired(), c.queue.Rejected(), c.queue.Peak()
}

// SliceWaited returns cumulative queueing delay across the off-chip
// array's slice servers.
func (c *Cache) SliceWaited() config.Cycles {
	var total config.Cycles
	for i := range c.servers {
		total += c.servers[i].WaitedCycles()
	}
	return total
}
