// Package core implements the paper's primary contribution: the
// adaptive write-back management structures added to each L2 cache.
//
//   - WBHT, the Write Back History Table (Section 2): a cache-organized
//     tag table recording lines recently observed valid in the L3, used
//     to abort unnecessary clean write backs.
//   - RetrySwitch (Section 2.2): the bus-retry-rate on/off switch that
//     keeps the WBHT from hurting performance when memory pressure is
//     low.
//   - SnarfTable (Section 3): a tag+use-bit table tracking lines that
//     were written back and later missed on, identifying high-reuse
//     lines whose write backs should be offered to peer L2 caches.
//
// All three are pure state machines over line addresses; the bus
// protocol that feeds them lives in internal/system.
package core

import (
	"math/bits"

	"cmpcache/internal/cache"
	"cmpcache/internal/config"
)

// WBHT is the Write Back History Table associated with one L2 cache. It
// is "organized and accessed just like a cache tag array" (Section 2):
// set-associative with LRU replacement, storing only tags. An entry for
// line X means the combined snoop response recently revealed X valid in
// the L3, so writing X back again would be unnecessary.
//
// The table is a performance hint, never a correctness structure: its
// contents may diverge from the true L3 contents (L3 capacity evictions,
// WBHT entry replacement), which only costs latency on a mispredict.
type WBHT struct {
	table *cache.Cache

	// granShift implements the Section 7 coarse-entry extension: tags
	// are line keys shifted right by log2(LinesPerEntry), so one entry
	// covers a naturally aligned group of lines. Coverage grows; so does
	// the chance that a hit reflects a neighbor rather than the line
	// itself (the paper's "risk of increased prediction errors").
	granShift uint

	allocations uint64
	consults    uint64
	hits        uint64
	correct     uint64
	wrong       uint64
}

// NewWBHT builds a table from cfg (entries/assoc validated by
// config.Validate; entries/assoc sets must be a power of two,
// LinesPerEntry a power of two).
func NewWBHT(cfg config.WBHTConfig) *WBHT {
	gran := cfg.LinesPerEntry
	if gran <= 0 {
		gran = 1
	}
	return &WBHT{
		table:     cache.New(cfg.Entries/cfg.Assoc, cfg.Assoc),
		granShift: uint(bits.TrailingZeros(uint(gran))),
	}
}

// tag maps a line key to its (possibly coarse) table tag.
func (w *WBHT) tag(key uint64) uint64 { return key >> w.granShift }

// Allocate records that line key was observed valid in the L3 (step 3 of
// the Section 2 protocol: executed when the combined bus response for a
// clean write back indicates an L3 hit). Allocation inserts at MRU; an
// existing entry is refreshed.
func (w *WBHT) Allocate(key uint64) {
	w.allocations++
	w.table.Insert(w.tag(key), 0, 0, true)
}

// ShouldAbort consults the table for a clean write back of line key
// (step 4): a hit means the write back is deemed unnecessary. The entry
// is touched so recently-useful hints survive LRU replacement.
func (w *WBHT) ShouldAbort(key uint64) bool {
	w.consults++
	if w.table.LookupTouch(w.tag(key)) != nil {
		w.hits++
		return true
	}
	return false
}

// Contains reports whether key currently has an entry, without touching
// recency or statistics (test/inspection hook).
func (w *WBHT) Contains(key uint64) bool { return w.table.Contains(w.tag(key)) }

// Invalidate drops the entry for key if present. The baseline mechanism
// never calls this — divergence is tolerated by design — but it is used
// by the "sync on L3 eviction" ablation.
func (w *WBHT) Invalidate(key uint64) { w.table.Invalidate(w.tag(key)) }

// RecordDecision scores one consult against ground truth (the simulator
// peeks into the L3 at decision time, exactly as the paper measures its
// "WBHT Correct" column in Table 4). aborted is the table's decision;
// inL3 is the oracle.
func (w *WBHT) RecordDecision(aborted, inL3 bool) {
	if aborted == inL3 {
		w.correct++
	} else {
		w.wrong++
	}
}

// Entries returns the table capacity.
func (w *WBHT) Entries() int { return w.table.Capacity() }

// Occupancy returns the number of live entries.
func (w *WBHT) Occupancy() int { return w.table.CountValid() }

// Stats accessors.
func (w *WBHT) Allocations() uint64 { return w.allocations }
func (w *WBHT) Consults() uint64    { return w.consults }
func (w *WBHT) Hits() uint64        { return w.hits }
func (w *WBHT) Correct() uint64     { return w.correct }
func (w *WBHT) Wrong() uint64       { return w.wrong }

// CorrectRate returns the fraction of scored decisions that matched the
// oracle, in [0,1]; 0 when nothing was scored.
func (w *WBHT) CorrectRate() float64 {
	total := w.correct + w.wrong
	if total == 0 {
		return 0
	}
	return float64(w.correct) / float64(total)
}
