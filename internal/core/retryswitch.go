package core

import "cmpcache/internal/config"

// RetrySwitch implements the Section 2.2 adaptive on/off control for the
// WBHT: "We implement a simple timer and maintain a count of retry
// transactions ... When the number of retries in a specified period of
// time goes below a certain threshold, we do not use the WBHT to make
// decisions ... although we do keep the table up-to-date."
//
// The switch samples retries over fixed windows: at each window
// boundary, the table becomes active for the next window iff the
// completed window saw at least threshold retries. The paper's operating
// point is 2,000 retries per 1M cycles; config.DefaultWBHT expresses the
// same rate over a shorter window so brief simulations adapt
// proportionally.
type RetrySwitch struct {
	window    config.Cycles
	threshold uint64

	windowStart config.Cycles
	count       uint64
	active      bool

	retriesSeen   uint64
	activeWindows uint64
	totalWindows  uint64
}

// NewRetrySwitch builds a switch from cfg. A disabled switch
// (cfg.SwitchEnabled == false) reports always-active, i.e. the WBHT is
// consulted unconditionally. window and threshold must be positive when
// enabled.
func NewRetrySwitch(cfg config.WBHTConfig) *RetrySwitch {
	if !cfg.SwitchEnabled {
		return &RetrySwitch{active: true, window: 0}
	}
	if cfg.RetryWindow <= 0 {
		panic("core: RetrySwitch window must be positive")
	}
	return &RetrySwitch{window: cfg.RetryWindow, threshold: cfg.RetryThreshold}
}

// RecordRetry notes one retry combined-response observed at cycle now.
func (s *RetrySwitch) RecordRetry(now config.Cycles) {
	s.retriesSeen++
	if s.window == 0 {
		return
	}
	s.advance(now)
	s.count++
}

// Active reports whether the WBHT should be consulted at cycle now.
func (s *RetrySwitch) Active(now config.Cycles) bool {
	if s.window == 0 {
		return s.active
	}
	s.advance(now)
	return s.active
}

// advance rolls the sampling window forward to cover now. If exactly one
// window elapsed, the activity decision reflects its count; if more than
// one elapsed, the most recent complete window had zero retries, so the
// switch deactivates.
func (s *RetrySwitch) advance(now config.Cycles) {
	if now < s.windowStart+s.window {
		return
	}
	elapsed := (now - s.windowStart) / s.window
	s.totalWindows += uint64(elapsed)
	if elapsed == 1 {
		s.active = s.count >= s.threshold
	} else {
		s.active = false
	}
	if s.active {
		s.activeWindows++
	}
	s.count = 0
	s.windowStart += elapsed * s.window
}

// AdvanceTo rolls the sampling window forward to cover now without
// recording anything. The sharded coordinator calls it once per round so
// that shard-context consumers can read ActiveNow — the pure form —
// instead of the mutating Active, keeping the window sequence a function
// of round boundaries (deterministic) rather than of which worker
// happened to ask first.
func (s *RetrySwitch) AdvanceTo(now config.Cycles) {
	if s.window == 0 {
		return
	}
	s.advance(now)
}

// ActiveNow reports the switch's state as of its last advance without
// rolling the sampling window forward. Observation-only callers (the
// metrics probe) must use this instead of Active so that sampling never
// perturbs the window sequence the simulation itself observes.
func (s *RetrySwitch) ActiveNow() bool { return s.active }

// RetriesSeen returns the total retries recorded.
func (s *RetrySwitch) RetriesSeen() uint64 { return s.retriesSeen }

// ActiveWindows returns how many completed windows ended with the switch
// turning (or staying) on.
func (s *RetrySwitch) ActiveWindows() uint64 { return s.activeWindows }

// TotalWindows returns how many windows have completed.
func (s *RetrySwitch) TotalWindows() uint64 { return s.totalWindows }
