package core

import (
	"testing"
	"testing/quick"

	"cmpcache/internal/config"
)

func wbhtCfg(entries, assoc int) config.WBHTConfig {
	c := config.DefaultWBHT()
	c.Entries = entries
	c.Assoc = assoc
	return c
}

func TestWBHTAllocateThenAbort(t *testing.T) {
	w := NewWBHT(wbhtCfg(64, 4))
	if w.ShouldAbort(100) {
		t.Fatal("empty table advised abort")
	}
	w.Allocate(100)
	if !w.ShouldAbort(100) {
		t.Fatal("allocated entry not found")
	}
	if w.Allocations() != 1 || w.Consults() != 2 || w.Hits() != 1 {
		t.Fatalf("stats = %d/%d/%d", w.Allocations(), w.Consults(), w.Hits())
	}
}

func TestWBHTLRUReplacement(t *testing.T) {
	// 1 set x 2 ways: the third allocation evicts the least recently
	// used entry ("lines that have not been accessed for a long time
	// will lose their place in the table using an LRU policy").
	w := NewWBHT(wbhtCfg(2, 2))
	w.Allocate(0)
	w.Allocate(2) // same set as 0 (set index = key & 0)
	w.ShouldAbort(0)
	w.Allocate(4)
	if w.Contains(2) {
		t.Fatal("LRU entry (2) survived")
	}
	if !w.Contains(0) || !w.Contains(4) {
		t.Fatal("recently used entries lost")
	}
}

func TestWBHTInvalidate(t *testing.T) {
	w := NewWBHT(wbhtCfg(16, 2))
	w.Allocate(5)
	w.Invalidate(5)
	if w.Contains(5) {
		t.Fatal("entry survived Invalidate")
	}
	if w.Occupancy() != 0 {
		t.Fatalf("occupancy = %d, want 0", w.Occupancy())
	}
}

func TestWBHTDecisionScoring(t *testing.T) {
	w := NewWBHT(wbhtCfg(16, 2))
	w.RecordDecision(true, true)   // aborted, was in L3: correct
	w.RecordDecision(false, false) // sent, not in L3: correct
	w.RecordDecision(true, false)  // aborted, NOT in L3: wrong (full miss later)
	w.RecordDecision(false, true)  // sent unnecessarily: wrong
	if w.Correct() != 2 || w.Wrong() != 2 {
		t.Fatalf("correct/wrong = %d/%d, want 2/2", w.Correct(), w.Wrong())
	}
	if w.CorrectRate() != 0.5 {
		t.Fatalf("CorrectRate = %v, want 0.5", w.CorrectRate())
	}
	fresh := NewWBHT(wbhtCfg(16, 2))
	if fresh.CorrectRate() != 0 {
		t.Fatal("CorrectRate on unscored table should be 0")
	}
}

func TestWBHTEntriesAndOccupancy(t *testing.T) {
	w := NewWBHT(wbhtCfg(64, 4))
	if w.Entries() != 64 {
		t.Fatalf("Entries = %d, want 64", w.Entries())
	}
	for k := uint64(0); k < 10; k++ {
		w.Allocate(k)
	}
	if w.Occupancy() != 10 {
		t.Fatalf("Occupancy = %d, want 10", w.Occupancy())
	}
}

// Property: the WBHT never exceeds its capacity and double allocation of
// the same key keeps occupancy stable.
func TestWBHTOccupancyProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		w := NewWBHT(wbhtCfg(32, 4))
		for _, k := range keys {
			w.Allocate(uint64(k))
			if w.Occupancy() > w.Entries() {
				return false
			}
		}
		before := w.Occupancy()
		for _, k := range keys {
			w.Allocate(uint64(k)) // all already present or re-insertable
		}
		return w.Occupancy() >= before/2 // no collapse; loose sanity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRetrySwitchDisabledAlwaysActive(t *testing.T) {
	cfg := config.DefaultWBHT()
	cfg.SwitchEnabled = false
	s := NewRetrySwitch(cfg)
	if !s.Active(0) || !s.Active(1_000_000_000) {
		t.Fatal("disabled switch must report always-active")
	}
}

func TestRetrySwitchActivatesUnderPressure(t *testing.T) {
	cfg := config.DefaultWBHT()
	cfg.RetryWindow = 1000
	cfg.RetryThreshold = 10
	s := NewRetrySwitch(cfg)
	if s.Active(0) {
		t.Fatal("switch active before any window completed")
	}
	for i := 0; i < 10; i++ {
		s.RecordRetry(config.Cycles(i * 10))
	}
	if s.Active(999) {
		t.Fatal("switch flipped mid-window")
	}
	if !s.Active(1000) {
		t.Fatal("switch inactive after a window with >= threshold retries")
	}
	if s.RetriesSeen() != 10 {
		t.Fatalf("RetriesSeen = %d, want 10", s.RetriesSeen())
	}
}

func TestRetrySwitchDeactivatesWhenQuiet(t *testing.T) {
	cfg := config.DefaultWBHT()
	cfg.RetryWindow = 1000
	cfg.RetryThreshold = 5
	s := NewRetrySwitch(cfg)
	for i := 0; i < 5; i++ {
		s.RecordRetry(config.Cycles(i))
	}
	if !s.Active(1000) {
		t.Fatal("not active after busy window")
	}
	// Window [1000,2000) has only 2 retries: below threshold.
	s.RecordRetry(1500)
	s.RecordRetry(1600)
	if s.Active(2000) {
		t.Fatal("still active after sub-threshold window")
	}
}

func TestRetrySwitchLongQuietGap(t *testing.T) {
	cfg := config.DefaultWBHT()
	cfg.RetryWindow = 100
	cfg.RetryThreshold = 1
	s := NewRetrySwitch(cfg)
	s.RecordRetry(10)
	if !s.Active(100) {
		t.Fatal("not active after busy window")
	}
	// Jumping many windows with zero retries must deactivate, even
	// though the last counted window was busy.
	if s.Active(1000) {
		t.Fatal("active after long quiet gap")
	}
	if s.TotalWindows() < 2 {
		t.Fatalf("TotalWindows = %d, want >= 2", s.TotalWindows())
	}
}

func TestRetrySwitchPaperRate(t *testing.T) {
	// At the paper's operating point (2,000 per 1M cycles, here scaled
	// to 200 per 100K), a retry rate just above threshold activates and
	// just below deactivates.
	s := NewRetrySwitch(config.DefaultWBHT())
	for i := 0; i < 200; i++ {
		s.RecordRetry(config.Cycles(i * 500)) // 200 retries in 100K cycles
	}
	if !s.Active(100_000) {
		t.Fatal("rate at threshold should activate")
	}
	s2 := NewRetrySwitch(config.DefaultWBHT())
	for i := 0; i < 199; i++ {
		s2.RecordRetry(config.Cycles(i * 500))
	}
	if s2.Active(100_000) {
		t.Fatal("rate below threshold should not activate")
	}
}

func TestRetrySwitchInvalidWindowPanics(t *testing.T) {
	cfg := config.DefaultWBHT()
	cfg.RetryWindow = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewRetrySwitch(cfg)
}

// Property: Active never consults the future — feeding retries at
// non-decreasing times and sampling Active at those same times never
// panics and activity only reflects completed windows.
func TestRetrySwitchMonotonicProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		cfg := config.DefaultWBHT()
		cfg.RetryWindow = 50
		cfg.RetryThreshold = 3
		s := NewRetrySwitch(cfg)
		now := config.Cycles(0)
		for _, g := range gaps {
			now += config.Cycles(g % 100)
			s.RecordRetry(now)
			s.Active(now)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func snarfCfg(entries, assoc int) config.SnarfConfig {
	c := config.DefaultSnarf()
	c.Entries = entries
	c.Assoc = assoc
	return c
}

func TestSnarfTableLifecycle(t *testing.T) {
	s := NewSnarfTable(snarfCfg(64, 4))
	// First write back: entry allocated, not yet snarfable.
	s.RecordWriteBack(42)
	if s.Snarfable(42) {
		t.Fatal("line snarfable before any reuse observed")
	}
	// Miss on the line: use bit set.
	s.RecordMiss(42)
	if !s.Reused(42) {
		t.Fatal("use bit not set by RecordMiss")
	}
	// Second write back: consult says snarfable.
	if !s.Snarfable(42) {
		t.Fatal("reused line not snarfable")
	}
	if s.SnarfableHits() != 1 || s.ReuseMarks() != 1 || s.RecordedWriteBacks() != 1 {
		t.Fatalf("stats = %d/%d/%d", s.SnarfableHits(), s.ReuseMarks(), s.RecordedWriteBacks())
	}
}

func TestSnarfTableMissWithoutEntry(t *testing.T) {
	s := NewSnarfTable(snarfCfg(64, 4))
	s.RecordMiss(7) // never written back: no entry, no effect
	if s.Contains(7) {
		t.Fatal("RecordMiss created an entry")
	}
	if s.Snarfable(7) {
		t.Fatal("unknown line snarfable")
	}
}

func TestSnarfTableUseBitStickyAcrossWriteBacks(t *testing.T) {
	s := NewSnarfTable(snarfCfg(64, 4))
	s.RecordWriteBack(9)
	s.RecordMiss(9)
	s.RecordWriteBack(9) // re-record must not clear the use bit
	if !s.Reused(9) {
		t.Fatal("use bit cleared by repeated RecordWriteBack")
	}
	if !s.Snarfable(9) {
		t.Fatal("line lost snarfability")
	}
}

func TestSnarfTableEvictionDropsHistory(t *testing.T) {
	s := NewSnarfTable(snarfCfg(2, 2)) // 1 set x 2 ways
	s.RecordWriteBack(0)
	s.RecordWriteBack(2)
	s.RecordMiss(0)      // touches 0 to MRU; order is now [0, 2]
	s.RecordWriteBack(4) // evicts LRU entry
	if s.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", s.Occupancy())
	}
	// Entry 2 was least recently used and must be gone.
	if s.Contains(2) {
		t.Fatal("expected entry 2 evicted")
	}
	if !s.Contains(0) {
		t.Fatal("recently reused entry 0 lost")
	}
}

// Property: occupancy never exceeds capacity and Snarfable implies
// Contains.
func TestSnarfTableInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		Key  uint16
		Kind uint8
	}) bool {
		s := NewSnarfTable(snarfCfg(32, 4))
		for _, o := range ops {
			k := uint64(o.Key % 256)
			switch o.Kind % 3 {
			case 0:
				s.RecordWriteBack(k)
			case 1:
				s.RecordMiss(k)
			case 2:
				if s.Snarfable(k) && !s.Contains(k) {
					return false
				}
			}
			if s.Occupancy() > s.Entries() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
