package core

import (
	"testing"

	"cmpcache/internal/config"
)

// Tests for the Section 7 extensions: coarse-grained WBHT entries and
// the inputs behind history-informed replacement.

func coarseCfg(entries, assoc, gran int) config.WBHTConfig {
	c := config.DefaultWBHT()
	c.Entries = entries
	c.Assoc = assoc
	c.LinesPerEntry = gran
	return c
}

func TestCoarseWBHTOneEntryCoversGroup(t *testing.T) {
	w := NewWBHT(coarseCfg(64, 4, 4))
	w.Allocate(100) // group 25 covers lines 100..103
	for key := uint64(100); key < 104; key++ {
		if !w.Contains(key) {
			t.Fatalf("line %d not covered by its group entry", key)
		}
	}
	if w.Contains(104) {
		t.Fatal("adjacent group falsely covered")
	}
	if w.Contains(99) {
		t.Fatal("preceding group falsely covered")
	}
}

func TestCoarseWBHTAbortsForNeighbors(t *testing.T) {
	w := NewWBHT(coarseCfg(64, 4, 8))
	w.Allocate(0)
	// All eight lines of group 0 now advise abort — the coverage win and
	// the misprediction risk in one behavior.
	for key := uint64(0); key < 8; key++ {
		if !w.ShouldAbort(key) {
			t.Fatalf("line %d in allocated group did not abort", key)
		}
	}
	if w.ShouldAbort(8) {
		t.Fatal("line outside group aborted")
	}
}

func TestCoarseWBHTCapacityAmplification(t *testing.T) {
	// With 4 lines/entry, a 16-entry table covers 64 lines without any
	// entry eviction when allocations are group-aligned.
	w := NewWBHT(coarseCfg(16, 4, 4))
	for key := uint64(0); key < 64; key += 4 {
		w.Allocate(key)
	}
	if w.Occupancy() != 16 {
		t.Fatalf("occupancy = %d, want 16 (one entry per group)", w.Occupancy())
	}
	for key := uint64(0); key < 64; key++ {
		if !w.Contains(key) {
			t.Fatalf("line %d lost despite sufficient coarse capacity", key)
		}
	}
}

func TestCoarseWBHTGranularityOneIsExact(t *testing.T) {
	fine := NewWBHT(coarseCfg(64, 4, 1))
	fine.Allocate(100)
	if fine.Contains(101) {
		t.Fatal("granularity-1 table covered a neighbor")
	}
}

func TestCoarseWBHTInvalidate(t *testing.T) {
	w := NewWBHT(coarseCfg(64, 4, 4))
	w.Allocate(100)
	w.Invalidate(102) // any line of the group drops the shared entry
	if w.Contains(100) {
		t.Fatal("group entry survived invalidation via sibling line")
	}
}

func TestCoarseConfigValidation(t *testing.T) {
	cfg := config.Default().WithMechanism(config.WBHT)
	cfg.WBHT.LinesPerEntry = 3
	if cfg.Validate() == nil {
		t.Fatal("non-power-of-two LinesPerEntry accepted")
	}
	cfg.WBHT.LinesPerEntry = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid coarse config rejected: %v", err)
	}
	// Granularity is irrelevant when the mechanism is off.
	base := config.Default()
	base.WBHT.LinesPerEntry = 0
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline rejected for unused granularity: %v", err)
	}
}
