package core

import (
	"cmpcache/internal/cache"
	"cmpcache/internal/config"
)

// flagReused marks a SnarfTable entry whose line, after being written
// back, was missed on again — the paper's per-entry "use bit".
const flagReused uint8 = 1 << 0

// SnarfTable is the Section 3 reuse-history table that selects which
// write backs are offered to peer L2 caches: "this table is organized as
// a cache that maintains the tags of lines that have been replaced, with
// an additional bit per entry specifying when the line has been missed
// on either locally or by another L2 cache."
//
// Lifecycle of an entry:
//  1. Any L2 writes line X back  -> tag X enters the table (use bit 0).
//  2. Any L2 later misses on X   -> use bit set (X was replaced, then
//     wanted again: high reuse potential).
//  3. X is written back again    -> consult: a hit with the use bit set
//     marks the write-back bus transaction "snarfable", triggering the
//     snarf algorithm at snooping peer L2s.
//
// All L2 caches observe the same bus traffic, so per-L2 instances stay
// mutually consistent; the simulator instantiates one per L2 to mirror
// the hardware.
type SnarfTable struct {
	table *cache.Cache

	recordedWBs  uint64
	reuseMarks   uint64
	consults     uint64
	snarfableYes uint64
}

// NewSnarfTable builds a table from cfg (entries/assoc as validated by
// config.Validate).
func NewSnarfTable(cfg config.SnarfConfig) *SnarfTable {
	return &SnarfTable{table: cache.New(cfg.Entries/cfg.Assoc, cfg.Assoc)}
}

// RecordWriteBack notes that line key was written back by some L2
// (snooped from the bus). A new entry starts with the use bit clear; an
// existing entry keeps its use bit (reuse history is sticky while the
// entry survives) and is refreshed to MRU.
func (t *SnarfTable) RecordWriteBack(key uint64) {
	t.recordedWBs++
	if l := t.table.LookupTouch(key); l != nil {
		return
	}
	t.table.Insert(key, 0, 0, true)
}

// RecordMiss notes a demand L2 miss on line key, observed locally or
// snooped from a peer. If key still has an entry, its use bit is set.
func (t *SnarfTable) RecordMiss(key uint64) {
	if l := t.table.LookupTouch(key); l != nil {
		if l.Flags&flagReused == 0 {
			l.Flags |= flagReused
			t.reuseMarks++
		}
	}
}

// Snarfable consults the table for a write back of line key: true when
// the entry exists with the use bit set, directing peer L2s to attempt
// absorption.
func (t *SnarfTable) Snarfable(key uint64) bool {
	t.consults++
	l := t.table.LookupTouch(key)
	if l != nil && l.Flags&flagReused != 0 {
		t.snarfableYes++
		return true
	}
	return false
}

// Contains reports entry presence without perturbing recency or stats.
func (t *SnarfTable) Contains(key uint64) bool { return t.table.Contains(key) }

// Reused reports whether key's entry exists with the use bit set,
// without perturbing recency or stats.
func (t *SnarfTable) Reused(key uint64) bool {
	l, ok := t.table.Peek(key)
	return ok && l.Flags&flagReused != 0
}

// Entries returns the table capacity.
func (t *SnarfTable) Entries() int { return t.table.Capacity() }

// Occupancy returns the number of live entries.
func (t *SnarfTable) Occupancy() int { return t.table.CountValid() }

// Stats accessors.
func (t *SnarfTable) RecordedWriteBacks() uint64 { return t.recordedWBs }
func (t *SnarfTable) ReuseMarks() uint64         { return t.reuseMarks }
func (t *SnarfTable) Consults() uint64           { return t.consults }
func (t *SnarfTable) SnarfableHits() uint64      { return t.snarfableYes }
