package serve

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"cmpcache/internal/telemetry"
)

// This file is the daemon's observability surface (DESIGN.md §18): the
// metric inventory behind GET /metrics, the HTTP middleware that feeds
// the per-route request histograms and the structured request log, and
// the request-ID plumbing that threads one ID through
// submit → run → cache-store so a slow job can be traced across layers.

// daemonMetrics holds every instrument the daemon updates on its hot
// paths. All instruments come from the daemon's registry; /debug/stats
// is re-derived from these same counters (one source of truth).
type daemonMetrics struct {
	running *telemetry.Gauge // in-flight simulation runs

	submitted *telemetry.Counter
	collapsed *telemetry.Counter
	cacheHits *telemetry.Counter // submissions answered from the result cache
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	canceled  *telemetry.Counter
	simRuns   *telemetry.Counter
	simEvents *telemetry.Counter

	sse *telemetry.Gauge // connected /events subscribers

	httpRequests *telemetry.CounterVec   // {route, code}
	httpSeconds  *telemetry.HistogramVec // {route, code}

	jobQueueSeconds *telemetry.Histogram // enqueue -> start, executed primaries
	jobRunSeconds   *telemetry.Histogram // start -> finish, executed primaries

	traceOpens *telemetry.Counter // trace-source container opens
	traceHits  *telemetry.Counter // trace-source cache hits
}

func newDaemonMetrics(reg *telemetry.Registry) *daemonMetrics {
	return &daemonMetrics{
		running: reg.Gauge("cmpserved_inflight_runs",
			"Simulations currently executing on the worker pool."),
		submitted: reg.Counter("cmpserved_jobs_submitted_total",
			"Jobs accepted by POST /v1/jobs."),
		collapsed: reg.Counter("cmpserved_jobs_collapsed_total",
			"Jobs collapsed onto an identical in-flight primary (singleflight)."),
		cacheHits: reg.Counter("cmpserved_cache_hits_total",
			"Submissions answered from the result cache with zero simulation work."),
		rejected: reg.Counter("cmpserved_jobs_rejected_total",
			"Jobs rejected because the queue could not hold the submission."),
		completed: reg.Counter("cmpserved_jobs_completed_total",
			"Jobs that reached the done state."),
		failed: reg.Counter("cmpserved_jobs_failed_total",
			"Jobs that reached the failed state."),
		canceled: reg.Counter("cmpserved_jobs_canceled_total",
			"Jobs that reached the canceled state."),
		simRuns: reg.Counter("cmpserved_sim_runs_total",
			"Simulations actually executed (cache misses that ran)."),
		simEvents: reg.Counter("cmpserved_sim_events_total",
			"Discrete simulation events fired across all executed runs."),
		sse: reg.Gauge("cmpserved_sse_subscribers",
			"Currently connected /v1/jobs/{id}/events subscribers."),
		httpRequests: reg.CounterVec("cmpserved_http_requests_total",
			"HTTP requests served, by mux route and status code.",
			"route", "code"),
		httpSeconds: reg.HistogramVec("cmpserved_http_request_seconds",
			"HTTP request latency in seconds, by mux route and status code.",
			telemetry.SecondsBuckets, "route", "code"),
		jobQueueSeconds: reg.Histogram("cmpserved_job_queue_seconds",
			"Time executed jobs spent queued before a worker picked them up.",
			telemetry.SecondsBuckets),
		jobRunSeconds: reg.Histogram("cmpserved_job_run_seconds",
			"Wall-clock simulation time of executed jobs.",
			telemetry.SecondsBuckets),
		traceOpens: reg.Counter("cmpserved_trace_source_opens_total",
			"Trace-source container opens (sharded directory or flat file)."),
		traceHits: reg.Counter("cmpserved_trace_source_cache_hits_total",
			"Trace-source lookups served from the simulator's source cache."),
	}
}

// registerGaugeFuncs exposes the daemon state that is read, not
// counted: queue occupancy, uptime, readiness, cache occupancy, and the
// process goroutine count. Called once from New, after the daemon
// struct is complete.
func (d *Daemon) registerGaugeFuncs(reg *telemetry.Registry) {
	reg.GaugeFunc("cmpserved_queue_depth",
		"Jobs accepted but not yet running.",
		func() float64 { return float64(len(d.queue)) })
	reg.GaugeFunc("cmpserved_queue_capacity",
		"Job queue bound; submissions that would overflow it are rejected.",
		func() float64 { return float64(cap(d.queue)) })
	reg.GaugeFunc("cmpserved_jobs_retained",
		"Job records retained in memory (all states).",
		func() float64 {
			d.mu.Lock()
			n := len(d.jobs)
			d.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("cmpserved_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(d.start).Seconds() })
	reg.GaugeFunc("cmpserved_ready",
		"1 while the daemon accepts work, 0 before the pool is up or once drain begins.",
		func() float64 {
			if d.Ready() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("cmpserved_result_cache_l1_entries",
		"Current result-cache L1 entry count.",
		func() float64 { return float64(d.cache.Stats().L1Entries) })
	reg.GaugeFunc("cmpserved_result_cache_l1_bytes",
		"Current result-cache L1 payload bytes.",
		func() float64 { return float64(d.cache.Stats().L1Bytes) })
	reg.GaugeFunc("go_goroutines",
		"Goroutines in the daemon process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// --- request IDs ---

type requestIDKey struct{}

// RequestID returns the request ID threaded through ctx by the HTTP
// middleware ("" outside a request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// nextRequestID mints a process-unique ID: a per-start base plus a
// sequence number, short enough to grep and stable across log lines.
func (d *Daemon) nextRequestID() string {
	return d.idBase + "-" + strconv.FormatUint(d.reqSeq.Add(1), 10)
}

// --- instrumenting middleware ---

// statusWriter records the response status and byte count while passing
// Flush through (the SSE handler type-asserts http.Flusher).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController pass-through.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withTelemetry wraps the API mux: it assigns (or adopts) the request
// ID, serves the request through a status-recording writer, then feeds
// the per-route counters/histograms and emits one structured log line.
// The route label is the mux pattern (e.g. "GET /v1/jobs/{id}"), so
// label cardinality is bounded by the route table, never by client
// input.
func (d *Daemon) withTelemetry(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = d.nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		// The pattern is only set on the request copy the mux passes to
		// the matched handler; look it up here for the label.
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		codeStr := strconv.Itoa(code)
		d.met.httpRequests.With(route, codeStr).Inc()
		d.met.httpSeconds.With(route, codeStr).Observe(elapsed.Seconds())
		d.log.Info("http",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", code,
			"bytes", sw.bytes,
			"dur", elapsed,
		)
	})
}
