package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/sweep"
	"cmpcache/internal/system"
	"cmpcache/internal/txlat"
)

// waitGoroutines polls until the goroutine count settles back to at
// most want (plus slack for runtime background goroutines).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", want, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// blockingRun returns a RunFunc that parks until release is closed (or
// the job's context is cancelled), counting invocations.
func blockingRun(release <-chan struct{}, ran chan<- sweep.Job) sweep.RunFunc {
	return func(ctx context.Context, j sweep.Job) (*system.Results, error) {
		if ran != nil {
			ran <- j
		}
		select {
		case <-release:
			return &system.Results{EventsFired: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func mustDaemon(t *testing.T, opts Options) *Daemon {
	t.Helper()
	d, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func waitDone(t *testing.T, jobs ...*jobState) {
	t.Helper()
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s never reached a terminal state", j.ID)
		}
	}
}

// TestSingleflightCollapse proves N concurrent identical submissions
// run exactly one simulation: one primary executes, every other
// submission attaches as a waiter and receives the identical bytes.
func TestSingleflightCollapse(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan sweep.Job, 16)
	d := mustDaemon(t, Options{Workers: 2, Run: blockingRun(release, ran)})
	defer d.Shutdown(context.Background())

	job := sweep.Job{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 1000}
	const n = 5
	states := make([]*jobState, n)
	for i := range states {
		out, err := d.Submit([]sweep.Job{job})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		states[i] = out[0]
	}
	<-ran // the single primary reached the executor
	close(release)
	waitDone(t, states...)

	select {
	case j := <-ran:
		t.Fatalf("second simulation ran for %s; want singleflight collapse", j)
	default:
	}
	var payload []byte
	for i, s := range states {
		st, result := s.snapshot()
		if st != JobDone {
			t.Fatalf("job %d status %s, want done", i, st)
		}
		if payload == nil {
			payload = result
		} else if !bytes.Equal(payload, result) {
			t.Errorf("job %d bytes differ from primary", i)
		}
		v := s.view(false)
		if i == 0 && (v.Cached || v.CacheLevel != CacheMiss) {
			t.Errorf("primary marked cached (%+v)", v)
		}
		if i > 0 && (!v.Cached || v.CacheLevel != ServedCollapsed) {
			t.Errorf("waiter %d not marked collapsed (%+v)", i, v)
		}
	}
	stats := d.Snapshot()
	if stats.SimRuns != 1 || stats.Collapsed != n-1 || stats.Completed != n {
		t.Errorf("stats = %+v, want 1 run, %d collapsed, %d completed", stats, n-1, n)
	}
}

// TestQueueBackpressure proves the bounded queue rejects a whole
// submission with 429 — atomically, leaving no partial state — once the
// backlog is full.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan sweep.Job, 1)
	d := mustDaemon(t, Options{Workers: 1, QueueDepth: 1, Run: blockingRun(release, ran)})
	defer func() { close(release); d.Shutdown(context.Background()) }()

	mk := func(out int) sweep.Job {
		return sweep.Job{Workload: "tp", Mechanism: config.Baseline, Outstanding: out, RefsPerThread: 1000}
	}
	a, err := d.Submit([]sweep.Job{mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	<-ran // a occupies the single worker; the queue slot is free again
	if _, err := d.Submit([]sweep.Job{mk(2)}); err != nil {
		t.Fatal(err)
	}
	// Queue now full. A two-job submission must be rejected whole even
	// though neither of its jobs was seen before.
	before := d.Snapshot()
	_, err = d.Submit([]sweep.Job{mk(3), mk(4)})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit err = %v, want 429 RejectError", err)
	}
	after := d.Snapshot()
	if after.JobsRetained != before.JobsRetained || after.Rejected != before.Rejected+2 {
		t.Errorf("rejection had side effects: before %+v after %+v", before, after)
	}
	// A resubmission of an in-flight job still collapses: no slot needed.
	if _, err := d.Submit([]sweep.Job{mk(1)}); err != nil {
		t.Errorf("collapse onto running primary rejected: %v", err)
	}
	_ = a
}

// TestCancelQueuedAndRunning covers both cancellation paths: a queued
// job completes immediately, a running one has its context cancelled
// and the worker observes it.
func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ran := make(chan sweep.Job, 1)
	d := mustDaemon(t, Options{Workers: 1, QueueDepth: 4, Run: blockingRun(release, ran)})
	defer d.Shutdown(context.Background())

	mk := func(out int) sweep.Job {
		return sweep.Job{Workload: "tp", Mechanism: config.Baseline, Outstanding: out, RefsPerThread: 1000}
	}
	running, _ := d.Submit([]sweep.Job{mk(1)})
	<-ran
	queued, _ := d.Submit([]sweep.Job{mk(2)})

	if ok, found := d.Cancel(queued[0].ID); !ok || !found {
		t.Fatalf("cancel queued = (%v, %v)", ok, found)
	}
	waitDone(t, queued[0])
	if st, _ := queued[0].snapshot(); st != JobCanceled {
		t.Errorf("queued job status %s, want canceled", st)
	}

	if ok, found := d.Cancel(running[0].ID); !ok || !found {
		t.Fatalf("cancel running = (%v, %v)", ok, found)
	}
	waitDone(t, running[0])
	if st, _ := running[0].snapshot(); st != JobCanceled {
		t.Errorf("running job status %s, want canceled", st)
	}
	if stats := d.Snapshot(); stats.Canceled != 2 {
		t.Errorf("Canceled = %d, want 2", stats.Canceled)
	}
}

// TestShutdownDrains proves a graceful shutdown finishes queued work,
// persists the L1 to disk, and leaks no goroutines.
func TestShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	run := func(ctx context.Context, j sweep.Job) (*system.Results, error) {
		time.Sleep(10 * time.Millisecond)
		return &system.Results{EventsFired: 1}, nil
	}
	d := mustDaemon(t, Options{Workers: 2, CacheDir: dir, Run: run})
	var all []*jobState
	for out := 1; out <= 4; out++ {
		s, err := d.Submit([]sweep.Job{{Workload: "tp", Mechanism: config.Baseline, Outstanding: out, RefsPerThread: 1000}})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, s...)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i, j := range all {
		if st, _ := j.snapshot(); st != JobDone {
			t.Errorf("job %d status %s after graceful shutdown, want done", i, st)
		}
	}
	if _, err := d.Submit([]sweep.Job{{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 1000}}); err == nil {
		t.Error("submit after shutdown succeeded")
	}
	// Every result must be on disk: a cold cache over the same dir
	// serves all four keys from L2.
	cold := newTestCache(t, CacheOptions{Dir: dir})
	for _, j := range all {
		if _, level, ok := cold.Get(j.Key); !ok || level != CacheL2 {
			t.Errorf("key %s not persisted (level %q ok %v)", j.Key[:8], level, ok)
		}
	}
	waitGoroutines(t, before)
}

// TestShutdownDeadlineForcesCancel proves the drain deadline converts
// into cooperative cancellation: a stuck job is cancelled rather than
// blocking shutdown forever.
func TestShutdownDeadlineForcesCancel(t *testing.T) {
	ran := make(chan sweep.Job, 1)
	d := mustDaemon(t, Options{Workers: 1, Run: blockingRun(nil, ran)}) // never released
	s, err := d.Submit([]sweep.Job{{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	<-ran
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	if st, _ := s[0].snapshot(); st != JobCanceled {
		t.Errorf("stuck job status %s, want canceled", st)
	}
}

// TestServerEndToEnd exercises the full HTTP surface against the real
// simulator: submit a grid, poll to completion, prove the resubmission
// is served from cache byte-identically with zero new simulation work,
// and read the SSE and latency endpoints.
func TestServerEndToEnd(t *testing.T) {
	d := mustDaemon(t, Options{
		CacheDir:        t.TempDir(),
		Workers:         2,
		MetricsInterval: 2000,
		Latency:         true,
	})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	grid := `{"workloads":["tp"],"mechanisms":["baseline,wbht"],"refs":2000}`
	post := func() (int, SubmitResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(grid))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
		return resp.StatusCode, out
	}

	coldStart := time.Now()
	code, sub := post()
	if code != http.StatusAccepted || len(sub.Jobs) != 2 {
		t.Fatalf("cold submit = %d with %d jobs, want 202 with 2", code, len(sub.Jobs))
	}
	results := make(map[string]json.RawMessage)
	for _, jv := range sub.Jobs {
		results[jv.ID] = pollDone(t, srv.URL, jv.ID)
	}
	coldLatency := time.Since(coldStart)

	stats := getStats(t, srv.URL)
	if stats.SimRuns != 2 || stats.SimEvents == 0 {
		t.Fatalf("after cold run: SimRuns=%d SimEvents=%d, want 2 runs with events", stats.SimRuns, stats.SimEvents)
	}

	// Identical resubmission: answered entirely from cache — 200, zero
	// new simulation events, byte-identical payloads.
	warmStart := time.Now()
	code, resub := post()
	warmLatency := time.Since(warmStart)
	if code != http.StatusOK {
		t.Fatalf("warm submit code = %d, want 200 (all cached)", code)
	}
	for i, jv := range resub.Jobs {
		if jv.Status != JobDone || !jv.Cached || jv.CacheLevel != CacheL1 {
			t.Errorf("warm job %d = %+v, want done/cached/l1", i, jv)
		}
		fresh := results[sub.Jobs[i].ID]
		cached := pollDone(t, srv.URL, jv.ID)
		if !bytes.Equal(fresh, cached) {
			t.Errorf("warm job %d bytes differ from cold run", i)
		}
	}
	after := getStats(t, srv.URL)
	if after.SimRuns != 2 || after.SimEvents != stats.SimEvents {
		t.Errorf("warm resubmission ran simulations: SimRuns %d->%d", stats.SimRuns, after.SimRuns)
	}
	if after.CacheServed != 2 {
		t.Errorf("CacheServed = %d, want 2", after.CacheServed)
	}
	t.Logf("request latency: cold %v, warm %v", coldLatency, warmLatency)

	// Byte identity against a fresh out-of-process-style run: the same
	// job through a brand-new simulator with the same observability
	// settings must marshal to the daemon's exact bytes.
	var job sweep.Job
	if err := json.Unmarshal(mustMarshal(t, sub.Jobs[0].Job), &job); err != nil {
		t.Fatal(err)
	}
	sim := sweep.NewSimulator()
	sim.MetricsInterval = 2000
	sim.Latency = &txlat.Config{}
	res, err := sim.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	direct := mustMarshal(t, res)
	// Compare against the stored cache payload: the HTTP layer re-indents
	// embedded JSON for readability, the cache holds the exact bytes.
	stored, _, ok := d.Cache().Get(sub.Jobs[0].Key)
	if !ok {
		t.Fatal("result missing from cache")
	}
	if !bytes.Equal(direct, stored) {
		t.Error("daemon result bytes differ from a direct simulator run")
	}

	// SSE replay on a finished job: status, at least one metrics sample,
	// and a done frame.
	events := readSSE(t, srv.URL+"/v1/jobs/"+sub.Jobs[0].ID+"/events")
	if events["status"] == 0 || events["sample"] == 0 || events["done"] != 1 {
		t.Errorf("SSE replay frames = %v, want status+samples+one done", events)
	}

	// Latency report endpoint.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.Jobs[0].ID + "/latency")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"Workload"`)) {
		t.Errorf("latency endpoint = %d %s", resp.StatusCode, body)
	}

	// Cancelling a finished job conflicts.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.Jobs[0].ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("DELETE finished job = %d, want 409", resp.StatusCode)
		}
	}

	// Bad requests are 400s.
	for _, body := range []string{`{"jobs":[{"workload":"nope"}]}`, `{"unknown_field":1}`, `not json`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

// pollDone polls GET /v1/jobs/{id} until the job is done and returns
// its result bytes.
func pollDone(t *testing.T, base, id string) json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case v.Status == JobDone:
			return v.Result
		case v.Status.Terminal():
			t.Fatalf("job %s reached %s: %s", id, v.Status, v.Error)
		case time.Now().After(deadline):
			t.Fatalf("job %s still %s after deadline", id, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// readSSE consumes the event stream until the done frame (or EOF) and
// returns a count per event type.
func readSSE(t *testing.T, url string) map[string]int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	counts := make(map[string]int)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if typ, ok := strings.CutPrefix(line, "event: "); ok {
			counts[typ]++
			if typ == "done" {
				return counts
			}
		}
	}
	t.Fatalf("stream ended without a done frame: %v (err %v)", counts, sc.Err())
	return nil
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
