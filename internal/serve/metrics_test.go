package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/sweep"
	"cmpcache/internal/system"
)

// scrapeMetrics fetches the Prometheus exposition and checks the
// content type.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample from an exposition by its full series
// name (including any label set, e.g. `m{route="GET /x",code="200"}`).
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

func hasSeries(exposition, series string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "#") && strings.HasPrefix(line, series+" ") {
			return true
		}
	}
	return false
}

// TestMetricsEndpoint proves the scrape surface end to end: a cold
// submission moves the run counters, a warm resubmission moves only the
// cache counters, and /debug/stats renders the same instruments.
func TestMetricsEndpoint(t *testing.T) {
	run := func(ctx context.Context, j sweep.Job) (*system.Results, error) {
		return &system.Results{EventsFired: 7}, nil
	}
	d := mustDaemon(t, Options{Workers: 1, Run: run})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	job := `{"jobs":[{"Workload":"tp","RefsPerThread":1000}]}`
	post := func() int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(job))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(); code != http.StatusAccepted {
		t.Fatalf("cold submit = %d, want 202", code)
	}
	// The job runs asynchronously; wait for it to finish.
	deadline := time.Now().Add(30 * time.Second)
	for d.Snapshot().Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cold := scrapeMetrics(t, srv.URL)
	for series, want := range map[string]float64{
		"cmpserved_jobs_submitted_total": 1,
		"cmpserved_sim_runs_total":       1,
		"cmpserved_sim_events_total":     7,
		"cmpserved_jobs_completed_total": 1,
		"cmpserved_cache_hits_total":     0,
		"cmpserved_inflight_runs":        0,
		"cmpserved_ready":                1,
	} {
		if got := metricValue(t, cold, series); got != want {
			t.Errorf("cold %s = %v, want %v", series, got, want)
		}
	}
	// The executed primary fed the job histograms.
	if got := metricValue(t, cold, "cmpserved_job_run_seconds_count"); got != 1 {
		t.Errorf("cold job_run_seconds_count = %v, want 1", got)
	}

	// Warm resubmission: answered from cache — 200, cache counters move,
	// run counters must not.
	if code := post(); code != http.StatusOK {
		t.Fatalf("warm submit = %d, want 200 (cached)", code)
	}
	warm := scrapeMetrics(t, srv.URL)
	for series, want := range map[string]float64{
		"cmpserved_sim_runs_total":             1,
		"cmpserved_sim_events_total":           7,
		"cmpserved_cache_hits_total":           1,
		"cmpserved_result_cache_l1_hits_total": 1,
		"cmpserved_jobs_submitted_total":       2,
	} {
		if got := metricValue(t, warm, series); got != want {
			t.Errorf("warm %s = %v, want %v", series, got, want)
		}
	}

	// Per-route HTTP series carry the mux pattern, not the raw path.
	if !hasSeries(warm, `cmpserved_http_requests_total{route="POST /v1/jobs",code="202"}`) {
		t.Error("missing http_requests_total series for the cold submit")
	}
	if !hasSeries(warm, `cmpserved_http_requests_total{route="POST /v1/jobs",code="200"}`) {
		t.Error("missing http_requests_total series for the warm submit")
	}
	if !hasSeries(warm, `cmpserved_http_request_seconds_bucket{route="GET /metrics",code="200",le="+Inf"}`) {
		t.Error("missing http_request_seconds histogram for /metrics")
	}

	// /debug/stats is a JSON rendering of the same instruments.
	stats := getStats(t, srv.URL)
	if stats.Submitted != 2 || stats.SimRuns != 1 || stats.SimEvents != 7 ||
		stats.CacheServed != 1 || stats.Completed != 2 {
		t.Errorf("stats diverge from metrics: %+v", stats)
	}
	if stats.Cache.L1Hits != 1 || stats.Cache.L1Entries != 1 {
		t.Errorf("cache stats diverge: %+v", stats.Cache)
	}
}

// TestReadyzFlipsOnDrain proves /readyz (and the ready gauge) go
// not-ready the moment drain begins, while /healthz stays alive.
func TestReadyzFlipsOnDrain(t *testing.T) {
	d := mustDaemon(t, Options{Workers: 1, Run: blockingRun(nil, nil)})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d before drain, want 200", code)
	}
	if got := metricValue(t, scrapeMetrics(t, srv.URL), "cmpserved_ready"); got != 1 {
		t.Errorf("cmpserved_ready = %v before drain, want 1", got)
	}

	d.BeginDrain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz = %d during drain, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("GET /healthz = %d during drain, want 200 (still alive)", code)
	}
	if got := metricValue(t, scrapeMetrics(t, srv.URL), "cmpserved_ready"); got != 0 {
		t.Errorf("cmpserved_ready = %v during drain, want 0", got)
	}
}

// TestRequestIDPropagation proves a client-supplied X-Request-Id is
// echoed and threaded into the job it creates, and that a missing one
// is minted.
func TestRequestIDPropagation(t *testing.T) {
	run := func(ctx context.Context, j sweep.Job) (*system.Results, error) {
		return &system.Results{EventsFired: 1}, nil
	}
	d := mustDaemon(t, Options{Workers: 1, Run: run})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
		strings.NewReader(`{"jobs":[{"Workload":"tp"}]}`))
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("echoed request ID = %q, want trace-me-42", got)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.Jobs) != 1 || sub.Jobs[0].Origin != "trace-me-42" {
		t.Errorf("job origin = %+v, want trace-me-42", sub.Jobs)
	}

	// No header: one is minted and returned.
	resp2, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("server did not mint an X-Request-Id")
	}
}

// TestPprofEndpoints proves the profiling surface is wired onto the API
// mux (net/http/pprof only self-registers on the default mux).
func TestPprofEndpoints(t *testing.T) {
	run := func(ctx context.Context, j sweep.Job) (*system.Results, error) {
		return &system.Results{EventsFired: 1}, nil
	}
	d := mustDaemon(t, Options{Workers: 1, Run: run})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestSSESubscriberChurn hammers one job's event stream: several live
// subscribers plus one that never reads, all terminated by a DELETE.
// The broadcast must not stall on the slow reader, the subscriber gauge
// must track connect/disconnect, and nothing may leak.
func TestSSESubscriberChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	ran := make(chan sweep.Job, 1)
	d := mustDaemon(t, Options{Workers: 1, Run: blockingRun(nil, ran)}) // runs until cancelled
	srv := httptest.NewServer(d.Handler())

	sub, err := d.Submit([]sweep.Job{{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	<-ran // the job occupies the worker; subscribers will stream live
	url := srv.URL + "/v1/jobs/" + sub[0].ID + "/events"

	// Live subscribers: read the initial status frame so each handler is
	// known to be inside its streaming loop.
	const live = 5
	type reader struct {
		resp *http.Response
		sc   *bufio.Scanner
	}
	readers := make([]reader, live)
	for i := range readers {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() && sc.Text() != "" { // first frame ends at the blank line
		}
		readers[i] = reader{resp, sc}
	}
	// Slow subscriber: connects, never reads. Its handler must not be
	// able to stall the others.
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	slowReq, _ := http.NewRequestWithContext(slowCtx, http.MethodGet, url, nil)
	slowResp, err := http.DefaultClient.Do(slowReq)
	if err != nil {
		t.Fatal(err)
	}

	waitGauge := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if got := d.met.sse.Value(); got == want {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("sse subscriber gauge = %d, want %d", got, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitGauge(live + 1)

	// Cancel the job: every subscriber must receive the done frame
	// promptly despite the unread peer.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub[0].ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for i, r := range readers {
		got := make(chan bool, 1)
		go func() {
			done := false
			for r.sc.Scan() {
				if strings.HasPrefix(r.sc.Text(), "event: done") {
					done = true
				}
			}
			got <- done
		}()
		select {
		case done := <-got:
			if !done {
				t.Errorf("reader %d: stream ended without a done frame", i)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("reader %d stalled waiting for done (slow-reader head-of-line blocking?)", i)
		}
		r.resp.Body.Close()
	}
	cancelSlow()
	slowResp.Body.Close()

	waitGauge(0)
	srv.Close()
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitGoroutines(t, before)
}
