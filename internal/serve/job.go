package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"cmpcache/internal/sweep"
)

// JobStatus is the lifecycle state of one submitted job.
type JobStatus string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobStatus = "queued"
	// JobRunning: a worker is simulating it.
	JobRunning JobStatus = "running"
	// JobDone: finished successfully; Result holds the payload.
	JobDone JobStatus = "done"
	// JobFailed: the simulation errored or panicked.
	JobFailed JobStatus = "failed"
	// JobCanceled: cancelled by the client or by shutdown before
	// completing.
	JobCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ServedBy extends CacheLevel with the singleflight source: a job that
// never executed because it attached to an identical in-flight
// submission reports "collapsed".
const ServedCollapsed CacheLevel = "collapsed"

// jobEvent is one server-sent event: a pre-rendered JSON payload under
// an SSE event type.
type jobEvent struct {
	Type string
	Data []byte
}

// jobState is the server-side record of one submitted job. A jobState
// is either a *primary* (it owns a queue slot and will execute, unless
// served from cache at submit) or a *waiter* collapsed onto an
// identical in-flight primary (singleflight: one simulation serves all
// of them).
type jobState struct {
	ID  string
	Key string
	Job sweep.Job
	// origin is the X-Request-Id of the submission that created this
	// job; every later log line about the job (run, cache store) carries
	// it, so one grep traces a request across layers.
	origin string

	mu       sync.Mutex
	status   JobStatus
	cached   bool
	level    CacheLevel
	errMsg   string
	result   []byte // shared, read-only result JSON
	enqueued time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	waiters  []*jobState // collapsed identical submissions (primary only)
	subs     map[chan jobEvent]struct{}

	done chan struct{} // closed exactly once, on reaching a terminal status
}

func newJobState(id, key string, job sweep.Job, origin string) *jobState {
	return &jobState{
		ID:       id,
		Key:      key,
		Job:      job,
		origin:   origin,
		status:   JobQueued,
		enqueued: time.Now(),
		subs:     make(map[chan jobEvent]struct{}),
		done:     make(chan struct{}),
	}
}

// enqueuedAt returns the submission instant (immutable after creation,
// but read under mu for the race detector's sake).
func (j *jobState) enqueuedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enqueued
}

// JobView is the API representation of a job.
type JobView struct {
	ID         string          `json:"id"`
	Key        string          `json:"key"`
	Origin     string          `json:"origin,omitempty"` // submitting request's X-Request-Id
	Job        sweep.Job       `json:"job"`
	Status     JobStatus       `json:"status"`
	Cached     bool            `json:"cached"`
	CacheLevel CacheLevel      `json:"cache_level,omitempty"`
	Error      string          `json:"error,omitempty"`
	EnqueuedAt time.Time       `json:"enqueued_at"`
	WaitMS     int64           `json:"wait_ms"`          // enqueue -> start (or now)
	RunMS      int64           `json:"run_ms,omitempty"` // start -> finish
	Result     json.RawMessage `json:"result,omitempty"` // only when includeResult
}

// view snapshots the job for the API; includeResult embeds the full
// result JSON (GET /v1/jobs/{id} wants it, event frames do not).
func (j *jobState) view(includeResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.ID,
		Key:        j.Key,
		Origin:     j.origin,
		Job:        j.Job,
		Status:     j.status,
		Cached:     j.cached,
		CacheLevel: j.level,
		Error:      j.errMsg,
		EnqueuedAt: j.enqueued,
	}
	switch {
	case !j.started.IsZero():
		v.WaitMS = j.started.Sub(j.enqueued).Milliseconds()
	case !j.finished.IsZero(): // served from cache without running
		v.WaitMS = j.finished.Sub(j.enqueued).Milliseconds()
	default:
		v.WaitMS = time.Since(j.enqueued).Milliseconds()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.RunMS = j.finished.Sub(j.started).Milliseconds()
	}
	if includeResult && j.status == JobDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// snapshot returns (status, result) without exposing internals.
func (j *jobState) snapshot() (JobStatus, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result
}

// markRunning transitions queued -> running and installs the cancel
// function. It reports false if the job already reached a terminal
// state (cancelled while queued).
func (j *jobState) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.status != JobQueued {
		j.mu.Unlock()
		return false
	}
	j.status = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	j.publishStatus()
	return true
}

// complete moves the job to a terminal status exactly once and wakes
// everyone waiting on it. Safe to call on any state; a second terminal
// transition is ignored.
func (j *jobState) complete(status JobStatus, result []byte, errMsg string, cached bool, level CacheLevel) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.cached = cached
	j.level = level
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	j.mu.Unlock()
	j.publishStatus()
	return true
}

// requestCancel asks a queued or running job to stop: queued jobs
// complete as canceled immediately, running jobs get their context
// cancelled (the worker observes it and completes the job). Reports
// whether the job was still cancellable.
func (j *jobState) requestCancel(reason string) bool {
	j.mu.Lock()
	switch {
	case j.status == JobQueued:
		j.mu.Unlock()
		return j.complete(JobCanceled, nil, reason, false, CacheMiss)
	case j.status == JobRunning && j.cancel != nil:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// subscribe registers an event channel; unsubscribe removes it.
func (j *jobState) subscribe(buf int) chan jobEvent {
	ch := make(chan jobEvent, buf)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *jobState) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publishStatus fans the current JobView out to subscribers. Sends are
// non-blocking: a slow consumer misses intermediate transitions but
// never stalls the worker, and the SSE handler re-snapshots the final
// state after done closes, so nothing terminal is lost.
func (j *jobState) publishStatus() {
	data, err := json.Marshal(j.view(false))
	if err != nil {
		return
	}
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- jobEvent{Type: "status", Data: data}:
		default:
		}
	}
	j.mu.Unlock()
}
