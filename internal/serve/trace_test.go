package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// TestServerTraceSubmit submits a captured-trace job over HTTP, then
// rewrites the capture in place and resubmits: the second run must be a
// cache miss (the key follows the content, not the path) with a
// different simulated outcome.
func TestServerTraceSubmit(t *testing.T) {
	gen := func(refs int) *trace.Trace {
		p, err := workload.ByName("tp")
		if err != nil {
			t.Fatal(err)
		}
		p.RefsPerThread = refs
		tr, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dir := filepath.Join(t.TempDir(), "capture.cmps")
	if _, err := trace.WriteSharded(dir, gen(500), trace.ShardOptions{Shards: 2, BatchRecords: 128}); err != nil {
		t.Fatal(err)
	}

	d := mustDaemon(t, Options{Workers: 2})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"traces":[%q],"mechanisms":["baseline"]}`, dir)
	post := func() SubmitResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		var out SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out.Jobs) != 1 {
			t.Fatalf("submitted %d jobs, want 1", len(out.Jobs))
		}
		return out
	}

	first := post()
	firstBytes := pollDone(t, srv.URL, first.Jobs[0].ID)
	if stats := d.Snapshot(); stats.SimRuns != 1 {
		t.Fatalf("SimRuns = %d after first trace run, want 1", stats.SimRuns)
	}

	// Same capture resubmitted: pure cache hit, zero new simulation.
	again := post()
	if !again.Jobs[0].Cached {
		t.Fatalf("identical trace resubmission not served from cache: %+v", again.Jobs[0])
	}
	if !bytes.Equal(firstBytes, pollDone(t, srv.URL, again.Jobs[0].ID)) {
		t.Fatal("cached trace result bytes differ")
	}

	// Rewrite the capture in place (same path, different content): the
	// daemon must treat it as a new simulation, not serve stale bytes.
	if _, err := trace.WriteSharded(dir, gen(600), trace.ShardOptions{Shards: 2, BatchRecords: 128}); err != nil {
		t.Fatal(err)
	}
	edited := post()
	editedBytes := pollDone(t, srv.URL, edited.Jobs[0].ID)
	if edited.Jobs[0].Cached {
		t.Fatal("edited trace served from cache — key followed the path, not the content")
	}
	if bytes.Equal(firstBytes, editedBytes) {
		t.Fatal("edited trace produced byte-identical results")
	}
	if stats := d.Snapshot(); stats.SimRuns != 2 {
		t.Fatalf("SimRuns = %d after edited rerun, want 2", stats.SimRuns)
	}
}

// TestSubmitRejectsAmbiguousTraceJob: an explicit job naming both a
// trace and a workload is a 400, not a simulation.
func TestSubmitRejectsAmbiguousTraceJob(t *testing.T) {
	d := mustDaemon(t, Options{Workers: 1})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	body := `{"jobs":[{"Workload":"tp","TraceFile":"x.cmpt"}]}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit = %d, want 400", resp.StatusCode)
	}
}
