// Package serve is the simulation-as-a-service layer: a long-running
// HTTP daemon (cmd/cmpserved) that accepts single configurations or
// whole sweep grids, executes them on the internal/sweep pool, and
// memoizes every result in a two-level content-addressed cache.
//
// Because the simulator is bit-deterministic — the same (config,
// workload, seed) always produces the identical result bytes — caching
// is *exact* memoization, not approximation: a cache hit is
// indistinguishable from a fresh run except that zero simulation events
// execute. Fittingly for a paper about adaptive L1/L2/L3 hierarchies,
// the server's cache is itself a two-level cache-aside hierarchy: a
// bounded in-memory LRU L1 in front of an unbounded on-disk L2 of
// result-JSON files, with L2 hits promoted into L1 and L1 evictions
// falling back to the (write-through) L2.
package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cmpcache/internal/telemetry"
)

// CacheLevel identifies which level satisfied a lookup.
type CacheLevel string

const (
	// CacheMiss: neither level holds the key.
	CacheMiss CacheLevel = ""
	// CacheL1: served from the in-memory LRU.
	CacheL1 CacheLevel = "l1"
	// CacheL2: served from the on-disk store (and promoted into L1).
	CacheL2 CacheLevel = "l2"
)

// CacheOptions bounds the in-memory L1 and locates the on-disk L2.
type CacheOptions struct {
	// Dir is the L2 root directory; empty disables the disk level.
	Dir string
	// L1Entries bounds the L1 entry count; <= 0 means DefaultL1Entries.
	L1Entries int
	// L1Bytes bounds the summed payload bytes held in L1; <= 0 means
	// DefaultL1Bytes. An entry larger than the bound bypasses L1 and
	// lives only on disk.
	L1Bytes int64
	// Metrics receives the cache's counters. Nil means detached
	// standalone counters (Stats still works; nothing is exported).
	Metrics *CacheMetrics
}

// Default L1 bounds: result JSON runs a few hundred KB with metrics
// attached, so 256 entries / 256 MB holds a comfortable working set of
// recent grids without threatening the heap.
const (
	DefaultL1Entries = 256
	DefaultL1Bytes   = 256 << 20
)

// CacheMetrics are the cache's live counters. When built from a
// registry (NewCacheMetrics) they export on /metrics; /debug/stats
// renders the same instruments via Stats — one source of truth.
type CacheMetrics struct {
	L1Hits         *telemetry.Counter
	L1Misses       *telemetry.Counter
	L2Hits         *telemetry.Counter
	L2Misses       *telemetry.Counter
	Evictions      *telemetry.Counter
	Writes         *telemetry.Counter
	WriteErrors    *telemetry.Counter
	CorruptDropped *telemetry.Counter
	Persisted      *telemetry.Counter
}

// NewCacheMetrics builds the cache counter set on reg; a nil registry
// yields detached (unexported but functional) counters.
func NewCacheMetrics(reg *telemetry.Registry) *CacheMetrics {
	if reg == nil {
		return &CacheMetrics{
			L1Hits: &telemetry.Counter{}, L1Misses: &telemetry.Counter{},
			L2Hits: &telemetry.Counter{}, L2Misses: &telemetry.Counter{},
			Evictions: &telemetry.Counter{}, Writes: &telemetry.Counter{},
			WriteErrors: &telemetry.Counter{}, CorruptDropped: &telemetry.Counter{},
			Persisted: &telemetry.Counter{},
		}
	}
	return &CacheMetrics{
		L1Hits: reg.Counter("cmpserved_result_cache_l1_hits_total",
			"Result-cache lookups served by the in-memory L1 LRU."),
		L1Misses: reg.Counter("cmpserved_result_cache_l1_misses_total",
			"Result-cache lookups that missed L1."),
		L2Hits: reg.Counter("cmpserved_result_cache_l2_hits_total",
			"Result-cache lookups served by the on-disk L2 (promoted into L1)."),
		L2Misses: reg.Counter("cmpserved_result_cache_l2_misses_total",
			"Result-cache lookups that missed both levels."),
		Evictions: reg.Counter("cmpserved_result_cache_evictions_total",
			"L1 LRU evictions."),
		Writes: reg.Counter("cmpserved_result_cache_writes_total",
			"Successful result-cache Put calls."),
		WriteErrors: reg.Counter("cmpserved_result_cache_write_errors_total",
			"Soft L2 write failures (the result stays servable from L1)."),
		CorruptDropped: reg.Counter("cmpserved_result_cache_corrupt_dropped_total",
			"Invalid L2 files deleted and treated as misses."),
		Persisted: reg.Counter("cmpserved_result_cache_persisted_total",
			"L1 entries re-written to L2 by the shutdown Persist sweep."),
	}
}

// CacheStats is the /debug/stats cache payload: a point-in-time reading
// of the CacheMetrics counters plus current L1 occupancy.
type CacheStats struct {
	L1Hits         uint64 `json:"l1_hits"`
	L1Misses       uint64 `json:"l1_misses"`
	L2Hits         uint64 `json:"l2_hits"`
	L2Misses       uint64 `json:"l2_misses"`
	Evictions      uint64 `json:"evictions"`       // L1 LRU evictions
	Writes         uint64 `json:"writes"`          // successful Put calls
	WriteErrors    uint64 `json:"write_errors"`    // L2 write failures (soft)
	CorruptDropped uint64 `json:"corrupt_dropped"` // invalid L2 files treated as misses
	Persisted      uint64 `json:"persisted"`       // L1 entries re-written to L2 by Persist

	L1Entries int   `json:"l1_entries"` // current L1 occupancy
	L1Bytes   int64 `json:"l1_bytes"`   // current L1 payload bytes
}

// Cache is the two-level result cache. It is safe for concurrent use.
//
// Level 1 is an in-memory LRU bounded by entry count and payload bytes.
// Level 2 is a directory of hash-sharded JSON files (<dir>/<key[:2]>/
// <key>.json) written atomically via temp-file + rename; a file that
// fails to read back as valid JSON — truncated by a crash, corrupted on
// disk — is deleted and treated as a miss, to be repaired by the next
// Put. Puts write through to L2; Persist re-writes any L1 entry whose
// L2 file is missing or invalid (the shutdown path).
type Cache struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	maxEntries int
	maxBytes   int64
	dir        string

	met *CacheMetrics
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds the cache, creating the L2 directory when configured.
func NewCache(opts CacheOptions) (*Cache, error) {
	if opts.L1Entries <= 0 {
		opts.L1Entries = DefaultL1Entries
	}
	if opts.L1Bytes <= 0 {
		opts.L1Bytes = DefaultL1Bytes
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	if opts.Metrics == nil {
		opts.Metrics = NewCacheMetrics(nil)
	}
	return &Cache{
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		maxEntries: opts.L1Entries,
		maxBytes:   opts.L1Bytes,
		dir:        opts.Dir,
		met:        opts.Metrics,
	}, nil
}

// path shards keys by their first two hex characters so no single
// directory accumulates every result.
func (c *Cache) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(c.dir, shard, key+".json")
}

// Get returns the cached payload for key and the level that served it.
// The returned slice is shared and must be treated as read-only.
func (c *Cache) Get(key string) ([]byte, CacheLevel, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		c.met.L1Hits.Inc()
		return data, CacheL1, true
	}
	c.mu.Unlock()
	c.met.L1Misses.Inc()

	if c.dir == "" {
		return nil, CacheMiss, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.met.L2Misses.Inc()
		return nil, CacheMiss, false
	}
	if !json.Valid(data) {
		// Truncated or corrupted file: drop it so the next Put repairs
		// the slot, and report a miss.
		os.Remove(c.path(key))
		c.met.L2Misses.Inc()
		c.met.CorruptDropped.Inc()
		return nil, CacheMiss, false
	}
	c.mu.Lock()
	c.install(key, data)
	c.mu.Unlock()
	c.met.L2Hits.Inc()
	return data, CacheL2, true
}

// Put stores data under key in L1 and writes it through to L2. L2 write
// failures are soft (counted, not returned): the result stays servable
// from L1 and Persist retries the disk write at shutdown.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	c.install(key, data)
	c.mu.Unlock()
	c.met.Writes.Inc()
	if c.dir != "" {
		if err := c.writeL2(key, data); err != nil {
			c.met.WriteErrors.Inc()
		}
	}
}

// install places (key, data) at the L1 MRU position and evicts from the
// LRU end until the bounds hold again. Caller holds mu.
func (c *Cache) install(key string, data []byte) {
	if el, ok := c.items[key]; ok {
		c.bytes += int64(len(data)) - int64(len(el.Value.(*cacheEntry).data))
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.data))
		c.met.Evictions.Inc()
	}
}

// writeL2 stores data atomically: write a private temp file in the
// destination directory, then rename over the final path, so readers
// only ever observe complete files (a crash mid-write leaves a stray
// .tmp, never a truncated result).
func (c *Cache) writeL2(key string, data []byte) error {
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// Persist writes every L1 entry whose L2 file is missing or invalid
// back to disk — the graceful-shutdown sweep that guarantees memory
// contents survive a restart. It returns the first write error after
// attempting every entry.
func (c *Cache) Persist() error {
	if c.dir == "" {
		return nil
	}
	c.mu.Lock()
	entries := make([]*cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()

	var firstErr error
	var persisted uint64
	for _, e := range entries {
		if onDisk, err := os.ReadFile(c.path(e.key)); err == nil && json.Valid(onDisk) {
			continue
		}
		if err := c.writeL2(e.key, e.data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		persisted++
	}
	c.met.Persisted.Add(persisted)
	return firstErr
}

// Stats returns a snapshot of the counters plus current L1 occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return CacheStats{
		L1Hits:         c.met.L1Hits.Value(),
		L1Misses:       c.met.L1Misses.Value(),
		L2Hits:         c.met.L2Hits.Value(),
		L2Misses:       c.met.L2Misses.Value(),
		Evictions:      c.met.Evictions.Value(),
		Writes:         c.met.Writes.Value(),
		WriteErrors:    c.met.WriteErrors.Value(),
		CorruptDropped: c.met.CorruptDropped.Value(),
		Persisted:      c.met.Persisted.Value(),
		L1Entries:      entries,
		L1Bytes:        bytes,
	}
}
