package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"cmpcache/internal/sweep"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// SubmitRequest is the POST /v1/jobs body: either an explicit job list
// or a sweep grid (the cross product of the axes, with cmpsweep's
// defaulting: empty workloads/mechanisms mean "all", empty outstanding
// means the paper default).
type SubmitRequest struct {
	// Jobs, when non-empty, is the explicit list and the grid axes are
	// ignored.
	Jobs []sweep.Job `json:"jobs,omitempty"`

	Workloads []string `json:"workloads,omitempty"`
	// Traces are captured-trace inputs (sharded trace directories or
	// flat trace files, as server-local paths) swept alongside — or
	// instead of — the synthetic workloads.
	Traces      []string `json:"traces,omitempty"`
	Mechanisms  []string `json:"mechanisms,omitempty"`
	Outstanding []int    `json:"outstanding,omitempty"`
	TableSizes  []int    `json:"table_sizes,omitempty"`
	Refs        int      `json:"refs,omitempty"`
}

// expand materializes the request into concrete jobs.
func (r *SubmitRequest) expand() ([]sweep.Job, error) {
	if len(r.Jobs) > 0 {
		for _, j := range r.Jobs {
			if j.TraceFile != "" {
				if j.Workload != "" {
					return nil, fmt.Errorf("job sets both TraceFile %q and Workload %q", j.TraceFile, j.Workload)
				}
				if _, err := trace.Describe(j.TraceFile); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := workload.ByName(j.Workload); err != nil {
				return nil, err
			}
		}
		return r.Jobs, nil
	}
	plan := sweep.Plan{
		Workloads:     r.Workloads,
		TraceFiles:    r.Traces,
		Outstanding:   r.Outstanding,
		TableSizes:    r.TableSizes,
		RefsPerThread: r.Refs,
	}
	for _, m := range r.Mechanisms {
		parsed, err := sweep.ParseMechanisms(m)
		if err != nil {
			return nil, err
		}
		plan.Mechanisms = append(plan.Mechanisms, parsed...)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan.Jobs(), nil
}

// SubmitResponse answers POST /v1/jobs with one entry per job, in
// submission order.
type SubmitResponse struct {
	Jobs []JobView `json:"jobs"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit a config or grid -> job IDs
//	GET    /v1/jobs              list all jobs (status only)
//	GET    /v1/jobs/{id}         status + result JSON when done
//	DELETE /v1/jobs/{id}         cancel a queued/running job
//	GET    /v1/jobs/{id}/events  SSE: status transitions + interval-metrics samples
//	GET    /v1/jobs/{id}/latency stage-attributed latency report (txlat)
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 before the pool is up / once drain begins)
//	GET    /metrics              Prometheus text exposition of the telemetry registry
//	GET    /debug/stats          cache/queue/job counters (JSON view of the same registry)
//	GET    /debug/pprof/         runtime profiles (CPU, heap, goroutine, ...)
//
// Every route runs inside the telemetry middleware: request-ID
// assignment, per-route latency histograms, and structured logging.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", d.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/latency", d.handleLatency)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !d.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Snapshot())
	})
	// net/http/pprof only self-registers on the default mux; wire its
	// handlers onto ours explicitly.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return d.withTelemetry(mux)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	jobs, err := req.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs = sweep.OverrideJobs(jobs, d.opts.Overrides)
	states, err := d.SubmitOrigin(jobs, RequestID(r.Context()))
	if err != nil {
		status := http.StatusInternalServerError
		var rej *RejectError
		if errors.As(err, &rej) {
			status = rej.Status
		}
		httpError(w, status, "%v", err)
		return
	}
	resp := SubmitResponse{Jobs: make([]JobView, len(states))}
	allDone := true
	for i, s := range states {
		resp.Jobs[i] = s.view(false)
		if resp.Jobs[i].Status != JobDone {
			allDone = false
		}
	}
	// 200 when every job was answered from the cache, 202 otherwise.
	code := http.StatusAccepted
	if allDone {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	d.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j, ok := d.Job(id); ok {
			views = append(views, j.view(false))
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := d.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	cancelled, found := d.Cancel(r.PathValue("id"))
	switch {
	case !found:
		httpError(w, http.StatusNotFound, "no such job")
	case !cancelled:
		httpError(w, http.StatusConflict, "job already finished")
	default:
		writeJSON(w, http.StatusOK, struct {
			Canceled bool `json:"canceled"`
		}{true})
	}
}

// handleEvents streams the job's lifecycle as server-sent events:
// "status" frames on every transition, then — once the job completes —
// one "sample" frame per interval-metrics window collected during the
// run, and a final "done" frame. Late subscribers to a finished job
// receive the sample replay and "done" immediately.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := d.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	d.met.sse.Inc()
	defer d.met.sse.Dec()
	ch := j.subscribe(16)
	defer j.unsubscribe(ch)

	send := func(typ string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, data)
		flusher.Flush()
	}
	if data, err := json.Marshal(j.view(false)); err == nil {
		send("status", data)
	}
	for {
		if st, _ := j.snapshot(); st.Terminal() {
			break
		}
		select {
		case ev := <-ch:
			send(ev.Type, ev.Data)
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	// Terminal: emit the final status, the metrics samples, then done.
	final := j.view(false)
	if data, err := json.Marshal(final); err == nil {
		send("status", data)
	}
	_, result := j.snapshot()
	if len(result) > 0 {
		var payload struct {
			Metrics *struct {
				Samples []json.RawMessage `json:"samples"`
			} `json:"Metrics"`
		}
		if err := json.Unmarshal(result, &payload); err == nil && payload.Metrics != nil {
			for _, s := range payload.Metrics.Samples {
				send("sample", s)
			}
		}
	}
	if data, err := json.Marshal(struct {
		Status     JobStatus  `json:"status"`
		Cached     bool       `json:"cached"`
		CacheLevel CacheLevel `json:"cache_level,omitempty"`
		Error      string     `json:"error,omitempty"`
	}{final.Status, final.Cached, final.CacheLevel, final.Error}); err == nil {
		send("done", data)
	}
}

// handleLatency extracts the stage-attributed latency report (txlat,
// DESIGN.md §13) from the job's result, in the cmpsim -lat-out /
// cmpreport file format.
func (d *Daemon) handleLatency(w http.ResponseWriter, r *http.Request) {
	j, ok := d.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st, result := j.snapshot()
	if st != JobDone {
		httpError(w, http.StatusConflict, "job status is %s", st)
		return
	}
	var payload struct {
		Cycles  uint64          `json:"Cycles"`
		Latency json.RawMessage `json:"Latency"`
	}
	if err := json.Unmarshal(result, &payload); err != nil {
		httpError(w, http.StatusInternalServerError, "decode result: %v", err)
		return
	}
	if len(payload.Latency) == 0 || string(payload.Latency) == "null" {
		httpError(w, http.StatusNotFound, "latency collection is disabled on this server (start cmpserved with -latency)")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Workload    string          `json:"Workload"`
		Mechanism   string          `json:"Mechanism"`
		Outstanding int             `json:"Outstanding"`
		Cycles      uint64          `json:"Cycles"`
		Latency     json.RawMessage `json:"Latency"`
	}{
		Workload:    j.Job.Workload,
		Mechanism:   j.Job.Mechanism.String(),
		Outstanding: j.Job.Config().MaxOutstanding,
		Cycles:      payload.Cycles,
		Latency:     payload.Latency,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
