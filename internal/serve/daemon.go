package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/sweep"
	"cmpcache/internal/system"
	"cmpcache/internal/telemetry"
	"cmpcache/internal/txlat"
)

// Options configures a Daemon.
type Options struct {
	// CacheDir is the on-disk L2 root; empty disables the disk level
	// (the L1 still memoizes within the process lifetime).
	CacheDir string
	// L1Entries / L1Bytes bound the in-memory L1 (defaults in cache.go).
	L1Entries int
	L1Bytes   int64

	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	// When Shards puts more than one shard worker inside each run, the
	// pool is clamped so workers x shards stays within GOMAXPROCS
	// (sweep.FitWorkers).
	Workers int
	// Shards sets each run's intra-run parallelism (0 = serial runs,
	// < 0 = auto, N = N shard workers; see sweep.Options.Shards).
	// Results are bit-identical at every shard count, so — unlike the
	// observability options — Shards is NOT part of the cache key.
	Shards int
	// QueueDepth bounds jobs accepted but not yet running; <= 0 means
	// DefaultQueueDepth. A submission that would overflow the queue is
	// rejected whole with 429 and no side effects.
	QueueDepth int
	// JobTimeout, when positive, cancels any single simulation running
	// longer (the job reports failed/deadline-exceeded).
	JobTimeout time.Duration

	// MetricsInterval, when positive, attaches an interval-metrics
	// probe to every run; the samples ride in the result JSON and
	// stream on /v1/jobs/{id}/events. Part of the cache key: results
	// collected under different observability settings have different
	// bytes, so they must not alias.
	MetricsInterval config.Cycles
	// Latency attaches the per-transaction latency collector to every
	// run, enabling /v1/jobs/{id}/latency. Also part of the cache key.
	Latency bool
	// LatencyTopK sizes the slowest-transaction reservoir (0 = txlat
	// default).
	LatencyTopK int

	// Run overrides the job executor (tests, fault injection). Nil
	// uses a shared sweep.Simulator configured from the fields above.
	Run sweep.RunFunc

	// Overrides, when non-nil, applies the daemon's command-line policy
	// knob overrides to every submitted job (sweep.OverrideJobs) before
	// keying and execution, so server-side defaults participate in the
	// cache key exactly like client-specified knobs.
	Overrides *config.Overrides

	// Registry receives every daemon metric and backs GET /metrics.
	// Nil means the daemon creates a private registry (still scrapeable
	// via its own endpoint — there is no detached mode for the daemon,
	// only for the instruments' nil-safe use elsewhere). A Registry must
	// be exclusive to one Daemon: metric names carry no per-daemon
	// label, so sharing one would alias counters across daemons. New
	// fails fast (panics on the duplicate gauge-func registration) if a
	// Registry is reused for a second Daemon.
	Registry *telemetry.Registry
	// Logger receives the structured request/job log (one line per HTTP
	// request and per job lifecycle step, each carrying the request ID).
	// Nil discards.
	Logger *slog.Logger
}

// DefaultQueueDepth bounds the accepted-but-not-running backlog.
const DefaultQueueDepth = 256

// ErrShuttingDown rejects submissions arriving after Shutdown began.
var ErrShuttingDown = errors.New("serve: daemon is shutting down")

// RejectError is a submission rejection with an HTTP status attached.
type RejectError struct {
	Status int
	Msg    string
}

func (e *RejectError) Error() string { return e.Msg }

// Daemon executes simulation jobs behind the two-level result cache.
// Create with New, serve its Handler, stop with Shutdown.
type Daemon struct {
	opts  Options
	cache *Cache
	run   sweep.RunFunc
	// observeSalt folds the observability configuration into every job
	// key: a result collected with metrics or latency attached has
	// different bytes than a bare one, so the two must never alias in
	// the cache (e.g. across daemon restarts with different flags).
	observeSalt []byte

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*jobState
	order   []string             // job IDs in submission order
	primary map[string]*jobState // key -> in-flight primary
	queue   chan *jobState
	closed  bool
	seq     int

	wg    sync.WaitGroup
	start time.Time

	// Telemetry (DESIGN.md §18): every daemon counter lives in reg via
	// met; /debug/stats and /metrics render the same instruments.
	reg    *telemetry.Registry
	met    *daemonMetrics
	log    *slog.Logger
	idBase string        // request-ID prefix, unique per daemon start
	reqSeq atomic.Uint64 // request-ID sequence

	// ready flips on once the pool is up; draining flips on when
	// shutdown begins. GET /readyz is their conjunction.
	ready    atomic.Bool
	draining atomic.Bool
}

// New builds the daemon and starts its worker pool.
func New(opts Options) (*Daemon, error) {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	met := newDaemonMetrics(reg)
	cache, err := NewCache(CacheOptions{
		Dir: opts.CacheDir, L1Entries: opts.L1Entries, L1Bytes: opts.L1Bytes,
		Metrics: NewCacheMetrics(reg),
	})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if opts.Run == nil {
		workers, _ = sweep.FitWorkers(workers, shards)
		if shards < 0 {
			shards = sweep.AutoShards(workers)
		}
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	run := opts.Run
	if run == nil {
		sim := sweep.NewSimulator()
		sim.MetricsInterval = opts.MetricsInterval
		if opts.Latency {
			sim.Latency = &txlat.Config{TopK: opts.LatencyTopK}
		}
		sim.Shards = shards
		sim.SourceOpens = met.traceOpens
		sim.SourceHits = met.traceHits
		run = sim.Run
	}
	salt, err := sweep.Canonical(struct {
		MetricsInterval config.Cycles
		Latency         bool
		LatencyTopK     int
	}{opts.MetricsInterval, opts.Latency, opts.LatencyTopK})
	if err != nil {
		return nil, err
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts:        opts,
		cache:       cache,
		run:         run,
		observeSalt: salt,
		baseCtx:     ctx,
		cancelAll:   cancel,
		jobs:        make(map[string]*jobState),
		primary:     make(map[string]*jobState),
		queue:       make(chan *jobState, depth),
		start:       time.Now(),
		reg:         reg,
		met:         met,
		log:         logger,
		idBase:      strconv.FormatInt(time.Now().UnixMilli(), 36),
	}
	d.registerGaugeFuncs(reg)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	d.ready.Store(true)
	return d, nil
}

// Registry exposes the daemon's metric registry (GET /metrics renders
// it; tests read it).
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// Ready reports whether the daemon is accepting work: the pool is up
// and drain has not begun. GET /readyz maps this to 200/503 so load
// balancers stop routing during the shutdown drain window.
func (d *Daemon) Ready() bool { return d.ready.Load() && !d.draining.Load() }

// BeginDrain marks the daemon not-ready ahead of Shutdown. cmpserved
// calls it the moment SIGTERM arrives — before closing the listener —
// so /readyz flips to 503 while in-flight requests still complete.
func (d *Daemon) BeginDrain() { d.draining.Store(true) }

// jobKey is the canonical content hash of the simulation plus the
// daemon's observability settings — see observeSalt.
func (d *Daemon) jobKey(j sweep.Job) (string, error) {
	m, err := sweep.KeyMaterial(j)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(m)
	h.Write(d.observeSalt)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Submit registers jobs and returns their states in order. Each job is
// answered one of three ways, decided atomically under the daemon lock:
//
//   - cache hit (L1 or L2): completed immediately, zero work queued;
//   - identical to an in-flight primary: collapsed onto it
//     (singleflight — one simulation will serve all waiters);
//   - otherwise: enqueued as a new primary, unless the queue cannot
//     hold every new primary in the submission, in which case the whole
//     submission is rejected with 429 and no side effects.
func (d *Daemon) Submit(jobs []sweep.Job) ([]*jobState, error) {
	return d.SubmitOrigin(jobs, "")
}

// SubmitOrigin is Submit with the originating request ID attached to
// every job, so the job log lines produced later (run, cache store)
// trace back to the submission.
func (d *Daemon) SubmitOrigin(jobs []sweep.Job, origin string) ([]*jobState, error) {
	if len(jobs) == 0 {
		return nil, &RejectError{Status: 400, Msg: "empty job list"}
	}
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		k, err := d.jobKey(j)
		if err != nil {
			return nil, &RejectError{Status: 400, Msg: err.Error()}
		}
		keys[i] = k
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, &RejectError{Status: 503, Msg: ErrShuttingDown.Error()}
	}

	// First pass: how many fresh queue slots does this submission need?
	// (Duplicates within one submission collapse onto the first
	// occurrence, so they count once.) Cache lookups done for counting
	// are kept and reused below, so each key is probed — and its serving
	// level recorded — exactly once.
	type hit struct {
		data  []byte
		level CacheLevel
	}
	needed := 0
	hits := make(map[string]hit, len(jobs))
	inSubmission := make(map[string]bool, len(jobs))
	for _, k := range keys {
		if inSubmission[k] || d.primary[k] != nil {
			continue
		}
		inSubmission[k] = true
		if data, level, ok := d.cache.Get(k); ok {
			hits[k] = hit{data, level}
			continue
		}
		needed++
	}
	if free := cap(d.queue) - len(d.queue); needed > free {
		d.met.rejected.Add(uint64(len(jobs)))
		d.log.Info("submit rejected", "id", origin, "jobs", len(jobs), "needed", needed, "free", free)
		return nil, &RejectError{
			Status: 429,
			Msg:    fmt.Sprintf("queue full: submission needs %d slots, %d free", needed, free),
		}
	}

	out := make([]*jobState, len(jobs))
	for i, job := range jobs {
		key := keys[i]
		d.seq++
		j := newJobState(fmt.Sprintf("j%08d", d.seq), key, job, origin)
		d.jobs[j.ID] = j
		d.order = append(d.order, j.ID)
		d.met.submitted.Inc()
		out[i] = j

		if h, ok := hits[key]; ok {
			d.met.cacheHits.Inc()
			j.complete(JobDone, h.data, "", true, h.level)
			d.met.completed.Inc()
			d.log.Info("job cache hit", "id", origin, "job", j.ID, "key", shortKey(key), "level", h.level)
			continue
		}
		if p := d.primary[key]; p != nil {
			d.met.collapsed.Inc()
			p.mu.Lock()
			p.waiters = append(p.waiters, j)
			p.mu.Unlock()
			d.log.Info("job collapsed", "id", origin, "job", j.ID, "key", shortKey(key), "primary", p.ID)
			continue
		}
		d.primary[key] = j
		// Cannot block: capacity was reserved above under the same lock
		// and only Submit ever sends.
		d.queue <- j
		d.log.Info("job queued", "id", origin, "job", j.ID, "key", shortKey(key))
	}
	return out, nil
}

// shortKey truncates a cache key for log lines (full keys live in the
// job views).
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Job returns the state for id.
func (d *Daemon) Job(id string) (*jobState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. Collapsed
// waiters detach individually; cancelling a primary cancels its run
// (and thereby completes every waiter as canceled).
func (d *Daemon) Cancel(id string) (bool, bool) {
	j, ok := d.Job(id)
	if !ok {
		return false, false
	}
	cancelled := j.requestCancel("canceled by client")
	if cancelled {
		// A queued job completes synchronously inside requestCancel and
		// no worker will count it; a running one is counted by the
		// worker when it observes the cancellation.
		if st, _ := j.snapshot(); st == JobCanceled {
			d.met.canceled.Inc()
		}
	}
	return cancelled, true
}

// worker drains the queue until Shutdown closes it.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for j := range d.queue {
		d.runOne(j)
	}
}

// runOne executes one primary job with panic isolation and per-job
// timeout, writes the result through the cache, and completes the job
// and all collapsed waiters.
func (d *Daemon) runOne(j *jobState) {
	ctx, cancel := context.WithCancel(d.baseCtx)
	if d.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(d.baseCtx, d.opts.JobTimeout)
	}
	defer cancel()
	if !j.markRunning(cancel) {
		// Cancelled while queued; release the primary slot.
		d.finishPrimary(j, JobCanceled, nil, j.view(false).Error)
		return
	}
	d.met.running.Inc()
	defer d.met.running.Dec()
	started := time.Now()
	d.met.jobQueueSeconds.Observe(started.Sub(j.enqueuedAt()).Seconds())
	d.log.Info("job run", "id", j.origin, "job", j.ID, "key", shortKey(j.Key))

	res, err := d.execute(ctx, j.Job)
	if err != nil {
		status := JobFailed
		if errors.Is(err, context.Canceled) {
			status = JobCanceled
		}
		d.log.Info("job finished", "id", j.origin, "job", j.ID,
			"status", status, "dur", time.Since(started), "error", err.Error())
		d.finishPrimary(j, status, nil, err.Error())
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		errMsg := fmt.Sprintf("marshal result: %v", err)
		d.log.Info("job finished", "id", j.origin, "job", j.ID,
			"status", JobFailed, "dur", time.Since(started), "error", errMsg)
		d.finishPrimary(j, JobFailed, nil, errMsg)
		return
	}
	d.met.simRuns.Inc()
	d.met.simEvents.Add(res.EventsFired)
	d.met.jobRunSeconds.Observe(time.Since(started).Seconds())
	d.cache.Put(j.Key, data)
	d.log.Info("job finished", "id", j.origin, "job", j.ID,
		"status", JobDone, "dur", time.Since(started), "events", res.EventsFired)
	d.log.Info("cache store", "id", j.origin, "job", j.ID,
		"key", shortKey(j.Key), "bytes", len(data))
	d.finishPrimary(j, JobDone, data, "")
}

// execute runs the job, converting a panic into an error so one broken
// configuration fails its job instead of killing the daemon.
func (d *Daemon) execute(ctx context.Context, job sweep.Job) (res *system.Results, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("serve: job %s panicked: %v", job, p)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.run(ctx, job)
}

// finishPrimary completes a primary and its collapsed waiters, and
// frees the key for future submissions.
func (d *Daemon) finishPrimary(j *jobState, status JobStatus, data []byte, errMsg string) {
	d.mu.Lock()
	if d.primary[j.Key] == j {
		delete(d.primary, j.Key)
	}
	d.mu.Unlock()

	j.mu.Lock()
	waiters := j.waiters
	j.waiters = nil
	j.mu.Unlock()

	d.count(j.complete(status, data, errMsg, false, CacheMiss), status)
	for _, w := range waiters {
		if status == JobDone {
			d.count(w.complete(JobDone, data, "", true, ServedCollapsed), JobDone)
		} else {
			d.count(w.complete(status, nil, errMsg, false, CacheMiss), status)
		}
	}
}

// count tallies a terminal transition (transitioned reports whether
// complete actually flipped the job; an already-terminal job — e.g.
// cancelled while queued — was counted when it flipped).
func (d *Daemon) count(transitioned bool, status JobStatus) {
	if !transitioned {
		return
	}
	switch status {
	case JobDone:
		d.met.completed.Inc()
	case JobFailed:
		d.met.failed.Inc()
	case JobCanceled:
		d.met.canceled.Inc()
	}
}

// Stats is the /debug/stats payload.
type Stats struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	Cache         CacheStats `json:"cache"`

	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Running    int64 `json:"running"`

	Submitted    uint64 `json:"submitted"`
	SimRuns      uint64 `json:"sim_runs"`
	SimEvents    uint64 `json:"sim_events"`
	CacheServed  uint64 `json:"cache_served"`
	Collapsed    uint64 `json:"collapsed"`
	Rejected     uint64 `json:"rejected"`
	Completed    uint64 `json:"completed"`
	Failed       uint64 `json:"failed"`
	Canceled     uint64 `json:"canceled"`
	JobsRetained int    `json:"jobs_retained"`
	ShuttingDown bool   `json:"shutting_down"`
}

// Snapshot gathers the current daemon statistics. Every counter is read
// from the telemetry registry's instruments — /debug/stats and /metrics
// are two renderings of the same source of truth.
func (d *Daemon) Snapshot() Stats {
	d.mu.Lock()
	depth := len(d.queue)
	capacity := cap(d.queue)
	retained := len(d.jobs)
	closed := d.closed
	d.mu.Unlock()
	return Stats{
		UptimeSeconds: time.Since(d.start).Seconds(),
		Cache:         d.cache.Stats(),
		QueueDepth:    depth,
		QueueCap:      capacity,
		Running:       d.met.running.Value(),
		Submitted:     d.met.submitted.Value(),
		SimRuns:       d.met.simRuns.Value(),
		SimEvents:     d.met.simEvents.Value(),
		CacheServed:   d.met.cacheHits.Value(),
		Collapsed:     d.met.collapsed.Value(),
		Rejected:      d.met.rejected.Value(),
		Completed:     d.met.completed.Value(),
		Failed:        d.met.failed.Value(),
		Canceled:      d.met.canceled.Value(),
		JobsRetained:  retained,
		ShuttingDown:  closed,
	}
}

// Shutdown stops the daemon gracefully: no new submissions are
// accepted, queued and running jobs drain normally until ctx expires,
// after which everything still in flight is cancelled (the simulator
// observes its context within milliseconds), and finally the L1 cache
// contents are persisted to the L2 directory. It returns ctx's error
// when the deadline forced cancellation, else the first persist error.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.BeginDrain()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("serve: already shut down")
	}
	d.closed = true
	close(d.queue)
	d.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(drained)
	}()
	var forced error
	select {
	case <-drained:
	case <-ctx.Done():
		forced = ctx.Err()
		d.cancelAll()
		<-drained // cancellation is cooperative and prompt; wait it out
	}
	d.cancelAll() // release the base context in the clean path too
	if err := d.cache.Persist(); err != nil && forced == nil {
		return err
	}
	return forced
}

// Cache exposes the result cache (tests and the stats endpoint).
func (d *Daemon) Cache() *Cache { return d.cache }
