package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newTestCache(t *testing.T, opts CacheOptions) *Cache {
	t.Helper()
	c, err := NewCache(opts)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

// TestCacheEvictionOrder pins the LRU contract: with a 2-entry bound,
// touching an entry protects it and the least recently used one falls
// out instead.
func TestCacheEvictionOrder(t *testing.T) {
	c := newTestCache(t, CacheOptions{L1Entries: 2})
	c.Put("a", []byte(`{"v":"a"}`))
	c.Put("b", []byte(`{"v":"b"}`))

	// Touch a so b becomes the LRU entry, then insert c.
	if _, level, ok := c.Get("a"); !ok || level != CacheL1 {
		t.Fatalf("Get(a) = (%q, %v), want L1 hit", level, ok)
	}
	c.Put("c", []byte(`{"v":"c"}`))

	if _, _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want it evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, level, ok := c.Get(k); !ok || level != CacheL1 {
			t.Errorf("Get(%s) = (%q, %v), want L1 hit", k, level, ok)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.L1Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction and 2 entries", s)
	}
}

// TestCacheByteBound proves the byte bound evicts independently of the
// entry bound.
func TestCacheByteBound(t *testing.T) {
	c := newTestCache(t, CacheOptions{L1Entries: 100, L1Bytes: 64})
	big := []byte(fmt.Sprintf(`{"pad":%q}`, bytes.Repeat([]byte("x"), 40)))
	c.Put("a", big)
	c.Put("b", big) // a + b exceed 64 bytes -> a evicted
	if _, _, ok := c.Get("a"); ok {
		t.Error("a survived; want evicted by the byte bound")
	}
	if _, _, ok := c.Get("b"); !ok {
		t.Error("b missing; want retained")
	}
	if s := c.Stats(); s.L1Bytes > 64 {
		t.Errorf("L1Bytes = %d, want <= 64", s.L1Bytes)
	}
}

// TestCacheL2HitPromotesToL1 proves the miss path L1 -> L2 -> promote: a
// fresh process (new Cache over the same directory) finds the result on
// disk and subsequent lookups hit in memory.
func TestCacheL2HitPromotesToL1(t *testing.T) {
	dir := t.TempDir()
	warm := newTestCache(t, CacheOptions{Dir: dir})
	payload := []byte(`{"v":1}`)
	warm.Put("k", payload)

	cold := newTestCache(t, CacheOptions{Dir: dir})
	data, level, ok := cold.Get("k")
	if !ok || level != CacheL2 || !bytes.Equal(data, payload) {
		t.Fatalf("cold Get = (%s, %q, %v), want L2 hit with original bytes", data, level, ok)
	}
	if _, level, ok = cold.Get("k"); !ok || level != CacheL1 {
		t.Fatalf("second Get level = %q, want promoted L1 hit", level)
	}
	s := cold.Stats()
	if s.L2Hits != 1 || s.L1Hits != 1 {
		t.Errorf("stats = %+v, want one L2 hit then one L1 hit", s)
	}
}

// TestCacheCorruptL2IsMissAndRepaired proves a truncated or corrupted
// L2 file is treated as a miss (and deleted), and that the next Put
// repairs the slot.
func TestCacheCorruptL2IsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, CacheOptions{Dir: dir})
	path := c.path("deadbeef")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// A prefix of valid JSON, as a crash mid-write without atomic rename
	// would leave behind.
	if err := os.WriteFile(path, []byte(`{"v":1,"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := c.Get("deadbeef"); ok {
		t.Fatal("corrupt file served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file not deleted (err=%v)", err)
	}
	if s := c.Stats(); s.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", s.CorruptDropped)
	}

	repaired := []byte(`{"v":1}`)
	c.Put("deadbeef", repaired)
	if onDisk, err := os.ReadFile(path); err != nil || !bytes.Equal(onDisk, repaired) {
		t.Errorf("slot not repaired: data=%s err=%v", onDisk, err)
	}
}

// TestCachePersist proves the shutdown sweep rewrites L1 entries whose
// disk file is missing, so memory-only results survive a restart.
func TestCachePersist(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, CacheOptions{Dir: dir})
	c.Put("k1", []byte(`{"v":1}`))
	c.Put("k2", []byte(`{"v":2}`))

	// Simulate a lost write: remove one file behind the cache's back.
	if err := os.Remove(c.path("k1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Persist(); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if s := c.Stats(); s.Persisted != 1 {
		t.Errorf("Persisted = %d, want exactly the missing entry rewritten", s.Persisted)
	}
	cold := newTestCache(t, CacheOptions{Dir: dir})
	if _, level, ok := cold.Get("k1"); !ok || level != CacheL2 {
		t.Errorf("k1 after persist = (%q, %v), want L2 hit", level, ok)
	}
}
