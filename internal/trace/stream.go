package trace

// Stream yields one thread's reference stream in order, a chunk at a
// time. A nil chunk with a nil error marks the end of the stream. The
// returned slice is only valid until the next NextChunk call — streaming
// readers reuse the decode buffer so replaying a multi-billion-record
// trace holds one chunk per thread in memory, never the whole trace.
type Stream interface {
	NextChunk() ([]Record, error)
}

// Source is a replayable trace whose per-thread streams can be consumed
// without materializing every record: the sharded on-disk store
// (Sharded) streams batches from disk, MemSource adapts an in-memory
// Trace. Record counts are exact — sizing decisions (event-queue
// pre-allocation, pool priming) rely on them.
type Source interface {
	Name() string
	Threads() int
	Records() int64
	ThreadRecords(tid int) int64
	Stream(tid int) Stream
}

// MemSource adapts an in-memory Trace to the Source interface. Each
// thread's stream yields its whole record slice as a single chunk.
type MemSource struct {
	t       *Trace
	streams [][]Record
}

// NewMemSource splits t per thread once and serves streams over the
// result.
func NewMemSource(t *Trace) *MemSource {
	return &MemSource{t: t, streams: t.PerThread()}
}

// Name returns the trace name.
func (m *MemSource) Name() string { return m.t.Name }

// Threads returns the trace thread count.
func (m *MemSource) Threads() int { return m.t.Threads }

// Records returns the total record count.
func (m *MemSource) Records() int64 { return int64(len(m.t.Records)) }

// ThreadRecords returns thread tid's record count.
func (m *MemSource) ThreadRecords(tid int) int64 {
	if tid < 0 || tid >= len(m.streams) {
		return 0
	}
	return int64(len(m.streams[tid]))
}

// Stream returns thread tid's single-chunk stream.
func (m *MemSource) Stream(tid int) Stream {
	if tid < 0 || tid >= len(m.streams) {
		return &sliceStream{}
	}
	return &sliceStream{recs: m.streams[tid]}
}

// sliceStream yields one in-memory slice as a single chunk.
type sliceStream struct {
	recs []Record
	used bool
}

func (s *sliceStream) NextChunk() ([]Record, error) {
	if s.used || len(s.recs) == 0 {
		return nil, nil
	}
	s.used = true
	return s.recs, nil
}

// SummarizeSource computes Stats over a streaming source one chunk at a
// time, holding only the distinct-line set in memory. It is the
// streaming counterpart of Trace.Summarize and produces identical stats
// for equivalent inputs.
func SummarizeSource(src Source, lineBytes int) (Stats, error) {
	a := newStatsAccum(src.Threads(), lineBytes)
	for tid := 0; tid < src.Threads(); tid++ {
		st := src.Stream(tid)
		for {
			chunk, err := st.NextChunk()
			if err != nil {
				return Stats{}, err
			}
			if chunk == nil {
				break
			}
			for _, r := range chunk {
				a.add(r)
			}
		}
	}
	return a.finish(), nil
}
