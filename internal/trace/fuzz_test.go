package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// encodeBinary is a test helper that panics on writer failure (a
// bytes.Buffer cannot fail).
func encodeBinary(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBinaryHugeCountHeader is the OOM regression test: a crafted
// header claiming 2^60 records must fail cleanly on the (absent) record
// data instead of preallocating petabytes.
func TestReadBinaryHugeCountHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var varbuf [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(varbuf[:binary.PutUvarint(varbuf[:], v)]) }
	put(formatVersion)
	put(0)       // empty name
	put(4)       // threads
	put(1 << 60) // record count far beyond the data that follows
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("2^60-record header accepted")
	}
}

// TestReadBinaryHugeNameLength guards the name-length cap the same way.
func TestReadBinaryHugeNameLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var varbuf [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(varbuf[:binary.PutUvarint(varbuf[:], v)]) }
	put(formatVersion)
	put(1 << 40) // name length
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "name length") {
		t.Fatalf("err = %v, want implausible-name-length rejection", err)
	}
}

// TestReadBinaryRejectsTrailingGarbage: data past the declared record
// count is corruption, not padding.
func TestReadBinaryRejectsTrailingGarbage(t *testing.T) {
	b := append(encodeBinary(t, sample()), 0x00)
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-data rejection", err)
	}
}

// TestBinaryExtremeDeltas round-trips addresses whose per-thread deltas
// span the full signed 64-bit range (0 -> MaxUint64 -> 0), the zigzag
// edge cases.
func TestBinaryExtremeDeltas(t *testing.T) {
	tr := &Trace{Name: "extreme", Threads: 2, Records: []Record{
		{Thread: 0, Op: Load, Addr: 0},
		{Thread: 0, Op: Store, Addr: ^uint64(0)},      // delta +MaxUint64 (wraps)
		{Thread: 0, Op: Load, Addr: 0},                // delta -MaxUint64
		{Thread: 0, Op: Load, Addr: 1 << 63},          // delta MinInt64
		{Thread: 1, Op: Ifetch, Addr: ^uint64(0) - 1}, // independent per-thread state
		{Thread: 0, Op: Load, Addr: (1 << 63) - 1},
	}}
	got, err := ReadBinary(bytes.NewReader(encodeBinary(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(tr, got) {
		t.Fatalf("extreme-delta round trip mismatch:\norig %+v\ngot  %+v", tr.Records, got.Records)
	}
}

// TestShardedExtremeDeltas proves the sharded codec handles the same
// edge-case addresses, including across a batch boundary (deltas reset
// per batch, so the first record of each batch carries an absolute
// address zigzagged).
func TestShardedExtremeDeltas(t *testing.T) {
	tr := &Trace{Name: "extreme", Threads: 1, Records: []Record{
		{Op: Load, Addr: ^uint64(0)},
		{Op: Store, Addr: 0},
		{Op: Load, Addr: 1 << 63}, // first record of batch 2 with BatchRecords=2
		{Op: Load, Addr: 5},
	}}
	dir, _ := writeShardedT(t, tr, ShardOptions{Shards: 1, BatchRecords: 2})
	sh, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	got, err := sh.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !equal(tr, got) {
		t.Fatalf("sharded extreme-delta round trip mismatch:\norig %+v\ngot  %+v", tr.Records, got.Records)
	}
}

// TestTriFormatRoundTrip walks one trace binary -> text -> sharded and
// back, proving the three codecs agree on content.
func TestTriFormatRoundTrip(t *testing.T) {
	orig := synth("tri", 4, 100)
	orig.SortByThread() // canonical order shared by all three forms

	bin, err := ReadBinary(bytes.NewReader(encodeBinary(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := WriteText(&txt, bin); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	dir, _ := writeShardedT(t, fromText, ShardOptions{Shards: 2, BatchRecords: 32})
	sh, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	final, err := sh.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !equal(orig, final) {
		t.Fatal("binary -> text -> sharded round trip lost content")
	}
}

// FuzzReadBinary asserts the binary decoder never panics or OOMs on
// arbitrary bytes, and that anything it accepts re-encodes canonically
// (decode(encode(decode(b))) is a fixed point).
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte(magic))
	f.Add([]byte("CMPTx"))
	var empty bytes.Buffer
	WriteBinary(&empty, &Trace{Name: "seed", Threads: 1})
	f.Add(empty.Bytes())
	var seeded bytes.Buffer
	WriteBinary(&seeded, &Trace{Name: "seed", Threads: 2, Records: []Record{
		{Thread: 0, Op: Load, Addr: 0x1000, Gap: 3},
		{Thread: 1, Op: Store, Addr: ^uint64(0), Gap: 0},
	}})
	f.Add(seeded.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		tr2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if !equal(tr, tr2) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}

// FuzzReadText asserts the text decoder never panics on arbitrary input
// and that accepted traces survive a round trip.
func FuzzReadText(f *testing.F) {
	f.Add("")
	f.Add("# name x\n# threads 2\n0 R 1000 5\n1 W ffee0000 0\n")
	f.Add("# threads 70000\n")
	f.Add("0 R 100\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		if _, err := ReadText(&buf); err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
	})
}
