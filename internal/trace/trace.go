// Package trace defines the memory-reference trace format consumed by
// the simulator. The paper feeds L2-traffic traces captured on real SMP
// machines into its cache-hierarchy simulator; this package provides the
// equivalent substrate: a compact record type, an in-memory Trace, and
// streaming binary and text codecs so traces can be generated once and
// replayed across many configurations.
package trace

import (
	"fmt"
	"sort"
)

// Op is the kind of memory reference.
type Op uint8

const (
	// Load is a data read.
	Load Op = iota
	// Store is a data write.
	Store
	// Ifetch is an instruction fetch (read-only, code stream).
	Ifetch
	numOps
)

// String returns the canonical short name used in the text format.
func (o Op) String() string {
	switch o {
	case Load:
		return "R"
	case Store:
		return "W"
	case Ifetch:
		return "I"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ParseOp inverts String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "R":
		return Load, nil
	case "W":
		return Store, nil
	case "I":
		return Ifetch, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Record is one memory reference. Gap is the number of compute cycles
// separating this reference from the thread's previous one — it encodes
// per-thread issue density and therefore memory pressure.
type Record struct {
	Thread uint16
	Op     Op
	Addr   uint64
	Gap    uint32
}

// Trace is a complete workload: an interleaving-free set of per-thread
// reference streams plus identifying metadata.
type Trace struct {
	Name    string
	Threads int
	Records []Record // grouped or interleaved; PerThread splits them
}

// Validate reports the first malformed record, or nil.
func (t *Trace) Validate() error {
	if t.Threads <= 0 {
		return fmt.Errorf("trace: Threads = %d, must be positive", t.Threads)
	}
	for i, r := range t.Records {
		if int(r.Thread) >= t.Threads {
			return fmt.Errorf("trace: record %d thread %d out of range [0,%d)", i, r.Thread, t.Threads)
		}
		if r.Op >= numOps {
			return fmt.Errorf("trace: record %d has invalid op %d", i, r.Op)
		}
	}
	return nil
}

// PerThread splits the records into per-thread streams, preserving each
// thread's record order. The returned slices share no backing storage
// with future appends to t.Records.
func (t *Trace) PerThread() [][]Record {
	counts := make([]int, t.Threads)
	for _, r := range t.Records {
		counts[r.Thread]++
	}
	out := make([][]Record, t.Threads)
	for i, n := range counts {
		out[i] = make([]Record, 0, n)
	}
	for _, r := range t.Records {
		out[r.Thread] = append(out[r.Thread], r)
	}
	return out
}

// Stats summarizes a trace for reports and sanity checks.
type Stats struct {
	Records       int
	Loads         int
	Stores        int
	Ifetches      int
	DistinctLines int
	MeanGap       float64
	PerThread     []int
}

// statsAccum builds Stats record by record; Summarize and
// SummarizeSource share it so the in-memory and streaming summaries are
// the same computation.
type statsAccum struct {
	s         Stats
	lines     map[uint64]struct{}
	gapSum    uint64
	lineBytes uint64
}

func newStatsAccum(threads, lineBytes int) *statsAccum {
	return &statsAccum{
		s:         Stats{PerThread: make([]int, threads)},
		lines:     make(map[uint64]struct{}),
		lineBytes: uint64(lineBytes),
	}
}

func (a *statsAccum) add(r Record) {
	a.s.Records++
	if int(r.Thread) < len(a.s.PerThread) {
		a.s.PerThread[r.Thread]++
	}
	switch r.Op {
	case Load:
		a.s.Loads++
	case Store:
		a.s.Stores++
	case Ifetch:
		a.s.Ifetches++
	}
	a.lines[r.Addr/a.lineBytes] = struct{}{}
	a.gapSum += uint64(r.Gap)
}

func (a *statsAccum) finish() Stats {
	a.s.DistinctLines = len(a.lines)
	if a.s.Records > 0 {
		a.s.MeanGap = float64(a.gapSum) / float64(a.s.Records)
	}
	return a.s
}

// Summarize computes Stats in one pass. lineBytes sets the granularity
// for the distinct-line count.
func (t *Trace) Summarize(lineBytes int) Stats {
	a := newStatsAccum(t.Threads, lineBytes)
	for _, r := range t.Records {
		a.add(r)
	}
	return a.finish()
}

// FootprintBytes returns the distinct-line footprint in bytes.
func (s Stats) FootprintBytes(lineBytes int) int {
	return s.DistinctLines * lineBytes
}

// Merge combines several traces into one, remapping thread IDs so each
// input occupies a disjoint thread range, in input order. Useful for
// composing multiprogrammed workloads.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	base := 0
	for _, tr := range traces {
		for _, r := range tr.Records {
			r.Thread += uint16(base)
			out.Records = append(out.Records, r)
		}
		base += tr.Threads
	}
	out.Threads = base
	return out
}

// SortByThread stably groups records by thread, preserving per-thread
// order. The binary codec compresses better on grouped records.
func (t *Trace) SortByThread() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Thread < t.Records[j].Thread
	})
}
