package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	return &Trace{
		Name:    "unit",
		Threads: 3,
		Records: []Record{
			{Thread: 0, Op: Load, Addr: 0x1000, Gap: 5},
			{Thread: 1, Op: Store, Addr: 0x2080, Gap: 0},
			{Thread: 0, Op: Ifetch, Addr: 0xffee_0000_1234, Gap: 999},
			{Thread: 2, Op: Load, Addr: 0x80, Gap: 17},
			{Thread: 0, Op: Load, Addr: 0x0, Gap: 2},
		},
	}
}

func equal(a, b *Trace) bool {
	if a.Name != b.Name || a.Threads != b.Threads || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	return true
}

func TestOpString(t *testing.T) {
	if Load.String() != "R" || Store.String() != "W" || Ifetch.String() != "I" {
		t.Fatal("unexpected op names")
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatal("unknown op should format numerically")
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range []Op{Load, Store, Ifetch} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp round trip failed for %v", op)
		}
	}
	if _, err := ParseOp("x"); err == nil {
		t.Fatal("ParseOp accepted junk")
	}
}

func TestValidate(t *testing.T) {
	tr := sample()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Records[0].Thread = 99
	if tr.Validate() == nil {
		t.Fatal("out-of-range thread accepted")
	}
	tr = sample()
	tr.Records[1].Op = 7
	if tr.Validate() == nil {
		t.Fatal("invalid op accepted")
	}
	tr = sample()
	tr.Threads = 0
	if tr.Validate() == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestPerThread(t *testing.T) {
	streams := sample().PerThread()
	if len(streams) != 3 {
		t.Fatalf("streams = %d, want 3", len(streams))
	}
	if len(streams[0]) != 3 || len(streams[1]) != 1 || len(streams[2]) != 1 {
		t.Fatalf("per-thread lengths = %d/%d/%d", len(streams[0]), len(streams[1]), len(streams[2]))
	}
	// Thread 0's order must be preserved.
	if streams[0][0].Addr != 0x1000 || streams[0][2].Addr != 0 {
		t.Fatal("per-thread order not preserved")
	}
}

func TestSummarize(t *testing.T) {
	s := sample().Summarize(128)
	if s.Records != 5 || s.Loads != 3 || s.Stores != 1 || s.Ifetches != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.DistinctLines != 5 {
		t.Fatalf("DistinctLines = %d, want 5", s.DistinctLines)
	}
	wantMean := float64(5+0+999+17+2) / 5
	if s.MeanGap != wantMean {
		t.Fatalf("MeanGap = %v, want %v", s.MeanGap, wantMean)
	}
	if s.FootprintBytes(128) != 5*128 {
		t.Fatalf("FootprintBytes = %d", s.FootprintBytes(128))
	}
}

func TestSummarizeSharedLinesCountedOnce(t *testing.T) {
	tr := &Trace{Name: "x", Threads: 2, Records: []Record{
		{Thread: 0, Op: Load, Addr: 0x100},
		{Thread: 1, Op: Load, Addr: 0x104}, // same 128B line
	}}
	if s := tr.Summarize(128); s.DistinctLines != 1 {
		t.Fatalf("DistinctLines = %d, want 1", s.DistinctLines)
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{Name: "a", Threads: 2, Records: []Record{{Thread: 1, Op: Load, Addr: 1}}}
	b := &Trace{Name: "b", Threads: 1, Records: []Record{{Thread: 0, Op: Store, Addr: 2}}}
	m := Merge("ab", a, b)
	if m.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", m.Threads)
	}
	if m.Records[0].Thread != 1 || m.Records[1].Thread != 2 {
		t.Fatalf("remapped threads = %d, %d; want 1, 2", m.Records[0].Thread, m.Records[1].Thread)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
}

func TestSortByThread(t *testing.T) {
	tr := sample()
	tr.SortByThread()
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i-1].Thread > tr.Records[i].Thread {
			t.Fatal("records not grouped by thread")
		}
	}
	// Stability: thread 0's internal order preserved.
	var t0 []uint64
	for _, r := range tr.Records {
		if r.Thread == 0 {
			t0 = append(t0, r.Addr)
		}
	}
	want := []uint64{0x1000, 0xffee_0000_1234, 0}
	for i := range want {
		if t0[i] != want[i] {
			t.Fatalf("thread 0 order = %v, want %v", t0, want)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sample()
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestBinaryRejectsInvalidTrace(t *testing.T) {
	tr := sample()
	tr.Records[0].Thread = 200
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err == nil {
		t.Fatal("WriteBinary accepted an invalid trace")
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sample()
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestTextInfersThreads(t *testing.T) {
	in := "0 R 100 0\n2 W 200 5\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Threads != 3 {
		t.Fatalf("inferred Threads = %d, want 3", tr.Threads)
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"0 R 100\n",       // missing field
		"0 Q 100 0\n",     // bad op
		"x R 100 0\n",     // bad thread
		"0 R zz 0\n",      // bad addr
		"0 R 100 -1\n",    // bad gap
		"99999 R 100 0\n", // thread out of uint16... actually valid uint16? 99999 > 65535
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed input %q accepted", in)
		}
	}
}

// Property: binary round trip preserves arbitrary traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(recs []struct {
		Thread uint8
		Op     uint8
		Addr   uint64
		Gap    uint32
	}, name string) bool {
		tr := &Trace{Name: name, Threads: 256}
		for _, r := range recs {
			tr.Records = append(tr.Records, Record{
				Thread: uint16(r.Thread),
				Op:     Op(r.Op % 3),
				Addr:   r.Addr,
				Gap:    r.Gap,
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return equal(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the binary encoding of a grouped, spatially-local trace is
// smaller than 10 bytes/record (delta compression effectiveness guard).
func TestBinaryCompression(t *testing.T) {
	tr := &Trace{Name: "seq", Threads: 1}
	for i := 0; i < 10000; i++ {
		tr.Records = append(tr.Records, Record{Op: Load, Addr: uint64(i) * 128, Gap: 1})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / 10000; perRec > 10 {
		t.Fatalf("%.1f bytes/record, want <= 10 for sequential trace", perRec)
	}
}
