package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Sharded trace store (DESIGN.md §17). A capture is split across
// per-thread-hash shard files so independent shards can be written,
// verified and read in parallel, and each shard is a sequence of
// per-thread batches so replay streams one batch per thread at a time
// instead of materializing the trace:
//
//	shard-NNN.cmps:
//	  magic   "CMPS"          4 bytes
//	  version uvarint         currently 1
//	  name    uvarint length + bytes
//	  threads uvarint         total trace thread count
//	  shard   uvarint         this file's shard index
//	  shards  uvarint         total shard count
//	  batches uvarint         batch count in this file, then per batch:
//	    thread uvarint
//	    count  uvarint        records in the batch (> 0)
//	    clen   uvarint        compressed payload length
//	    payload                clen bytes, DEFLATE; per record:
//	      op    uvarint
//	      delta uvarint       zigzagged address delta, reset per batch
//	      gap   uvarint
//
// Address deltas restart from zero at every batch boundary (the first
// record carries its absolute address zigzagged), so a batch decodes
// with no state from earlier batches — the property that lets the
// reader fetch any thread's next batch with one pread and one inflate.
// Batches within a file are grouped by thread in ascending thread
// order.
//
// manifest.json names the shard files and carries per-shard record
// counts and SHA-256 content hashes; the hash of the manifest itself
// (Manifest.ContentHash) is the identity of the whole capture, which is
// what flows into sweep cache keys.

const (
	shardMagic   = "CMPS"
	shardVersion = 1

	// ManifestName is the manifest's filename inside a sharded trace
	// directory.
	ManifestName = "manifest.json"

	// ManifestFormat identifies the manifest schema.
	ManifestFormat = "cmps/v1"

	// DefaultShards is the shard-file count when ShardOptions leaves it
	// zero.
	DefaultShards = 4

	// DefaultBatchRecords is the per-batch record count when
	// ShardOptions leaves it zero. Batch size bounds the reader's
	// per-thread resident memory: replay holds one decoded batch per
	// thread.
	DefaultBatchRecords = 4096
)

// ThreadCount is one thread's record count within a shard.
type ThreadCount struct {
	Thread  int   `json:"thread"`
	Records int64 `json:"records"`
}

// ShardInfo describes one shard file in the manifest.
type ShardInfo struct {
	File    string        `json:"file"`
	Records int64         `json:"records"`
	Threads []ThreadCount `json:"threads"`
	SHA256  string        `json:"sha256"`
}

// Manifest is the self-describing index of a sharded trace directory.
type Manifest struct {
	Format       string      `json:"format"`
	Name         string      `json:"name"`
	Threads      int         `json:"threads"`
	Records      int64       `json:"records"`
	BatchRecords int         `json:"batch_records"`
	Shards       []ShardInfo `json:"shards"`
}

// ContentHash returns the capture's content identity: the SHA-256 of
// the manifest's canonical JSON encoding. Because the manifest embeds
// every shard's own SHA-256, two captures share a ContentHash iff every
// byte of every shard matches.
func (m *Manifest) ContentHash() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only strings, ints and slices; Marshal
		// cannot fail on it.
		panic(fmt.Sprintf("trace: manifest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ShardOptions configures WriteSharded. Zero values select defaults.
type ShardOptions struct {
	// Shards is the shard-file count (default DefaultShards).
	Shards int
	// BatchRecords is the record count per compressed batch (default
	// DefaultBatchRecords).
	BatchRecords int
}

// shardOf assigns thread tid to a shard by FNV-1a over the two thread-ID
// bytes. Hash assignment keeps any fixed thread's data in one file
// regardless of how many other threads exist, so shard membership is
// stable as captures grow.
func shardOf(tid, shards int) int {
	h := uint32(2166136261)
	h = (h ^ uint32(tid&0xff)) * 16777619
	h = (h ^ uint32(tid>>8&0xff)) * 16777619
	return int(h % uint32(shards))
}

// ShardFileName returns the canonical shard filename for index i.
func ShardFileName(i int) string { return fmt.Sprintf("shard-%03d.cmps", i) }

// WriteSharded captures t into dir as a sharded trace store and returns
// the manifest it wrote. dir is created if needed; an existing
// manifest.json or shard file is overwritten.
func WriteSharded(dir string, t *Trace, opt ShardOptions) (*Manifest, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	batch := opt.BatchRecords
	if batch <= 0 {
		batch = DefaultBatchRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	perThread := t.PerThread()
	man := &Manifest{
		Format:       ManifestFormat,
		Name:         t.Name,
		Threads:      t.Threads,
		Records:      int64(len(t.Records)),
		BatchRecords: batch,
	}
	for si := 0; si < shards; si++ {
		info, err := writeShardFile(dir, si, shards, t, perThread, batch)
		if err != nil {
			return nil, err
		}
		man.Shards = append(man.Shards, *info)
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	mb = append(mb, '\n')
	if err := writeFileSync(filepath.Join(dir, ManifestName), mb); err != nil {
		return nil, err
	}
	return man, nil
}

// writeShardFile writes shard si: the threads hashing to si, batched
// and compressed, with the file's SHA-256 computed as it streams out.
func writeShardFile(dir string, si, shards int, t *Trace, perThread [][]Record, batch int) (*ShardInfo, error) {
	info := &ShardInfo{File: ShardFileName(si)}
	path := filepath.Join(dir, info.File)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	hash := sha256.New()
	bw := bufio.NewWriter(io.MultiWriter(f, hash))

	var varbuf [binary.MaxVarintLen64]byte
	putUvarint := func(w io.Writer, v uint64) error {
		n := binary.PutUvarint(varbuf[:], v)
		_, err := w.Write(varbuf[:n])
		return err
	}

	batchCount := 0
	for tid := 0; tid < t.Threads; tid++ {
		if shardOf(tid, shards) != si {
			continue
		}
		n := len(perThread[tid])
		batchCount += (n + batch - 1) / batch
	}
	if _, err := bw.WriteString(shardMagic); err != nil {
		return nil, err
	}
	for _, v := range []uint64{shardVersion, uint64(len(t.Name))} {
		if err := putUvarint(bw, v); err != nil {
			return nil, err
		}
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return nil, err
	}
	for _, v := range []uint64{uint64(t.Threads), uint64(si), uint64(shards), uint64(batchCount)} {
		if err := putUvarint(bw, v); err != nil {
			return nil, err
		}
	}

	var raw, comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	for tid := 0; tid < t.Threads; tid++ {
		if shardOf(tid, shards) != si {
			continue
		}
		recs := perThread[tid]
		if len(recs) > 0 {
			info.Threads = append(info.Threads, ThreadCount{Thread: tid, Records: int64(len(recs))})
			info.Records += int64(len(recs))
		}
		for start := 0; start < len(recs); start += batch {
			end := start + batch
			if end > len(recs) {
				end = len(recs)
			}
			raw.Reset()
			prev := uint64(0) // deltas reset per batch
			for _, r := range recs[start:end] {
				if err := putUvarint(&raw, uint64(r.Op)); err != nil {
					return nil, err
				}
				if err := putUvarint(&raw, zigzag(int64(r.Addr)-int64(prev))); err != nil {
					return nil, err
				}
				prev = r.Addr
				if err := putUvarint(&raw, uint64(r.Gap)); err != nil {
					return nil, err
				}
			}
			comp.Reset()
			fw.Reset(&comp)
			if _, err := fw.Write(raw.Bytes()); err != nil {
				return nil, err
			}
			if err := fw.Close(); err != nil {
				return nil, err
			}
			for _, v := range []uint64{uint64(tid), uint64(end - start), uint64(comp.Len())} {
				if err := putUvarint(bw, v); err != nil {
					return nil, err
				}
			}
			if _, err := bw.Write(comp.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	info.SHA256 = hex.EncodeToString(hash.Sum(nil))
	return info, nil
}

// writeFileSync writes data to path, reporting Close errors (a buffered
// write that hits ENOSPC surfaces at Close).
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// batchRef locates one compressed batch inside a shard file.
type batchRef struct {
	file  int   // index into Sharded.files
	off   int64 // payload offset
	clen  int64 // payload length
	count int   // records in the batch
}

// Sharded is the streaming reader over a sharded trace directory. Open
// scans every shard's batch headers once (skipping payloads) to build
// per-thread batch indexes; Stream then serves each thread's batches
// with positioned reads (ReadAt), so concurrent per-thread streams
// share the file handles without locks or seek contention.
//
// Memory is bounded by construction: a stream holds exactly one decoded
// batch at a time, so replay of an N-record trace resident-buffers at
// most threads x BatchRecords records regardless of N. The buffered /
// maxBuffered counters prove it at test time.
type Sharded struct {
	dir       string
	man       Manifest
	files     []*os.File
	perThread [][]batchRef
	threadRec []int64

	buffered    atomic.Int64
	maxBuffered atomic.Int64
}

// IsShardedDir reports whether path is a sharded trace directory (a
// directory containing a manifest.json).
func IsShardedDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// ReadManifest loads and validates dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", ManifestName, err)
	}
	if man.Format != ManifestFormat {
		return nil, fmt.Errorf("trace: %s: unsupported format %q", ManifestName, man.Format)
	}
	if man.Threads <= 0 || man.Threads > maxThreads {
		return nil, fmt.Errorf("trace: %s: implausible thread count %d", ManifestName, man.Threads)
	}
	if len(man.Shards) == 0 {
		return nil, fmt.Errorf("trace: %s: no shards", ManifestName)
	}
	return &man, nil
}

// OpenSharded opens dir for streaming replay. It validates every shard
// file's framing against the manifest (header fields, per-thread record
// counts, exact end-of-file after the declared batches) but does not
// hash payloads — use Verify for full content verification.
func OpenSharded(dir string) (*Sharded, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		dir:       dir,
		man:       *man,
		perThread: make([][]batchRef, man.Threads),
		threadRec: make([]int64, man.Threads),
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	var total int64
	for i, info := range man.Shards {
		f, err := os.Open(filepath.Join(dir, info.File))
		if err != nil {
			return nil, err
		}
		s.files = append(s.files, f)
		if err := s.scanShard(i, f, &info); err != nil {
			return nil, fmt.Errorf("trace: %s: %w", info.File, err)
		}
		total += info.Records
	}
	if total != man.Records {
		return nil, fmt.Errorf("trace: manifest claims %d records, shards hold %d", man.Records, total)
	}
	ok = true
	return s, nil
}

// countReader counts bytes consumed from the underlying reader so the
// scan can compute payload offsets through a bufio layer.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanShard walks shard file fi's framing, indexing every batch. The
// scan must account for every byte: a file that ends early, or carries
// data past its declared batches, is rejected here rather than
// surfacing as a mid-replay decode error.
func (s *Sharded) scanShard(fi int, f *os.File, info *ShardInfo) error {
	cr := &countReader{r: f}
	br := bufio.NewReader(cr)
	pos := func() int64 { return cr.n - int64(br.Buffered()) }

	head := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("reading magic: %w", err)
	}
	if string(head) != shardMagic {
		return fmt.Errorf("bad magic %q (not a CMPS shard)", head)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("reading version: %w", err)
	}
	if version != shardVersion {
		return fmt.Errorf("unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return fmt.Errorf("reading name: %w", err)
	}
	if string(name) != s.man.Name {
		return fmt.Errorf("shard name %q does not match manifest %q", name, s.man.Name)
	}
	var hdr [4]uint64 // threads, shard index, shard count, batch count
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return fmt.Errorf("reading header: %w", err)
		}
	}
	if int(hdr[0]) != s.man.Threads {
		return fmt.Errorf("shard declares %d threads, manifest %d", hdr[0], s.man.Threads)
	}
	if int(hdr[1]) != fi || int(hdr[2]) != len(s.man.Shards) {
		return fmt.Errorf("shard identifies as %d/%d, manifest placed it at %d/%d",
			hdr[1], hdr[2], fi, len(s.man.Shards))
	}
	batches := hdr[3]
	if batches > 1<<40 {
		return fmt.Errorf("implausible batch count %d", batches)
	}
	shardRecs := int64(0)
	perThread := make(map[int]int64)
	prevTid := -1
	for b := uint64(0); b < batches; b++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("batch %d thread: %w", b, err)
		}
		if tid >= uint64(s.man.Threads) {
			return fmt.Errorf("batch %d thread %d out of range", b, tid)
		}
		if int(tid) < prevTid {
			return fmt.Errorf("batch %d thread %d out of order (after %d)", b, tid, prevTid)
		}
		prevTid = int(tid)
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("batch %d count: %w", b, err)
		}
		if count == 0 || count > maxPrealloc {
			return fmt.Errorf("batch %d implausible record count %d", b, count)
		}
		clen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("batch %d payload length: %w", b, err)
		}
		if clen > 1<<31 {
			return fmt.Errorf("batch %d implausible payload length %d", b, clen)
		}
		off := pos()
		if _, err := br.Discard(int(clen)); err != nil {
			return fmt.Errorf("batch %d payload truncated: %w", b, err)
		}
		s.perThread[tid] = append(s.perThread[tid], batchRef{
			file: fi, off: off, clen: int64(clen), count: int(count),
		})
		s.threadRec[tid] += int64(count)
		perThread[int(tid)] += int64(count)
		shardRecs += int64(count)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("trailing data after %d batches", batches)
	}
	if shardRecs != info.Records {
		return fmt.Errorf("manifest claims %d records, framing holds %d", info.Records, shardRecs)
	}
	if len(perThread) != len(info.Threads) {
		return fmt.Errorf("manifest lists %d threads, framing holds %d", len(info.Threads), len(perThread))
	}
	for _, tc := range info.Threads {
		if perThread[tc.Thread] != tc.Records {
			return fmt.Errorf("thread %d: manifest claims %d records, framing holds %d",
				tc.Thread, tc.Records, perThread[tc.Thread])
		}
	}
	return nil
}

// Close releases the shard file handles. Streams must not be used after
// Close.
func (s *Sharded) Close() error {
	var first error
	for _, f := range s.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// Manifest returns the manifest the store was opened with.
func (s *Sharded) Manifest() Manifest { return s.man }

// Name returns the capture name.
func (s *Sharded) Name() string { return s.man.Name }

// Threads returns the capture thread count.
func (s *Sharded) Threads() int { return s.man.Threads }

// Records returns the total record count.
func (s *Sharded) Records() int64 { return s.man.Records }

// ThreadRecords returns thread tid's record count.
func (s *Sharded) ThreadRecords(tid int) int64 {
	if tid < 0 || tid >= len(s.threadRec) {
		return 0
	}
	return s.threadRec[tid]
}

// BufferedRecords returns the records currently resident in decoded
// stream chunks.
func (s *Sharded) BufferedRecords() int64 { return s.buffered.Load() }

// MaxBufferedRecords returns the high-water mark of resident decoded
// records across all streams — the reader's memory bound, in records.
func (s *Sharded) MaxBufferedRecords() int64 { return s.maxBuffered.Load() }

// Stream returns thread tid's batch stream. Streams for different
// threads are safe to consume concurrently; a single stream is not
// concurrency-safe.
func (s *Sharded) Stream(tid int) Stream {
	if tid < 0 || tid >= len(s.perThread) {
		return &shardStream{s: s}
	}
	return &shardStream{s: s, tid: uint16(tid), refs: s.perThread[tid]}
}

// shardStream decodes one thread's batches on demand. The decode buffer
// is reused across chunks (per the Stream contract), so a draining
// replay holds one batch per thread.
type shardStream struct {
	s       *Sharded
	tid     uint16
	refs    []batchRef
	next    int
	lastLen int64
	cbuf    []byte   // compressed payload buffer, reused
	recs    []Record // decode buffer, reused
}

func (st *shardStream) NextChunk() ([]Record, error) {
	st.s.account(-st.lastLen)
	st.lastLen = 0
	if st.next >= len(st.refs) {
		return nil, nil
	}
	ref := st.refs[st.next]
	st.next++
	if int64(cap(st.cbuf)) < ref.clen {
		st.cbuf = make([]byte, ref.clen)
	}
	buf := st.cbuf[:ref.clen]
	if _, err := st.s.files[ref.file].ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("trace: thread %d batch %d: %w", st.tid, st.next-1, err)
	}
	if cap(st.recs) < ref.count {
		st.recs = make([]Record, ref.count)
	}
	recs := st.recs[:ref.count]
	fr := flate.NewReader(bytes.NewReader(buf))
	br := bufio.NewReader(fr)
	prev := uint64(0)
	for i := range recs {
		op, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d batch %d record %d op: %w", st.tid, st.next-1, i, err)
		}
		if op >= uint64(numOps) {
			return nil, fmt.Errorf("trace: thread %d batch %d record %d invalid op %d", st.tid, st.next-1, i, op)
		}
		deltaRaw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d batch %d record %d addr: %w", st.tid, st.next-1, i, err)
		}
		addr := uint64(int64(prev) + unzigzag(deltaRaw))
		prev = addr
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d batch %d record %d gap: %w", st.tid, st.next-1, i, err)
		}
		if gap > 1<<32-1 {
			return nil, fmt.Errorf("trace: thread %d batch %d record %d gap %d overflows uint32", st.tid, st.next-1, i, gap)
		}
		recs[i] = Record{Thread: st.tid, Op: Op(op), Addr: addr, Gap: uint32(gap)}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: thread %d batch %d: payload larger than declared %d records", st.tid, st.next-1, ref.count)
	}
	fr.Close()
	st.lastLen = int64(len(recs))
	st.s.account(st.lastLen)
	return recs, nil
}

// account adjusts the resident-record counter and tracks its high-water
// mark.
func (s *Sharded) account(delta int64) {
	if delta == 0 {
		return
	}
	now := s.buffered.Add(delta)
	for {
		max := s.maxBuffered.Load()
		if now <= max || s.maxBuffered.CompareAndSwap(max, now) {
			return
		}
	}
}

// ReadAll materializes the whole capture as an in-memory Trace, records
// grouped by thread in ascending thread order. Intended for tools and
// tests; replay should stream.
func (s *Sharded) ReadAll() (*Trace, error) {
	t := &Trace{Name: s.man.Name, Threads: s.man.Threads}
	prealloc := s.man.Records
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	t.Records = make([]Record, 0, prealloc)
	for tid := 0; tid < s.man.Threads; tid++ {
		st := s.Stream(tid)
		for {
			chunk, err := st.NextChunk()
			if err != nil {
				return nil, err
			}
			if chunk == nil {
				break
			}
			t.Records = append(t.Records, chunk...)
		}
	}
	return t, nil
}

// Verify re-hashes every shard file and compares against the manifest,
// detecting any post-capture corruption the framing scan cannot see.
func (s *Sharded) Verify() error {
	for i, info := range s.man.Shards {
		h := sha256.New()
		if _, err := io.Copy(h, io.NewSectionReader(s.files[i], 0, 1<<62)); err != nil {
			return fmt.Errorf("trace: %s: %w", info.File, err)
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != info.SHA256 {
			return fmt.Errorf("trace: %s: content hash %s does not match manifest %s", info.File, got, info.SHA256)
		}
	}
	return nil
}

// FileRef identifies a trace input by content, not location: the fields
// that flow into sweep cache keys. Two paths holding byte-identical
// captures produce equal FileRefs; any content difference changes
// SHA256.
type FileRef struct {
	Name    string
	Threads int
	Records int64
	SHA256  string
}

// Describe resolves path — a sharded trace directory or a flat
// binary/text trace file — to its content identity. For sharded stores
// the hash is the manifest's ContentHash; for flat files it is the
// SHA-256 of the file bytes.
func Describe(path string) (FileRef, error) {
	if IsShardedDir(path) {
		man, err := ReadManifest(path)
		if err != nil {
			return FileRef{}, err
		}
		return FileRef{
			Name:    man.Name,
			Threads: man.Threads,
			Records: man.Records,
			SHA256:  man.ContentHash(),
		}, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return FileRef{}, err
	}
	t, err := ReadBinary(bytes.NewReader(b))
	if err == ErrBadMagic {
		t, err = ReadText(bytes.NewReader(b))
	}
	if err != nil {
		return FileRef{}, err
	}
	sum := sha256.Sum256(b)
	return FileRef{
		Name:    t.Name,
		Threads: t.Threads,
		Records: int64(len(t.Records)),
		SHA256:  hex.EncodeToString(sum[:]),
	}, nil
}
