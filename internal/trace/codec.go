package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Binary format:
//
//	magic   "CMPT"            4 bytes
//	version uvarint           currently 1
//	name    uvarint length + bytes
//	threads uvarint
//	records uvarint count, then per record:
//	  thread uvarint
//	  op     uvarint
//	  addr   uvarint of zigzagged delta from the same thread's previous address
//	  gap    uvarint
//
// Per-thread address deltas exploit spatial locality; typical synthetic
// traces compress ~3x versus fixed-width encoding.

const (
	magic         = "CMPT"
	formatVersion = 1

	// maxPrealloc caps how many records any header-declared count may
	// preallocate. A corrupt 20-byte file can claim 2^60 records; trusting
	// that count would OOM the process before a single record is read, so
	// readers reserve at most this many up front and grow by append as
	// real data arrives.
	maxPrealloc = 1 << 20

	// maxThreads bounds the thread count any codec accepts. Thread IDs
	// are uint16, so nothing above 1<<16 can ever be referenced.
	maxThreads = 1 << 16
)

// ErrBadMagic reports a stream that is not a CMPT trace.
var ErrBadMagic = errors.New("trace: bad magic (not a CMPT trace)")

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteBinary encodes t to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(formatVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.Threads)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	prevAddr := make([]uint64, t.Threads)
	for _, r := range t.Records {
		if err := putUvarint(uint64(r.Thread)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Op)); err != nil {
			return err
		}
		delta := int64(r.Addr) - int64(prevAddr[r.Thread])
		prevAddr[r.Thread] = r.Addr
		if err := putUvarint(zigzag(delta)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Gap)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	threads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	if threads == 0 || threads > maxThreads {
		return nil, fmt.Errorf("trace: implausible thread count %d", threads)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	t := &Trace{
		Name:    string(name),
		Threads: int(threads),
		Records: make([]Record, 0, prealloc),
	}
	prevAddr := make([]uint64, threads)
	for i := uint64(0); i < count; i++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d thread: %w", i, err)
		}
		if tid >= threads {
			return nil, fmt.Errorf("trace: record %d thread %d out of range", i, tid)
		}
		op, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", i, err)
		}
		if op >= uint64(numOps) {
			return nil, fmt.Errorf("trace: record %d invalid op %d", i, op)
		}
		deltaRaw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		addr := uint64(int64(prevAddr[tid]) + unzigzag(deltaRaw))
		prevAddr[tid] = addr
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d gap: %w", i, err)
		}
		if gap > 1<<32-1 {
			return nil, fmt.Errorf("trace: record %d gap %d overflows uint32", i, gap)
		}
		t.Records = append(t.Records, Record{
			Thread: uint16(tid),
			Op:     Op(op),
			Addr:   addr,
			Gap:    uint32(gap),
		})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing data after %d records", count)
	}
	return t, nil
}

// ReadFile loads a trace file, detecting the format by content: binary
// CMPT first, then the text format.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadBinary(f)
	if err == ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return nil, serr
		}
		return ReadText(f)
	}
	return t, err
}

// WriteText encodes t in a human-readable line format:
//
//	# name <name>
//	# threads <n>
//	<thread> <op> <addr-hex> <gap>
func WriteText(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n# threads %d\n", t.Name, t.Threads); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d %s %x %d\n", r.Thread, r.Op, r.Addr, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text format produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) >= 2 {
				switch fields[0] {
				case "name":
					t.Name = strings.Join(fields[1:], " ")
				case "threads":
					n, err := strconv.Atoi(fields[1])
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad thread count: %w", lineNo, err)
					}
					if n < 0 || n > maxThreads {
						return nil, fmt.Errorf("trace: line %d: implausible thread count %d", lineNo, n)
					}
					t.Threads = n
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		tid, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: thread: %w", lineNo, err)
		}
		op, err := ParseOp(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		addr, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: addr: %w", lineNo, err)
		}
		gap, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: gap: %w", lineNo, err)
		}
		t.Records = append(t.Records, Record{
			Thread: uint16(tid),
			Op:     op,
			Addr:   addr,
			Gap:    uint32(gap),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Threads == 0 {
		// Infer from the records when no header was present.
		maxTid := -1
		for _, r := range t.Records {
			if int(r.Thread) > maxTid {
				maxTid = int(r.Thread)
			}
		}
		t.Threads = maxTid + 1
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
