package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// synth builds a deterministic multi-thread trace with uneven per-thread
// lengths and full-range addresses, enough records to span many batches.
func synth(name string, threads, refsPerThread int) *Trace {
	rng := rand.New(rand.NewSource(42))
	t := &Trace{Name: name, Threads: threads}
	for tid := 0; tid < threads; tid++ {
		n := refsPerThread + tid*7 // uneven thread lengths
		addr := rng.Uint64()
		for i := 0; i < n; i++ {
			// Mix local strides with occasional far jumps (including
			// wrap-around deltas) to exercise the zigzag path.
			if rng.Intn(50) == 0 {
				addr = rng.Uint64()
			} else {
				addr += uint64(rng.Intn(4)) * 128
			}
			t.Records = append(t.Records, Record{
				Thread: uint16(tid),
				Op:     Op(rng.Intn(int(numOps))),
				Addr:   addr,
				Gap:    uint32(rng.Intn(100)),
			})
		}
	}
	return t
}

func writeShardedT(t *testing.T, tr *Trace, opt ShardOptions) (string, *Manifest) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "capture.cmps")
	man, err := WriteSharded(dir, tr, opt)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	return dir, man
}

func TestShardedRoundTrip(t *testing.T) {
	orig := synth("round", 8, 1000)
	dir, man := writeShardedT(t, orig, ShardOptions{Shards: 3, BatchRecords: 128})
	if !IsShardedDir(dir) {
		t.Fatal("IsShardedDir = false for a written store")
	}
	if man.Records != int64(len(orig.Records)) || man.Threads != orig.Threads {
		t.Fatalf("manifest shape %d/%d, want %d/%d",
			man.Records, man.Threads, len(orig.Records), orig.Threads)
	}
	sh, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer sh.Close()
	if err := sh.Verify(); err != nil {
		t.Fatalf("Verify on a fresh store: %v", err)
	}
	got, err := sh.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	// ReadAll groups by thread; compare against the thread-grouped
	// original (stable, so per-thread order is preserved).
	want := &Trace{Name: orig.Name, Threads: orig.Threads, Records: append([]Record(nil), orig.Records...)}
	want.SortByThread()
	if !equal(want, got) {
		t.Fatalf("sharded round trip mismatch: %d vs %d records", len(want.Records), len(got.Records))
	}
	// The streaming summary must agree with the in-memory one.
	ss, err := SummarizeSource(sh, 128)
	if err != nil {
		t.Fatal(err)
	}
	ms := orig.Summarize(128)
	if ss.Records != ms.Records || ss.Loads != ms.Loads || ss.Stores != ms.Stores ||
		ss.Ifetches != ms.Ifetches || ss.DistinctLines != ms.DistinctLines || ss.MeanGap != ms.MeanGap {
		t.Fatalf("streaming summary %+v != in-memory %+v", ss, ms)
	}
}

func TestShardedPerThreadCounts(t *testing.T) {
	orig := synth("counts", 5, 200)
	dir, _ := writeShardedT(t, orig, ShardOptions{Shards: 2, BatchRecords: 64})
	sh, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	per := orig.PerThread()
	for tid := 0; tid < orig.Threads; tid++ {
		if got, want := sh.ThreadRecords(tid), int64(len(per[tid])); got != want {
			t.Fatalf("thread %d: ThreadRecords = %d, want %d", tid, got, want)
		}
	}
	if sh.ThreadRecords(-1) != 0 || sh.ThreadRecords(999) != 0 {
		t.Fatal("out-of-range ThreadRecords should be 0")
	}
	if chunk, err := sh.Stream(999).NextChunk(); chunk != nil || err != nil {
		t.Fatal("out-of-range Stream should be empty")
	}
}

// TestShardedBoundedMemory is the acceptance-criterion proof: replaying a
// trace much larger than one batch keeps the resident decoded records at
// threads x batch, not the trace length.
func TestShardedBoundedMemory(t *testing.T) {
	const threads, refs, batch = 8, 4000, 256
	orig := synth("bounded", threads, refs)
	dir, _ := writeShardedT(t, orig, ShardOptions{Shards: 4, BatchRecords: batch})
	sh, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Drain all threads round-robin the way replay does: every stream
	// holds at most one decoded batch at a time.
	streams := make([]Stream, threads)
	for tid := range streams {
		streams[tid] = sh.Stream(tid)
	}
	total := int64(0)
	for done := 0; done < threads; {
		done = 0
		for _, st := range streams {
			chunk, err := st.NextChunk()
			if err != nil {
				t.Fatal(err)
			}
			if chunk == nil {
				done++
				continue
			}
			total += int64(len(chunk))
		}
	}
	if total != sh.Records() {
		t.Fatalf("drained %d records, want %d", total, sh.Records())
	}
	bound := int64(threads * batch)
	if max := sh.MaxBufferedRecords(); max == 0 || max > bound {
		t.Fatalf("MaxBufferedRecords = %d, want in (0, %d]", max, bound)
	}
	if max, tot := sh.MaxBufferedRecords(), sh.Records(); max*4 > tot {
		t.Fatalf("high-water %d is not well below the %d-record trace", max, tot)
	}
	if sh.BufferedRecords() != 0 {
		t.Fatalf("BufferedRecords = %d after full drain, want 0", sh.BufferedRecords())
	}
}

func TestShardedWriterDeterministic(t *testing.T) {
	orig := synth("det", 6, 500)
	_, man1 := writeShardedT(t, orig, ShardOptions{Shards: 3})
	_, man2 := writeShardedT(t, orig, ShardOptions{Shards: 3})
	if man1.ContentHash() != man2.ContentHash() {
		t.Fatal("identical captures produced different content hashes")
	}
}

// TestShardedContentHashSeparates is the cache-identity acceptance
// criterion: two captures differing in a single record must never share a
// content hash, and FileRefs must be path-independent.
func TestShardedContentHashSeparates(t *testing.T) {
	a := synth("same-name", 4, 300)
	b := synth("same-name", 4, 300)
	b.Records[len(b.Records)/2].Addr ^= 0x40 // one-line perturbation
	dirA, manA := writeShardedT(t, a, ShardOptions{})
	dirB, manB := writeShardedT(t, b, ShardOptions{})
	if manA.ContentHash() == manB.ContentHash() {
		t.Fatal("content hash did not separate two traces differing in one record")
	}
	refA, err := Describe(dirA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := Describe(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if refA == refB {
		t.Fatal("Describe did not separate differing captures")
	}
	// Same content at a different path must resolve to the same identity.
	dirA2, _ := writeShardedT(t, a, ShardOptions{})
	refA2, err := Describe(dirA2)
	if err != nil {
		t.Fatal(err)
	}
	if refA != refA2 {
		t.Fatalf("Describe is path-dependent: %+v vs %+v", refA, refA2)
	}
}

func TestDescribeFlatFile(t *testing.T) {
	tr := sample()
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.cmpt")
	f, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ref, err := Describe(bin)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name != tr.Name || ref.Threads != tr.Threads || ref.Records != int64(len(tr.Records)) || ref.SHA256 == "" {
		t.Fatalf("flat Describe = %+v", ref)
	}
	// A one-byte edit to the file must change the identity.
	b, _ := os.ReadFile(bin)
	b[len(b)-1] ^= 1
	edited := filepath.Join(dir, "t2.cmpt")
	if err := os.WriteFile(edited, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if ref2, err := Describe(edited); err == nil && ref2.SHA256 == ref.SHA256 {
		t.Fatal("flat Describe did not separate edited file")
	}
}

func TestOpenShardedRejectsCorruption(t *testing.T) {
	orig := synth("corrupt", 4, 400)
	newStore := func(t *testing.T) string {
		dir, _ := writeShardedT(t, orig, ShardOptions{Shards: 2, BatchRecords: 64})
		return dir
	}
	shardPath := func(dir string) string { return filepath.Join(dir, ShardFileName(0)) }

	t.Run("truncated shard", func(t *testing.T) {
		dir := newStore(t)
		p := shardPath(dir)
		b, _ := os.ReadFile(p)
		if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("truncated shard accepted")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		dir := newStore(t)
		p := shardPath(dir)
		f, _ := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0o644)
		f.WriteString("extra")
		f.Close()
		if _, err := OpenSharded(dir); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing garbage err = %v, want trailing-data rejection", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		dir := newStore(t)
		p := shardPath(dir)
		b, _ := os.ReadFile(p)
		copy(b, "NOPE")
		os.WriteFile(p, b, 0o644)
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("payload flip caught by Verify", func(t *testing.T) {
		dir := newStore(t)
		p := shardPath(dir)
		b, _ := os.ReadFile(p)
		b[len(b)-3] ^= 0xff // inside the last payload: framing still scans
		os.WriteFile(p, b, 0o644)
		sh, err := OpenSharded(dir)
		if err != nil {
			// Also acceptable: the flip broke framing itself.
			return
		}
		defer sh.Close()
		if err := sh.Verify(); err == nil {
			t.Fatal("Verify missed a payload bit flip")
		}
	})
	t.Run("manifest record count mismatch", func(t *testing.T) {
		dir := newStore(t)
		mp := filepath.Join(dir, ManifestName)
		b, _ := os.ReadFile(mp)
		man, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := strings.Replace(string(b),
			`"records": `+strconv.FormatInt(man.Records, 10),
			`"records": `+strconv.FormatInt(man.Records+1, 10), 1)
		os.WriteFile(mp, []byte(s), 0o644)
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("record-count mismatch accepted")
		}
	})
	t.Run("bad manifest format", func(t *testing.T) {
		dir := newStore(t)
		mp := filepath.Join(dir, ManifestName)
		b, _ := os.ReadFile(mp)
		os.WriteFile(mp, []byte(strings.Replace(string(b), ManifestFormat, "cmps/v999", 1)), 0o644)
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("unknown manifest format accepted")
		}
	})
	t.Run("missing shard file", func(t *testing.T) {
		dir := newStore(t)
		os.Remove(shardPath(dir))
		if _, err := OpenSharded(dir); err == nil {
			t.Fatal("missing shard file accepted")
		}
	})
}

func TestIsShardedDirFalseCases(t *testing.T) {
	if IsShardedDir(filepath.Join(t.TempDir(), "missing")) {
		t.Fatal("missing path reported as sharded dir")
	}
	empty := t.TempDir()
	if IsShardedDir(empty) {
		t.Fatal("empty dir reported as sharded dir")
	}
	file := filepath.Join(t.TempDir(), "flat.cmpt")
	os.WriteFile(file, []byte("CMPT"), 0o644)
	if IsShardedDir(file) {
		t.Fatal("plain file reported as sharded dir")
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for shards := 1; shards <= 8; shards++ {
		for tid := 0; tid < 1000; tid++ {
			s := shardOf(tid, shards)
			if s < 0 || s >= shards {
				t.Fatalf("shardOf(%d, %d) = %d out of range", tid, shards, s)
			}
			if s != shardOf(tid, shards) {
				t.Fatal("shardOf not deterministic")
			}
		}
	}
}

func TestMemSourceMatchesTrace(t *testing.T) {
	tr := sample()
	src := NewMemSource(tr)
	if src.Name() != tr.Name || src.Threads() != tr.Threads || src.Records() != int64(len(tr.Records)) {
		t.Fatalf("MemSource shape mismatch")
	}
	per := tr.PerThread()
	for tid := 0; tid < tr.Threads; tid++ {
		st := src.Stream(tid)
		chunk, err := st.NextChunk()
		if err != nil {
			t.Fatal(err)
		}
		if len(per[tid]) == 0 {
			if chunk != nil {
				t.Fatalf("thread %d: empty stream yielded a chunk", tid)
			}
			continue
		}
		if len(chunk) != len(per[tid]) {
			t.Fatalf("thread %d: chunk %d records, want %d", tid, len(chunk), len(per[tid]))
		}
		if next, err := st.NextChunk(); next != nil || err != nil {
			t.Fatalf("thread %d: stream did not end after one chunk", tid)
		}
	}
}
