package sweep

import (
	"cmpcache/internal/metrics"
)

// SeriesSummary is the per-job roll-up of an interval metrics series:
// window-count totals for the retry/write-back counters, peaks of the
// occupancy gauges, span-weighted mean ring utilizations, and how many
// windows closed with the retry switch active. `cmpsweep -metrics-out`
// writes one of these per successful job into summary.json so a grid's
// worth of series can be compared without re-parsing every per-job
// file.
type SeriesSummary struct {
	Job     Job    `json:"job"`
	Windows int    `json:"windows"`
	Cycles  uint64 `json:"cycles"` // span covered by the series

	// Counter totals (sum of per-window deltas).
	Retries    uint64 `json:"retries"`
	WBRetried  uint64 `json:"wb_retried"`
	WBIssued   uint64 `json:"wb_issued"`
	DemandTxns uint64 `json:"demand_txns"`
	FillsPeer  uint64 `json:"fills_peer"`
	FillsL3    uint64 `json:"fills_l3"`
	FillsMem   uint64 `json:"fills_mem"`

	// Gauge peaks across windows.
	PeakL3Queue uint64 `json:"peak_l3_queue"`
	PeakMSHR    uint64 `json:"peak_mshr"`
	PeakWBQueue uint64 `json:"peak_wb_queue"`

	// Span-weighted means (the final window may be partial).
	MeanAddrRingUtil float64 `json:"mean_addr_ring_util"`
	MeanDataRingUtil float64 `json:"mean_data_ring_util"`

	// Windows that closed with the WBHT retry switch active.
	SwitchActiveWindows int `json:"switch_active_windows"`
}

// SummarizeSeries rolls one job's interval series up into a
// SeriesSummary. A nil or empty series yields a zero summary carrying
// only the job identity.
func SummarizeSeries(j Job, s *metrics.Series) SeriesSummary {
	sum := SeriesSummary{Job: j}
	if s == nil || len(s.Samples) == 0 {
		return sum
	}
	sum.Windows = len(s.Samples)
	var span uint64
	var addrW, dataW float64
	for _, sm := range s.Samples {
		w := uint64(sm.End - sm.Start)
		span += w
		sum.Retries += sm.Retries
		sum.WBRetried += sm.WBRetried
		sum.WBIssued += sm.WBIssued
		sum.DemandTxns += sm.DemandTxns
		sum.FillsPeer += sm.FillsPeer
		sum.FillsL3 += sm.FillsL3
		sum.FillsMem += sm.FillsMem
		if v := uint64(sm.L3QueuePeak); v > sum.PeakL3Queue {
			sum.PeakL3Queue = v
		}
		if v := uint64(sm.MSHROccupancy); v > sum.PeakMSHR {
			sum.PeakMSHR = v
		}
		if v := uint64(sm.WBQueueOccupancy); v > sum.PeakWBQueue {
			sum.PeakWBQueue = v
		}
		addrW += sm.AddrRingUtil * float64(w)
		dataW += sm.DataRingUtil * float64(w)
		if sm.SwitchActive {
			sum.SwitchActiveWindows++
		}
	}
	sum.Cycles = span
	if span > 0 {
		sum.MeanAddrRingUtil = addrW / float64(span)
		sum.MeanDataRingUtil = dataW / float64(span)
	}
	return sum
}

// Summarize rolls every probed, successful result up into one
// SeriesSummary per job, in result order. Jobs without a metrics series
// (failed, or run unprobed) are skipped.
func Summarize(results []Result) []SeriesSummary {
	var out []SeriesSummary
	for _, r := range results {
		if r.Err != nil || r.Results == nil || r.Results.Metrics == nil {
			continue
		}
		out = append(out, SummarizeSeries(r.Job, r.Results.Metrics))
	}
	return out
}
