// Package sweep is the parallel sweep orchestrator: it fans independent
// simulation runs out across a bounded pool of goroutines and collects
// their results deterministically.
//
// Every evaluation artifact in the paper (Figures 2-7, Tables 1-5) is a
// sweep over independent configurations — workloads x mechanisms x
// outstanding-miss counts x table sizes. The simulator is deterministic
// at every shard-worker count (see internal/system's round coordinator);
// this package supplies the concurrency *between* runs and arbitrates
// the core budget when both levels are in play:
//
//   - a Job/Result model with a Plan builder that expands grids;
//   - a worker pool with bounded concurrency, per-job panic recovery
//     (a crashing configuration reports an error result instead of
//     killing the sweep), per-job wall-clock timing and an optional
//     per-job timeout;
//   - deterministic output ordering (results are returned in job order
//     regardless of completion order) and within-sweep deduplication,
//     so identical jobs execute once;
//   - JSON/CSV export and a progress callback (done / total / ETA).
//
// The orchestrator never reorders or perturbs simulation inputs, so a
// sweep run with 1 worker and with N workers exports byte-identical
// results.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/system"
	"cmpcache/internal/telemetry"
	"cmpcache/internal/txlat"
)

// Job identifies one simulation configuration, keyed the same way the
// experiment harness keys its run cache. The zero value of every
// override field means "paper default". Within a sweep, jobs are
// deduplicated by their canonical content hash (Key), so two jobs that
// materialize to the same (config, workload, seed) — even spelled
// differently, e.g. a defaulted field vs. its explicit paper value —
// execute once and share a result.
//
// Integer knob overrides follow a negative-sentinel convention: 0 means
// "mechanism default", a positive value overrides, and any negative
// value means "explicitly zero" — it materializes as 0 (and fails
// config.Validate for the mechanisms that need the knob). The sentinel
// keeps an explicit zero distinct from unset all the way into the
// content-hash cache key, so the two never alias to one result.
type Job struct {
	Workload    string
	Mechanism   config.Mechanism
	Outstanding int // 0 = config default (6)

	// TraceFile, when non-empty, replays a captured trace — a sharded
	// trace directory or a flat binary/text trace file — instead of
	// synthesizing Workload (which must then be empty). The trace's
	// content identity (trace.Describe), not its path, flows into the
	// job's cache key: two paths holding identical captures share a
	// result, and editing a file in place changes the key.
	TraceFile string

	// Table-size overrides (0 = mechanism default, negative = explicit 0).
	WBHTEntries  int
	SnarfEntries int

	// Plug-in policy knob overrides (same sentinel convention).
	ReuseEntries    int // reuse-distance sketch entries per L2
	ReuseMaxDist    int // reuse-distance abort threshold, in misses
	HybridEntries   int // hybrid update/invalidate score-table entries
	HybridThreshold int // peer-read score for update-mode stores

	// Policy variants (zero value = paper policy).
	GlobalWBHT    bool // Figure 3: allocate WBHT entries in all L2s
	NoSwitch      bool // disable the retry-rate on/off switch
	SnarfLRU      bool // insert snarfed lines at LRU instead of MRU
	InvalidOnly   bool // snarf only into Invalid ways
	LinesPerEntry int  // WBHT coarse entries (0 or 1 = per-line)
	HistoryRepl   bool // WBHT-informed L2 replacement (Section 7)

	// RefsPerThread overrides the workload length (0 = profile default).
	RefsPerThread int
}

// overrideInt applies the negative-sentinel convention: 0 leaves dst at
// its default, positive overrides, negative means "explicitly zero".
func overrideInt(dst *int, v int) {
	switch {
	case v > 0:
		*dst = v
	case v < 0:
		*dst = 0
	}
}

// Config materializes the simulated system configuration for the job.
func (j Job) Config() config.Config {
	cfg := config.Default().WithMechanism(j.Mechanism)
	if j.Outstanding > 0 {
		cfg.MaxOutstanding = j.Outstanding
	}
	overrideInt(&cfg.WBHT.Entries, j.WBHTEntries)
	overrideInt(&cfg.Snarf.Entries, j.SnarfEntries)
	overrideInt(&cfg.ReuseDist.Entries, j.ReuseEntries)
	overrideInt(&cfg.HybridUI.Entries, j.HybridEntries)
	overrideInt(&cfg.HybridUI.UpdateThreshold, j.HybridThreshold)
	if j.ReuseMaxDist > 0 {
		cfg.ReuseDist.MaxDistance = uint64(j.ReuseMaxDist)
	} else if j.ReuseMaxDist < 0 {
		cfg.ReuseDist.MaxDistance = 0
	}
	cfg.WBHT.GlobalAllocate = j.GlobalWBHT
	if j.NoSwitch {
		cfg.WBHT.SwitchEnabled = false
	}
	if j.SnarfLRU {
		cfg.Snarf.InsertMRU = false
	}
	if j.InvalidOnly {
		cfg.Snarf.VictimizeShared = false
	}
	if j.LinesPerEntry > 1 {
		cfg.WBHT.LinesPerEntry = j.LinesPerEntry
	}
	cfg.WBHT.HistoryReplacement = j.HistoryRepl
	return cfg
}

// String renders the job compactly for progress lines and errors,
// omitting fields left at their defaults.
func (j Job) String() string {
	var b strings.Builder
	if j.TraceFile != "" {
		fmt.Fprintf(&b, "trace:%s/%s", j.TraceFile, j.Mechanism)
	} else {
		fmt.Fprintf(&b, "%s/%s", j.Workload, j.Mechanism)
	}
	if j.Outstanding > 0 {
		fmt.Fprintf(&b, " out=%d", j.Outstanding)
	}
	for _, v := range []struct {
		val  int
		name string
	}{
		{j.WBHTEntries, "wbht"},
		{j.SnarfEntries, "snarf"},
		{j.ReuseEntries, "reuse"},
		{j.ReuseMaxDist, "maxdist"},
		{j.HybridEntries, "hybrid"},
		{j.HybridThreshold, "thresh"},
	} {
		if v.val > 0 {
			fmt.Fprintf(&b, " %s=%d", v.name, v.val)
		} else if v.val < 0 {
			fmt.Fprintf(&b, " %s=0", v.name)
		}
	}
	for _, v := range []struct {
		on   bool
		name string
	}{
		{j.GlobalWBHT, "global"},
		{j.NoSwitch, "no-switch"},
		{j.SnarfLRU, "lru-insert"},
		{j.InvalidOnly, "invalid-only"},
		{j.HistoryRepl, "hist-repl"},
	} {
		if v.on {
			b.WriteByte(' ')
			b.WriteString(v.name)
		}
	}
	if j.LinesPerEntry > 1 {
		fmt.Fprintf(&b, " coarse=%d", j.LinesPerEntry)
	}
	return b.String()
}

// Result is the outcome of one job. Exactly one of Results and Err is
// meaningful. Duration and Cached describe this sweep's execution and
// are excluded from JSON/CSV export so exports are reproducible across
// worker counts.
type Result struct {
	Job     Job
	Results *system.Results
	Err     error

	// Duration is the wall-clock time of the simulation run (zero for
	// jobs satisfied by an identical job's result).
	Duration time.Duration
	// Cached reports that this job was deduplicated against an
	// identical job earlier in the sweep.
	Cached bool
}

// Progress reports sweep advancement; the pool invokes the callback
// once per finished job, serialized (never concurrently).
type Progress struct {
	Done     int // jobs finished so far, including this one
	Total    int
	Job      Job
	Err      error
	Cached   bool
	Duration time.Duration // this job's wall clock (zero when Cached)
	Elapsed  time.Duration // since the sweep started
	ETA      time.Duration // naive remaining-time estimate
}

// RunFunc executes one job. Implementations must be safe for
// concurrent use; the default is (*Simulator).Run.
type RunFunc func(context.Context, Job) (*system.Results, error)

// Options controls pool execution.
type Options struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout, when positive, cancels each job that runs longer. The
	// timed-out job reports context.DeadlineExceeded; the sweep
	// continues. The default Simulator polls the context between
	// events, so a timed-out run stops (and its goroutine exits)
	// within milliseconds; a custom Run that ignores its context is
	// abandoned on its goroutine instead.
	Timeout time.Duration
	// Progress, when non-nil, receives one serialized event per
	// finished job.
	Progress func(Progress)
	// Run overrides the job executor (tests, fault injection). Nil
	// uses a fresh Simulator shared by the sweep.
	Run RunFunc
	// MetricsInterval, when positive and Run is nil, attaches a metrics
	// probe with that sampling window to every simulation; each job's
	// Results.Metrics then carries its interval series. Probes are
	// per-run state, so series are identical at any worker count.
	MetricsInterval config.Cycles
	// Latency, when non-nil and Run is nil, attaches a per-transaction
	// latency collector configured by it to every simulation; each
	// job's Results.Latency then carries the stage-attributed report.
	Latency *txlat.Config
	// Shards sets each run's intra-run parallelism when Run is nil:
	// 0 = serial runs (the default), < 0 = auto, N = N shard workers
	// per run. Results are bit-identical at every shard count, so this
	// only shifts where the core budget goes: an explicit N > 1 clamps
	// Workers so workers x shards stays within GOMAXPROCS (FitWorkers;
	// see Log), while auto keeps Workers and gives each run the spare
	// cores (AutoShards) — 1, i.e. serial, once the pool saturates.
	Shards int
	// Log, when non-nil, receives one line per notable pool decision
	// (currently only the oversubscription clamp). Nil is silent.
	Log func(format string, args ...any)

	// Metrics, when non-nil, receives pool occupancy and per-job timing
	// (worker busy gauge, queue-wait and wall-time histograms, run/dedup
	// counters). Every instrument inside is nil-safe, so a partially
	// filled PoolMetrics records only what it carries; nil is the
	// zero-cost detached default.
	Metrics *PoolMetrics
}

// PoolMetrics instruments a sweep pool. Build one with NewPoolMetrics
// to register everything on a telemetry registry, or fill individual
// fields by hand (instruments are nil-safe).
type PoolMetrics struct {
	// Busy tracks workers currently executing a simulation (dedup
	// waiters don't count — they are blocked, not working).
	Busy *telemetry.Gauge
	// JobsRun counts primary executions; JobsDeduped counts jobs served
	// by attaching to an identical in-flight or finished entry.
	JobsRun     *telemetry.Counter
	JobsDeduped *telemetry.Counter
	// QueueSeconds observes, per primary execution, the wait between
	// pool start and the job beginning to run — the dispatch delay the
	// bounded pool imposed. JobSeconds observes each primary's
	// simulation wall time.
	QueueSeconds *telemetry.Histogram
	JobSeconds   *telemetry.Histogram
	// SourceOpens / SourceHits count trace-source container opens vs
	// source-cache hits when the pool builds its own Simulator.
	SourceOpens *telemetry.Counter
	SourceHits  *telemetry.Counter
}

// NewPoolMetrics registers the full pool instrument set on reg under
// the given metric-name prefix (e.g. "cmpsweep"). A nil registry yields
// detached but functional instruments.
func NewPoolMetrics(reg *telemetry.Registry, prefix string) *PoolMetrics {
	if reg == nil {
		return &PoolMetrics{
			Busy:    &telemetry.Gauge{},
			JobsRun: &telemetry.Counter{}, JobsDeduped: &telemetry.Counter{},
			QueueSeconds: telemetry.NewHistogram(telemetry.SecondsBuckets),
			JobSeconds:   telemetry.NewHistogram(telemetry.SecondsBuckets),
			SourceOpens:  &telemetry.Counter{}, SourceHits: &telemetry.Counter{},
		}
	}
	return &PoolMetrics{
		Busy: reg.Gauge(prefix+"_pool_busy_workers",
			"Pool workers currently executing a simulation."),
		JobsRun: reg.Counter(prefix+"_pool_jobs_run_total",
			"Distinct simulations executed by the pool."),
		JobsDeduped: reg.Counter(prefix+"_pool_jobs_deduped_total",
			"Jobs served by attaching to an identical entry instead of executing."),
		QueueSeconds: reg.Histogram(prefix+"_pool_job_queue_seconds",
			"Wait between pool start and a primary beginning to run.",
			telemetry.SecondsBuckets),
		JobSeconds: reg.Histogram(prefix+"_pool_job_seconds",
			"Per-primary simulation wall time.",
			telemetry.SecondsBuckets),
		SourceOpens: reg.Counter(prefix+"_trace_source_opens_total",
			"Trace-source container opens."),
		SourceHits: reg.Counter(prefix+"_trace_source_cache_hits_total",
			"Trace-source lookups served from the simulator's source cache."),
	}
}

// effectiveWorkers resolves the sweep's concurrency from opts: the
// requested worker count, bounded by the job count, and — when intra-run
// sharding is on — clamped so workers x shards-per-run stays within
// GOMAXPROCS. Returns the worker count and the clamp decision (for
// logging and tests).
func effectiveWorkers(opts Options, jobs int) (workers int, clamped bool) {
	workers = opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if opts.Run == nil {
		workers, clamped = FitWorkers(workers, opts.Shards)
	}
	return workers, clamped
}

// FitWorkers is the oversubscription guard shared by every pool that
// runs sharded simulations concurrently (sweeps, the serve daemon): it
// clamps a concurrent-run count so that runs x shard-workers-per-run
// stays within GOMAXPROCS — P runs each spinning up S shard workers
// would otherwise put P*S runnable goroutines on G cores and thrash.
// shards follows the Options.Shards convention; only an explicit count
// (> 1) clamps — auto (< 0) instead adapts the per-run shard count to
// the leftover budget (see AutoShards). The second result reports
// whether a clamp occurred.
func FitWorkers(workers, shards int) (int, bool) {
	if shards <= 1 || workers <= 1 {
		return workers, false
	}
	g := runtime.GOMAXPROCS(0)
	perRun := shards
	if perRun > g {
		perRun = g
	}
	if perRun <= 1 || workers*perRun <= g {
		return workers, false
	}
	fit := g / perRun
	if fit < 1 {
		fit = 1
	}
	if fit >= workers {
		return workers, false
	}
	return fit, true
}

// AutoShards resolves the "auto" shard count for a pool running workers
// concurrent simulations: the cores left over once every worker has
// one, never below serial. With a saturating pool (workers == G) this
// is 1 — inter-run parallelism already owns every core; with few jobs
// and many cores the spare cores go inside each run.
func AutoShards(workers int) int {
	s := runtime.GOMAXPROCS(0) / workers
	if s < 1 {
		s = 1
	}
	return s
}

// Run executes jobs on a bounded worker pool and returns one Result per
// job, in job order. Identical jobs execute once and share a result.
// Run never fails as a whole: per-job errors (including recovered
// panics and timeouts) are reported on the individual Result. A
// cancelled ctx marks not-yet-started jobs with ctx.Err().
func Run(ctx context.Context, jobs []Job, opts Options) []Result {
	workers, clamped := effectiveWorkers(opts, len(jobs))
	if clamped && opts.Log != nil {
		opts.Log("sweep: clamped to %d concurrent simulations (%d shard workers per run on GOMAXPROCS=%d)",
			workers, opts.Shards, runtime.GOMAXPROCS(0))
	}
	runFn := opts.Run
	if runFn == nil {
		sim := NewSimulator()
		sim.MetricsInterval = opts.MetricsInterval
		sim.Latency = opts.Latency
		if sim.Shards = opts.Shards; sim.Shards < 0 {
			sim.Shards = AutoShards(workers)
		}
		if opts.Metrics != nil {
			sim.SourceOpens = opts.Metrics.SourceOpens
			sim.SourceHits = opts.Metrics.SourceHits
		}
		runFn = sim.Run
	}

	met := opts.Metrics
	if met == nil {
		met = &PoolMetrics{} // all-nil instruments: nil-safe, zero-cost
	}
	results := make([]Result, len(jobs))
	pool := &pool{
		entries: make(map[string]*entry, len(jobs)),
		total:   len(jobs),
		start:   time.Now(),
		report:  opts.Progress,
		met:     met,
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				results[idx] = pool.execute(ctx, jobs[idx], runFn, opts.Timeout)
			}
		}()
	}
	for idx := range jobs {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()
	return results
}

// entry is the shared execution record for one distinct Job.
type entry struct {
	ready chan struct{} // closed once res/err/dur are final
	res   *system.Results
	err   error
	dur   time.Duration
}

type pool struct {
	mu      sync.Mutex
	entries map[string]*entry

	progressMu sync.Mutex
	done       int
	total      int
	start      time.Time
	report     func(Progress)

	met *PoolMetrics // never nil; individual instruments may be
}

// execute runs (or awaits) the entry for job and returns its Result.
// Entries are keyed by the canonical content hash (Key), not the Job
// struct, so jobs that spell the same simulation differently — a
// defaulted field vs. its explicit paper value — still collapse to one
// execution.
func (p *pool) execute(ctx context.Context, job Job, runFn RunFunc, timeout time.Duration) Result {
	key := dedupKey(job)
	p.mu.Lock()
	e, dup := p.entries[key]
	if !dup {
		e = &entry{ready: make(chan struct{})}
		p.entries[key] = e
	}
	p.mu.Unlock()

	r := Result{Job: job, Cached: dup}
	if !dup {
		start := time.Now()
		p.met.QueueSeconds.Observe(start.Sub(p.start).Seconds())
		p.met.Busy.Inc()
		e.res, e.err = runJob(ctx, runFn, job, timeout)
		e.dur = time.Since(start)
		p.met.Busy.Dec()
		p.met.JobsRun.Inc()
		p.met.JobSeconds.Observe(e.dur.Seconds())
		close(e.ready)
		r.Results, r.Err, r.Duration = e.res, e.err, e.dur
	} else {
		p.met.JobsDeduped.Inc()
		select {
		case <-e.ready:
			r.Results, r.Err = e.res, e.err
		case <-ctx.Done():
			r.Err = ctx.Err()
		}
	}
	p.progress(r)
	return r
}

func (p *pool) progress(r Result) {
	if p.report == nil {
		p.progressMu.Lock()
		p.done++
		p.progressMu.Unlock()
		return
	}
	p.progressMu.Lock()
	defer p.progressMu.Unlock()
	p.done++
	elapsed := time.Since(p.start)
	var eta time.Duration
	if p.done > 0 && p.done < p.total {
		eta = elapsed / time.Duration(p.done) * time.Duration(p.total-p.done)
	}
	p.report(Progress{
		Done:     p.done,
		Total:    p.total,
		Job:      r.Job,
		Err:      r.Err,
		Cached:   r.Cached,
		Duration: r.Duration,
		Elapsed:  elapsed,
		ETA:      eta,
	})
}

// runJob wraps one execution with timeout plumbing and panic recovery.
func runJob(ctx context.Context, fn RunFunc, job Job, timeout time.Duration) (*system.Results, error) {
	if timeout <= 0 {
		return safeRun(ctx, fn, job)
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		res *system.Results
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := safeRun(tctx, fn, job)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-tctx.Done():
		return nil, fmt.Errorf("sweep: job %s: %w", job, tctx.Err())
	}
}

// safeRun converts a panicking job into an error result so one broken
// configuration cannot take down the sweep.
func safeRun(ctx context.Context, fn RunFunc, job Job) (res *system.Results, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("sweep: job %s panicked: %v", job, p)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fn(ctx, job)
}
