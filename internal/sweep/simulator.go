package sweep

import (
	"context"
	"sync"

	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/system"
	"cmpcache/internal/telemetry"
	"cmpcache/internal/trace"
	"cmpcache/internal/txlat"
	"cmpcache/internal/workload"
)

// Simulator is the default job executor: it synthesizes (and caches)
// workload traces and runs each job's configuration through the
// simulator. It is safe for concurrent use; identical (workload,
// length) traces are generated once and shared — the simulator only
// reads trace records, so sharing across concurrent runs is safe.
type Simulator struct {
	// MetricsInterval, when positive, attaches a metrics probe sampling
	// at that window to every run; each Result's Results.Metrics then
	// carries the per-interval series. Zero leaves runs unprobed (the
	// zero-overhead default). Set before the sweep starts.
	MetricsInterval config.Cycles

	// Latency, when non-nil, attaches a per-transaction latency
	// collector configured by it to every run; each Result's
	// Results.Latency then carries the stage-attributed report.
	// Collectors are per-run state, so reports are identical at any
	// worker count. Set before the sweep starts.
	Latency *txlat.Config

	// Shards sets each run's intra-run parallelism (system.SetWorkers):
	// 0 leaves runs serial, < 0 selects auto (one worker per L2 slice,
	// capped by GOMAXPROCS), and explicit counts clamp likewise. Runs
	// are bit-identical at every shard count, so this is not part of
	// any result-cache key. Set before the sweep starts.
	Shards int

	// SourceOpens / SourceHits count trace-source container opens and
	// source-cache hits. Nil-safe telemetry instruments: leave nil for
	// zero-cost detachment. Set before the sweep starts.
	SourceOpens *telemetry.Counter
	SourceHits  *telemetry.Counter

	mu      sync.Mutex
	traces  map[traceKey]*traceEntry
	sources map[sourceKey]*sourceEntry
}

type traceKey struct {
	name string
	refs int
}

type traceEntry struct {
	ready chan struct{}
	tr    *trace.Trace
	err   error
}

// sourceKey keys opened trace files by path AND content hash: a file
// edited in place between jobs is reopened, never served stale from the
// handle cache.
type sourceKey struct {
	path string
	sha  string
}

type sourceEntry struct {
	ready chan struct{}
	src   trace.Source
	err   error
}

// NewSimulator returns a Simulator with an empty trace cache.
func NewSimulator() *Simulator {
	return &Simulator{
		traces:  make(map[traceKey]*traceEntry),
		sources: make(map[sourceKey]*sourceEntry),
	}
}

// trace returns the cached trace for (name, refs), generating it at
// most once even under concurrent callers.
func (s *Simulator) trace(ctx context.Context, name string, refs int) (*trace.Trace, error) {
	key := traceKey{name: name, refs: refs}
	s.mu.Lock()
	e, ok := s.traces[key]
	if !ok {
		e = &traceEntry{ready: make(chan struct{})}
		s.traces[key] = e
	}
	s.mu.Unlock()
	if !ok {
		e.tr, e.err = generate(name, refs)
		close(e.ready)
		return e.tr, e.err
	}
	select {
	case <-e.ready:
		return e.tr, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func generate(name string, refs int) (*trace.Trace, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if refs > 0 {
		p.RefsPerThread = refs
	}
	return p.Generate()
}

// source returns the opened trace source for path, opening it at most
// once per content version even under concurrent callers. Sharded
// directories stream from disk; flat files load into memory. Sources
// are shared across concurrent runs — per-thread streams are
// independent and the sharded reader serves them with positioned reads.
func (s *Simulator) source(ctx context.Context, path string) (trace.Source, error) {
	ref, err := trace.Describe(path)
	if err != nil {
		return nil, err
	}
	key := sourceKey{path: path, sha: ref.SHA256}
	s.mu.Lock()
	e, ok := s.sources[key]
	if !ok {
		e = &sourceEntry{ready: make(chan struct{})}
		s.sources[key] = e
	}
	s.mu.Unlock()
	if !ok {
		s.SourceOpens.Inc()
		e.src, e.err = openSource(path)
		close(e.ready)
		return e.src, e.err
	}
	s.SourceHits.Inc()
	select {
	case <-e.ready:
		return e.src, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func openSource(path string) (trace.Source, error) {
	if trace.IsShardedDir(path) {
		return trace.OpenSharded(path)
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return trace.NewMemSource(t), nil
}

// Run executes one job to completion, or until ctx is cancelled: the
// simulation polls ctx between events (system.RunContext), so a
// cancelled or timed-out job stops within milliseconds and its
// goroutine exits — nothing keeps running in the background. A
// completed run is bit-identical regardless of the ctx used.
func (s *Simulator) Run(ctx context.Context, j Job) (*system.Results, error) {
	cfg := j.Config()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var sys *system.System
	if j.TraceFile != "" {
		src, err := s.source(ctx, j.TraceFile)
		if err != nil {
			return nil, err
		}
		if sys, err = system.NewStream(cfg, src); err != nil {
			return nil, err
		}
	} else {
		tr, err := s.trace(ctx, j.Workload, j.RefsPerThread)
		if err != nil {
			return nil, err
		}
		if sys, err = system.New(cfg, tr); err != nil {
			return nil, err
		}
	}
	if s.MetricsInterval > 0 {
		sys.Attach(metrics.NewProbe(metrics.Config{Interval: s.MetricsInterval}))
	}
	if s.Latency != nil {
		sys.AttachLatency(txlat.New(*s.Latency))
	}
	if s.Shards != 0 {
		sys.SetWorkers(s.Shards)
	}
	return sys.RunContext(ctx)
}
