package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// Plan describes a sweep grid. Jobs() expands the cross product
// workloads x mechanisms x outstanding x table sizes into concrete
// jobs. Empty axes fall back to sensible defaults: all built-in
// workloads, all four mechanisms, the configured outstanding default,
// and the paper-default table sizes.
type Plan struct {
	Workloads []string
	// TraceFiles are captured-trace inputs (sharded trace directories or
	// flat trace files) swept alongside — or instead of — the synthetic
	// workloads. When TraceFiles is non-empty and Workloads is empty, the
	// grid runs only the traces (workloads do NOT default to "all").
	TraceFiles  []string
	Mechanisms  []config.Mechanism
	Outstanding []int
	// TableSizes overrides the active mechanism's table entries: WBHT
	// entries for WBHT jobs, snarf-table entries for Snarf jobs, both
	// (as in Section 5.3's equal-capacity split) for Combined jobs.
	// Baseline jobs carry no tables and ignore the axis.
	TableSizes []int
	// RefsPerThread overrides the workload length (0 = profile default).
	RefsPerThread int
}

// Jobs expands the plan. Baseline configurations are emitted once per
// (workload, outstanding) pair regardless of the size axis, so the grid
// never contains trivially identical baseline jobs.
func (p Plan) Jobs() []Job {
	workloads := p.Workloads
	if len(workloads) == 0 && len(p.TraceFiles) == 0 {
		workloads = workload.Names()
	}
	mechanisms := p.Mechanisms
	if len(mechanisms) == 0 {
		mechanisms = []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined}
	}
	outstanding := p.Outstanding
	if len(outstanding) == 0 {
		outstanding = []int{0}
	}
	sizes := p.TableSizes
	if len(sizes) == 0 {
		sizes = []int{0}
	}

	// Synthetic workloads and trace replays share the grid's other axes;
	// a trace input replays its whole capture, so RefsPerThread applies
	// only to synthesis.
	type input struct{ workload, traceFile string }
	inputs := make([]input, 0, len(workloads)+len(p.TraceFiles))
	for _, w := range workloads {
		inputs = append(inputs, input{workload: w})
	}
	for _, tf := range p.TraceFiles {
		inputs = append(inputs, input{traceFile: tf})
	}

	var jobs []Job
	for _, in := range inputs {
		for _, o := range outstanding {
			for _, m := range mechanisms {
				base := Job{
					Workload:    in.workload,
					TraceFile:   in.traceFile,
					Mechanism:   m,
					Outstanding: o,
				}
				if in.traceFile == "" {
					base.RefsPerThread = p.RefsPerThread
				}
				if m == config.Baseline {
					jobs = append(jobs, base)
					continue
				}
				for _, s := range sizes {
					j := base
					switch m {
					case config.WBHT:
						j.WBHTEntries = s
					case config.Snarf:
						j.SnarfEntries = s
					case config.Combined:
						j.WBHTEntries = s
						j.SnarfEntries = s
					case config.ReuseDist:
						j.ReuseEntries = s
					case config.HybridUI:
						j.HybridEntries = s
					}
					jobs = append(jobs, j)
				}
			}
		}
	}
	return jobs
}

// Validate checks that every named workload exists and every trace
// input resolves to a readable capture, so a misspelled grid or a
// missing trace fails before any simulation starts.
func (p Plan) Validate() error {
	for _, w := range p.Workloads {
		if _, err := workload.ByName(w); err != nil {
			return err
		}
	}
	for _, tf := range p.TraceFiles {
		if _, err := trace.Describe(tf); err != nil {
			return fmt.Errorf("sweep: trace %s: %w", tf, err)
		}
	}
	return nil
}

// ParseIntSpec parses a sweep-axis specification: comma-separated
// values and inclusive ranges, e.g. "1-6", "512,2048,8192" or "1-3,6".
func ParseIntSpec(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("sweep: bad range %q in %q", part, spec)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("sweep: bad range %q in %q", part, spec)
			}
			if b < a {
				return nil, fmt.Errorf("sweep: descending range %q in %q", part, spec)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad value %q in %q", part, spec)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty spec %q", spec)
	}
	return out, nil
}

// ParseMechanisms parses a comma-separated mechanism list ("base,wbht")
// or one of the shorthands: "all" expands to every registered policy,
// "paper" to the paper's four configurations.
func ParseMechanisms(spec string) ([]config.Mechanism, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "all":
		return []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined,
			config.ReuseDist, config.HybridUI}, nil
	case "paper":
		return []config.Mechanism{config.Baseline, config.WBHT, config.Snarf, config.Combined}, nil
	}
	var out []config.Mechanism
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var m config.Mechanism
		if err := m.UnmarshalText([]byte(part)); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism spec %q", spec)
	}
	return out, nil
}

// ParseWorkloads parses a comma-separated workload list or "all".
func ParseWorkloads(spec string) ([]string, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		return workload.Names(), nil
	}
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := workload.ByName(part); err != nil {
			return nil, err
		}
		out = append(out, strings.ToLower(part))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty workload spec %q", spec)
	}
	return out, nil
}

// ParseShards parses a -shards flag value: "auto" (or "") selects one
// shard worker per L2 slice capped by GOMAXPROCS, "serial" or any
// explicit count N >= 1 selects exactly that many (clamped to the
// useful maximum at run time). The returned convention matches
// Options.Shards / Simulator.Shards: -1 = auto, N >= 1 = N.
func ParseShards(spec string) (int, error) {
	s := strings.TrimSpace(spec)
	switch strings.ToLower(s) {
	case "", "auto":
		return -1, nil
	case "serial":
		return 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("sweep: shards spec %q: want auto, serial, or a count >= 1", spec)
	}
	return n, nil
}
