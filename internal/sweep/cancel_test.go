package sweep

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cmpcache/internal/config"
)

// waitGoroutines polls until the goroutine count settles back to at
// most want (plus slack for test-runner background goroutines).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", want, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPoolCancellation proves the daemon-facing contract of the run
// path: a cancelled sweep context reaches the running simulations (the
// job observes ctx and aborts mid-run), the pool drains cleanly, and no
// worker or simulation goroutine is left behind.
func TestPoolCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	// ~1M-record traces: setup is fractions of a second while the full
	// simulation would take many seconds, so a 20ms cancellation must
	// land long before any job can complete.
	jobs := []Job{
		{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 60_000},
		{Workload: "trade2", Mechanism: config.Baseline, RefsPerThread: 60_000},
		{Workload: "cpw2", Mechanism: config.Baseline, RefsPerThread: 60_000},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	results := Run(ctx, jobs, Options{Workers: 2})
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d completed despite cancellation", i)
		} else if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	waitGoroutines(t, before)
}

// TestPoolTimeoutStopsRun proves a per-job timeout actually stops the
// default simulator (not just the result wait): the job reports
// DeadlineExceeded and the abandoned run's goroutine exits instead of
// simulating to completion in the background.
func TestPoolTimeoutStopsRun(t *testing.T) {
	before := runtime.NumGoroutine()
	jobs := []Job{{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 60_000}}
	results := Run(context.Background(), jobs, Options{Workers: 1, Timeout: 30 * time.Millisecond})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", results[0].Err)
	}
	waitGoroutines(t, before)
}
