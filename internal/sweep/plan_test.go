package sweep

import (
	"reflect"
	"testing"

	"cmpcache/internal/config"
)

func TestPlanExpandsGrid(t *testing.T) {
	p := Plan{
		Workloads:   []string{"tp", "trade2"},
		Mechanisms:  []config.Mechanism{config.WBHT},
		Outstanding: []int{1, 6},
		TableSizes:  []int{512, 2048},
	}
	jobs := p.Jobs()
	if len(jobs) != 2*2*2 {
		t.Fatalf("got %d jobs, want 8", len(jobs))
	}
	want := Job{Workload: "tp", Mechanism: config.WBHT, Outstanding: 1, WBHTEntries: 512}
	if jobs[0] != want {
		t.Fatalf("jobs[0] = %+v, want %+v", jobs[0], want)
	}
}

func TestPlanBaselineIgnoresSizes(t *testing.T) {
	p := Plan{
		Workloads:   []string{"tp"},
		Mechanisms:  []config.Mechanism{config.Baseline, config.Snarf},
		Outstanding: []int{6},
		TableSizes:  []int{512, 2048, 8192},
	}
	jobs := p.Jobs()
	// 1 baseline + 3 snarf sizes: the size axis never duplicates the
	// (table-free) baseline configuration.
	if len(jobs) != 4 {
		t.Fatalf("got %d jobs, want 4", len(jobs))
	}
	base := 0
	for _, j := range jobs {
		if j.Mechanism == config.Baseline {
			base++
			if j.WBHTEntries != 0 || j.SnarfEntries != 0 {
				t.Fatalf("baseline job carries table sizes: %+v", j)
			}
		}
	}
	if base != 1 {
		t.Fatalf("got %d baseline jobs, want 1", base)
	}
}

func TestPlanCombinedSetsBothTables(t *testing.T) {
	p := Plan{
		Workloads:   []string{"tp"},
		Mechanisms:  []config.Mechanism{config.Combined},
		Outstanding: []int{6},
		TableSizes:  []int{1024},
	}
	jobs := p.Jobs()
	if len(jobs) != 1 || jobs[0].WBHTEntries != 1024 || jobs[0].SnarfEntries != 1024 {
		t.Fatalf("combined job = %+v", jobs)
	}
}

func TestPlanDefaults(t *testing.T) {
	jobs := Plan{}.Jobs()
	// all workloads x all mechanisms, one (default) outstanding level.
	if len(jobs) != 4*4 {
		t.Fatalf("got %d jobs, want 16", len(jobs))
	}
	if err := (Plan{Workloads: []string{"bogus"}}).Validate(); err == nil {
		t.Fatal("bogus workload validated")
	}
	if err := (Plan{Workloads: []string{"tp"}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJobConfigMatchesOverrides(t *testing.T) {
	j := Job{Workload: "tp", Mechanism: config.Snarf, Outstanding: 3,
		SnarfEntries: 1024, SnarfLRU: true, InvalidOnly: true}
	cfg := j.Config()
	if cfg.Mechanism != config.Snarf || cfg.MaxOutstanding != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Snarf.Entries != 1024 || cfg.Snarf.InsertMRU || cfg.Snarf.VictimizeShared {
		t.Fatalf("snarf overrides not applied: %+v", cfg.Snarf)
	}
	cfg = Job{Workload: "tp", Mechanism: config.WBHT, Outstanding: 6,
		WBHTEntries: 2048, GlobalWBHT: true, NoSwitch: true, HistoryRepl: true}.Config()
	if cfg.WBHT.Entries != 2048 || !cfg.WBHT.GlobalAllocate || cfg.WBHT.SwitchEnabled ||
		!cfg.WBHT.HistoryReplacement {
		t.Fatalf("wbht overrides not applied: %+v", cfg.WBHT)
	}
	// Combined halves both tables unless overridden.
	cfg = Job{Workload: "tp", Mechanism: config.Combined, Outstanding: 6}.Config()
	if cfg.WBHT.Entries != 16384 || cfg.Snarf.Entries != 16384 {
		t.Fatalf("combined defaults not halved: wbht=%d snarf=%d", cfg.WBHT.Entries, cfg.Snarf.Entries)
	}
}

func TestParseIntSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []int
	}{
		{"6", []int{6}},
		{"1-6", []int{1, 2, 3, 4, 5, 6}},
		{"1,2,4", []int{1, 2, 4}},
		{"1-3,6", []int{1, 2, 3, 6}},
		{"512, 2048", []int{512, 2048}},
	}
	for _, c := range cases {
		got, err := ParseIntSpec(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%q: got %v, want %v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "3-1", "1-2-3", ","} {
		if _, err := ParseIntSpec(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseMechanisms(t *testing.T) {
	got, err := ParseMechanisms("base,wbht")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []config.Mechanism{config.Baseline, config.WBHT}) {
		t.Fatalf("got %v", got)
	}
	all, err := ParseMechanisms("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("all: %v, %v", all, err)
	}
	paper, err := ParseMechanisms("paper")
	if err != nil || !reflect.DeepEqual(paper, []config.Mechanism{
		config.Baseline, config.WBHT, config.Snarf, config.Combined}) {
		t.Fatalf("paper: %v, %v", paper, err)
	}
	if _, err := ParseMechanisms("warp-drive"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestParseWorkloads(t *testing.T) {
	got, err := ParseWorkloads("tp,trade2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"tp", "trade2"}) {
		t.Fatalf("got %v", got)
	}
	all, err := ParseWorkloads("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v, %v", all, err)
	}
	if _, err := ParseWorkloads("quake3"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
