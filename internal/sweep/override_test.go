package sweep

import (
	"flag"
	"io"
	"testing"

	"cmpcache/internal/config"
)

func parseOverrides(t *testing.T, args ...string) *config.Overrides {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := config.RegisterOverrides(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOverrideJobsNilAndUnset(t *testing.T) {
	jobs := []Job{{Workload: "tp", Mechanism: config.WBHT}}
	if got := OverrideJobs(jobs, nil); got[0] != jobs[0] {
		t.Fatal("nil overrides changed a job")
	}
	if got := OverrideJobs(jobs, parseOverrides(t)); got[0].WBHTEntries != 0 {
		t.Fatal("unset overrides changed a job")
	}
}

// TestOverrideJobsExplicitZeroSentinel proves the sweep layer keeps an
// explicit `-wbht-entries 0` distinct from unset end to end: the job
// carries the negative sentinel, materializes to zero entries (which
// Validate rejects), and hashes to a different content key than the
// defaulted job — the result cache and the daemon can never alias the
// two spellings onto one result.
func TestOverrideJobsExplicitZeroSentinel(t *testing.T) {
	base := Job{Workload: "tp", Mechanism: config.WBHT}
	jobs := OverrideJobs([]Job{base}, parseOverrides(t, "-wbht-entries", "0"))
	if jobs[0].WBHTEntries >= 0 {
		t.Fatalf("explicit zero became %d, want negative sentinel", jobs[0].WBHTEntries)
	}
	cfg := jobs[0].Config()
	if cfg.WBHT.Entries != 0 {
		t.Fatalf("sentinel materialized as %d entries, want 0", cfg.WBHT.Entries)
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero-entry WBHT config passed Validate")
	}
	zeroKey, err := Key(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	defKey, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if zeroKey == defKey {
		t.Fatal("explicit-zero job aliases the defaulted job in the content-hash cache")
	}
}

func TestOverrideJobsAppliesPolicyKnobs(t *testing.T) {
	o := parseOverrides(t,
		"-reuse-entries", "1024",
		"-reuse-max-distance", "500",
		"-hybrid-entries", "2048",
		"-hybrid-threshold", "4",
		"-no-retry-switch",
		"-global-wbht",
	)
	jobs := OverrideJobs([]Job{
		{Workload: "tp", Mechanism: config.ReuseDist},
		{Workload: "tp", Mechanism: config.HybridUI},
	}, o)
	rd := jobs[0].Config()
	if rd.ReuseDist.Entries != 1024 || rd.ReuseDist.MaxDistance != 500 {
		t.Fatalf("reusedist knobs = %d/%d", rd.ReuseDist.Entries, rd.ReuseDist.MaxDistance)
	}
	hy := jobs[1].Config()
	if hy.HybridUI.Entries != 2048 || hy.HybridUI.UpdateThreshold != 4 {
		t.Fatalf("hybridui knobs = %d/%d", hy.HybridUI.Entries, hy.HybridUI.UpdateThreshold)
	}
	if jobs[0].NoSwitch != true || jobs[0].GlobalWBHT != true {
		t.Fatal("bool overrides not applied")
	}
}

// TestPolicyKeysNeverAlias pins the daemon/cache guarantee the policy
// plug-in architecture depends on: two policies with identical knob
// spellings are different simulations and must produce distinct
// content-hash cache keys.
func TestPolicyKeysNeverAlias(t *testing.T) {
	mechs := []config.Mechanism{config.Baseline, config.WBHT, config.Snarf,
		config.Combined, config.ReuseDist, config.HybridUI}
	seen := make(map[string]config.Mechanism, len(mechs))
	for _, m := range mechs {
		k, err := Key(Job{Workload: "tp", Mechanism: m})
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("mechanisms %v and %v share cache key %s", prev, m, k)
		}
		seen[k] = m
	}
}
