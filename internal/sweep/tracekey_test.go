package sweep

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// genTrace synthesizes a small deterministic workload trace for the
// trace-key and trace-replay tests.
func genTrace(t *testing.T, name string, refs int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p.RefsPerThread = refs
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func writeShardedTrace(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "capture.cmps")
	if _, err := trace.WriteSharded(dir, tr, trace.ShardOptions{Shards: 2, BatchRecords: 64}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestKeyTraceContentSeparation is the cache-safety acceptance
// criterion: two trace inputs differing only in file content must hash
// apart, and the same content at two paths must hash together.
func TestKeyTraceContentSeparation(t *testing.T) {
	trA := genTrace(t, "tp", 200)
	trB := genTrace(t, "tp", 200)
	trB.Records[0].Addr ^= 0x80 // one-byte semantic difference

	dirA := writeShardedTrace(t, trA)
	dirB := writeShardedTrace(t, trB)
	dirA2 := writeShardedTrace(t, trA) // same content, different path

	kA, err := Key(Job{TraceFile: dirA, Mechanism: config.WBHT})
	if err != nil {
		t.Fatal(err)
	}
	kB, err := Key(Job{TraceFile: dirB, Mechanism: config.WBHT})
	if err != nil {
		t.Fatal(err)
	}
	kA2, err := Key(Job{TraceFile: dirA2, Mechanism: config.WBHT})
	if err != nil {
		t.Fatal(err)
	}
	if kA == kB {
		t.Fatal("keys collide for traces differing in content")
	}
	if kA != kA2 {
		t.Fatal("keys differ for identical content at different paths")
	}
}

// TestKeyTraceNeverAliasesSynthetic: replaying a capture of workload W
// must not share a key with running W synthetically, even though the
// reference streams are identical.
func TestKeyTraceNeverAliasesSynthetic(t *testing.T) {
	tr := genTrace(t, "tp", 200)
	dir := writeShardedTrace(t, tr)
	kTrace, err := Key(Job{TraceFile: dir, Mechanism: config.WBHT})
	if err != nil {
		t.Fatal(err)
	}
	kSynth, err := Key(Job{Workload: "tp", Mechanism: config.WBHT, RefsPerThread: 200})
	if err != nil {
		t.Fatal(err)
	}
	if kTrace == kSynth {
		t.Fatal("trace-replay job aliases its synthetic twin")
	}
}

// TestKeyTraceFlatFile covers the flat-file branch: content identity is
// the file bytes, so a byte-identical copy keys equal and an edited copy
// keys apart.
func TestKeyTraceFlatFile(t *testing.T) {
	tr := genTrace(t, "cpw2", 100)
	dir := t.TempDir()
	write := func(name string, tr *trace.Trace) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(f, tr); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := write("a.cmpt", tr)
	p2 := write("b.cmpt", tr)
	edited := genTrace(t, "cpw2", 100)
	edited.Records[5].Gap++
	p3 := write("c.cmpt", edited)

	k1, err := Key(Job{TraceFile: p1})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(Job{TraceFile: p2})
	if err != nil {
		t.Fatal(err)
	}
	k3, err := Key(Job{TraceFile: p3})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("byte-identical flat traces key apart")
	}
	if k1 == k3 {
		t.Fatal("edited flat trace keys equal")
	}
}

// TestKeyTraceRejectsAmbiguousJob: a job naming both a trace and a
// synthetic workload is a contradiction, not a preference.
func TestKeyTraceRejectsAmbiguousJob(t *testing.T) {
	if _, err := Key(Job{TraceFile: "x.cmpt", Workload: "tp"}); err == nil {
		t.Fatal("job with both TraceFile and Workload accepted")
	}
}

// TestRunTraceJobMatchesSynthetic replays a capture through the real
// sweep pool and checks the result equals the synthetic run it was
// captured from (same reference stream, same simulation).
func TestRunTraceJobMatchesSynthetic(t *testing.T) {
	tr := genTrace(t, "tp", 200)
	dir := writeShardedTrace(t, tr)
	jobs := []Job{
		{Workload: "tp", RefsPerThread: 200, Mechanism: config.WBHT},
		{TraceFile: dir, Mechanism: config.WBHT},
	}
	results := Run(context.Background(), jobs, Options{Workers: 2})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Job, r.Err)
		}
	}
	if results[0].Cached || results[1].Cached {
		t.Fatal("trace job deduplicated against synthetic twin — keys alias")
	}
	if results[0].Results.Cycles != results[1].Results.Cycles {
		t.Fatalf("trace replay cycles %d != synthetic %d",
			results[1].Results.Cycles, results[0].Results.Cycles)
	}
}

// TestPlanTraceFiles pins the grid semantics: traces alone suppress the
// workload default, and Validate rejects unreadable trace inputs.
func TestPlanTraceFiles(t *testing.T) {
	tr := genTrace(t, "tp", 100)
	dir := writeShardedTrace(t, tr)
	p := Plan{TraceFiles: []string{dir}, Mechanisms: []config.Mechanism{config.Baseline, config.WBHT}}
	jobs := p.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("trace-only plan produced %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.TraceFile != dir || j.Workload != "" {
			t.Fatalf("job %+v: want TraceFile-only input", j)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid trace plan rejected: %v", err)
	}
	bad := Plan{TraceFiles: []string{filepath.Join(t.TempDir(), "missing.cmpt")}}
	if err := bad.Validate(); err == nil {
		t.Fatal("plan with missing trace input validated")
	}

	both := Plan{
		Workloads:  []string{"tp"},
		TraceFiles: []string{dir},
		Mechanisms: []config.Mechanism{config.Baseline},
	}
	if n := len(both.Jobs()); n != 2 {
		t.Fatalf("mixed plan produced %d jobs, want 2 (one synthetic + one trace)", n)
	}
}
