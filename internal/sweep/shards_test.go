package sweep

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"cmpcache/internal/config"
)

func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestParseShards(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want int
		ok   bool
	}{
		{"auto", -1, true},
		{"", -1, true},
		{"AUTO", -1, true},
		{"serial", 1, true},
		{"1", 1, true},
		{"4", 4, true},
		{" 8 ", 8, true},
		{"0", 0, false},
		{"-2", 0, false},
		{"many", 0, false},
	} {
		got, err := ParseShards(tc.spec)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseShards(%q) = (%d, %v), want (%d, ok=%v)", tc.spec, got, err, tc.want, tc.ok)
		}
	}
}

// TestFitWorkers pins the oversubscription guard: an explicit shard
// count shrinks the concurrent-run pool so runs x shards fits
// GOMAXPROCS; serial and auto shards never clamp.
func TestFitWorkers(t *testing.T) {
	withGOMAXPROCS(t, 8)
	for _, tc := range []struct {
		workers, shards int
		want            int
		clamped         bool
	}{
		{8, 0, 8, false},  // serial runs: untouched
		{8, 1, 8, false},  // explicit serial: untouched
		{8, -1, 8, false}, // auto adapts per-run instead of clamping
		{8, 2, 4, true},   // 4 runs x 2 shards = 8 cores
		{8, 4, 2, true},
		{8, 8, 1, true},
		{8, 16, 1, true}, // absurd request still leaves one run going
		{2, 4, 2, false}, // 2 x 4 = 8 already fits
		{3, 4, 2, true},
		{1, 8, 1, false}, // a single run may use the whole budget
	} {
		got, clamped := FitWorkers(tc.workers, tc.shards)
		if got != tc.want || clamped != tc.clamped {
			t.Errorf("FitWorkers(%d, %d) = (%d, %v), want (%d, %v)",
				tc.workers, tc.shards, got, clamped, tc.want, tc.clamped)
		}
	}
	if s := AutoShards(2); s != 4 {
		t.Errorf("AutoShards(2) = %d under GOMAXPROCS=8, want 4", s)
	}
	if s := AutoShards(8); s != 1 {
		t.Errorf("AutoShards(8) = %d under GOMAXPROCS=8, want 1", s)
	}
}

// TestShardedSweepClampsAndLogs runs a real two-job sweep with an
// explicit per-run shard count wider than the core budget and asserts
// (a) the clamp is reported on Log, (b) the goroutine population stays
// within the clamped budget — one run's worth of shard workers plus the
// pool itself — and (c) the exported bytes match a serial sweep's.
func TestShardedSweepClampsAndLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	withGOMAXPROCS(t, 4)
	jobs := []Job{
		{Workload: "tp", Mechanism: config.Baseline, RefsPerThread: 300},
		{Workload: "tp", Mechanism: config.Combined, RefsPerThread: 300},
	}

	export := func(opts Options) string {
		results := Run(context.Background(), jobs, opts)
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := export(Options{Workers: 1})

	base := runtime.NumGoroutine()
	var logged []string
	peak := 0
	sharded := export(Options{
		Workers: 4, // wants 4 runs x 4 shards = 16 goroutines on 4 cores
		Shards:  4,
		Log:     func(format string, args ...any) { logged = append(logged, format) },
		Progress: func(Progress) {
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		},
	})

	if len(logged) == 0 {
		t.Error("oversubscribed sweep did not log its worker clamp")
	}
	// Clamped budget: 1 sweep worker running 1 simulation at 4 shards
	// (3 extra shard goroutines; the sweep worker doubles as shard
	// worker 0), plus slack for the runtime's own background goroutines.
	if budget := base + 1 + 3 + 4; peak > budget {
		t.Errorf("goroutine peak %d exceeds clamped budget %d (base %d)", peak, budget, base)
	}
	if sharded != serial {
		t.Error("sharded sweep exported different bytes than the serial sweep")
	}
}
