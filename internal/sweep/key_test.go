package sweep

import (
	"bytes"
	"context"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/system"
)

// TestKeyDefaultVsExplicit proves that spelling a default explicitly
// cannot change the hash: the material is the materialized config, not
// the raw job fields.
func TestKeyDefaultVsExplicit(t *testing.T) {
	cases := []struct {
		name string
		a, b Job
	}{
		{
			name: "outstanding default is 6",
			a:    Job{Workload: "tp", Mechanism: config.WBHT},
			b:    Job{Workload: "tp", Mechanism: config.WBHT, Outstanding: 6},
		},
		{
			name: "wbht entries default is 32768",
			a:    Job{Workload: "tp", Mechanism: config.WBHT},
			b:    Job{Workload: "tp", Mechanism: config.WBHT, WBHTEntries: 32768},
		},
		{
			name: "combined tables default to the halved 16384",
			a:    Job{Workload: "trade2", Mechanism: config.Combined},
			b:    Job{Workload: "trade2", Mechanism: config.Combined, WBHTEntries: 16384, SnarfEntries: 16384},
		},
	}
	for _, tc := range cases {
		ka, err := Key(tc.a)
		if err != nil {
			t.Fatalf("%s: Key(a): %v", tc.name, err)
		}
		kb, err := Key(tc.b)
		if err != nil {
			t.Fatalf("%s: Key(b): %v", tc.name, err)
		}
		if ka != kb {
			t.Errorf("%s: keys differ:\n a %s\n b %s", tc.name, ka, kb)
		}
	}
}

// TestKeySensitivity proves the hash separates jobs that actually are
// different simulations.
func TestKeySensitivity(t *testing.T) {
	base := Job{Workload: "tp", Mechanism: config.WBHT}
	variants := []Job{
		{Workload: "trade2", Mechanism: config.WBHT},
		{Workload: "tp", Mechanism: config.Snarf},
		{Workload: "tp", Mechanism: config.WBHT, Outstanding: 1},
		{Workload: "tp", Mechanism: config.WBHT, WBHTEntries: 512},
		{Workload: "tp", Mechanism: config.WBHT, NoSwitch: true},
		{Workload: "tp", Mechanism: config.WBHT, RefsPerThread: 777},
	}
	kb, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]Job{kb: base}
	for _, v := range variants {
		k, err := Key(v)
		if err != nil {
			t.Fatalf("Key(%s): %v", v, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("jobs %s and %s collide on %s", prev, v, k)
		}
		seen[k] = v
	}
}

// TestKeyUnknownWorkload proves a bad job fails loudly instead of
// hashing to something.
func TestKeyUnknownWorkload(t *testing.T) {
	if _, err := Key(Job{Workload: "nope"}); err == nil {
		t.Fatal("Key(unknown workload) succeeded")
	}
}

// TestCanonicalFieldOrder proves struct field declaration order cannot
// change the canonical bytes: two types with identical JSON fields in
// opposite declaration order serialize identically.
func TestCanonicalFieldOrder(t *testing.T) {
	type ab struct {
		Alpha int    `json:"alpha"`
		Beta  string `json:"beta"`
	}
	type ba struct {
		Beta  string `json:"beta"`
		Alpha int    `json:"alpha"`
	}
	ca, err := Canonical(ab{Alpha: 3, Beta: "x"})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonical(ba{Beta: "x", Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("field order changed canonical bytes:\n %s\n %s", ca, cb)
	}
	want := `{"alpha":3,"beta":"x"}`
	if string(ca) != want {
		t.Errorf("canonical = %s, want %s", ca, want)
	}
}

// TestCanonicalMapIteration proves map iteration order cannot change
// the canonical bytes: a many-keyed map canonicalizes identically
// across repeated serializations (Go randomizes map iteration, so an
// order dependence would flake immediately at this count).
func TestCanonicalMapIteration(t *testing.T) {
	m := map[string]int{}
	for c := 'a'; c <= 'z'; c++ {
		m[string(c)] = int(c)
	}
	first, err := Canonical(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		again, err := Canonical(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("iteration %d: canonical bytes changed:\n %s\n %s", i, first, again)
		}
	}
}

// TestCanonicalNumbersExact proves canonicalization never re-rounds
// numbers through float64 (large uint64s and seeds survive exactly).
func TestCanonicalNumbersExact(t *testing.T) {
	v := struct {
		Seed uint64
	}{Seed: 1<<63 + 12345}
	c, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Seed":9223372036854788153}`
	if string(c) != want {
		t.Errorf("canonical = %s, want %s", c, want)
	}
}

// TestDedupByContentHash proves the pool collapses jobs that spell the
// same simulation differently: only one executes, the other reports
// Cached.
func TestDedupByContentHash(t *testing.T) {
	jobs := []Job{
		{Workload: "tp", Mechanism: config.WBHT},                 // defaults
		{Workload: "tp", Mechanism: config.WBHT, Outstanding: 6}, // explicit default
	}
	var runs int
	results := Run(context.Background(), jobs, Options{
		Workers: 1,
		Run: func(ctx context.Context, j Job) (*system.Results, error) {
			runs++
			return &system.Results{Cycles: 42}, nil
		},
	})
	if runs != 1 {
		t.Fatalf("executed %d simulations, want 1 (content-hash dedup)", runs)
	}
	if !results[0].Cached && !results[1].Cached {
		t.Fatal("neither result marked Cached")
	}
	for i, r := range results {
		if r.Err != nil || r.Results == nil || r.Results.Cycles != 42 {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
}
