package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cmpcache/internal/config"
)

// TestMetricsSeriesDeterministicAcrossWorkers runs the same grid with a
// metrics probe attached at 1 worker and at 4 workers and asserts the
// collected interval series (and the whole export) are byte-identical:
// probes are per-run state, so sweep concurrency must not leak into
// them.
func TestMetricsSeriesDeterministicAcrossWorkers(t *testing.T) {
	jobs := []Job{
		{Workload: "tp", Mechanism: config.Baseline, Outstanding: 6, RefsPerThread: 2000},
		{Workload: "tp", Mechanism: config.WBHT, Outstanding: 6, RefsPerThread: 2000},
		{Workload: "trade2", Mechanism: config.Combined, Outstanding: 4, RefsPerThread: 2000},
	}
	opts := Options{MetricsInterval: 50_000}

	export := func(workers int) []byte {
		opts.Workers = workers
		results := Run(context.Background(), jobs, opts)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Results.Metrics == nil || len(r.Results.Metrics.Samples) == 0 {
				t.Fatalf("workers=%d job %d: no metrics series collected", workers, i)
			}
		}
		return buf.Bytes()
	}

	serial := export(1)
	parallel := export(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("sweep export with metrics differs between 1 and 4 workers")
	}
	if !bytes.Contains(serial, []byte(`"samples"`)) {
		t.Fatal("export carries no metrics samples")
	}

	// The series must survive the export round trip intact.
	var decoded []struct {
		Results struct {
			Metrics struct {
				Interval config.Cycles `json:"interval"`
			} `json:"Metrics"`
		} `json:"Results"`
	}
	if err := json.Unmarshal(serial, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(jobs) {
		t.Fatalf("decoded %d results, want %d", len(decoded), len(jobs))
	}
	for i, d := range decoded {
		if d.Results.Metrics.Interval != opts.MetricsInterval {
			t.Fatalf("job %d: exported interval = %d, want %d", i, d.Results.Metrics.Interval, opts.MetricsInterval)
		}
	}
}
