package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"cmpcache/internal/config"
	"cmpcache/internal/trace"
	"cmpcache/internal/workload"
)

// KeyMaterial returns the canonical serialization of the simulation a
// job denotes: the fully materialized configuration (every default
// applied), the complete workload profile (including its seed and the
// effective per-thread reference count). Two jobs with equal material
// are the same deterministic simulation and must produce bit-identical
// results, so the material is safe to use as an exact memoization key.
//
// Canonicalization makes the bytes independent of representation
// accidents: JSON object keys are emitted sorted, so neither Go struct
// field declaration order nor map iteration order can change the
// output, and defaulted job fields hash identically to their explicit
// values because the config is materialized before serialization.
// Trace-replay jobs key on the trace's content identity instead of a
// workload profile: the material is {Config, Trace: FileRef}, where
// FileRef carries the capture's SHA-256 (the manifest content hash for
// sharded stores) but not its path. The struct shape differs from the
// synthetic material — "Trace" vs. "Workload"+"Seed" keys — so a trace
// replay can never alias the synthetic twin it was captured from, and
// two traces differing in any byte hash apart.
func KeyMaterial(j Job) ([]byte, error) {
	if j.TraceFile != "" {
		if j.Workload != "" {
			return nil, fmt.Errorf("sweep: job sets both TraceFile %q and Workload %q", j.TraceFile, j.Workload)
		}
		ref, err := trace.Describe(j.TraceFile)
		if err != nil {
			return nil, err
		}
		return Canonical(struct {
			Config config.Config
			Trace  trace.FileRef
		}{j.Config(), ref})
	}
	prof, err := workload.ByName(j.Workload)
	if err != nil {
		return nil, err
	}
	if j.RefsPerThread > 0 {
		prof.RefsPerThread = j.RefsPerThread
	}
	return Canonical(struct {
		Config   config.Config
		Workload workload.Profile
		Seed     uint64
	}{j.Config(), prof, prof.Seed})
}

// Key returns the canonical content hash of the job's simulation: the
// SHA-256 of KeyMaterial, hex-encoded. The pool deduplicates on this
// key, so jobs that spell the same simulation differently (defaulted
// vs. explicit fields) execute once per sweep.
func Key(j Job) (string, error) {
	m, err := KeyMaterial(j)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(m)
	return hex.EncodeToString(sum[:]), nil
}

// Canonical serializes v as canonical JSON: object keys sorted
// byte-wise, no insignificant whitespace, numbers rendered exactly as
// encoding/json renders them. The result is a pure function of v's
// JSON value — two values that marshal to the same JSON object produce
// identical bytes regardless of field declaration order or map
// iteration order.
func Canonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // preserve exact numeric spelling; never float-round
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical renders a decoded JSON tree with sorted object keys.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(kb)
			b.WriteByte(':')
			if err := writeCanonical(b, t[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
		return nil
	case []any:
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
		return nil
	case json.Number:
		b.WriteString(string(t))
		return nil
	case nil:
		b.WriteString("null")
		return nil
	default: // string, bool
		enc, err := json.Marshal(t)
		if err != nil {
			return err
		}
		b.Write(enc)
		return nil
	}
}

// dedupKey is the pool's in-sweep deduplication key for a job: the
// canonical content hash when the job resolves, or an error-scoped
// fallback so identical invalid jobs still collapse to one failure.
func dedupKey(j Job) string {
	k, err := Key(j)
	if err != nil {
		return fmt.Sprintf("invalid:%s:%v", j, err)
	}
	return k
}
