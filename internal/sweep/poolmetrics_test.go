package sweep

import (
	"context"
	"strings"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/system"
	"cmpcache/internal/telemetry"
)

// TestPoolMetricsCounts proves the pool feeds its instrument set: one
// primary execution per distinct job, one dedup count per collapsed
// duplicate, busy settling back to zero, and one histogram observation
// per primary.
func TestPoolMetricsCounts(t *testing.T) {
	reg := telemetry.New()
	met := NewPoolMetrics(reg, "test")
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		return &system.Results{EventsFired: 1}, nil
	}
	jobs := []Job{
		{Workload: "tp", Mechanism: config.Baseline},
		{Workload: "tp", Mechanism: config.WBHT},
		{Workload: "tp", Mechanism: config.Snarf},
		{Workload: "tp", Mechanism: config.Baseline}, // dup of job 0
		{Workload: "tp", Mechanism: config.WBHT},     // dup of job 1
	}
	results := Run(context.Background(), jobs, Options{Workers: 2, Run: run, Metrics: met})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if got := met.JobsRun.Value(); got != 3 {
		t.Errorf("JobsRun = %d, want 3", got)
	}
	if got := met.JobsDeduped.Value(); got != 2 {
		t.Errorf("JobsDeduped = %d, want 2", got)
	}
	if got := met.Busy.Value(); got != 0 {
		t.Errorf("Busy = %d after the sweep, want 0", got)
	}
	if got := met.QueueSeconds.Count(); got != 3 {
		t.Errorf("QueueSeconds count = %d, want 3 (one per primary)", got)
	}
	if got := met.JobSeconds.Count(); got != 3 {
		t.Errorf("JobSeconds count = %d, want 3 (one per primary)", got)
	}

	// The registry renders the same instruments under the prefix.
	var b strings.Builder
	if _, err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"test_pool_jobs_run_total 3",
		"test_pool_jobs_deduped_total 2",
		"test_pool_busy_workers 0",
	} {
		if !strings.Contains(b.String(), series+"\n") {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestPoolMetricsSourceCache proves the trace-source counters flow from
// the pool's own Simulator: the first job over a capture opens the
// container, the second is served from the source cache.
func TestPoolMetricsSourceCache(t *testing.T) {
	dir := writeShardedTrace(t, genTrace(t, "tp", 200))
	met := NewPoolMetrics(nil, "") // detached instruments still count
	jobs := []Job{
		{TraceFile: dir, Mechanism: config.Baseline},
		{TraceFile: dir, Mechanism: config.WBHT},
	}
	results := Run(context.Background(), jobs, Options{Workers: 1, Metrics: met})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if opens := met.SourceOpens.Value(); opens != 1 {
		t.Errorf("SourceOpens = %d, want 1 (one container open)", opens)
	}
	if hits := met.SourceHits.Value(); hits != 1 {
		t.Errorf("SourceHits = %d, want 1 (second job served from cache)", hits)
	}
	if met.JobsRun.Value() != 2 {
		t.Errorf("JobsRun = %d, want 2 (different mechanisms never dedup)", met.JobsRun.Value())
	}
}
