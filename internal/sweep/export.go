package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"cmpcache/internal/system"
)

// exported is the stable serialization of one Result. Wall-clock fields
// (Duration, Cached) are deliberately excluded: an export depends only
// on the jobs and the deterministic simulator, never on worker count or
// scheduling, so the same plan exports byte-identical files at any
// -workers value.
type exported struct {
	Job     Job
	Err     string          `json:",omitempty"`
	Results *system.Results `json:",omitempty"`
}

func export(results []Result) []exported {
	out := make([]exported, len(results))
	for i, r := range results {
		out[i] = exported{Job: r.Job, Results: r.Results}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

// WriteJSON serializes results as an indented JSON array, in job order.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(export(results))
}

// CSVHeader is the column set of WriteCSV.
var CSVHeader = []string{
	"workload", "mechanism", "outstanding", "wbht_entries", "snarf_entries",
	"cycles", "l2_hit_rate", "l3_load_hit_rate", "wb_requests",
	"off_chip_accesses", "mean_fill_latency", "error",
}

// WriteCSV serializes one row per job, in job order, with the derived
// rates the paper's figures are built from.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Job.Workload,
			r.Job.Mechanism.String(),
			strconv.Itoa(r.Job.Outstanding),
			strconv.Itoa(r.Job.WBHTEntries),
			strconv.Itoa(r.Job.SnarfEntries),
		}
		if res := r.Results; res != nil {
			row = append(row,
				strconv.FormatUint(res.Cycles, 10),
				formatFloat(res.L2HitRate()),
				formatFloat(res.L3LoadHitRate()),
				strconv.FormatUint(res.WBRequests, 10),
				strconv.FormatUint(res.OffChipAccesses(), 10),
				formatFloat(res.FillLatency.Mean()),
			)
		} else {
			row = append(row, "", "", "", "", "", "")
		}
		if r.Err != nil {
			row = append(row, r.Err.Error())
		} else {
			row = append(row, "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders floats with the shortest exact representation so
// CSV exports round-trip and stay byte-stable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
