package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cmpcache/internal/config"
	"cmpcache/internal/system"
)

// stubRun returns a deterministic fake result derived from the job, so
// orchestrator tests are independent of the simulator.
func stubRun(_ context.Context, j Job) (*system.Results, error) {
	return &system.Results{
		Config: j.Config(),
		Cycles: uint64(1000*j.Outstanding + j.WBHTEntries + j.SnarfEntries),
	}, nil
}

func distinctJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: "tp", Mechanism: config.WBHT, Outstanding: i + 1}
	}
	return jobs
}

func TestResultsInJobOrder(t *testing.T) {
	jobs := distinctJobs(9)
	results := Run(context.Background(), jobs, Options{Workers: 4, Run: stubRun})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Job != jobs[i] {
			t.Fatalf("result %d is for job %v, want %v", i, r.Job, jobs[i])
		}
		if r.Err != nil || r.Results == nil {
			t.Fatalf("result %d: err=%v results=%v", i, r.Err, r.Results)
		}
		if r.Results.Cycles != uint64(1000*(i+1)) {
			t.Fatalf("result %d carries wrong payload: %d cycles", i, r.Results.Cycles)
		}
	}
}

func TestIdenticalJobsExecuteOnce(t *testing.T) {
	var executions atomic.Int64
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		executions.Add(1)
		return stubRun(ctx, j)
	}
	j := Job{Workload: "tp", Mechanism: config.Snarf, Outstanding: 6}
	jobs := []Job{j, j, j, {Workload: "tp", Mechanism: config.Baseline, Outstanding: 6}}
	results := Run(context.Background(), jobs, Options{Workers: 4, Run: run})
	if got := executions.Load(); got != 2 {
		t.Fatalf("executed %d distinct jobs, want 2", got)
	}
	cached := 0
	for _, r := range results {
		if r.Err != nil || r.Results == nil {
			t.Fatalf("unexpected failure: %+v", r)
		}
		if r.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Fatalf("cached = %d results, want 2", cached)
	}
}

// TestFaultIsolation injects a panicking configuration and asserts the
// sweep completes, reports that job as failed and returns every other
// result intact.
func TestFaultIsolation(t *testing.T) {
	jobs := distinctJobs(8)
	poison := 3
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		if j == jobs[poison] {
			panic("injected: engine drained with accesses outstanding")
		}
		return stubRun(ctx, j)
	}
	results := Run(context.Background(), jobs, Options{Workers: 4, Run: run})
	for i, r := range results {
		if i == poison {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "panicked") {
				t.Fatalf("poisoned job error = %v, want recovered panic", r.Err)
			}
			if r.Results != nil {
				t.Fatalf("poisoned job carries results")
			}
			continue
		}
		if r.Err != nil || r.Results == nil {
			t.Fatalf("job %d did not survive the poisoned sweep: %+v", i, r)
		}
	}
}

func TestErrorDoesNotStopSweep(t *testing.T) {
	jobs := distinctJobs(5)
	boom := errors.New("boom")
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		if j.Outstanding == 2 {
			return nil, boom
		}
		return stubRun(ctx, j)
	}
	results := Run(context.Background(), jobs, Options{Workers: 2, Run: run})
	for i, r := range results {
		if jobs[i].Outstanding == 2 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("want boom, got %v", r.Err)
			}
		} else if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := distinctJobs(4)
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		if j.Outstanding == 1 {
			select {
			case <-time.After(10 * time.Second):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return stubRun(ctx, j)
	}
	results := Run(context.Background(), jobs, Options{Workers: 4, Run: run, Timeout: 30 * time.Millisecond})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job error = %v, want deadline exceeded", results[0].Err)
	}
	for _, r := range results[1:] {
		if r.Err != nil {
			t.Fatalf("fast job failed: %v", r.Err)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	jobs := distinctJobs(6)
	var events []Progress
	Run(context.Background(), jobs, Options{
		Workers:  3,
		Run:      stubRun,
		Progress: func(p Progress) { events = append(events, p) }, // serialized by the pool
	})
	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(jobs))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != len(jobs) {
			t.Fatalf("event %d: done=%d total=%d", i, p.Done, p.Total)
		}
	}
	if last := events[len(events)-1]; last.ETA != 0 {
		t.Fatalf("final event ETA = %v, want 0", last.ETA)
	}
}

// TestParallelFasterThanSerial demonstrates the orchestrator's
// concurrency with latency-bound jobs: at 4+ workers a grid completes
// in a fraction of the serial wall clock while the exported results
// stay byte-identical. (Latency-bound jobs make the test meaningful
// even on single-core machines, where CPU-bound speedup is impossible.)
func TestParallelFasterThanSerial(t *testing.T) {
	const jobDelay = 20 * time.Millisecond
	jobs := distinctJobs(12)
	run := func(ctx context.Context, j Job) (*system.Results, error) {
		time.Sleep(jobDelay)
		return stubRun(ctx, j)
	}

	timeRun := func(workers int) ([]Result, time.Duration) {
		start := time.Now()
		results := Run(context.Background(), jobs, Options{Workers: workers, Run: run})
		return results, time.Since(start)
	}
	serialResults, serialWall := timeRun(1)
	parallelResults, parallelWall := timeRun(4)

	// 12 jobs x 20ms: serial >= 240ms, 4 workers ~ 60ms. Requiring a
	// 2x margin keeps the assertion robust on loaded CI machines.
	if parallelWall*2 >= serialWall {
		t.Fatalf("parallel sweep not faster: serial %v, 4 workers %v", serialWall, parallelWall)
	}

	var serialJSON, parallelJSON bytes.Buffer
	if err := WriteJSON(&serialJSON, serialResults); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&parallelJSON, parallelResults); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Fatal("parallel export differs from serial export")
	}
}

// TestSimulationDeterministicAcrossWorkers is the end-to-end
// determinism gate on the real simulator: the same plan run with 1 and
// with 8 workers must export byte-identical JSON and CSV.
func TestSimulationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	plan := Plan{
		Workloads:     []string{"tp", "trade2"},
		Mechanisms:    []config.Mechanism{config.Baseline, config.WBHT},
		Outstanding:   []int{1, 6},
		RefsPerThread: 500,
	}
	jobs := plan.Jobs()

	exports := func(workers int) (string, string) {
		results := Run(context.Background(), jobs, Options{Workers: workers})
		var j, c bytes.Buffer
		if err := WriteJSON(&j, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, results); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	json1, csv1 := exports(1)
	json8, csv8 := exports(8)
	if json1 != json8 {
		t.Error("JSON export differs between -workers 1 and -workers 8")
	}
	if csv1 != csv8 {
		t.Error("CSV export differs between -workers 1 and -workers 8")
	}
	if !strings.Contains(csv1, "tp,wbht,6,") {
		t.Errorf("CSV export missing expected row prefix:\n%s", csv1)
	}
}

func TestExportExcludesWallClock(t *testing.T) {
	jobs := distinctJobs(2)
	results := Run(context.Background(), jobs, Options{Workers: 1, Run: stubRun})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Duration", "Cached"} {
		if strings.Contains(buf.String(), field) {
			t.Fatalf("export leaks scheduling-dependent field %q", field)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := distinctJobs(4)
	results := Run(ctx, jobs, Options{Workers: 2, Run: stubRun})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestJobString(t *testing.T) {
	j := Job{Workload: "trade2", Mechanism: config.WBHT, Outstanding: 6,
		WBHTEntries: 512, GlobalWBHT: true, LinesPerEntry: 4}
	s := j.String()
	for _, want := range []string{"trade2/wbht", "out=6", "wbht=512", "global", "coarse=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Job.String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "snarf=") {
		t.Fatalf("Job.String() = %q includes defaulted field", s)
	}
}

func TestSimulatorRejectsBadJob(t *testing.T) {
	sim := NewSimulator()
	if _, err := sim.Run(context.Background(), Job{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := Job{Workload: "tp", Mechanism: config.WBHT, Outstanding: 6, WBHTEntries: 1000}
	if _, err := sim.Run(context.Background(), bad); err == nil {
		t.Fatal("invalid table geometry accepted")
	}
}

func ExampleRun() {
	jobs := Plan{
		Workloads:   []string{"tp"},
		Mechanisms:  []config.Mechanism{config.Baseline, config.WBHT},
		Outstanding: []int{6},
	}.Jobs()
	results := Run(context.Background(), jobs, Options{Workers: 2, Run: stubRun})
	for _, r := range results {
		fmt.Printf("%s: %d cycles\n", r.Job, r.Results.Cycles)
	}
	// Output:
	// tp/base out=6: 6000 cycles
	// tp/wbht out=6: 6000 cycles
}
