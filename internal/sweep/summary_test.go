package sweep

import (
	"context"
	"math"
	"testing"

	"cmpcache/internal/config"
	"cmpcache/internal/metrics"
	"cmpcache/internal/system"
	"cmpcache/internal/txlat"
)

func TestSummarizeSeries(t *testing.T) {
	j := Job{Workload: "tp", Mechanism: config.WBHT}
	s := &metrics.Series{
		Interval: 100,
		Samples: []metrics.Sample{
			{
				Window: 0, Start: 0, End: 100,
				Retries: 5, WBRetried: 3, WBIssued: 10, DemandTxns: 40,
				FillsPeer: 4, FillsL3: 2, FillsMem: 1,
				L3QueuePeak: 7, MSHROccupancy: 12, WBQueueOccupancy: 3,
				AddrRingUtil: 0.5, DataRingUtil: 0.25, SwitchActive: true,
			},
			{
				// Final partial window: half the span, so it carries half
				// the weight in the utilization means.
				Window: 1, Start: 100, End: 150,
				Retries: 1, WBRetried: 0, WBIssued: 2, DemandTxns: 10,
				L3QueuePeak: 2, MSHROccupancy: 20, WBQueueOccupancy: 1,
				AddrRingUtil: 0.2, DataRingUtil: 0.1,
			},
		},
	}
	sum := SummarizeSeries(j, s)
	if sum.Job != j {
		t.Errorf("job = %+v, want %+v", sum.Job, j)
	}
	if sum.Windows != 2 || sum.Cycles != 150 {
		t.Errorf("windows/cycles = %d/%d, want 2/150", sum.Windows, sum.Cycles)
	}
	if sum.Retries != 6 || sum.WBRetried != 3 || sum.WBIssued != 12 || sum.DemandTxns != 50 {
		t.Errorf("counter totals = %d/%d/%d/%d", sum.Retries, sum.WBRetried, sum.WBIssued, sum.DemandTxns)
	}
	if sum.FillsPeer != 4 || sum.FillsL3 != 2 || sum.FillsMem != 1 {
		t.Errorf("fill totals = %d/%d/%d", sum.FillsPeer, sum.FillsL3, sum.FillsMem)
	}
	if sum.PeakL3Queue != 7 || sum.PeakMSHR != 20 || sum.PeakWBQueue != 3 {
		t.Errorf("peaks = %d/%d/%d", sum.PeakL3Queue, sum.PeakMSHR, sum.PeakWBQueue)
	}
	wantAddr := (0.5*100 + 0.2*50) / 150
	wantData := (0.25*100 + 0.1*50) / 150
	if math.Abs(sum.MeanAddrRingUtil-wantAddr) > 1e-12 || math.Abs(sum.MeanDataRingUtil-wantData) > 1e-12 {
		t.Errorf("ring means = %.6f/%.6f, want %.6f/%.6f",
			sum.MeanAddrRingUtil, sum.MeanDataRingUtil, wantAddr, wantData)
	}
	if sum.SwitchActiveWindows != 1 {
		t.Errorf("switch-active windows = %d, want 1", sum.SwitchActiveWindows)
	}

	empty := SummarizeSeries(j, nil)
	if empty.Windows != 0 || empty.Retries != 0 || empty.Job != j {
		t.Errorf("nil series summary = %+v", empty)
	}
}

func TestSummarizeSkipsUnprobedAndFailed(t *testing.T) {
	probed := Result{
		Job:     Job{Workload: "tp"},
		Results: &system.Results{Metrics: &metrics.Series{Samples: []metrics.Sample{{End: 10}}}},
	}
	results := []Result{
		probed,
		{Job: Job{Workload: "cpw2"}, Err: context.Canceled},
		{Job: Job{Workload: "trade2"}, Results: &system.Results{}}, // unprobed
	}
	sums := Summarize(results)
	if len(sums) != 1 || sums[0].Job != probed.Job {
		t.Fatalf("Summarize kept %d summaries %+v, want only the probed job", len(sums), sums)
	}
}

// TestSweepLatencyAttachment runs a tiny sweep with the latency option
// and checks every job's result carries a consistent report.
func TestSweepLatencyAttachment(t *testing.T) {
	jobs := Plan{
		Workloads:     []string{"tp"},
		Mechanisms:    []config.Mechanism{config.Baseline, config.Snarf},
		Outstanding:   []int{6},
		RefsPerThread: 400,
	}.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("plan built %d jobs, want 2", len(jobs))
	}
	results := Run(context.Background(), jobs, Options{
		Workers: 2,
		Latency: &txlat.Config{TopK: 4},
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Job, r.Err)
		}
		rep := r.Results.Latency
		if rep == nil || len(rep.Groups) == 0 {
			t.Fatalf("job %s: no latency report", r.Job)
		}
		if rep.Dropped != 0 {
			t.Errorf("job %s: collector dropped %d records", r.Job, rep.Dropped)
		}
	}
}
