package sweep

import "cmpcache/internal/config"

// OverrideJobs applies the shared command-line knob overrides onto
// every job of a grid, translating explicit flag values into the Job
// sentinel convention: an explicit positive value overrides the knob,
// an explicit zero (or negative) becomes the negative sentinel so it
// materializes as zero — and fails config.Validate — instead of
// silently meaning "default". Flags that were not given leave the jobs
// untouched. A nil o is a no-op; the slice is modified in place and
// returned for chaining.
func OverrideJobs(jobs []Job, o *config.Overrides) []Job {
	if o == nil {
		return jobs
	}
	apply := func(name string, val int, field func(*Job) *int) {
		if !o.Explicit(name) {
			return
		}
		if val <= 0 {
			val = -1
		}
		for i := range jobs {
			*field(&jobs[i]) = val
		}
	}
	apply("wbht-entries", o.WBHTEntries, func(j *Job) *int { return &j.WBHTEntries })
	apply("snarf-entries", o.SnarfEntries, func(j *Job) *int { return &j.SnarfEntries })
	apply("reuse-entries", o.ReuseEntries, func(j *Job) *int { return &j.ReuseEntries })
	apply("reuse-max-distance", o.ReuseMaxDistance, func(j *Job) *int { return &j.ReuseMaxDist })
	apply("hybrid-entries", o.HybridEntries, func(j *Job) *int { return &j.HybridEntries })
	apply("hybrid-threshold", o.HybridThreshold, func(j *Job) *int { return &j.HybridThreshold })
	if o.Explicit("no-retry-switch") {
		for i := range jobs {
			jobs[i].NoSwitch = o.NoSwitch
		}
	}
	if o.Explicit("global-wbht") {
		for i := range jobs {
			jobs[i].GlobalWBHT = o.GlobalWBHT
		}
	}
	return jobs
}
