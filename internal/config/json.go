package config

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// MarshalText renders a Mechanism by name so configurations serialize
// readably ("wbht", not 1).
func (m Mechanism) MarshalText() ([]byte, error) {
	if m < Baseline || m > HybridUI {
		return nil, fmt.Errorf("config: cannot marshal unknown mechanism %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText parses a mechanism name (case-insensitive). "baseline"
// is accepted as an alias of "base".
func (m *Mechanism) UnmarshalText(b []byte) error {
	switch strings.ToLower(string(b)) {
	case "base", "baseline":
		*m = Baseline
	case "wbht":
		*m = WBHT
	case "snarf":
		*m = Snarf
	case "combined":
		*m = Combined
	case "reusedist":
		*m = ReuseDist
	case "hybridui":
		*m = HybridUI
	default:
		return fmt.Errorf("config: unknown mechanism %q (want base, wbht, snarf, combined, reusedist, hybridui)", b)
	}
	return nil
}

// WriteJSON serializes the configuration, indented for human editing.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses a configuration written by WriteJSON (or hand-edited),
// starting from Default() so omitted fields keep their paper values, and
// validates the result.
func ReadJSON(r io.Reader) (Config, error) {
	cfg := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("config: parsing JSON: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
