package config

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Default().WithMechanism(Combined)
	orig.MaxOutstanding = 3
	orig.WBHT.GlobalAllocate = true
	orig.WBHT.LinesPerEntry = 4
	orig.Snarf.InsertMRU = false
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestJSONMechanismByName(t *testing.T) {
	var buf bytes.Buffer
	if err := Default().WithMechanism(Snarf).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"snarf"`) {
		t.Fatalf("mechanism not serialized by name:\n%s", buf.String())
	}
}

func TestJSONPartialOverridesDefaults(t *testing.T) {
	in := `{"Mechanism": "wbht", "MaxOutstanding": 2}`
	cfg, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mechanism != WBHT || cfg.MaxOutstanding != 2 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	// Untouched fields keep Table 3 values.
	if cfg.L3HitLatency() != 167 || cfg.L2Assoc != 8 {
		t.Fatal("defaults lost on partial parse")
	}
}

func TestJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Mechansim": "wbht"}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestJSONRejectsInvalidConfig(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"MaxOutstanding": 0}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestJSONRejectsUnknownMechanism(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Mechanism": "magic"}`)); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestMechanismMarshalUnknown(t *testing.T) {
	if _, err := Mechanism(99).MarshalText(); err == nil {
		t.Fatal("unknown mechanism marshaled")
	}
}

func TestMechanismUnmarshalAliases(t *testing.T) {
	var m Mechanism
	for _, alias := range []string{"BASE", "baseline", "Base"} {
		if err := m.UnmarshalText([]byte(alias)); err != nil || m != Baseline {
			t.Fatalf("alias %q: %v -> %v", alias, err, m)
		}
	}
}
