package config

import "flag"

// Overrides is the shared flag→config materialization helper for the
// command-line tools (cmpsim, cmpsweep, cmpserved, cmpbench): it
// registers the write-back policy knob flags every tool accepts and
// applies exactly the explicitly-given ones onto a Config.
//
// The distinction between "flag left at its default value" and "flag
// explicitly set to that value" is load-bearing: an explicit
// `-wbht-entries 0` must materialize as zero entries — and fail
// Validate — rather than silently falling back to the paper default,
// and two spellings that materialize differently must never alias in
// the sweep layer's content-hash result cache. Each tool used to
// hand-roll this with flag.Visit (or not at all); this type is the one
// shared implementation.
type Overrides struct {
	fs *flag.FlagSet

	WBHTEntries      int
	SnarfEntries     int
	ReuseEntries     int
	ReuseMaxDistance int
	HybridEntries    int
	HybridThreshold  int
	NoSwitch         bool
	GlobalWBHT       bool
}

// RegisterOverrides registers the shared policy knob flags on fs and
// returns the Overrides bound to them. Call fs.Parse before Explicit
// or Apply.
func RegisterOverrides(fs *flag.FlagSet) *Overrides {
	o := &Overrides{fs: fs}
	fs.IntVar(&o.WBHTEntries, "wbht-entries", 0,
		"override WBHT entries (unset = paper default 32768, halved for combined)")
	fs.IntVar(&o.SnarfEntries, "snarf-entries", 0,
		"override snarf table entries (unset = paper default 32768, halved for combined)")
	fs.IntVar(&o.ReuseEntries, "reuse-entries", 0,
		"override reuse-distance sketch entries per L2 (unset = default 32768)")
	fs.IntVar(&o.ReuseMaxDistance, "reuse-max-distance", 0,
		"override the reuse-distance abort threshold, in misses of the evicting L2 (unset = default 32768)")
	fs.IntVar(&o.HybridEntries, "hybrid-entries", 0,
		"override the hybrid update/invalidate score-table entries (unset = default 32768)")
	fs.IntVar(&o.HybridThreshold, "hybrid-threshold", 0,
		"override the peer-read score at which stores switch from invalidate to update (unset = default 2)")
	fs.BoolVar(&o.NoSwitch, "no-retry-switch", false,
		"disable the WBHT retry-rate on/off switch")
	fs.BoolVar(&o.GlobalWBHT, "global-wbht", false,
		"allocate WBHT entries in all L2s (Figure 3 variant)")
	return o
}

// Explicit reports whether the named flag was given on fs's command
// line, regardless of its value — the test every explicit-zero-capable
// flag needs instead of comparing against the zero value. Valid only
// after fs parsed.
func Explicit(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Explicit reports whether the named flag was given on the command
// line, regardless of its value. Valid only after the flag set parsed.
func (o *Overrides) Explicit(name string) bool {
	return Explicit(o.fs, name)
}

// Apply materializes every explicitly-given override onto cfg. Flags
// that were not given leave cfg untouched, so an explicit zero reaches
// Validate as zero instead of being mistaken for "use the default".
func (o *Overrides) Apply(cfg *Config) {
	if o.Explicit("wbht-entries") {
		cfg.WBHT.Entries = o.WBHTEntries
	}
	if o.Explicit("snarf-entries") {
		cfg.Snarf.Entries = o.SnarfEntries
	}
	if o.Explicit("reuse-entries") {
		cfg.ReuseDist.Entries = o.ReuseEntries
	}
	if o.Explicit("reuse-max-distance") {
		cfg.ReuseDist.MaxDistance = 0 // negative: invalid, caught by Validate
		if o.ReuseMaxDistance > 0 {
			cfg.ReuseDist.MaxDistance = uint64(o.ReuseMaxDistance)
		}
	}
	if o.Explicit("hybrid-entries") {
		cfg.HybridUI.Entries = o.HybridEntries
	}
	if o.Explicit("hybrid-threshold") {
		cfg.HybridUI.UpdateThreshold = o.HybridThreshold
	}
	if o.Explicit("no-retry-switch") {
		cfg.WBHT.SwitchEnabled = !o.NoSwitch
	}
	if o.Explicit("global-wbht") {
		cfg.WBHT.GlobalAllocate = o.GlobalWBHT
	}
}
