// Package config defines every architectural and policy parameter of
// the simulated chip multiprocessor. Default() reproduces Table 3 of the
// paper exactly; tests assert that the contention-free latency
// decomposition sums to the paper's end-to-end numbers.
package config

import (
	"fmt"
	"math/bits"

	"cmpcache/internal/sim"
)

// Cycles counts core clock cycles. It aliases sim.Time so configuration
// latencies flow directly into the event engine and resource models.
type Cycles = sim.Time

// Mechanism selects which of the paper's write-back management
// mechanisms are active.
type Mechanism int

const (
	// Baseline: every replaced L2 line (clean and dirty) is written back
	// toward the L3; the L3 squashes clean write backs it already holds.
	Baseline Mechanism = iota
	// WBHT enables the per-L2 Write Back History Table that aborts clean
	// write backs predicted to already reside in the L3 (Section 2).
	WBHT
	// Snarf enables L2-to-L2 write-back absorption guided by the reuse
	// table (Section 3).
	Snarf
	// Combined enables both mechanisms, by default with half-sized
	// tables as in Section 5.3.
	Combined
	// ReuseDist replaces the WBHT with a per-L2 reuse-distance sketch
	// (after arXiv 2105.14442): clean copy-backs are aborted when the
	// line's predicted eviction-to-reuse distance exceeds the L3's
	// useful lifetime, rather than when the L3 is predicted to already
	// hold the line.
	ReuseDist
	// HybridUI enables the hybrid update/invalidate coherence variant
	// (after arXiv 1502.00101): stores to lines whose producer-consumer
	// score crosses a threshold push updates to the known sharers
	// instead of invalidating them, falling back to invalidation for
	// everything else.
	HybridUI
)

// String returns the mechanism's name as used in reports.
func (m Mechanism) String() string {
	switch m {
	case Baseline:
		return "base"
	case WBHT:
		return "wbht"
	case Snarf:
		return "snarf"
	case Combined:
		return "combined"
	case ReuseDist:
		return "reusedist"
	case HybridUI:
		return "hybridui"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// WBHTConfig parameterizes the Write Back History Table (Section 2).
type WBHTConfig struct {
	Entries int // total tag entries (paper default 32K)
	Assoc   int // set associativity (paper default 16)

	// GlobalAllocate makes every L2 allocate an entry when the combined
	// snoop response reveals an L3 hit, not just the writing L2
	// (the Figure 3 variant).
	GlobalAllocate bool

	// The retry-rate on/off switch (Section 2.2): the table is consulted
	// only while the ring saw at least RetryThreshold retries during the
	// previous RetryWindow cycles. The paper uses 2,000 per 1M cycles; we
	// keep the same rate over a shorter window so short simulations adapt
	// at the same speed relative to their length.
	SwitchEnabled  bool
	RetryWindow    Cycles
	RetryThreshold uint64

	// LinesPerEntry implements the paper's Section 7 extension: "allow
	// each entry in the table to serve multiple cache lines, reducing
	// the size of each entry and providing greater coverage at the risk
	// of increased prediction errors." Must be a power of two; 1 (the
	// default) is the paper's per-line table.
	LinesPerEntry int

	// HistoryReplacement implements the paper's other Section 7
	// direction: "new replacement algorithms that take into account
	// information contained in the history tables." When enabled, the
	// L2 victim search prefers — among the least recently used ways — a
	// clean line whose tag hits in the WBHT: such lines are already in
	// the L3, so evicting them costs neither a write back nor (on
	// re-reference) a memory access.
	HistoryReplacement bool
}

// SnarfConfig parameterizes L2-to-L2 write-back snarfing (Section 3).
type SnarfConfig struct {
	Entries int // reuse-table tag entries (paper default 32K)
	Assoc   int

	// VictimizeShared lets a recipient L2 evict a Shared-state line when
	// no Invalid line exists in the target set (the paper's policy).
	// Disabling it restricts snarfing to invalid ways (ablation).
	VictimizeShared bool

	// InsertMRU places snarfed lines at the MRU position of the recipient
	// set, maximizing their chance of surviving until reuse (the paper's
	// "managing the LRU information at the recipient cache"). Disabling
	// inserts at LRU (ablation).
	InsertMRU bool
}

// ReuseDistConfig parameterizes the reuse-distance clean copy-back
// policy (after arXiv 2105.14442). Each L2 keeps a sketch of its own
// evicted tags; a tag's eviction-to-reuse distance is the number of L2
// misses between evicting it and missing on it again, smoothed by an
// exponentially weighted moving average. A clean copy-back is aborted
// when the predicted distance exceeds MaxDistance: the line would age
// out of the L3 before its next use, so shipping it there buys nothing.
type ReuseDistConfig struct {
	Entries int // sketch tag entries per L2
	Assoc   int

	// MaxDistance is the abort threshold, in misses of the evicting L2.
	// Lines never seen before (no trained distance) are copied back,
	// matching the baseline's conservative behavior.
	MaxDistance uint64

	// EWMAShift sets the smoothing weight: each new distance sample
	// contributes 1/2^EWMAShift of the running average.
	EWMAShift uint
}

// HybridUIConfig parameterizes the hybrid update/invalidate coherence
// variant (after arXiv 1502.00101). A chip-level score table counts the
// peer read fills each line attracts between consecutive writes; a
// store to a line whose count has reached UpdateThreshold pushes the
// new data to the surviving sharers (they stay Shared, the writer takes
// dirty ownership as Tagged) instead of invalidating them. Lines below
// the threshold invalidate as usual.
type HybridUIConfig struct {
	Entries int // score-table tag entries (chip-wide)
	Assoc   int

	// UpdateThreshold is the number of peer read fills between writes
	// needed before stores switch from invalidate to update.
	UpdateThreshold int
}

// Config describes the complete simulated system.
type Config struct {
	// --- Figure 1 organization ---
	Cores          int // 8
	ThreadsPerCore int // 2-way SMT
	CoresPerL2     int // 2 (each pair of cores shares an L2)

	// --- Table 3 cache geometry ---
	LineBytes int // 128
	L2Slices  int // 4 slices per L2 cache
	L2SliceKB int // 512 KB per slice
	L2Assoc   int // 8
	L3Slices  int // 4
	L3SliceMB int // 4 MB per slice
	L3Assoc   int // 16
	L1KB      int // per-core L1 D (Harvard; used only by the trace filter)
	L1Assoc   int
	L1IKB     int // per-core L1 I
	L1IAssoc  int

	// --- Table 3 contention-free latencies, decomposed. All end-to-end
	// figures are from the core. The decomposition is additive:
	//   L2 hit            = CoreToL2 + L2Access                  = 20
	//   combined response = L2 hit + AddressPhase                = 44
	//   L2-to-L2 transfer = combined + PeerSourceLatency         = 77
	//   L3 hit            = combined + L3SourceLatency           = 167
	//   memory            = combined + MemSourceLatency          = 431
	CoreToL2          Cycles
	L2Access          Cycles
	AddressPhase      Cycles
	PeerSourceLatency Cycles
	L3SourceLatency   Cycles
	MemSourceLatency  Cycles

	// --- Occupancies (contention model). The ring runs at 1:2 core
	// speed and the data ring is 32 B wide, so a 128 B line takes 4 beats
	// x 2 core cycles = 8 core cycles of data-ring occupancy, and the
	// address ring accepts one transaction per 2 core cycles.
	AddrRingOccupancy Cycles
	DataRingOccupancy Cycles
	L2PortOccupancy   Cycles // tag/data port busy time per access or snoop
	L3SliceOccupancy  Cycles // off-chip array busy time per access
	MemBankOccupancy  Cycles // DRAM bank busy time per access

	// --- Queues and structural limits ---
	L3QueueEntries  int // L3 incoming queue; full => retry (Section 2)
	MemQueueEntries int
	MemBanks        int
	WBQueueEntries  int // per-L2 write-back queue (paper: 8)
	MSHRsPerL2      int
	RetryBackoff    Cycles // wait before re-arbitrating a retried txn

	// MaxOutstanding is the per-thread limit on simultaneously
	// outstanding read and write misses — the memory-pressure knob swept
	// across 1..6 in every figure.
	MaxOutstanding int

	Mechanism Mechanism
	WBHT      WBHTConfig
	Snarf     SnarfConfig
	ReuseDist ReuseDistConfig
	HybridUI  HybridUIConfig
}

// Default returns the paper's baseline system (Table 3) with the
// baseline write-back policy and six outstanding misses per thread.
func Default() Config {
	return Config{
		Cores:          8,
		ThreadsPerCore: 2,
		CoresPerL2:     2,

		LineBytes: 128,
		L2Slices:  4,
		L2SliceKB: 512,
		L2Assoc:   8,
		L3Slices:  4,
		L3SliceMB: 4,
		L3Assoc:   16,
		L1KB:      32,
		L1Assoc:   4,
		L1IKB:     64,
		L1IAssoc:  2,

		CoreToL2:          4,
		L2Access:          16,
		AddressPhase:      24,
		PeerSourceLatency: 33,
		L3SourceLatency:   123,
		MemSourceLatency:  387,

		AddrRingOccupancy: 2,
		DataRingOccupancy: 8,
		L2PortOccupancy:   2,
		L3SliceOccupancy:  20,
		MemBankOccupancy:  40,

		L3QueueEntries:  16,
		MemQueueEntries: 32,
		MemBanks:        12,
		WBQueueEntries:  8,
		MSHRsPerL2:      32,
		RetryBackoff:    64,

		MaxOutstanding: 6,

		Mechanism: Baseline,
		WBHT:      DefaultWBHT(),
		Snarf:     DefaultSnarf(),
		ReuseDist: DefaultReuseDist(),
		HybridUI:  DefaultHybridUI(),
	}
}

// DefaultWBHT returns the paper's WBHT parameters: 32K entries, 16-way,
// local allocation, retry switch at the paper's rate (2,000 retries per
// 1M cycles, expressed over a 100K-cycle window).
func DefaultWBHT() WBHTConfig {
	return WBHTConfig{
		Entries:        32768,
		Assoc:          16,
		GlobalAllocate: false,
		SwitchEnabled:  true,
		RetryWindow:    25_000,
		RetryThreshold: 50,
		LinesPerEntry:  1,
	}
}

// DefaultSnarf returns the paper's snarf-table parameters: 32K entries,
// 16-way, Shared-state victimization allowed, MRU insertion.
func DefaultSnarf() SnarfConfig {
	return SnarfConfig{
		Entries:         32768,
		Assoc:           16,
		VictimizeShared: true,
		InsertMRU:       true,
	}
}

// DefaultReuseDist sizes the sketch like the WBHT (32K entries, 16-way)
// so the two clean-copy-back policies compete at equal hardware cost.
// MaxDistance defaults to the per-L2 share of the L3 in lines: past
// that many misses, the copied-back line has likely been victimized.
func DefaultReuseDist() ReuseDistConfig {
	return ReuseDistConfig{
		Entries:     32768,
		Assoc:       16,
		MaxDistance: 32768,
		EWMAShift:   2,
	}
}

// DefaultHybridUI matches the mechanism tables' sizing (32K entries,
// 16-way) with the two-reader threshold of the hybrid protocol's
// write-run heuristic.
func DefaultHybridUI() HybridUIConfig {
	return HybridUIConfig{
		Entries:         32768,
		Assoc:           16,
		UpdateThreshold: 2,
	}
}

// WithMechanism returns a copy of c running the given mechanism. For
// Combined, both tables are halved to 16K entries to preserve total
// capacity, exactly as in Section 5.3.
func (c Config) WithMechanism(m Mechanism) Config {
	c.Mechanism = m
	if m == Combined {
		c.WBHT.Entries = 16384
		c.Snarf.Entries = 16384
	}
	return c
}

// Threads returns the total hardware thread count.
func (c Config) Threads() int { return c.Cores * c.ThreadsPerCore }

// NumL2 returns the number of L2 caches on the chip.
func (c Config) NumL2() int { return c.Cores / c.CoresPerL2 }

// ThreadsPerL2 returns how many hardware threads feed one L2 cache
// (four in the paper's system).
func (c Config) ThreadsPerL2() int { return c.CoresPerL2 * c.ThreadsPerCore }

// L2Bytes returns the capacity of one L2 cache (all slices).
func (c Config) L2Bytes() int { return c.L2Slices * c.L2SliceKB * 1024 }

// L3Bytes returns the capacity of the L3 cache (all slices).
func (c Config) L3Bytes() int { return c.L3Slices * c.L3SliceMB * 1024 * 1024 }

// L2Lines returns the number of lines in one L2 cache.
func (c Config) L2Lines() int { return c.L2Bytes() / c.LineBytes }

// L3Lines returns the number of lines in the L3 cache.
func (c Config) L3Lines() int { return c.L3Bytes() / c.LineBytes }

// L2HitLatency returns the end-to-end L2 hit latency (Table 3: 20).
func (c Config) L2HitLatency() Cycles { return c.CoreToL2 + c.L2Access }

// CombinedResponseLatency returns the contention-free time from issue to
// the combined snoop response.
func (c Config) CombinedResponseLatency() Cycles {
	return c.L2HitLatency() + c.AddressPhase
}

// L2ToL2Latency returns the end-to-end L2-to-L2 transfer latency
// (Table 3: 77).
func (c Config) L2ToL2Latency() Cycles {
	return c.CombinedResponseLatency() + c.PeerSourceLatency
}

// L3HitLatency returns the end-to-end L3 hit latency (Table 3: 167).
func (c Config) L3HitLatency() Cycles {
	return c.CombinedResponseLatency() + c.L3SourceLatency
}

// MemLatency returns the end-to-end memory latency (Table 3: 431).
func (c Config) MemLatency() Cycles {
	return c.CombinedResponseLatency() + c.MemSourceLatency
}

// Validate reports the first structural inconsistency in the
// configuration, or nil when it is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores = %d, must be positive", c.Cores)
	case c.ThreadsPerCore <= 0:
		return fmt.Errorf("config: ThreadsPerCore = %d, must be positive", c.ThreadsPerCore)
	case c.CoresPerL2 <= 0 || c.Cores%c.CoresPerL2 != 0:
		return fmt.Errorf("config: CoresPerL2 = %d must evenly divide Cores = %d", c.CoresPerL2, c.Cores)
	case c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("config: LineBytes = %d, must be a positive power of two", c.LineBytes)
	case c.L2Slices <= 0 || bits.OnesCount(uint(c.L2Slices)) != 1:
		return fmt.Errorf("config: L2Slices = %d, must be a positive power of two", c.L2Slices)
	case c.L3Slices <= 0 || bits.OnesCount(uint(c.L3Slices)) != 1:
		return fmt.Errorf("config: L3Slices = %d, must be a positive power of two", c.L3Slices)
	case c.L2Assoc <= 0 || c.L3Assoc <= 0:
		return fmt.Errorf("config: associativities must be positive")
	case c.L2Lines()/c.L2Slices%c.L2Assoc != 0:
		return fmt.Errorf("config: L2 slice lines (%d) not divisible by associativity %d", c.L2Lines()/c.L2Slices, c.L2Assoc)
	case c.L3Lines()/c.L3Slices%c.L3Assoc != 0:
		return fmt.Errorf("config: L3 slice lines (%d) not divisible by associativity %d", c.L3Lines()/c.L3Slices, c.L3Assoc)
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("config: MaxOutstanding = %d, must be positive", c.MaxOutstanding)
	case c.WBQueueEntries <= 0 || c.L3QueueEntries <= 0 || c.MemQueueEntries <= 0:
		return fmt.Errorf("config: queue capacities must be positive")
	case c.MSHRsPerL2 < c.ThreadsPerL2()*c.MaxOutstanding:
		return fmt.Errorf("config: MSHRsPerL2 = %d cannot cover %d threads x %d outstanding",
			c.MSHRsPerL2, c.ThreadsPerL2(), c.MaxOutstanding)
	case c.MemBanks <= 0:
		return fmt.Errorf("config: MemBanks = %d, must be positive", c.MemBanks)
	}
	if c.Mechanism == WBHT || c.Mechanism == Combined {
		if err := validateTable("WBHT", c.WBHT.Entries, c.WBHT.Assoc); err != nil {
			return err
		}
		if g := c.WBHT.LinesPerEntry; g <= 0 || bits.OnesCount(uint(g)) != 1 {
			return fmt.Errorf("config: WBHT LinesPerEntry = %d, must be a positive power of two", g)
		}
	}
	if c.Mechanism == Snarf || c.Mechanism == Combined {
		if err := validateTable("Snarf", c.Snarf.Entries, c.Snarf.Assoc); err != nil {
			return err
		}
	}
	if c.Mechanism == ReuseDist {
		if err := validateTable("ReuseDist", c.ReuseDist.Entries, c.ReuseDist.Assoc); err != nil {
			return err
		}
		if c.ReuseDist.MaxDistance == 0 {
			return fmt.Errorf("config: ReuseDist MaxDistance must be positive")
		}
		if c.ReuseDist.EWMAShift > 16 {
			return fmt.Errorf("config: ReuseDist EWMAShift = %d, must be at most 16", c.ReuseDist.EWMAShift)
		}
	}
	if c.Mechanism == HybridUI {
		if err := validateTable("HybridUI", c.HybridUI.Entries, c.HybridUI.Assoc); err != nil {
			return err
		}
		if c.HybridUI.UpdateThreshold <= 0 {
			return fmt.Errorf("config: HybridUI UpdateThreshold = %d, must be positive", c.HybridUI.UpdateThreshold)
		}
	}
	return nil
}

func validateTable(name string, entries, assoc int) error {
	if entries <= 0 || assoc <= 0 {
		return fmt.Errorf("config: %s table entries/assoc must be positive", name)
	}
	if entries%assoc != 0 {
		return fmt.Errorf("config: %s table entries %d not divisible by assoc %d", name, entries, assoc)
	}
	sets := entries / assoc
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("config: %s table sets %d must be a power of two", name, sets)
	}
	return nil
}
