package config

import (
	"flag"
	"io"
	"testing"
)

// parseOverrides registers the shared override flags on a fresh flag
// set — exactly what each command-line tool does on flag.CommandLine —
// and parses args.
func parseOverrides(t *testing.T, args ...string) *Overrides {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := RegisterOverrides(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOverridesUnsetLeavesConfigUntouched(t *testing.T) {
	o := parseOverrides(t)
	cfg := Default().WithMechanism(Combined)
	want := cfg
	o.Apply(&cfg)
	if cfg != want {
		t.Fatalf("Apply with no flags changed the config:\n got %+v\nwant %+v", cfg, want)
	}
	if o.Explicit("wbht-entries") {
		t.Fatal("Explicit(wbht-entries) = true with nothing parsed")
	}
}

// TestOverridesExplicitZeroDistinguished is the regression test for the
// flag.Visit extraction: an explicit `-wbht-entries 0` must materialize
// as zero entries and fail Validate, not silently fall back to the
// paper default. The same helper (and therefore the same semantics) is
// what cmpsim, cmpsweep, cmpserved and cmpbench all register on their
// command lines; before the extraction only cmpsim had the fix.
func TestOverridesExplicitZeroDistinguished(t *testing.T) {
	for _, tool := range []string{"cmpsim", "cmpsweep", "cmpserved", "cmpbench"} {
		t.Run(tool, func(t *testing.T) {
			unset := parseOverrides(t)
			cfg := Default().WithMechanism(WBHT)
			unset.Apply(&cfg)
			if cfg.WBHT.Entries != DefaultWBHT().Entries {
				t.Fatalf("unset flag changed entries to %d", cfg.WBHT.Entries)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("default config invalid: %v", err)
			}

			zero := parseOverrides(t, "-wbht-entries", "0")
			if !zero.Explicit("wbht-entries") {
				t.Fatal("Explicit(wbht-entries) = false after parsing it")
			}
			cfg = Default().WithMechanism(WBHT)
			zero.Apply(&cfg)
			if cfg.WBHT.Entries != 0 {
				t.Fatalf("explicit zero materialized as %d, want 0", cfg.WBHT.Entries)
			}
			if err := cfg.Validate(); err == nil {
				t.Fatal("explicit -wbht-entries 0 passed Validate; it must be rejected, not defaulted")
			}
		})
	}
}

// TestExplicitStandalone is the regression test for tracegen's
// zero-sentinel flags: the standalone Explicit helper must report a flag
// as given exactly when it appeared on the command line, including when
// the given value equals the default — `-seed 0` and `-refs 0` are real
// requests, not "unset".
func TestExplicitStandalone(t *testing.T) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("refs", 0, "")
	fs.Uint64("seed", 0, "")
	if err := fs.Parse([]string{"-refs", "0"}); err != nil {
		t.Fatal(err)
	}
	if !Explicit(fs, "refs") {
		t.Fatal("Explicit(refs) = false after -refs 0 was parsed")
	}
	if Explicit(fs, "seed") {
		t.Fatal("Explicit(seed) = true for a flag never given")
	}
	if Explicit(fs, "no-such-flag") {
		t.Fatal("Explicit on an unregistered name = true")
	}
}

func TestOverridesApplyEveryKnob(t *testing.T) {
	o := parseOverrides(t,
		"-wbht-entries", "1024",
		"-snarf-entries", "2048",
		"-reuse-entries", "4096",
		"-reuse-max-distance", "100",
		"-hybrid-entries", "8192",
		"-hybrid-threshold", "3",
		"-no-retry-switch",
		"-global-wbht",
	)
	cfg := Default()
	o.Apply(&cfg)
	switch {
	case cfg.WBHT.Entries != 1024:
		t.Fatalf("WBHT.Entries = %d", cfg.WBHT.Entries)
	case cfg.Snarf.Entries != 2048:
		t.Fatalf("Snarf.Entries = %d", cfg.Snarf.Entries)
	case cfg.ReuseDist.Entries != 4096:
		t.Fatalf("ReuseDist.Entries = %d", cfg.ReuseDist.Entries)
	case cfg.ReuseDist.MaxDistance != 100:
		t.Fatalf("ReuseDist.MaxDistance = %d", cfg.ReuseDist.MaxDistance)
	case cfg.HybridUI.Entries != 8192:
		t.Fatalf("HybridUI.Entries = %d", cfg.HybridUI.Entries)
	case cfg.HybridUI.UpdateThreshold != 3:
		t.Fatalf("HybridUI.UpdateThreshold = %d", cfg.HybridUI.UpdateThreshold)
	case cfg.WBHT.SwitchEnabled:
		t.Fatal("retry switch still enabled")
	case !cfg.WBHT.GlobalAllocate:
		t.Fatal("global WBHT not applied")
	}
}

func TestOverridesNegativeMaxDistanceInvalid(t *testing.T) {
	o := parseOverrides(t, "-reuse-max-distance", "-5")
	cfg := Default().WithMechanism(ReuseDist)
	o.Apply(&cfg)
	if cfg.ReuseDist.MaxDistance != 0 {
		t.Fatalf("negative distance materialized as %d, want 0", cfg.ReuseDist.MaxDistance)
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative -reuse-max-distance passed Validate")
	}
}
