package config

import (
	"strings"
	"testing"
)

// TestTable3Latencies pins the contention-free latency decomposition to
// the paper's Table 3 end-to-end numbers.
func TestTable3Latencies(t *testing.T) {
	c := Default()
	if got := c.L2HitLatency(); got != 20 {
		t.Errorf("L2 hit latency = %d, want 20", got)
	}
	if got := c.L2ToL2Latency(); got != 77 {
		t.Errorf("L2-to-L2 latency = %d, want 77", got)
	}
	if got := c.L3HitLatency(); got != 167 {
		t.Errorf("L3 hit latency = %d, want 167", got)
	}
	if got := c.MemLatency(); got != 431 {
		t.Errorf("memory latency = %d, want 431", got)
	}
}

// TestTable3Geometry pins the cache organization to Table 3.
func TestTable3Geometry(t *testing.T) {
	c := Default()
	if got := c.L2Bytes(); got != 4*512*1024 {
		t.Errorf("L2 capacity = %d, want 2MB", got)
	}
	if got := c.L3Bytes(); got != 4*4*1024*1024 {
		t.Errorf("L3 capacity = %d, want 16MB", got)
	}
	if c.NumL2() != 4 {
		t.Errorf("NumL2 = %d, want 4", c.NumL2())
	}
	if c.Threads() != 16 {
		t.Errorf("Threads = %d, want 16", c.Threads())
	}
	if c.ThreadsPerL2() != 4 {
		t.Errorf("ThreadsPerL2 = %d, want 4 (paper: four threads feed each L2)", c.ThreadsPerL2())
	}
	if c.L2Assoc != 8 || c.L3Assoc != 16 {
		t.Errorf("associativities = %d/%d, want 8/16", c.L2Assoc, c.L3Assoc)
	}
}

// TestWBHTDefaultsMatchPaper pins the mechanism parameters described in
// Sections 2 and 2.2.
func TestWBHTDefaultsMatchPaper(t *testing.T) {
	w := DefaultWBHT()
	if w.Entries != 32768 {
		t.Errorf("WBHT entries = %d, want 32768", w.Entries)
	}
	if w.Assoc != 16 {
		t.Errorf("WBHT assoc = %d, want 16", w.Assoc)
	}
	// Paper: 2,000 retries per 1M cycles. The configured rate must match.
	paperRate := 2000.0 / 1_000_000
	rate := float64(w.RetryThreshold) / float64(w.RetryWindow)
	if rate != paperRate {
		t.Errorf("retry switch rate = %v, want %v", rate, paperRate)
	}
	// WBHT size relative to L2: paper says ~9% of L2 size. 32K entries of
	// ~4.5B tag+LRU each vs 2MB L2 is within [5%, 12%].
	c := Default()
	frac := float64(w.Entries) / float64(c.L2Lines())
	if frac <= 0 {
		t.Errorf("degenerate WBHT/L2 ratio %v", frac)
	}
}

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
	for _, m := range []Mechanism{Baseline, WBHT, Snarf, Combined} {
		if err := c.WithMechanism(m).Validate(); err != nil {
			t.Fatalf("Default with %v invalid: %v", m, err)
		}
	}
}

func TestWithMechanismCombinedHalvesTables(t *testing.T) {
	c := Default().WithMechanism(Combined)
	if c.WBHT.Entries != 16384 || c.Snarf.Entries != 16384 {
		t.Fatalf("combined tables = %d/%d, want 16384/16384",
			c.WBHT.Entries, c.Snarf.Entries)
	}
	// The non-combined variants must keep full-size tables.
	if Default().WithMechanism(WBHT).WBHT.Entries != 32768 {
		t.Fatal("WithMechanism(WBHT) should not shrink the table")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"bad line size", func(c *Config) { c.LineBytes = 100 }, "LineBytes"},
		{"cores not divisible", func(c *Config) { c.CoresPerL2 = 3 }, "CoresPerL2"},
		{"zero outstanding", func(c *Config) { c.MaxOutstanding = 0 }, "MaxOutstanding"},
		{"mshr too small", func(c *Config) { c.MSHRsPerL2 = 1 }, "MSHR"},
		{"zero wb queue", func(c *Config) { c.WBQueueEntries = 0 }, "queue"},
		{"zero mem banks", func(c *Config) { c.MemBanks = 0 }, "MemBanks"},
		{"bad l2 slices", func(c *Config) { c.L2Slices = 3 }, "L2Slices"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateTableShapes(t *testing.T) {
	c := Default().WithMechanism(WBHT)
	c.WBHT.Entries = 1000 // 1000/16 is not a power-of-two set count
	if c.Validate() == nil {
		t.Fatal("Validate accepted non-power-of-two WBHT sets")
	}
	c = Default().WithMechanism(Snarf)
	c.Snarf.Assoc = 0
	if c.Validate() == nil {
		t.Fatal("Validate accepted zero snarf assoc")
	}
	// Table shape is irrelevant when the mechanism is off.
	c = Default()
	c.WBHT.Entries = 7
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline config rejected for unused table shape: %v", err)
	}
}

func TestMechanismString(t *testing.T) {
	if Baseline.String() != "base" || WBHT.String() != "wbht" ||
		Snarf.String() != "snarf" || Combined.String() != "combined" {
		t.Fatal("unexpected mechanism names")
	}
	if Mechanism(99).String() != "Mechanism(99)" {
		t.Fatal("unknown mechanism should format numerically")
	}
}
