package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- a strict exposition-format parser, used to round-trip scrapes ---

type sample struct {
	name   string
	labels map[string]string
	value  float64
}

type parsedFamily struct {
	name    string
	help    string
	typ     string
	samples []sample
}

// parseExposition is a deliberately strict parser for the subset of the
// Prometheus text format this package emits: every family must have
// HELP then TYPE then at least one sample, sample names must match the
// family (allowing _bucket/_sum/_count for histograms), label syntax
// and escapes must be exact, and no series may repeat.
func parseExposition(t *testing.T, text string) []parsedFamily {
	t.Helper()
	var fams []parsedFamily
	var cur *parsedFamily
	seen := make(map[string]bool) // duplicate-series detection
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		t.Fatalf("exposition must end with a newline")
	}
	lines = lines[:len(lines)-1]
	for _, line := range lines {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if cur != nil && len(cur.samples) == 0 {
				t.Fatalf("family %q has no samples", cur.name)
			}
			fams = append(fams, parsedFamily{name: name, help: unescapeHelp(t, help)})
			cur = &fams[len(fams)-1]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.name != name || cur.typ != "" {
				t.Fatalf("TYPE line out of order: %q", line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q", typ)
			}
			cur.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		if cur == nil || cur.typ == "" {
			t.Fatalf("sample before HELP/TYPE: %q", line)
		}
		s := parseSample(t, line)
		base := s.name
		if cur.typ == "histogram" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(s.name, suf); ok && b == cur.name {
					base = b
					break
				}
			}
		}
		if base != cur.name {
			t.Fatalf("sample %q does not belong to family %q", s.name, cur.name)
		}
		key := s.name + "|" + renderSorted(s.labels)
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
		cur.samples = append(cur.samples, s)
	}
	if cur != nil && len(cur.samples) == 0 {
		t.Fatalf("family %q has no samples", cur.name)
	}
	for _, f := range fams {
		if f.typ == "histogram" {
			checkHistogramFamily(t, f)
		}
	}
	return fams
}

func parseSample(t *testing.T, line string) sample {
	t.Helper()
	s := sample{labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.name = line[:i]
	if !validName(s.name, true) {
		t.Fatalf("invalid metric name %q", s.name)
	}
	if i < len(line) && line[i] == '{' {
		i++ // past '{'
		for line[i] != '}' {
			j := i
			for line[j] != '=' {
				j++
			}
			lname := line[i:j]
			if !validName(lname, false) {
				t.Fatalf("invalid label name %q in %q", lname, line)
			}
			if line[j+1] != '"' {
				t.Fatalf("label value must be quoted: %q", line)
			}
			val, next := unescapeLabelValue(t, line, j+2)
			if _, dup := s.labels[lname]; dup {
				t.Fatalf("duplicate label %q in %q", lname, line)
			}
			s.labels[lname] = val
			i = next
			if line[i] == ',' {
				i++
			} else if line[i] != '}' {
				t.Fatalf("malformed label block in %q", line)
			}
		}
		i++ // past '}'
	}
	if i >= len(line) || line[i] != ' ' {
		t.Fatalf("missing value separator in %q", line)
	}
	raw := line[i+1:]
	v, err := parseValue(raw)
	if err != nil {
		t.Fatalf("bad value %q in %q: %v", raw, line, err)
	}
	s.value = v
	return s
}

func parseValue(raw string) (float64, error) {
	switch raw {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(raw, 64)
}

// unescapeLabelValue reads a quoted label value starting at the byte
// after the opening quote; returns the value and the index after the
// closing quote.
func unescapeLabelValue(t *testing.T, line string, start int) (string, int) {
	t.Helper()
	var b strings.Builder
	i := start
	for {
		if i >= len(line) {
			t.Fatalf("unterminated label value in %q", line)
		}
		switch line[i] {
		case '"':
			return b.String(), i + 1
		case '\\':
			i++
			switch line[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				t.Fatalf("invalid escape \\%c in %q", line[i], line)
			}
		case '\n':
			t.Fatalf("raw newline in label value: %q", line)
		default:
			b.WriteByte(line[i])
		}
		i++
	}
}

func unescapeHelp(t *testing.T, s string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			default:
				t.Fatalf("invalid HELP escape \\%c", s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func renderSorted(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkHistogramFamily asserts that, per label set, the le bounds are
// strictly increasing and end at +Inf, the cumulative bucket counts are
// non-decreasing, and _count equals the +Inf bucket.
func checkHistogramFamily(t *testing.T, f parsedFamily) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		count  float64
		gotCnt bool
	}
	groups := make(map[string]*series)
	group := func(labels map[string]string) *series {
		rest := make(map[string]string)
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := renderSorted(rest)
		if groups[key] == nil {
			groups[key] = &series{}
		}
		return groups[key]
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket sample without le", f.name)
			}
			v, err := parseValue(le)
			if err != nil {
				t.Fatalf("%s: bad le %q", f.name, le)
			}
			g := group(s.labels)
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.value)
		case f.name + "_count":
			g := group(s.labels)
			g.count = s.value
			g.gotCnt = true
		case f.name + "_sum":
		default:
			t.Fatalf("%s: unexpected histogram sample %q", f.name, s.name)
		}
	}
	for key, g := range groups {
		if len(g.les) == 0 {
			t.Fatalf("%s{%s}: no buckets", f.name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i-1] >= g.les[i] {
				t.Fatalf("%s{%s}: le bounds not strictly increasing: %v", f.name, key, g.les)
			}
			if g.counts[i-1] > g.counts[i] {
				t.Fatalf("%s{%s}: cumulative counts decrease: %v", f.name, key, g.counts)
			}
		}
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			t.Fatalf("%s{%s}: last bucket is not +Inf: %v", f.name, key, g.les)
		}
		if !g.gotCnt {
			t.Fatalf("%s{%s}: missing _count", f.name, key)
		}
		if g.count != g.counts[len(g.counts)-1] {
			t.Fatalf("%s{%s}: _count %v != +Inf bucket %v", f.name, key, g.count, g.counts[len(g.counts)-1])
		}
	}
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// --- tests ---

// TestRoundTrip builds one registry with every instrument kind,
// adversarial label values included, and re-parses the scrape with the
// strict parser above.
func TestRoundTrip(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "Total jobs.").Add(42)
	r.Gauge("queue_depth", "Jobs queued.").Set(-3)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	rv := r.CounterVec("http_requests_total", "Requests by route/code.", "route", "code")
	rv.With("GET /v1/jobs/{id}", "200").Add(7)
	rv.With("GET /v1/jobs/{id}", "404").Inc()
	rv.With(`we"ird\route`+"\n", "500").Inc()
	h := r.Histogram("run_seconds", "Run wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	hv := r.HistogramVec("req_seconds", "Request latency.", []float64{0.01, 0.1}, "route")
	hv.With("POST /v1/jobs").Observe(0.02)

	text := scrape(t, r)
	fams := parseExposition(t, text)
	byName := make(map[string]parsedFamily)
	for _, f := range fams {
		byName[f.name] = f
	}

	if f := byName["jobs_total"]; f.typ != "counter" || f.samples[0].value != 42 {
		t.Fatalf("jobs_total wrong: %+v", f)
	}
	if f := byName["queue_depth"]; f.typ != "gauge" || f.samples[0].value != -3 {
		t.Fatalf("queue_depth wrong: %+v", f)
	}
	if f := byName["uptime_seconds"]; f.typ != "gauge" || f.samples[0].value != 12.5 {
		t.Fatalf("uptime_seconds wrong: %+v", f)
	}
	reqs := byName["http_requests_total"]
	if len(reqs.samples) != 3 {
		t.Fatalf("want 3 http_requests_total series, got %+v", reqs.samples)
	}
	found := false
	for _, s := range reqs.samples {
		if s.labels["route"] == `we"ird\route`+"\n" && s.labels["code"] == "500" {
			found = true
			if s.value != 1 {
				t.Fatalf("escaped-label series value %v", s.value)
			}
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %+v", reqs.samples)
	}
	// Histogram: 4 observations, cumulative 1/2/3/4 across 0.1/1/10/+Inf.
	hist := byName["run_seconds"]
	if hist.typ != "histogram" {
		t.Fatalf("run_seconds type %q", hist.typ)
	}
	wantCum := []float64{1, 2, 3, 4}
	i := 0
	var sum float64
	for _, s := range hist.samples {
		switch s.name {
		case "run_seconds_bucket":
			if s.value != wantCum[i] {
				t.Fatalf("bucket %d: want %v got %v", i, wantCum[i], s.value)
			}
			i++
		case "run_seconds_sum":
			sum = s.value
		}
	}
	if want := 0.05 + 0.5 + 5 + 50; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("run_seconds_sum: want %v got %v", want, sum)
	}
	if h.Count() != 4 {
		t.Fatalf("Count: want 4 got %d", h.Count())
	}
}

// TestScrapeStable verifies two scrapes with no writes in between are
// byte-identical (rendering is deterministic, registration-ordered).
func TestScrapeStable(t *testing.T) {
	r := New()
	r.Counter("a_total", "A.").Inc()
	r.CounterVec("b_total", "B.", "x").With("1").Inc()
	r.Histogram("c_seconds", "C.", []float64{1, 2}).Observe(1.5)
	if s1, s2 := scrape(t, r), scrape(t, r); s1 != s2 {
		t.Fatalf("scrapes differ:\n%s\n---\n%s", s1, s2)
	}
}

// TestConcurrentScrape hammers every instrument kind from many
// goroutines while scraping; run under -race this is the data-race
// check, and every intermediate scrape must still parse strictly.
func TestConcurrentScrape(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", "Ops.")
	g := r.Gauge("inflight", "In flight.")
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	vec := r.CounterVec("routed_total", "Routed.", "route")

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := fmt.Sprintf("r%d", w%3)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%200) / 1000.0)
				vec.With(route).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				parseExposition(t, scrape(t, r))
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	fams := parseExposition(t, scrape(t, r))
	for _, f := range fams {
		if f.name == "ops_total" && f.samples[0].value != writers*perWriter {
			t.Fatalf("ops_total: want %d got %v", writers*perWriter, f.samples[0].value)
		}
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count: want %d got %d", writers*perWriter, h.Count())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge should settle at 0, got %d", g.Value())
	}
}

// chunkedWriter copies its input a few bytes at a time, yielding the
// scheduler between chunks, so a scrape that releases the registry lock
// before Write completes would have its shared render buffer recycled
// (and mutated) by a concurrent scrape mid-copy.
type chunkedWriter struct{ buf bytes.Buffer }

func (w *chunkedWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := 16
		if n > len(p) {
			n = len(p)
		}
		w.buf.Write(p[:n])
		total += n
		p = p[n:]
		runtime.Gosched()
	}
	return total, nil
}

// TestConcurrentScrapers pins the scrape-vs-scrape guarantee:
// WritePrometheus holds the registry lock across the Write, so
// overlapping scrapes (HA Prometheus, concurrent curls) each get a
// complete, well-formed exposition instead of racing on the reused
// render buffer. Run under -race this is the regression check for the
// buffer-recycling data race.
func TestConcurrentScrapers(t *testing.T) {
	r := New()
	r.Counter("ops_total", "Ops.").Add(12345)
	r.Gauge("inflight", "In flight.").Set(-7)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%100) / 1000)
	}
	vec := r.CounterVec("routed_total", "Routed.", "route")
	for _, route := range []string{"r0", "r1", "r2"} {
		vec.With(route).Inc()
	}
	want := scrape(t, r)

	const scrapers = 4
	const perScraper = 50
	outs := make([][]string, scrapers)
	var wg sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perScraper; i++ {
				var w chunkedWriter
				r.WritePrometheus(&w) // cannot fail: buffer writes
				outs[s] = append(outs[s], w.buf.String())
			}
		}(s)
	}
	wg.Wait()

	for _, scrapes := range outs {
		for _, text := range scrapes {
			if text != want {
				t.Fatalf("concurrent scrape corrupted:\n%s\n--- want ---\n%s", text, want)
			}
		}
	}
}

// TestScrapeAllocs pins the steady-state scrape to zero heap
// allocations: the registry reuses its render buffer.
func TestScrapeAllocs(t *testing.T) {
	r := New()
	r.Counter("a_total", "A.").Add(123456)
	r.Gauge("b", "B.").Set(-9)
	r.GaugeFunc("c", "C.", func() float64 { return 3.25 })
	h := r.Histogram("d_seconds", "D.", SecondsBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 50)
	}
	v := r.CounterVec("e_total", "E.", "k")
	v.With("x").Inc()
	v.With("y").Inc()

	r.WritePrometheus(io.Discard) // warm the scratch buffer
	allocs := testing.AllocsPerRun(50, func() {
		r.WritePrometheus(io.Discard)
	})
	if allocs != 0 {
		t.Fatalf("scrape allocates: %v allocs/op", allocs)
	}
}

// TestObserveAllocs pins the hot-path write side to zero allocations.
func TestObserveAllocs(t *testing.T) {
	r := New()
	c := r.Counter("a_total", "A.")
	g := r.Gauge("b", "B.")
	h := r.Histogram("c_seconds", "C.", SecondsBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Add(2)
		g.Dec()
		h.Observe(0.42)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
}

// TestNilSafety exercises every method on nil instruments and a nil
// registry — the detached-telemetry contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "X.")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y", "Y.")
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	r.GaugeFunc("z", "Z.", func() float64 { return 1 })
	h := r.Histogram("w_seconds", "W.", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	cv := r.CounterVec("v_total", "V.", "l")
	cv.With("a").Inc()
	gv := r.GaugeVec("u", "U.", "l")
	gv.With("a").Set(2)
	hv := r.HistogramVec("t_seconds", "T.", []float64{1}, "l")
	hv.With("a").Observe(1)
	if n, err := r.WritePrometheus(io.Discard); n != 0 || err != nil {
		t.Fatalf("nil registry wrote %d bytes, err %v", n, err)
	}
}

// TestRedefinitionPanics pins the identity contract: same name with a
// different kind/help/labels must panic at registration.
func TestRedefinitionPanics(t *testing.T) {
	r := New()
	r.Counter("a_total", "A.")
	mustPanic(t, func() { r.Gauge("a_total", "A.") })
	mustPanic(t, func() { r.Counter("a_total", "Different help.") })
	mustPanic(t, func() { r.CounterVec("a_total", "A.", "l") })
	mustPanic(t, func() { r.Counter("bad name", "B.") })
	mustPanic(t, func() { r.CounterVec("b_total", "B.", "le") })
	mustPanic(t, func() { r.Histogram("h", "H.", []float64{2, 1}) })
	mustPanic(t, func() { r.Histogram("h2", "H.", nil) })
	mustPanic(t, func() { r.CounterVec("c_total", "C.", "l").With("a", "b") })
	// Same identity twice is fine and returns the same instrument.
	if r.Counter("a_total", "A.") == nil {
		t.Fatal("re-registration returned nil")
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
