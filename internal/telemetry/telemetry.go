// Package telemetry is a dependency-free metric registry for the
// serving layers: counters, gauges and fixed-bucket histograms backed
// by atomics, rendered in the Prometheus text exposition format
// (version 0.0.4) for GET /metrics.
//
// Design constraints, in order:
//
//   - Zero-alloc, lock-free hot path. Inc/Add/Observe are single atomic
//     operations on pre-registered instruments; only registration and
//     scraping take locks. The simulation engine's own counters stay
//     plain struct fields (internal/system); this package instruments
//     the *service* around it.
//   - Nil-safe everywhere. Every method on every instrument (and on the
//     Registry itself) no-ops on a nil receiver, so a component can be
//     wired for telemetry unconditionally and run detached at the cost
//     of one nil check — the same discipline as the metrics probe
//     (DESIGN.md §11).
//   - No dependencies beyond the standard library, and no global state:
//     a Registry is an explicit value, so tests and multiple daemons
//     never share counters by accident.
//
// Scrapes reuse an internal buffer, so a steady-state scrape performs
// zero heap allocations (pinned by TestScrapeAllocs).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64. The zero value is
// ready to use; Registry.Counter additionally exposes it on /metrics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an int64 that can go up and down. The zero value is ready
// to use; Registry.Gauge additionally exposes it on /metrics.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed buckets (cumulative
// rendering with the +Inf bucket is done at scrape time). The zero
// value is NOT usable — buckets are fixed at construction
// (NewHistogram or Registry.Histogram).
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	les    []string        // bounds pre-rendered for le="...", so scrapes don't format floats
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomicFloat
}

// NewHistogram returns a detached histogram with the given strictly
// increasing upper bounds (the implicit +Inf bucket is added).
func NewHistogram(bounds []float64) *Histogram {
	checkBuckets(bounds)
	les := make([]string, len(bounds))
	for i, bound := range bounds {
		les[i] = strconv.FormatFloat(bound, 'g', -1, 64)
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		les:    les,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation. Lock-free: one binary search plus
// two atomic adds, no allocation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v (Prometheus buckets are
	// inclusive upper bounds); everything past the last bound lands in
	// the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// atomicFloat accumulates a float64 with compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 {
	return math.Float64frombits(f.bits.Load())
}

// SecondsBuckets are default latency buckets for request/job
// histograms: 500µs to 60s, roughly exponential.
var SecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// --- registry ---

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// child is one labeled instrument within a family. Exactly one of the
// instrument fields is set, matching the family's kind.
type child struct {
	labels string // pre-rendered `name="value",...` pairs (no braces)
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children []*child          // insertion order, for stable rendering
	index    map[string]*child // keyed by rendered label pairs
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; create with New. A nil *Registry is
// safe: every registration method returns a nil (detached, no-op)
// instrument.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	scratch  []byte // reused scrape buffer: steady-state scrapes do not allocate
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns (creating if needed) the family for name, panicking on
// a redefinition with a different kind, help, label set or buckets —
// metric identity is a programming-time contract.
func (r *Registry) family(name, help string, k kind, labelNames []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labelNames {
		mustValidLabelName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || f.help != help || !equalStrings(f.labelNames, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: metric %q redefined inconsistently", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       k,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		index:      make(map[string]*child),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// childFor returns (creating if needed) the family's child for the
// rendered label pairs.
func (f *family) childFor(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	var key string
	if len(labelValues) > 0 {
		b := make([]byte, 0, 64)
		for i, v := range labelValues {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, f.labelNames[i]...)
			b = append(b, '=', '"')
			b = appendEscapedLabelValue(b, v)
			b = append(b, '"')
		}
		key = string(b)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.index[key]; ok {
		return ch
	}
	ch := &child{labels: key}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = NewHistogram(f.buckets)
	}
	f.children = append(f.children, ch)
	f.index[key] = ch
	return ch
}

// Counter registers (or returns the existing) unlabeled counter.
// Returns nil — a detached, no-op counter — on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil).childFor(nil).c
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil).childFor(nil).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (under the registry lock — fn must be fast and must not scrape).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.index[""]; ok {
		panic(fmt.Sprintf("telemetry: gauge func %q registered twice", name))
	}
	ch := &child{f: fn}
	f.children = append(f.children, ch)
	f.index[""] = ch
}

// Histogram registers (or returns the existing) unlabeled histogram
// with the given strictly increasing upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkBuckets(buckets)
	return r.family(name, help, kindHistogram, nil, buckets).childFor(nil).h
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ fam *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.family(name, help, kindCounter, labelNames, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.childFor(labelValues).c
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ fam *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.family(name, help, kindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.childFor(labelValues).g
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ fam *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkBuckets(buckets)
	return &HistogramVec{fam: r.family(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.childFor(labelValues).h
}

// --- rendering ---

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format. The internal buffer is reused
// across scrapes, so a steady-state scrape allocates nothing; the
// registry lock is held until the write completes, which serializes
// concurrent scrapes (the buffer would otherwise be recycled under the
// first scrape's Write). Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) (int, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.scratch[:0]
	for _, f := range r.families {
		b = f.render(b)
	}
	r.scratch = b
	return w.Write(b)
}

func (f *family) render(b []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) == 0 {
		return b
	}
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.kind.String()...)
	b = append(b, '\n')
	for _, ch := range f.children {
		switch f.kind {
		case kindCounter:
			b = appendSeries(b, f.name, "", ch.labels, "")
			b = strconv.AppendUint(b, ch.c.Value(), 10)
			b = append(b, '\n')
		case kindGauge:
			b = appendSeries(b, f.name, "", ch.labels, "")
			b = strconv.AppendInt(b, ch.g.Value(), 10)
			b = append(b, '\n')
		case kindGaugeFunc:
			b = appendSeries(b, f.name, "", ch.labels, "")
			b = appendFloat(b, ch.f())
			b = append(b, '\n')
		case kindHistogram:
			b = ch.renderHistogram(b, f.name)
		}
	}
	return b
}

// renderHistogram emits the cumulative bucket series, the +Inf bucket,
// and the _sum/_count pair.
func (ch *child) renderHistogram(b []byte, name string) []byte {
	h := ch.h
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		b = appendSeries(b, name, "_bucket", ch.labels, h.les[i])
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b = appendSeries(b, name, "_bucket", ch.labels, "+Inf")
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	b = appendSeries(b, name, "_sum", ch.labels, "")
	b = appendFloat(b, h.Sum())
	b = append(b, '\n')
	b = appendSeries(b, name, "_count", ch.labels, "")
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// appendSeries renders `name suffix{labels,le="le"} ` up to and
// including the trailing space before the value. le == "" omits the le
// label (non-bucket series).
func appendSeries(b []byte, name, suffix, labels, le string) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if labels != "" || le != "" {
		b = append(b, '{')
		b = append(b, labels...)
		if le != "" {
			if labels != "" {
				b = append(b, ',')
			}
			b = append(b, `le="`...)
			b = append(b, le...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	return b
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendEscapedLabelValue escapes backslash, double-quote and newline
// per the exposition format.
func appendEscapedLabelValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// appendEscapedHelp escapes backslash and newline (quotes are legal in
// HELP text).
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// --- validation ---

func mustValidName(s string) {
	if !validName(s, true) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", s))
	}
}

func mustValidLabelName(s string) {
	if !validName(s, false) || s == "le" {
		panic(fmt.Sprintf("telemetry: invalid label name %q", s))
	}
}

// validName checks [a-zA-Z_:][a-zA-Z0-9_:]* (colons only in metric
// names, never label names).
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func checkBuckets(bounds []float64) {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && bounds[i-1] >= b {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
