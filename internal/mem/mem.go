// Package mem models the on-chip memory controller: a bank-parallel
// DRAM back end that services demand fills missing the whole cache
// hierarchy and absorbs dirty castouts evicted from the L3 victim
// cache. Memory is the hierarchy's backstop — it never misses and never
// retries; pressure appears as bank queueing delay.
package mem

import (
	"cmpcache/internal/config"
	"cmpcache/internal/sim"
)

// Controller is the memory controller timing model.
type Controller struct {
	banks *sim.MultiServer
	occ   config.Cycles

	reads  uint64
	writes uint64
}

// New builds a controller with cfg.MemBanks parallel banks.
func New(cfg *config.Config) *Controller {
	return &Controller{
		banks: sim.NewMultiServer(cfg.MemBanks),
		occ:   cfg.MemBankOccupancy,
	}
}

// ReserveRead books a demand read beginning at or after now and returns
// the cycle the DRAM access starts. The caller adds the configured
// access latency on top.
func (c *Controller) ReserveRead(now config.Cycles) config.Cycles {
	c.reads++
	return c.banks.Reserve(now, c.occ)
}

// ReserveWrite books a castout write (fire-and-forget for the
// requester; it still consumes bank bandwidth and delays later reads).
func (c *Controller) ReserveWrite(now config.Cycles) config.Cycles {
	c.writes++
	return c.banks.Reserve(now, c.occ)
}

// Reads returns the number of demand reads serviced.
func (c *Controller) Reads() uint64 { return c.reads }

// Writes returns the number of castout writes absorbed.
func (c *Controller) Writes() uint64 { return c.writes }

// BusyCycles returns total DRAM bank busy time.
func (c *Controller) BusyCycles() config.Cycles { return c.banks.BusyCycles() }

// WaitedCycles returns cumulative bank queueing delay.
func (c *Controller) WaitedCycles() config.Cycles { return c.banks.WaitedCycles() }
