package mem

import (
	"testing"

	"cmpcache/internal/config"
)

func newCtl() *Controller {
	cfg := config.Default()
	return New(&cfg)
}

func TestBankParallelism(t *testing.T) {
	c := newCtl()
	cfg := config.Default()
	for i := 0; i < cfg.MemBanks; i++ {
		if start := c.ReserveRead(0); start != 0 {
			t.Fatalf("read %d start = %d, want 0 (idle banks available)", i, start)
		}
	}
	if start := c.ReserveRead(0); start != cfg.MemBankOccupancy {
		t.Fatalf("overflow read start = %d, want %d", start, cfg.MemBankOccupancy)
	}
}

func TestReadWriteCounting(t *testing.T) {
	c := newCtl()
	c.ReserveRead(0)
	c.ReserveWrite(0)
	c.ReserveWrite(0)
	if c.Reads() != 1 || c.Writes() != 2 {
		t.Fatalf("reads/writes = %d/%d, want 1/2", c.Reads(), c.Writes())
	}
}

func TestWritesDelayReads(t *testing.T) {
	cfg := config.Default()
	cfg.MemBanks = 1
	c := New(&cfg)
	c.ReserveWrite(0)
	if start := c.ReserveRead(0); start != cfg.MemBankOccupancy {
		t.Fatalf("read behind write started at %d, want %d", start, cfg.MemBankOccupancy)
	}
	if c.WaitedCycles() != cfg.MemBankOccupancy {
		t.Fatalf("WaitedCycles = %d, want %d", c.WaitedCycles(), cfg.MemBankOccupancy)
	}
}

func TestBusyCycles(t *testing.T) {
	c := newCtl()
	cfg := config.Default()
	c.ReserveRead(0)
	c.ReserveRead(0)
	if c.BusyCycles() != 2*cfg.MemBankOccupancy {
		t.Fatalf("BusyCycles = %d, want %d", c.BusyCycles(), 2*cfg.MemBankOccupancy)
	}
}
