// Package audit is a shadow invariant checker for the simulated cache
// hierarchy. An Auditor attaches to a system through the same
// observation-only hook pattern as the metrics probe: the engine's
// per-event tick drives periodic whole-hierarchy sweeps, and a set of
// semantic hooks (called by internal/system at each protocol commit
// point) keeps incremental ledgers. Attaching an auditor never perturbs
// the event sequence — every read it performs is a non-perturbing peek,
// which a bit-identity test in internal/system pins.
//
// Checked invariants (DESIGN.md §12 gives the paper justification):
//
//   - Single writer: at most one Modified holder per line across the
//     L2s; an Exclusive or Modified holder is the sole valid copy; at
//     most one SharedLast supplier among sharers, and never alongside a
//     dirty holder.
//   - Dirty-line conservation: every line that ever went Modified is
//     accounted for in some L2 array, a live write-back queue entry, an
//     in-flight transfer to the L3, the L3 array (dirty), or memory —
//     no silent loss, ever.
//   - WBHT/L3 squash soundness: a write back squashed by the L3
//     redundancy filter really had its tag valid in the L3 at squash
//     time.
//   - Resource-credit conservation: L3 incoming-queue tokens, MSHRs and
//     write-back queue entries are leak-free; at end-of-run drain every
//     ledger reads zero and the snarf arbitration counters cross-check.
//
// With Config.Differential set, the auditor additionally maintains a
// naive map-based reference coherence model (see RefModel) fed by the
// same hooks, and compares complete end states at drain.
package audit

import (
	"fmt"
	"sort"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/l2"
	"cmpcache/internal/l3"
)

// Config parameterizes an Auditor.
type Config struct {
	// SweepEvery is the number of engine events between full-hierarchy
	// sweeps (single-writer and conservation checks). 0 selects 4096.
	// Per-event hook checks run regardless.
	SweepEvery uint64
	// MaxViolations bounds the retained violation list (deduplicated by
	// kind+key); further findings only bump Truncated. 0 selects 64.
	MaxViolations int
	// Differential enables the reference coherence model and the
	// end-of-run differential state comparison.
	Differential bool
}

// Violation is one invariant failure.
type Violation struct {
	Cycle config.Cycles
	Kind  string // stable machine-readable class, e.g. "dirty-lost"
	Key   uint64 // line key the violation concerns (0 when not line-specific)
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d [%s] key %#x: %s", int64(v.Cycle), v.Kind, v.Key, v.Msg)
}

// View is the read-only window into a system the auditor checks. Every
// function and method reached through it must be observation-only.
type View struct {
	Cfg        *config.Config
	L2s        []*l2.Cache
	L3         *l3.Cache
	WBInFlight func(idx int) bool // is L2 idx's write-back bus slot busy
	Counters   func() Counters
}

// Counters are the system-level snarf counters the drain cross-checks.
type Counters struct {
	SnarfArbitrated uint64 // collector arbitrations that elected a winner
	WBSnarfed       uint64 // snarfs that installed
	SnarfFallbacks  uint64 // elected winners that could not install
}

type violationKey struct {
	kind string
	key  uint64
}

// Auditor is the shadow checker. Create with New, attach with
// System.AttachAuditor, inspect with Violations/Ok/Summary after Run.
type Auditor struct {
	cfg  Config
	view View
	now  config.Cycles

	events uint64

	// Dirty-line conservation ledgers.
	dirty      map[uint64]struct{} // ever-Modified lines needing accounting
	memValid   map[uint64]struct{} // latest dirty data drained to memory
	l3Stale    map[uint64]struct{} // L3 copy predates a newer L2 dirty copy
	inflightL3 map[uint64]int      // write backs sent toward the L3, not yet retired
	dirtyInFl  map[uint64]int      // dirty subset of inflightL3

	// Resource credits.
	tokens int // L3 incoming-queue tokens believed held

	// Snarf accounting cross-check.
	cancelledSnarf uint64 // arbitration wins voided by a cancelled entry

	// Sweep scratch, reused allocation-free across sweeps.
	holders map[uint64]holderMask
	queued  map[uint64]struct{} // live dirty WB queue entries this sweep
	qbuf    []l2.WBEntry

	model *RefModel

	seen       map[violationKey]struct{}
	violations []Violation
	truncated  int

	// Statistics (not violations).
	sweeps             uint64
	supplierlessSweeps uint64 // sweeps observing an S-only sharer set
}

// holderMask packs per-L2 holder bits for one key during a sweep
// (supports up to 64 L2 caches; the paper's chip has 4, and scaled
// big-core configs reach 16-32).
type holderMask struct {
	valid uint64
	dirty uint64 // M or T
	sole  uint64 // E or M
	sl    uint64
}

// New returns an unattached Auditor.
func New(cfg Config) *Auditor {
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = 4096
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 64
	}
	a := &Auditor{
		cfg:        cfg,
		dirty:      make(map[uint64]struct{}),
		memValid:   make(map[uint64]struct{}),
		l3Stale:    make(map[uint64]struct{}),
		inflightL3: make(map[uint64]int),
		dirtyInFl:  make(map[uint64]int),
		holders:    make(map[uint64]holderMask),
		queued:     make(map[uint64]struct{}),
		seen:       make(map[violationKey]struct{}),
	}
	return a
}

// Bind attaches the auditor to a system view. The system calls it from
// AttachAuditor; it must run before the first event.
func (a *Auditor) Bind(v View) {
	a.view = v
	if a.cfg.Differential {
		a.model = NewRefModel(len(v.L2s), a.report)
	}
}

// Tick observes one engine event; the system installs it on the
// engine's tick slot. Full sweeps run every SweepEvery events, between
// events, when every protocol invariant must hold.
func (a *Auditor) Tick(now config.Cycles) {
	a.now = now
	a.events++
	if a.events%a.cfg.SweepEvery == 0 {
		a.sweep()
	}
}

// AdvanceEvents is the batched form of Tick used by the sharded
// coordinator: it moves the audit clock to now and credits n events
// toward the sweep cadence, running every sweep the batch crossed. With
// n == 0 it only restamps the clock — the barrier replay uses that form
// so each replayed hook's violations carry the hook's own event time.
func (a *Auditor) AdvanceEvents(now config.Cycles, n uint64) {
	a.now = now
	if n == 0 {
		return
	}
	sweepsBefore := a.events / a.cfg.SweepEvery
	a.events += n
	for sweeps := a.events/a.cfg.SweepEvery - sweepsBefore; sweeps > 0; sweeps-- {
		a.sweep()
	}
}

// report records one violation, deduplicated by (kind, key).
func (a *Auditor) report(kind string, key uint64, format string, args ...any) {
	vk := violationKey{kind, key}
	if _, dup := a.seen[vk]; dup {
		return
	}
	a.seen[vk] = struct{}{}
	if len(a.violations) >= a.cfg.MaxViolations {
		a.truncated++
		return
	}
	a.violations = append(a.violations, Violation{
		Cycle: a.now, Kind: kind, Key: key, Msg: fmt.Sprintf(format, args...),
	})
}

// --- Semantic hooks (called by internal/system; all observation-only) ---

// OnStoreHit: a store completed locally via a silent E→M upgrade (or hit
// an already-Modified line after claiming Exclusive).
func (a *Auditor) OnStoreHit(idx int, key uint64) {
	a.markDirty(key)
	if a.model != nil {
		a.model.StoreHit(idx, key)
	}
}

// OnUpgrade: an ownership claim combined. restarted reports that the
// requester found its copy invalidated and reissued as RWITM.
func (a *Auditor) OnUpgrade(idx int, key uint64, restarted bool) {
	if !restarted {
		a.markDirty(key)
	}
	if a.model != nil {
		a.model.Upgrade(idx, key, restarted)
	}
}

// OnUpdate: an ownership claim combined in update mode (hybrid
// update/invalidate policy): sharers kept demoted copies and the writer
// installed st (Tagged with surviving sharers, Modified without).
func (a *Auditor) OnUpdate(idx int, key uint64, st coherence.State) {
	a.markDirty(key)
	if a.model != nil {
		a.model.Update(idx, key, st)
	}
}

// OnFill: a demand fill committed with state st.
func (a *Auditor) OnFill(idx int, key uint64, kind coherence.TxnKind, st coherence.State, out coherence.Outcome) {
	if st.Dirty() {
		a.markDirty(key)
	}
	if a.model != nil {
		a.model.Fill(idx, key, kind, st, out)
	}
}

// OnVictim: a valid line left idx's tag array; queued reports a
// write-back queue entry was created for it.
func (a *Auditor) OnVictim(idx int, key uint64, st coherence.State, queued bool) {
	if st.Dirty() && !queued {
		a.report("dirty-dropped", key,
			"L2 %d evicted dirty line in state %v without queueing a write back", idx, st)
	}
	if a.model != nil {
		a.model.Victim(idx, key, st, queued)
	}
}

// OnWBReinstall: a demand access caught entry in idx's write-back queue
// and the line returned to the tag array.
func (a *Auditor) OnWBReinstall(idx int, e l2.WBEntry) {
	if a.model != nil {
		a.model.Reinstall(idx, e)
	}
}

// OnWBCancelled: an in-flight write back combined after its entry was
// cancelled by a demand re-fetch. snarfElected reports the combined
// response had chosen a snarf winner (the arbitration is void).
func (a *Auditor) OnWBCancelled(idx int, key uint64, snarfElected bool) {
	if snarfElected {
		a.cancelledSnarf++
	}
}

// OnWBSquashed: entry's write back was squashed — by the L3 redundancy
// filter when byL3, else by peer squasher holding a valid copy.
func (a *Auditor) OnWBSquashed(idx int, e l2.WBEntry, byL3 bool, squasher int) {
	if byL3 {
		// Squash soundness: the L3 filter may only squash lines whose
		// tag is valid there at squash time (Section 2's baseline
		// filter); anything else silently discards the only copy in
		// flight.
		if !a.view.L3.Contains(e.Key) {
			a.report("squash-unsound", e.Key,
				"L3 squashed %v write back but does not hold the line", e.Kind)
		}
	} else if e.Kind == coherence.DirtyWB && squasher < 0 {
		a.report("squash-unsound", e.Key,
			"dirty write back squashed with no peer to inherit the obligation")
	}
	if a.model != nil {
		a.model.Squashed(idx, e, byL3, squasher)
	}
}

// OnWBSnarfed: winner installed idx's write back entry; displaced (valid
// when dropped) is the Shared line the install victimized.
func (a *Auditor) OnWBSnarfed(idx int, e l2.WBEntry, winner int, displaced uint64, dropped bool) {
	if a.model != nil {
		a.model.Snarfed(idx, e, winner, displaced, dropped)
	}
}

// OnWBToL3: entry left idx's queue toward the L3 array.
func (a *Auditor) OnWBToL3(idx int, e l2.WBEntry) {
	a.inflightL3[e.Key]++
	if e.Kind == coherence.DirtyWB {
		a.dirtyInFl[e.Key]++
	}
	if a.model != nil {
		a.model.ToL3(idx, e.Key)
	}
}

// OnL3Retire: the L3 array write for key retired. castout (valid when
// hadCastout) is the dirty victim displaced toward memory.
func (a *Auditor) OnL3Retire(key uint64, kind coherence.TxnKind, castout uint64, hadCastout bool) {
	if a.inflightL3[key] <= 0 {
		a.report("l3-retire-unmatched", key, "L3 retired a write that was never sent")
	} else {
		a.inflightL3[key]--
		if a.inflightL3[key] == 0 {
			delete(a.inflightL3, key)
		}
	}
	if kind == coherence.DirtyWB {
		if a.dirtyInFl[key] > 0 {
			a.dirtyInFl[key]--
			if a.dirtyInFl[key] == 0 {
				delete(a.dirtyInFl, key)
			}
		}
		// A dirty write back carries the line's latest data: the L3 copy
		// is now current.
		delete(a.l3Stale, key)
	}
	if hadCastout && !a.has(a.l3Stale, castout) {
		// The castout drains the latest dirty data to memory (unless an
		// L2 re-dirtied the line since, in which case that copy is the
		// one conservation must find).
		a.memValid[castout] = struct{}{}
	}
}

// OnTokenAcquired: the L3 granted an incoming-queue token to a snooped
// write back.
func (a *Auditor) OnTokenAcquired() { a.tokens++ }

// OnTokenReleased: one L3 incoming-queue token returned.
func (a *Auditor) OnTokenReleased() {
	a.tokens--
	if a.tokens < 0 {
		a.report("token-underflow", 0, "more L3 queue tokens released than acquired")
		a.tokens = 0
	}
}

// markDirty notes that key's current data lives in an L2 Modified copy:
// memory and any L3 copy are stale from this instant until a dirty
// write back of the line retires.
func (a *Auditor) markDirty(key uint64) {
	a.dirty[key] = struct{}{}
	delete(a.memValid, key)
	a.l3Stale[key] = struct{}{}
}

func (a *Auditor) has(m map[uint64]struct{}, key uint64) bool {
	_, ok := m[key]
	return ok
}

// --- Sweeps ---

// sweep runs the whole-hierarchy checks: single-writer/supplier
// uniqueness over the L2 tag arrays, write-back queue sanity, the L3
// token ledger and dirty-line conservation.
func (a *Auditor) sweep() {
	a.sweeps++
	clear(a.holders)
	clear(a.queued)

	for i, c := range a.view.L2s {
		bit := uint64(1) << uint(i)
		c.ForEachLine(func(key uint64, st coherence.State, _ uint8) {
			h := a.holders[key]
			h.valid |= bit
			if st.Dirty() {
				h.dirty |= bit
			}
			if st == coherence.Exclusive || st == coherence.Modified {
				h.sole |= bit
			}
			if st == coherence.SharedLast {
				h.sl |= bit
			}
			a.holders[key] = h
		})
	}
	for key, h := range a.holders {
		if n := popcount(h.dirty); n > 1 {
			a.report("multi-dirty", key, "%d L2s hold the line dirty (mask %04b)", n, h.dirty)
		}
		if h.sole != 0 && popcount(h.valid) > 1 {
			a.report("sole-shared", key,
				"an E/M holder coexists with other valid copies (valid mask %04b)", h.valid)
		}
		if n := popcount(h.sl); n > 1 {
			a.report("multi-sl", key, "%d SharedLast suppliers (mask %04b)", n, h.sl)
		}
		if h.sl != 0 && h.dirty != 0 {
			a.report("sl-with-dirty", key,
				"a SharedLast supplier coexists with a dirty holder")
		}
		if h.sl == 0 && h.dirty == 0 && h.sole == 0 && popcount(h.valid) > 1 {
			// Legal after a supplier evicted (baseline has no hand-off);
			// tracked as a statistic, not a violation.
			a.supplierlessSweeps++
		}
	}

	for i, c := range a.view.L2s {
		a.qbuf = a.qbuf[:0]
		c.ForEachWB(func(e l2.WBEntry) { a.qbuf = append(a.qbuf, e) })
		inflight := 0
		for j, e := range a.qbuf {
			if e.InFlight && !e.Cancelled {
				inflight++
			}
			if e.Cancelled {
				continue
			}
			if e.Kind == coherence.DirtyWB {
				a.queued[e.Key] = struct{}{}
			}
			for _, f := range a.qbuf[j+1:] {
				if !f.Cancelled && f.Key == e.Key {
					a.report("wbq-duplicate", e.Key,
						"L2 %d write-back queue holds two live entries for one line", i)
				}
			}
		}
		if inflight > 1 {
			a.report("wbq-multi-inflight", 0,
				"L2 %d has %d write backs marked in flight (one bus slot per L2)", i, inflight)
		}
		if inflight > 0 && a.view.WBInFlight != nil && !a.view.WBInFlight(i) {
			a.report("wbq-phantom-inflight", 0,
				"L2 %d has an in-flight entry but no bus transaction", i)
		}
	}

	if got := a.view.L3.QueueInUse(); got != a.tokens {
		a.report("token-ledger", 0,
			"L3 incoming-queue occupancy %d does not match hook ledger %d", got, a.tokens)
	}

	a.checkConservation()
}

// checkConservation verifies every ever-dirty line's latest data is
// locatable somewhere in the hierarchy.
func (a *Auditor) checkConservation() {
	for key := range a.dirty {
		if a.holders[key].dirty != 0 {
			continue
		}
		if a.has(a.queued, key) {
			continue
		}
		if a.dirtyInFl[key] > 0 {
			continue
		}
		if present, dirty := a.view.L3.PeekLine(key); present && dirty && !a.has(a.l3Stale, key) {
			continue
		}
		if a.has(a.memValid, key) {
			continue
		}
		a.report("dirty-lost", key,
			"dirty line is in no L2, no live write-back entry, not in flight, not dirty in L3, not retired to memory")
	}
}

func popcount(b uint64) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// --- Drain ---

// Drain runs the end-of-run checks after the engine has emptied: a full
// sweep, the residual-resource zeros, the snarf arbitration cross-check
// and (when Differential) the complete reference-model comparison.
func (a *Auditor) Drain(now config.Cycles) {
	a.now = now
	a.sweep()

	for i, c := range a.view.L2s {
		if n := c.MSHRCount(); n != 0 {
			a.report("residual-mshr", 0, "L2 %d ends the run with %d live MSHRs", i, n)
		}
		if n := c.WBQueueLen(); n != 0 {
			a.report("residual-wbq", 0, "L2 %d ends the run with %d queued write backs", i, n)
		}
		if a.view.WBInFlight != nil && a.view.WBInFlight(i) {
			a.report("residual-wb-inflight", 0, "L2 %d ends the run with a write back on the bus", i)
		}
	}
	if a.tokens != 0 || a.view.L3.QueueInUse() != 0 {
		a.report("residual-tokens", 0,
			"L3 incoming queue ends the run holding %d tokens (ledger %d)",
			a.view.L3.QueueInUse(), a.tokens)
	}
	for key := range a.inflightL3 {
		a.report("residual-l3-inflight", key, "write back sent to the L3 never retired")
	}

	if a.view.Counters != nil {
		c := a.view.Counters()
		if c.SnarfArbitrated != c.WBSnarfed+c.SnarfFallbacks+a.cancelledSnarf {
			a.report("snarf-count-mismatch", 0,
				"arbitrated %d != snarfed %d + fallbacks %d + cancelled %d",
				c.SnarfArbitrated, c.WBSnarfed, c.SnarfFallbacks, a.cancelledSnarf)
		}
	}

	if a.model != nil {
		a.compareModel()
	}
}

// compareModel diffs the reference model's end state against the real
// tag arrays and write-back queues, both directions.
func (a *Auditor) compareModel() {
	for i, c := range a.view.L2s {
		modelLines := a.model.lines[i]
		seen := make(map[uint64]struct{}, len(modelLines))
		c.ForEachLine(func(key uint64, st coherence.State, _ uint8) {
			seen[key] = struct{}{}
			if want, ok := modelLines[key]; !ok {
				a.report("model-extra-line", key,
					"L2 %d holds the line in %v; the reference model says invalid", i, st)
			} else if want != st {
				a.report("model-state", key,
					"L2 %d holds the line in %v; the reference model says %v", i, st, want)
			}
		})
		for key, want := range modelLines {
			if _, ok := seen[key]; !ok {
				a.report("model-missing-line", key,
					"reference model says L2 %d holds the line in %v; the array says invalid", i, want)
			}
		}

		modelQ := a.model.queues[i]
		seenQ := make(map[uint64]struct{}, len(modelQ))
		c.ForEachWB(func(e l2.WBEntry) {
			if e.Cancelled {
				return
			}
			seenQ[e.Key] = struct{}{}
			if want, ok := modelQ[e.Key]; !ok {
				a.report("model-extra-wb", e.Key,
					"L2 %d queues a write back the reference model does not", i)
			} else if want != e.State {
				a.report("model-wb-state", e.Key,
					"L2 %d queues the entry in %v; the reference model says %v", i, e.State, want)
			}
		})
		for key := range modelQ {
			if _, ok := seenQ[key]; !ok {
				a.report("model-missing-wb", key,
					"reference model queues a write back for L2 %d that the queue lacks", i)
			}
		}
	}
}

// --- Reporting ---

// Violations returns the recorded violations, oldest first.
func (a *Auditor) Violations() []Violation { return a.violations }

// Truncated returns how many distinct violations overflowed
// MaxViolations.
func (a *Auditor) Truncated() int { return a.truncated }

// Ok reports whether the run finished with no invariant violations.
func (a *Auditor) Ok() bool { return len(a.violations) == 0 && a.truncated == 0 }

// Sweeps returns how many full sweeps ran (diagnostics).
func (a *Auditor) Sweeps() uint64 { return a.sweeps }

// Summary renders a human-readable report: one line per violation plus
// a footer, or a clean bill of health.
func (a *Auditor) Summary() string {
	if a.Ok() {
		return fmt.Sprintf("audit: ok (%d sweeps, %d dirty lines tracked, no violations)\n",
			a.sweeps, len(a.dirty))
	}
	vs := make([]Violation, len(a.violations))
	copy(vs, a.violations)
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].Cycle < vs[j].Cycle })
	out := ""
	for _, v := range vs {
		out += v.String() + "\n"
	}
	out += fmt.Sprintf("audit: %d violations", len(vs))
	if a.truncated > 0 {
		out += fmt.Sprintf(" (+%d truncated)", a.truncated)
	}
	return out + "\n"
}
