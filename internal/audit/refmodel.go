package audit

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/l2"
)

// l2WBEntry keeps the hook signatures readable.
type l2WBEntry = l2.WBEntry

// RefModel is a naive map-based reference implementation of the
// POWER4-style coherence protocol over the L2 arrays and write-back
// queues: no timing, no capacity, no slices — just the state-transition
// rules of the paper, applied at each transaction's commit point. The
// auditor feeds it through the same semantic hooks the invariant
// ledgers use and diffs its end state against the real hierarchy. It
// re-derives each fill's install state from its own view of the peer
// caches — arrays and castout buffers, which snoop alike — so a
// sequencing bug in the real system (a lost invalidation, a wrong
// supplier transition, a stale queue entry left live) diverges the two.
//
// Scope: the model does not track the L3 or memory (their keys-only
// state carries no protocol decisions the L2 side cannot check), and it
// has no replacement policy — it learns evictions from the Victim hook
// rather than predicting them.
type RefModel struct {
	lines  []map[uint64]coherence.State
	queues []map[uint64]coherence.State // live write-back entries by key
	report func(kind string, key uint64, format string, args ...any)
}

// NewRefModel returns an empty model of numL2 caches reporting
// divergences through report.
func NewRefModel(numL2 int, report func(string, uint64, string, ...any)) *RefModel {
	m := &RefModel{report: report}
	for i := 0; i < numL2; i++ {
		m.lines = append(m.lines, make(map[uint64]coherence.State))
		m.queues = append(m.queues, make(map[uint64]coherence.State))
	}
	return m
}

// StoreHit: a store completed locally without a bus transaction, which
// the protocol only permits from Exclusive (silent upgrade) or
// Modified.
func (m *RefModel) StoreHit(idx int, key uint64) {
	st := m.lines[idx][key]
	if st != coherence.Exclusive && st != coherence.Modified {
		m.report("model-silent-store", key,
			"L2 %d completed a store locally while the model holds %v", idx, st)
	}
	m.lines[idx][key] = coherence.Modified
}

// Upgrade applies an ownership-claim combine. A stale claim (restarted)
// is a complete no-op for everyone else — the requester reissues as
// RWITM. A committed claim invalidates every peer copy, in the arrays
// and the castout buffers alike; a Modified buffer entry is kept
// defensively (it cannot coexist with a valid claimer).
func (m *RefModel) Upgrade(idx int, key uint64, restarted bool) {
	st, valid := m.lines[idx][key]
	if restarted {
		if valid {
			m.report("model-upgrade", key,
				"L2 %d restarted its upgrade but the model still holds %v", idx, st)
		}
		return
	}
	for p := range m.lines {
		if p == idx {
			continue
		}
		if pst, ok := m.lines[p][key]; ok && pst != coherence.Modified {
			delete(m.lines[p], key)
		}
		if qst, ok := m.queues[p][key]; ok && qst != coherence.Modified {
			delete(m.queues[p], key)
		}
	}
	if !valid {
		m.report("model-upgrade", key,
			"L2 %d committed an upgrade the model says it had no copy for", idx)
	}
	m.lines[idx][key] = coherence.Modified
}

// Update applies an update-mode ownership claim (the hybrid
// update/invalidate policy): peer copies survive as plain Shared —
// suppliers (SL/E) and the dirty owner (T) demote, a Modified copy is
// kept defensively like Upgrade's — while live castout-buffer entries
// are cancelled exactly as an invalidating claim would (their data is
// stale once the writer pushes). The writer's expected state is derived
// from the surviving and cancelled peer copies the real combine counted
// as sharers — Tagged when any existed, Modified when none — and diffed
// against the state the real system installed before following it.
func (m *RefModel) Update(idx int, key uint64, st coherence.State) {
	_, valid := m.lines[idx][key]
	want := coherence.Modified
	for p := range m.lines {
		if p == idx {
			continue
		}
		if pst, ok := m.lines[p][key]; ok && pst != coherence.Modified {
			want = coherence.Tagged
			m.lines[p][key] = coherence.Shared
		}
		if qst, ok := m.queues[p][key]; ok && qst != coherence.Modified {
			want = coherence.Tagged
			delete(m.queues[p], key)
		}
	}
	if !valid {
		m.report("model-update", key,
			"L2 %d committed an update-upgrade the model says it had no copy for", idx)
	}
	if st != want {
		m.report("model-update", key,
			"L2 %d installed %v on an update-upgrade; the model derives %v", idx, st, want)
	}
	m.lines[idx][key] = st
}

// Fill applies a demand fill commit: the expected install state is
// derived from the model's own peer states (Table-free POWER4 rules —
// dirty supplier demotes to Tagged and the reader installs Shared;
// a clean copy elsewhere makes the reader the new SharedLast supplier;
// a sole fill installs Exclusive; RWITM always installs Modified and
// invalidates everyone else). Castout-buffer entries count as copies
// and take the same snoop transitions as array lines.
func (m *RefModel) Fill(idx int, key uint64, kind coherence.TxnKind, st coherence.State, out coherence.Outcome) {
	anyDirty, anyValid := false, false
	for p := range m.lines {
		if p == idx {
			continue
		}
		if pst, ok := m.lines[p][key]; ok {
			anyValid = true
			if pst.Dirty() {
				anyDirty = true
			}
		}
		if qst, ok := m.queues[p][key]; ok {
			anyValid = true
			if qst.Dirty() {
				anyDirty = true
			}
		}
	}
	want := coherence.Exclusive
	switch {
	case kind == coherence.RWITM:
		want = coherence.Modified
	case anyDirty:
		want = coherence.Shared
	case anyValid:
		want = coherence.SharedLast
	}
	if want != st {
		m.report("model-fill-state", key,
			"L2 %d installed %v from %v; the model derives %v", idx, st, out.Source, want)
	}

	for p := range m.lines {
		if p == idx {
			continue
		}
		if pst, ok := m.lines[p][key]; ok {
			switch kind {
			case coherence.Read:
				switch pst {
				case coherence.Modified:
					m.lines[p][key] = coherence.Tagged
				case coherence.Exclusive, coherence.SharedLast:
					m.lines[p][key] = coherence.Shared
				}
			case coherence.RWITM:
				delete(m.lines[p], key)
			}
		}
		if qst, ok := m.queues[p][key]; ok {
			switch kind {
			case coherence.Read:
				switch qst {
				case coherence.Modified:
					m.queues[p][key] = coherence.Tagged
				case coherence.Exclusive, coherence.SharedLast:
					m.queues[p][key] = coherence.Shared
				}
			case coherence.RWITM:
				delete(m.queues[p], key)
			}
		}
	}
	// Follow the real install so one divergence does not cascade.
	m.lines[idx][key] = st
}

// Victim removes an evicted line and, when queued, records its
// write-back entry.
func (m *RefModel) Victim(idx int, key uint64, st coherence.State, queued bool) {
	if mst, ok := m.lines[idx][key]; !ok {
		m.report("model-victim", key, "L2 %d evicted a line the model says it lacks", idx)
	} else if mst != st {
		m.report("model-victim", key,
			"L2 %d evicted the line in %v; the model holds %v", idx, st, mst)
	}
	delete(m.lines[idx], key)
	if queued {
		m.queues[idx][key] = st
	}
}

// Reinstall moves a write-back-buffer line back into the array. The
// entry carries any demotion a snoop applied while it was queued; the
// model cross-checks its own queue state against it.
func (m *RefModel) Reinstall(idx int, e l2WBEntry) {
	if qst, ok := m.queues[idx][e.Key]; !ok {
		m.report("model-wb-state", e.Key,
			"L2 %d reinstalled a write back the model's queue lacks", idx)
	} else if qst != e.State {
		m.report("model-wb-state", e.Key,
			"L2 %d reinstalled the entry in %v; the model queues %v", idx, e.State, qst)
	}
	delete(m.queues[idx], e.Key)
	m.lines[idx][e.Key] = e.State
}

// Squashed retires a squashed write back. A peer squash of a dirty line
// transfers the write-back obligation (squasher's copy goes Tagged);
// a peer squash of the SharedLast supplier's clean write back hands the
// supplier role to the squasher's plain Shared copy.
func (m *RefModel) Squashed(idx int, e l2WBEntry, byL3 bool, squasher int) {
	delete(m.queues[idx], e.Key)
	if byL3 || squasher < 0 {
		return
	}
	st, ok := m.lines[squasher][e.Key]
	switch {
	case e.Kind == coherence.DirtyWB:
		if !ok {
			m.report("model-squash", e.Key,
				"L2 %d squashed a dirty write back without a copy in the model", squasher)
			return
		}
		m.lines[squasher][e.Key] = coherence.Tagged
	case e.State == coherence.SharedLast && ok && st == coherence.Shared:
		m.lines[squasher][e.Key] = coherence.SharedLast
	}
}

// Snarfed installs a snarfed write back in the winner, with whatever
// state the entry carried at arbitration (including snoop demotions).
func (m *RefModel) Snarfed(idx int, e l2WBEntry, winner int, displaced uint64, dropped bool) {
	if qst, ok := m.queues[idx][e.Key]; ok && qst != e.State {
		m.report("model-wb-state", e.Key,
			"L2 %d's snarfed entry carries %v; the model queues %v", idx, e.State, qst)
	}
	delete(m.queues[idx], e.Key)
	if dropped {
		if st, ok := m.lines[winner][displaced]; !ok || st != coherence.Shared {
			m.report("model-snarf-drop", displaced,
				"snarf install in L2 %d displaced a line the model holds as %v", winner, st)
		}
		delete(m.lines[winner], displaced)
	}
	m.lines[winner][e.Key] = e.State
}

// ToL3 retires a write back accepted by the L3.
func (m *RefModel) ToL3(idx int, key uint64) {
	delete(m.queues[idx], key)
}
