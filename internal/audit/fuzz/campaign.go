// Package fuzz generates seeded randomized audit campaigns: each seed
// deterministically derives a synthetic workload profile and a
// configuration corner (mechanism, snarf policy, WBHT variant,
// retry-switch threshold, queue depths, outstanding-miss limit), runs
// the simulator with the invariant auditor and reference coherence
// model attached, and reports any violations. The soak test and the
// native go-fuzz target in this package both build on RunSeed.
package fuzz

import (
	"fmt"
	"math/rand"

	"cmpcache/internal/audit"
	"cmpcache/internal/config"
	"cmpcache/internal/system"
	"cmpcache/internal/workload"
)

// RandomProfile derives a small randomized workload from r: a handful
// of regions mixing sharing scopes (the source of upgrade races, peer
// squashes and snarfs) and access patterns, sized to finish in well
// under a second while still churning every write-back path.
func RandomProfile(r *rand.Rand) workload.Profile {
	nRegions := 2 + r.Intn(3)
	regions := make([]workload.Region, 0, nRegions)
	var weight float64
	for i := 0; i < nRegions; i++ {
		reg := workload.Region{
			Name:      fmt.Sprintf("r%d", i),
			Lines:     64 << r.Intn(6), // 64..2048 lines
			Weight:    0.1 + r.Float64(),
			Pattern:   workload.Pattern(r.Intn(3)),
			Sharing:   workload.Sharing(r.Intn(3)),
			StoreFrac: 0.6 * r.Float64(),
		}
		if reg.Pattern == workload.Zipf {
			reg.ZipfTheta = 0.4 + 0.5*r.Float64()
		}
		weight += reg.Weight
		regions = append(regions, reg)
	}
	// Normalize weights so Validate's unit-sum check passes.
	for i := range regions {
		regions[i].Weight /= weight
	}
	return workload.Profile{
		Name:          "fuzz",
		Threads:       16,
		RefsPerThread: 1500 + r.Intn(2500),
		MeanGap:       1 + 8*r.Float64(),
		BurstLen:      r.Intn(12), // 0 disables bursting
		Regions:       regions,
		Seed:          r.Uint64() | 1,
	}
}

// RandomConfig derives a configuration corner from r. Cache geometry
// shrinks (16–32 KB L2 slices, 1 MB L3 slices) so short runs actually
// evict, write back, castout and retry; the policy knobs sweep the
// corners the issue calls out: snarf on/off and its insertion policy,
// the WBHT global-allocation variant, retry-switch thresholds and 1–6
// outstanding misses.
func RandomConfig(r *rand.Rand) config.Config {
	cfg := config.Default().WithMechanism(config.Mechanism(r.Intn(4)))
	cfg.L2SliceKB = 16 << r.Intn(2) // 16 or 32 KB per slice
	cfg.L3SliceMB = 1
	cfg.MaxOutstanding = 1 + r.Intn(6)
	cfg.L3QueueEntries = []int{1, 2, 4, 16}[r.Intn(4)]
	cfg.WBQueueEntries = []int{2, 8}[r.Intn(2)]
	cfg.Snarf.VictimizeShared = r.Intn(2) == 0
	cfg.Snarf.InsertMRU = r.Intn(2) == 0
	cfg.WBHT.GlobalAllocate = r.Intn(2) == 0
	cfg.WBHT.SwitchEnabled = r.Intn(4) != 0 // mostly on, as in the paper
	cfg.WBHT.RetryThreshold = []uint64{1, 5, 50}[r.Intn(3)]
	cfg.WBHT.HistoryReplacement = r.Intn(4) == 0
	return cfg
}

// RunSeed builds the seed's workload and configuration, runs it under
// the auditor (with the differential reference model) and returns the
// auditor for inspection. The run is fully deterministic in seed.
func RunSeed(seed int64) (*audit.Auditor, *system.Results, error) {
	return RunSeedWorkers(seed, 1)
}

// RunSeedWorkers is RunSeed at an explicit intra-run worker count
// (system.SetWorkers conventions). Results and audit verdicts are
// bit-identical at every count; the sharded-soak CI job runs the
// campaign at several workers under the race detector to stress the
// coordinator's phase discipline.
func RunSeedWorkers(seed int64, workers int) (*audit.Auditor, *system.Results, error) {
	r := rand.New(rand.NewSource(seed))
	cfg := RandomConfig(r)
	profile := RandomProfile(r)
	tr, err := profile.Generate()
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	a := audit.New(audit.Config{Differential: true, SweepEvery: 2048})
	s, err := system.New(cfg, tr)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	s.AttachAuditor(a)
	if workers != 1 {
		s.SetWorkers(workers)
	}
	res := s.Run()
	return a, res, nil
}
