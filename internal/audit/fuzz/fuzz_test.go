package fuzz

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// TestAuditSoak runs a fixed-seed randomized campaign: every seed must
// complete with zero invariant violations and zero reference-model
// divergences. The CI audit-soak job runs this with -race; -short
// trims the seed list for the ordinary test run.
func TestAuditSoak(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		a, res, err := RunSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !a.Ok() {
			t.Errorf("seed %d: %s", seed, a.Summary())
		}
		if res.RefsCompleted != res.RefsIssued {
			t.Errorf("seed %d: %d of %d references completed", seed, res.RefsCompleted, res.RefsIssued)
		}
		if res.ResidualMSHRs != 0 || res.ResidualWBQueued != 0 ||
			res.ResidualWBInFlight != 0 || res.ResidualL3QueueTokens != 0 {
			t.Errorf("seed %d: residuals mshr=%d wbq=%d inflight=%d tokens=%d",
				seed, res.ResidualMSHRs, res.ResidualWBQueued,
				res.ResidualWBInFlight, res.ResidualL3QueueTokens)
		}
	}
}

// FuzzAudit is the native fuzz target: `go test -fuzz FuzzAudit
// ./internal/audit/fuzz` explores the seed space indefinitely; the
// checked-in corpus below keeps a spread of configuration corners in
// every ordinary `go test` run.
func FuzzAudit(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if seed <= 0 {
			t.Skip("profile derivation wants a positive seed")
		}
		a, _, err := RunSeed(seed)
		if err != nil {
			t.Skip(err) // unsatisfiable derived profile, not a sim bug
		}
		if !a.Ok() {
			t.Fatalf("seed %d: %s", seed, a.Summary())
		}
	})
}

// TestAuditSoakSharded re-runs a slice of the campaign at several
// intra-run worker counts and demands bit-identical outcomes: same
// marshalled Results, same audit verdict, zero violations. The CI
// sharded-soak job runs this race-built with GOMAXPROCS raised, so the
// coordinator's phase discipline is exercised under the race detector
// across the randomized configuration corners (tiny queues, every
// mechanism, 1-6 outstanding).
func TestAuditSoakSharded(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		a1, res1, err := RunSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := json.Marshal(res1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range []int{2, 4} {
			aw, resw, err := RunSeedWorkers(seed, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !aw.Ok() {
				t.Errorf("seed %d workers %d: %s", seed, workers, aw.Summary())
			}
			got, err := json.Marshal(resw)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("seed %d workers %d: results diverged from serial", seed, workers)
			}
			if aw.Summary() != a1.Summary() {
				t.Errorf("seed %d workers %d: audit summary diverged:\nserial: %s\nsharded: %s",
					seed, workers, a1.Summary(), aw.Summary())
			}
		}
	}
}
