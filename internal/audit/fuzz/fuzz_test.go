package fuzz

import (
	"testing"
)

// TestAuditSoak runs a fixed-seed randomized campaign: every seed must
// complete with zero invariant violations and zero reference-model
// divergences. The CI audit-soak job runs this with -race; -short
// trims the seed list for the ordinary test run.
func TestAuditSoak(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		a, res, err := RunSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !a.Ok() {
			t.Errorf("seed %d: %s", seed, a.Summary())
		}
		if res.RefsCompleted != res.RefsIssued {
			t.Errorf("seed %d: %d of %d references completed", seed, res.RefsCompleted, res.RefsIssued)
		}
		if res.ResidualMSHRs != 0 || res.ResidualWBQueued != 0 ||
			res.ResidualWBInFlight != 0 || res.ResidualL3QueueTokens != 0 {
			t.Errorf("seed %d: residuals mshr=%d wbq=%d inflight=%d tokens=%d",
				seed, res.ResidualMSHRs, res.ResidualWBQueued,
				res.ResidualWBInFlight, res.ResidualL3QueueTokens)
		}
	}
}

// FuzzAudit is the native fuzz target: `go test -fuzz FuzzAudit
// ./internal/audit/fuzz` explores the seed space indefinitely; the
// checked-in corpus below keeps a spread of configuration corners in
// every ordinary `go test` run.
func FuzzAudit(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if seed <= 0 {
			t.Skip("profile derivation wants a positive seed")
		}
		a, _, err := RunSeed(seed)
		if err != nil {
			t.Skip(err) // unsatisfiable derived profile, not a sim bug
		}
		if !a.Ok() {
			t.Fatalf("seed %d: %s", seed, a.Summary())
		}
	})
}
