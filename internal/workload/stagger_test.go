package workload

import (
	"testing"
)

func genAddrsByThread(p Profile) map[int][]uint64 {
	tr := p.MustGenerate()
	out := map[int][]uint64{}
	for _, r := range tr.Records {
		out[int(r.Thread)] = append(out[int(r.Thread)], r.Addr/128)
	}
	return out
}

func loopOnly(lines int, stagger Stagger, skew int) Profile {
	return Profile{
		Name: "stagger", Threads: 16, RefsPerThread: 64, Seed: 9,
		Regions: []Region{
			{Name: "l", Lines: lines, Weight: 1, Pattern: Loop, Sharing: Global,
				Stagger: stagger, SkewLines: skew},
		},
	}
}

// TestClassStaggerOverlapsAcrossL2s: with class stagger, corresponding
// threads of different L2 groups start within the configured skew of
// each other, so their reference streams overlap heavily.
func TestClassStaggerOverlapsAcrossL2s(t *testing.T) {
	byThread := genAddrsByThread(loopOnly(4096, StaggerClass, 0))
	// Thread 0 (L2 0, class 0) and thread 4 (L2 1, class 0) must start 13
	// lines apart.
	d := int64(byThread[4][0]) - int64(byThread[0][0])
	if d != 13 {
		t.Fatalf("class-0 cross-L2 offset = %d lines, want 13", d)
	}
	// Classes are a quarter loop apart within one L2.
	q := int64(byThread[1][0]) - int64(byThread[0][0])
	if q != 4096/4 {
		t.Fatalf("class spacing = %d, want %d", q, 4096/4)
	}
}

// TestRotateStaggerDisjointWindows: with rotate stagger, the L2 groups
// own disjoint quarters while threads within a group stay tightly
// bunched.
func TestRotateStaggerDisjointWindows(t *testing.T) {
	byThread := genAddrsByThread(loopOnly(4096, StaggerRotate, 0))
	// Group offsets are a quarter apart.
	d := int64(byThread[4][0]) - int64(byThread[0][0])
	if d != 4096/4 {
		t.Fatalf("group offset = %d, want %d", d, 4096/4)
	}
	// Threads within a group trail by 17 lines.
	w := int64(byThread[1][0]) - int64(byThread[0][0])
	if w != 17 {
		t.Fatalf("within-group stagger = %d, want 17", w)
	}
}

func TestSkewLinesHonored(t *testing.T) {
	byThread := genAddrsByThread(loopOnly(4096, StaggerClass, 512))
	d := int64(byThread[4][0]) - int64(byThread[0][0])
	if d != 512 {
		t.Fatalf("cross-L2 skew = %d, want 512", d)
	}
}

// TestScatterDecorrelatesSets: instance bases of different regions and
// instances must not collapse onto the same cache set index modulo the
// L2/L3 set period.
func TestScatterDecorrelatesSets(t *testing.T) {
	p := Profile{
		Name: "scatter", Threads: 16, RefsPerThread: 1, Seed: 1,
		Regions: []Region{
			{Name: "a", Lines: 8, Weight: 0.5, Pattern: Loop, Sharing: Private},
			{Name: "b", Lines: 8, Weight: 0.5, Pattern: Loop, Sharing: Private},
		},
	}
	// Collect instance base addresses by generating lots of references.
	p.RefsPerThread = 64
	tr := p.MustGenerate()
	// Set-period of the L3: 4 slices x 2048 sets = 8192 lines.
	const period = 8192
	seen := map[uint64]int{}
	for _, r := range tr.Records {
		seen[(r.Addr/128)%period]++
	}
	// 16 threads x 2 regions x 8 lines = 256 distinct lines; with good
	// scatter, the distinct set-period residues should be close to 256.
	if len(seen) < 128 {
		t.Fatalf("set-period residues = %d, want >= 128 (instances alias)", len(seen))
	}
}

// TestBuiltinPassCounts guards the tuning invariant that recycling
// loops complete at least ~2 passes at the default trace length, so
// steady-state statistics dominate the cold-start transient.
func TestBuiltinPassCounts(t *testing.T) {
	for _, p := range All() {
		for _, r := range p.Regions {
			if r.Pattern != Loop || r.Sharing == Global {
				continue
			}
			passes := r.Weight * float64(p.RefsPerThread) / float64(r.Lines)
			if passes < 1.5 {
				t.Errorf("%s/%s: %.1f passes at default length; recycling loops need >= ~2",
					p.Name, r.Name, passes)
			}
		}
	}
}
