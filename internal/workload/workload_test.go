package workload

import (
	"testing"
	"testing/quick"
)

func small() Profile {
	return Profile{
		Name:          "unit",
		Threads:       4,
		RefsPerThread: 1000,
		MeanGap:       3,
		Seed:          1,
		Regions: []Region{
			{Name: "hot", Lines: 64, Weight: 0.5, Pattern: Zipf, ZipfTheta: 0.8, Sharing: Global, StoreFrac: 0.3},
			{Name: "sweep", Lines: 256, Weight: 0.4, Pattern: Loop, Sharing: Private, StoreFrac: 0.1},
			{Name: "code", Lines: 32, Weight: 0.1, Pattern: Zipf, ZipfTheta: 0.5, Sharing: Global, Ifetch: true},
		},
	}
}

func TestGenerateShape(t *testing.T) {
	p := small()
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 4000 {
		t.Fatalf("records = %d, want 4000", len(tr.Records))
	}
	s := tr.Summarize(128)
	for tid, n := range s.PerThread {
		if n != 1000 {
			t.Fatalf("thread %d has %d records, want 1000", tid, n)
		}
	}
	if s.Ifetches == 0 || s.Stores == 0 || s.Loads == 0 {
		t.Fatalf("op mix degenerate: %+v", s)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := small()
	a := p.MustGenerate()
	b := p.MustGenerate()
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	p := small()
	a := p.MustGenerate()
	p.Seed = 2
	b := p.MustGenerate()
	same := true
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	p := Profile{
		Name: "priv", Threads: 4, RefsPerThread: 500, Seed: 3,
		Regions: []Region{
			{Name: "p", Lines: 128, Weight: 1, Pattern: Loop, Sharing: Private},
		},
	}
	tr := p.MustGenerate()
	seen := map[uint64]uint16{}
	for _, r := range tr.Records {
		if owner, ok := seen[r.Addr]; ok && owner != r.Thread {
			t.Fatalf("address %#x used by threads %d and %d in a private region",
				r.Addr, owner, r.Thread)
		}
		seen[r.Addr] = r.Thread
	}
}

func TestPerL2RegionsSharedWithinGroup(t *testing.T) {
	p := Profile{
		Name: "grp", Threads: 8, RefsPerThread: 2000, Seed: 4,
		Regions: []Region{
			{Name: "g", Lines: 64, Weight: 1, Pattern: Loop, Sharing: PerL2},
		},
	}
	tr := p.MustGenerate()
	byGroup := map[int]map[uint64]bool{}
	for _, r := range tr.Records {
		g := int(r.Thread) / 4
		if byGroup[g] == nil {
			byGroup[g] = map[uint64]bool{}
		}
		byGroup[g][r.Addr] = true
	}
	if len(byGroup) != 2 {
		t.Fatalf("groups = %d, want 2", len(byGroup))
	}
	// Groups must not overlap; threads within a group must overlap fully
	// (same 64-line loop).
	for a := range byGroup[0] {
		if byGroup[1][a] {
			t.Fatalf("address %#x shared across L2 groups", a)
		}
	}
	if len(byGroup[0]) != 64 || len(byGroup[1]) != 64 {
		t.Fatalf("group footprints = %d/%d, want 64/64", len(byGroup[0]), len(byGroup[1]))
	}
}

func TestGlobalRegionShared(t *testing.T) {
	p := Profile{
		Name: "glob", Threads: 8, RefsPerThread: 2000, Seed: 5,
		Regions: []Region{
			{Name: "g", Lines: 32, Weight: 1, Pattern: Loop, Sharing: Global},
		},
	}
	tr := p.MustGenerate()
	addrs := map[uint64]bool{}
	for _, r := range tr.Records {
		addrs[r.Addr] = true
	}
	if len(addrs) != 32 {
		t.Fatalf("global footprint = %d lines, want 32", len(addrs))
	}
}

func TestLoopCyclesThroughRegion(t *testing.T) {
	p := Profile{
		Name: "loop", Threads: 1, RefsPerThread: 100, Seed: 6,
		Regions: []Region{
			{Name: "l", Lines: 10, Weight: 1, Pattern: Loop, Sharing: Private},
		},
	}
	tr := p.MustGenerate()
	// Consecutive addresses advance by one line, wrapping at 10.
	for i := 1; i < len(tr.Records); i++ {
		d := int64(tr.Records[i].Addr) - int64(tr.Records[i-1].Addr)
		if d != 128 && d != -9*128 {
			t.Fatalf("loop stride broken at %d: delta %d", i, d)
		}
	}
}

func TestZipfSkewsTowardHotLines(t *testing.T) {
	p := Profile{
		Name: "z", Threads: 1, RefsPerThread: 20000, Seed: 7,
		Regions: []Region{
			{Name: "z", Lines: 1024, Weight: 1, Pattern: Zipf, ZipfTheta: 0.9, Sharing: Private},
		},
	}
	tr := p.MustGenerate()
	counts := map[uint64]int{}
	for _, r := range tr.Records {
		counts[r.Addr]++
	}
	if len(counts) < 200 {
		t.Fatalf("distinct lines = %d, want broad coverage", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(tr.Records)) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Fatalf("hottest line %d refs vs mean %.1f: not skewed", max, mean)
	}
}

func TestBurstGaps(t *testing.T) {
	p := small()
	p.BurstLen = 8
	p.MeanGap = 10
	tr := p.MustGenerate()
	zero, nonzero := 0, 0
	for _, r := range tr.Records {
		if r.Gap == 0 {
			zero++
		} else {
			nonzero++
		}
	}
	if zero < nonzero {
		t.Fatalf("bursty trace has %d zero gaps vs %d idle gaps; bursts missing", zero, nonzero)
	}
}

func TestMeanGapRoughlyPreserved(t *testing.T) {
	p := small()
	p.BurstLen = 8
	p.MeanGap = 10
	p.RefsPerThread = 50000
	s := p.MustGenerate().Summarize(128)
	if s.MeanGap < 5 || s.MeanGap > 20 {
		t.Fatalf("mean gap = %.1f, want within 2x of 10", s.MeanGap)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Threads = 0 },
		func(p *Profile) { p.RefsPerThread = 0 },
		func(p *Profile) { p.Regions = nil },
		func(p *Profile) { p.Regions[0].Lines = 0 },
		func(p *Profile) { p.Regions[0].Weight = -1 },
		func(p *Profile) { p.Regions[0].StoreFrac = 1.5 },
		func(p *Profile) {
			for i := range p.Regions {
				p.Regions[i].Weight = 0
			}
		},
	}
	for i, mutate := range cases {
		p := small()
		mutate(&p)
		if _, err := p.Generate(); err == nil {
			t.Fatalf("case %d: invalid profile accepted", i)
		}
	}
}

func TestBuiltinsValid(t *testing.T) {
	if len(Names()) != 4 {
		t.Fatalf("builtin count = %d, want 4", len(Names()))
	}
	for _, p := range All() {
		p := p
		p.RefsPerThread = 200 // keep the test fast
		tr, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if tr.Threads != 16 {
			t.Fatalf("%s: threads = %d, want 16", p.Name, tr.Threads)
		}
	}
}

func TestByName(t *testing.T) {
	for _, spelling := range []string{"TP", "tp", "Trade2", "NotesBench", "CPW2"} {
		if _, err := ByName(spelling); err != nil {
			t.Fatalf("ByName(%q): %v", spelling, err)
		}
	}
	if _, err := ByName("specweb"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPaperNames(t *testing.T) {
	if PaperName("tp") != "TP" || PaperName("trade2") != "Trade2" ||
		PaperName("cpw2") != "CPW2" || PaperName("notesbench") != "NotesBench" {
		t.Fatal("paper display names wrong")
	}
	if PaperName("other") != "other" {
		t.Fatal("unknown names should pass through")
	}
}

func TestPatternSharingStrings(t *testing.T) {
	if Zipf.String() != "zipf" || Loop.String() != "loop" || Stride.String() != "stride" {
		t.Fatal("pattern names")
	}
	if Private.String() != "private" || PerL2.String() != "per-l2" || Global.String() != "global" {
		t.Fatal("sharing names")
	}
}

// Property: any structurally valid profile generates a trace that
// validates and has the requested record count.
func TestGenerateAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, threadsRaw, linesRaw uint8, theta uint8) bool {
		p := Profile{
			Name:          "prop",
			Threads:       int(threadsRaw%16) + 1,
			RefsPerThread: 200,
			MeanGap:       float64(theta % 10),
			Seed:          seed,
			Regions: []Region{
				{Name: "a", Lines: int(linesRaw%200) + 1, Weight: 0.6,
					Pattern: Pattern(int(seed) % 3), Sharing: Sharing(int(seed>>2) % 3),
					ZipfTheta: float64(theta%20) / 10, StoreFrac: 0.4},
				{Name: "b", Lines: 64, Weight: 0.4, Pattern: Loop, Sharing: Global},
			},
		}
		tr, err := p.Generate()
		if err != nil {
			return false
		}
		return tr.Validate() == nil && len(tr.Records) == p.Threads*200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
