package workload

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultRefsPerThread sizes the built-in profiles so a full baseline
// run simulates several million cycles — long enough for the cache
// hierarchy and the adaptive tables to reach steady state, short enough
// that a full figure sweep runs in seconds.
const DefaultRefsPerThread = 60000

// The built-in profiles model the paper's four commercial workloads
// (Section 4.2). Region sizes are chosen against the Table 3 geometry —
// one L2 holds 16K lines (2 MB), the L3 128K lines (16 MB) — so each
// application reproduces its published cache behavior:
//
//   - TP: online transaction processing tuned to very high load. A large
//     partitioned loop (4 x 96K lines, ~3x the whole L3) gives the low
//     L3 hit rate of Table 4 (32%), and dense, bursty issue floods the
//     L3 incoming queue with write backs — the retry storm that makes
//     TP the biggest snarfing winner (Table 5: 99% retry reduction).
//   - CPW2: moderate OLTP. Its partitioned loop totals roughly the L3
//     capacity, landing the ~50% L3 hit rate and ~60% redundant clean
//     write backs of Tables 4 and 1.
//   - NotesBench: mail serving at low CPU demand. Large compute gaps
//     keep memory pressure minimal (the WBHT's retry switch stays off,
//     Figure 2's flat line), while a compact working set yields the 70%
//     L3 hit rate and the highest write-back reuse (Table 2).
//   - Trade2: J2EE web brokerage. Strong cyclic reuse of an L3-resident
//     working set: lines cycle L2 -> L3 -> L2 over and over, giving the
//     highest redundant-clean-write-back rate (79%, Table 1), the
//     highest L3 hit rate (79%), per-line re-reference counts far above
//     the other workloads (the Figure 4 discussion), and with them the
//     largest WBHT benefit.
var builtin = map[string]Profile{
	"tp": {
		Name:          "tp",
		Threads:       16,
		RefsPerThread: DefaultRefsPerThread,
		MeanGap:       1,
		BurstLen:      24,
		Seed:          0x7501,
		Regions: []Region{
			{Name: "tables", Lines: 131072, Weight: 0.20, Pattern: Loop, Sharing: Global, StoreFrac: 0.35},
			{Name: "scratch", Lines: 6144, Weight: 0.21, Pattern: Loop, Sharing: Private, StoreFrac: 0.30},
			{Name: "index", Lines: 4096, Weight: 0.19, Pattern: Loop, Sharing: Global, StoreFrac: 0.30},
			{Name: "meta", Lines: 2048, Weight: 0.24, Pattern: Zipf, ZipfTheta: 0.75, Sharing: Private, StoreFrac: 0.30},
			{Name: "code", Lines: 1024, Weight: 0.18, Pattern: Zipf, ZipfTheta: 0.65, Sharing: Global, Ifetch: true},
		},
	},
	"cpw2": {
		Name:          "cpw2",
		Threads:       16,
		RefsPerThread: DefaultRefsPerThread,
		MeanGap:       4,
		BurstLen:      8,
		Seed:          0xC9B2,
		Regions: []Region{
			{Name: "tables", Lines: 12288, Weight: 0.30, Pattern: Loop, Sharing: Global, StoreFrac: 0.25},
			{Name: "work", Lines: 4096, Weight: 0.18, Pattern: Loop, Sharing: Private, StoreFrac: 0.25},
			{Name: "hot", Lines: 8192, Weight: 0.20, Pattern: Zipf, ZipfTheta: 0.65, Sharing: PerL2, StoreFrac: 0.30},
			{Name: "batch", Lines: 4096, Weight: 0.10, Pattern: Stride, Sharing: Private, StoreFrac: 0.10},
			{Name: "code", Lines: 2048, Weight: 0.22, Pattern: Zipf, ZipfTheta: 0.65, Sharing: Global, Ifetch: true},
		},
	},
	"notesbench": {
		Name:          "notesbench",
		Threads:       16,
		RefsPerThread: DefaultRefsPerThread,
		MeanGap:       60,
		BurstLen:      2,
		Seed:          0x0B0B,
		Regions: []Region{
			{Name: "mailboxes", Lines: 16384, Weight: 0.35, Pattern: Loop, Sharing: Global, StoreFrac: 0.20, Stagger: StaggerRotate},
			{Name: "folders", Lines: 4096, Weight: 0.28, Pattern: Loop, Sharing: Private, StoreFrac: 0.25},
			{Name: "hot", Lines: 4096, Weight: 0.17, Pattern: Zipf, ZipfTheta: 0.75, Sharing: PerL2, StoreFrac: 0.30},
			{Name: "spool", Lines: 2048, Weight: 0.06, Pattern: Stride, Sharing: Private, StoreFrac: 0.20},
			{Name: "code", Lines: 2048, Weight: 0.14, Pattern: Zipf, ZipfTheta: 0.65, Sharing: Global, Ifetch: true},
		},
	},
	"trade2": {
		Name:          "trade2",
		Threads:       16,
		RefsPerThread: DefaultRefsPerThread,
		MeanGap:       1,
		BurstLen:      12,
		Seed:          0x72D2,
		Regions: []Region{
			{Name: "session", Lines: 8192, Weight: 0.26, Pattern: Loop, Sharing: Global, StoreFrac: 0.08, Stagger: StaggerRotate},
			{Name: "ledger", Lines: 4096, Weight: 0.16, Pattern: Loop, Sharing: Global, StoreFrac: 0.08},
			{Name: "objects", Lines: 4096, Weight: 0.20, Pattern: Loop, Sharing: Private, StoreFrac: 0.10},
			{Name: "orders", Lines: 1024, Weight: 0.12, Pattern: Loop, Sharing: Private, StoreFrac: 0.12},
			{Name: "hot", Lines: 4096, Weight: 0.10, Pattern: Zipf, ZipfTheta: 0.80, Sharing: Global, StoreFrac: 0.20},
			{Name: "code", Lines: 2048, Weight: 0.16, Pattern: Zipf, ZipfTheta: 0.65, Sharing: Global, Ifetch: true},
		},
	},
}

// Names returns the built-in workload names in stable order.
func Names() []string {
	var names []string
	for n := range builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns a copy of the named built-in profile. Matching is
// case-insensitive and accepts the paper's spellings ("TP", "CPW2",
// "NotesBench", "Trade2").
func ByName(name string) (Profile, error) {
	p, ok := builtin[strings.ToLower(name)]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// All returns copies of every built-in profile in stable order.
func All() []Profile {
	var out []Profile
	for _, n := range Names() {
		out = append(out, builtin[n])
	}
	return out
}

// PaperName returns the paper's display name for a built-in profile.
func PaperName(name string) string {
	switch strings.ToLower(name) {
	case "tp":
		return "TP"
	case "cpw2":
		return "CPW2"
	case "notesbench":
		return "NotesBench"
	case "trade2":
		return "Trade2"
	default:
		return name
	}
}
