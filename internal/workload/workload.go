// Package workload synthesizes the L2-traffic traces that stand in for
// the paper's proprietary commercial workload captures (TP, CPW2,
// NotesBench, Trade2 — Section 4.2). Real IBM traces are unavailable,
// so each profile is a mixture of region generators whose knobs
// (footprint vs. the 2MB L2 and 16MB L3, reuse pattern, sharing degree,
// store fraction, issue density) are tuned until the simulated baseline
// reproduces the per-application statistics the paper itself reports:
// Table 1's redundant-clean-write-back percentages, Table 2's
// write-back reuse rates, Table 4's L3 load hit rates and retry
// pressure, and the qualitative behaviors behind Figures 2-7.
//
// Generation is deterministic: a profile plus a seed always yields the
// identical trace, so mechanism comparisons run on byte-identical
// reference streams.
package workload

import (
	"fmt"

	"cmpcache/internal/sim"
	"cmpcache/internal/trace"
)

// Pattern selects how a region's lines are visited.
type Pattern int8

const (
	// Zipf: skewed random reuse over the region (hot working set).
	Zipf Pattern = iota
	// Loop: cyclic sequential sweep (a working set revisited in order —
	// the classic generator of repeated evict-then-miss behavior when
	// the region exceeds the L2).
	Loop
	// Stride: sequential sweep with no wraparound within a pass but a
	// fresh restart offset each pass; approximates scan traffic with
	// weak reuse.
	Stride
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Zipf:
		return "zipf"
	case Loop:
		return "loop"
	case Stride:
		return "stride"
	default:
		return fmt.Sprintf("Pattern(%d)", int8(p))
	}
}

// Sharing selects which threads see the same instance of a region.
type Sharing int8

const (
	// Private: each thread owns a disjoint copy.
	Private Sharing = iota
	// PerL2: the four threads feeding one L2 share a copy (data
	// partitioned by core pair, as in partitioned commercial databases).
	PerL2
	// Global: all sixteen threads share one copy.
	Global
)

// String names the sharing mode.
func (s Sharing) String() string {
	switch s {
	case Private:
		return "private"
	case PerL2:
		return "per-l2"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Sharing(%d)", int8(s))
	}
}

// Region is one component of a workload's reference mixture.
type Region struct {
	Name      string
	Lines     int     // footprint in 128-byte lines (per instance)
	Weight    float64 // fraction of references drawn from this region
	Pattern   Pattern
	Sharing   Sharing
	ZipfTheta float64 // skew for Zipf regions
	StoreFrac float64 // fraction of the region's references that store
	Ifetch    bool    // region models the code stream

	// SkewLines offsets the loop cursors of corresponding threads in
	// different L2 groups (Global loops with StaggerClass only; 0 means
	// a tight 13-line trail). Small skews keep a line resident in
	// several L2s at once, maximizing peer interventions and write-back
	// squashes.
	SkewLines int

	// Stagger selects how a Global loop's cursors distribute across the
	// chip; see the Stagger constants.
	Stagger Stagger
}

// Stagger is the cross-L2 cursor arrangement of a globally shared loop.
type Stagger int8

const (
	// StaggerClass (default): every L2 walks the same evenly spaced
	// windows concurrently. Lines live in several L2s at once — the
	// regime of peer interventions, write-back squashes and snarfing.
	StaggerClass Stagger = iota
	// StaggerRotate: each L2 group owns a disjoint, rotating window.
	// Lines migrate L2 -> L3 -> next L2, so cross-L2 refetches hit the
	// L3 victim cache — the regime of high L3 hit rates and redundant
	// clean write backs without on-chip sharing.
	StaggerRotate
)

// Profile is a complete synthetic workload description.
type Profile struct {
	Name          string
	Threads       int
	RefsPerThread int
	MeanGap       float64 // geometric mean compute gap between references
	// BurstLen > 0 issues references in bursts of ~BurstLen with gap 0,
	// separated by idle periods that preserve MeanGap on average —
	// bursty write-back trains are what overflow the L3's incoming
	// queue (TP's retry storms).
	BurstLen int
	Regions  []Region
	Seed     uint64
}

// Validate reports the first inconsistency in the profile.
func (p *Profile) Validate() error {
	if p.Threads <= 0 {
		return fmt.Errorf("workload %s: Threads = %d", p.Name, p.Threads)
	}
	if p.RefsPerThread <= 0 {
		return fmt.Errorf("workload %s: RefsPerThread = %d", p.Name, p.RefsPerThread)
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("workload %s: no regions", p.Name)
	}
	total := 0.0
	for i, r := range p.Regions {
		if r.Lines <= 0 {
			return fmt.Errorf("workload %s: region %d (%s) has %d lines", p.Name, i, r.Name, r.Lines)
		}
		if r.Weight < 0 {
			return fmt.Errorf("workload %s: region %d (%s) negative weight", p.Name, i, r.Name)
		}
		if r.StoreFrac < 0 || r.StoreFrac > 1 {
			return fmt.Errorf("workload %s: region %d (%s) StoreFrac %v", p.Name, i, r.Name, r.StoreFrac)
		}
		total += r.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: zero total region weight", p.Name)
	}
	return nil
}

const lineBytes = 128

// initialCursor staggers Loop/Stride cursors across the threads sharing
// a region instance. Globally shared loops spread the thread classes
// (one thread per L2 in each class) evenly around the loop with a small
// cross-L2 skew: every L2 then walks the same windows concurrently, so
// lines are resident in several L2 caches at once — the cross-chip
// sharing that makes peer write-back squashes, interventions and snarf
// victims possible, and that lets a line be "already in the L3" because
// a peer L2 wrote it back first. Privately held instances use a tight
// stagger so SMT siblings prefetch for each other.
func initialCursor(r *Region, tid, threadsPerL2 int) int {
	if r.Pattern == Zipf || r.Lines == 0 {
		return 0
	}
	if r.Sharing == Global && threadsPerL2 > 0 {
		if r.Stagger == StaggerRotate {
			groups := 4 // L2 groups on the chip
			return ((tid/threadsPerL2)*(r.Lines/groups) + (tid%threadsPerL2)*17) % r.Lines
		}
		class := tid % threadsPerL2
		perGroup := r.SkewLines
		if perGroup == 0 {
			perGroup = 13
		}
		skew := (tid / threadsPerL2) * perGroup
		return (class*(r.Lines/threadsPerL2) + skew) % r.Lines
	}
	return (tid * 17) % r.Lines
}

// regionState is one thread's view of one region.
type regionState struct {
	region *Region
	base   uint64 // first line address of this thread's instance
	zipf   *sim.Zipf
	pos    int // Loop/Stride cursor
	pass   int
}

// Generate synthesizes the trace. The result is grouped by thread.
func (p *Profile) Generate() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &trace.Trace{Name: p.Name, Threads: p.Threads}
	out.Records = make([]trace.Record, 0, p.Threads*p.RefsPerThread)

	// Region instances occupy disjoint address stripes:
	// stripe(regionIdx, instanceIdx) at a fixed large pitch.
	const stripe = uint64(1) << 34

	// Zipf tables are shared across threads (same shape).
	zipfs := make([]*sim.Zipf, len(p.Regions))
	for i := range p.Regions {
		if p.Regions[i].Pattern == Zipf {
			zipfs[i] = sim.NewZipf(p.Regions[i].Lines, p.Regions[i].ZipfTheta)
		}
	}
	// Cumulative region weights for selection.
	cum := make([]float64, len(p.Regions))
	total := 0.0
	for i, r := range p.Regions {
		total += r.Weight
		cum[i] = total
	}

	threadsPerL2 := 4
	if p.Threads < 4 {
		threadsPerL2 = 1
	}

	for tid := 0; tid < p.Threads; tid++ {
		rng := sim.NewRand(p.Seed*1_000_003 + uint64(tid)*7919 + 1)
		states := make([]regionState, len(p.Regions))
		for i := range p.Regions {
			r := &p.Regions[i]
			instance := 0
			switch r.Sharing {
			case Private:
				instance = tid
			case PerL2:
				instance = tid / threadsPerL2
			case Global:
				instance = 0
			}
			// The stripe pitch alone would align every instance's base to
			// a large power of two, aliasing all instances onto the same
			// cache sets. A multiplicative-hash offset scatters instance
			// bases uniformly across the L2 and L3 index space, as real
			// allocators do. (A small fixed stagger is not enough: any
			// offset congruent to a few lines modulo the set-index period
			// piles every instance onto the same sets and produces
			// conflict evictions in a mostly empty cache.)
			idx := uint64(i*64 + instance)
			scatter := (idx * 2654435761) & 0xFFFFF // ~1M-line spread
			states[i] = regionState{
				region: r,
				base:   stripe*idx/uint64(lineBytes) + scatter,
				zipf:   zipfs[i],
				pos:    initialCursor(r, tid, threadsPerL2),
			}
		}
		inBurst := 0
		for n := 0; n < p.RefsPerThread; n++ {
			// Select region.
			u := rng.Float64() * total
			ri := 0
			for ri < len(cum)-1 && cum[ri] < u {
				ri++
			}
			st := &states[ri]
			r := st.region

			// Select line.
			var line int
			switch r.Pattern {
			case Zipf:
				line = st.zipf.Sample(rng)
			case Loop:
				line = st.pos
				st.pos++
				if st.pos >= r.Lines {
					st.pos = 0
				}
			case Stride:
				line = st.pos
				st.pos++
				if st.pos >= r.Lines {
					st.pass++
					// Restart at a pass-dependent offset to weaken reuse.
					st.pos = (st.pass * 61) % r.Lines
				}
			}
			addr := (st.base + uint64(line)) * lineBytes

			// Select op.
			op := trace.Load
			if r.Ifetch {
				op = trace.Ifetch
			} else if rng.Float64() < r.StoreFrac {
				op = trace.Store
			}

			// Select gap.
			var gap uint32
			if p.BurstLen > 0 {
				if inBurst > 0 {
					inBurst--
				} else {
					// Idle period carrying the burst's share of MeanGap.
					gap = uint32(rng.Geometric(p.MeanGap * float64(p.BurstLen)))
					inBurst = p.BurstLen - 1
				}
			} else {
				gap = uint32(rng.Geometric(p.MeanGap))
			}

			out.Records = append(out.Records, trace.Record{
				Thread: uint16(tid),
				Op:     op,
				Addr:   addr,
				Gap:    gap,
			})
		}
	}
	return out, nil
}

// MustGenerate is Generate for known-good built-in profiles.
func (p *Profile) MustGenerate() *trace.Trace {
	t, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return t
}
