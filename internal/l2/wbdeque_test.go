package l2

import (
	"math/rand"
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
)

func dequeKeys(d *wbDeque) []uint64 {
	keys := make([]uint64, 0, d.Len())
	for i := 0; i < d.Len(); i++ {
		keys = append(keys, d.At(i).Key)
	}
	return keys
}

func TestWBDequeFIFO(t *testing.T) {
	d := newWBDeque(8)
	for k := uint64(1); k <= 20; k++ { // forces growth past the pre-size
		d.PushBack(WBEntry{Key: k})
	}
	if d.Len() != 20 {
		t.Fatalf("Len = %d, want 20", d.Len())
	}
	for want := uint64(1); want <= 20; want++ {
		if got := d.At(0).Key; got != want {
			t.Fatalf("head = %d, want %d", got, want)
		}
		d.RemoveAt(0)
	}
	if d.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", d.Len())
	}
}

func TestWBDequePushFrontOrdersBeforeQueued(t *testing.T) {
	d := newWBDeque(8)
	d.PushBack(WBEntry{Key: 2})
	d.PushBack(WBEntry{Key: 3})
	d.PushFront(WBEntry{Key: 1})
	want := []uint64{1, 2, 3}
	got := dequeKeys(&d)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestWBDequeInteriorRemove(t *testing.T) {
	for remove := 0; remove < 5; remove++ {
		d := newWBDeque(8)
		// Exercise a wrapped layout: rotate the head before filling.
		d.PushBack(WBEntry{Key: 99})
		d.RemoveAt(0)
		for k := uint64(0); k < 5; k++ {
			d.PushBack(WBEntry{Key: k})
		}
		d.RemoveAt(remove)
		var want []uint64
		for k := uint64(0); k < 5; k++ {
			if int(k) != remove {
				want = append(want, k)
			}
		}
		got := dequeKeys(&d)
		if len(got) != len(want) {
			t.Fatalf("remove %d: %v, want %v", remove, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("remove %d: %v, want %v", remove, got, want)
			}
		}
	}
}

// TestWBDequeMatchesSlice drives the deque and a plain-slice reference
// through randomized push/pop/remove/requeue sequences and requires
// identical contents at every step — the old representation's observable
// behavior is the spec.
func TestWBDequeMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := newWBDeque(8)
	var ref []uint64
	next := uint64(100)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || d.n == 0: // PushBack
			d.PushBack(WBEntry{Key: next})
			ref = append(ref, next)
			next++
		case op == 1: // PushFront (requeue)
			d.PushFront(WBEntry{Key: next})
			ref = append([]uint64{next}, ref...)
			next++
		case op == 2: // interior remove
			i := rng.Intn(d.Len())
			d.RemoveAt(i)
			ref = append(ref[:i], ref[i+1:]...)
		default: // in-place mutate via At
			i := rng.Intn(d.Len())
			d.At(i).Key++
			ref[i]++
		}
		if d.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", step, d.Len(), len(ref))
		}
		for i, want := range ref {
			if got := d.At(i).Key; got != want {
				t.Fatalf("step %d: At(%d) = %d, want %d (deque %v)", step, i, got, want, dequeKeys(&d))
			}
		}
	}
}

// TestRequeueWBOrdering covers the satellite requirement end to end on
// the real cache: a retried entry re-arbitrates before younger write
// backs, and interleaves correctly with cancellation.
func TestRequeueWBOrdering(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	for _, key := range []uint64{10, 20, 30} {
		if got := c.ProcessVictim(key, coherence.Modified, false, false); got != VictimQueued {
			t.Fatalf("ProcessVictim(%d) = %v, want VictimQueued", key, got)
		}
	}
	// Head issues, then retries: it must come back ahead of 20 and 30.
	e, ok := c.HeadWB()
	if !ok || e.Key != 10 {
		t.Fatalf("HeadWB = %+v/%v, want key 10", e, ok)
	}
	entry, cancelled := c.CompleteWB(10)
	if cancelled {
		t.Fatal("CompleteWB(10) reported cancelled")
	}
	c.RequeueWB(entry)
	if got := c.WBQueueLen(); got != 3 {
		t.Fatalf("WBQueueLen after requeue = %d, want 3", got)
	}
	order := []uint64{10, 20, 30}
	for _, want := range order {
		e, ok := c.HeadWB()
		if !ok || e.Key != want {
			t.Fatalf("HeadWB = %+v/%v, want key %d", e, ok, want)
		}
		if _, cancelled := c.CompleteWB(want); cancelled {
			t.Fatalf("CompleteWB(%d) reported cancelled", want)
		}
	}
	if c.WBQueueLen() != 0 {
		t.Fatalf("queue not drained: %d entries left", c.WBQueueLen())
	}
}
