// Package l2 models one of the chip's four shared L2 caches: four
// independently ported slices of tag state (Figure 1), the MSHRs that
// track outstanding misses, the eight-entry write-back queue whose
// fullness blocks demand misses, and — when enabled — the paper's two
// adaptive structures (the Write Back History Table and the snarf reuse
// table) owned by this cache.
//
// The L2 caches are the system's points of coherence: every demand miss
// and write back appears on the ring and is snooped here. This package
// implements the state machine; transaction sequencing and timing live
// in internal/system.
package l2

import (
	"fmt"
	"math/bits"

	"cmpcache/internal/cache"
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/core"
	"cmpcache/internal/sim"
	"cmpcache/internal/wbpolicy"
)

// flagSnarfed marks a line that arrived via a write-back snarf rather
// than a demand fill; it powers the Table 5 statistics on whether
// snarfed lines are later used locally or supplied as interventions.
const flagSnarfed uint8 = 1 << 0

// ProbeKind classifies the outcome of a demand probe.
type ProbeKind int8

const (
	// ProbeHit: the access completes locally with no bus transaction.
	ProbeHit ProbeKind = iota
	// ProbeHitStoreUpgrade: a store hit an Exclusive line; the access
	// completes locally but the caller must commit the silent E→M
	// upgrade (SetState) so the transition flows through the same
	// observation path as every other dirty-state change.
	ProbeHitStoreUpgrade
	// ProbeHitNeedsUpgrade: the data is present but a store requires an
	// ownership claim on the bus (line held S, SL or T).
	ProbeHitNeedsUpgrade
	// ProbeWBBufferHit: the line was found in the write-back queue; the
	// pending write back is cancelled and the line reinstalled.
	ProbeWBBufferHit
	// ProbeMiss: a bus Read/RWITM is required.
	ProbeMiss
)

// Stats aggregates this L2's counters. Field names follow the paper's
// vocabulary.
type Stats struct {
	Accesses     uint64 // demand probes (loads+stores+ifetches)
	Hits         uint64 // proper tag hits (includes upgrades-needed)
	MSHRAttach   uint64 // accesses absorbed by a pending miss
	WBBufferHits uint64
	Misses       uint64 // probes that started a new bus transaction

	CleanVictims   uint64 // clean lines chosen for replacement
	DirtyVictims   uint64
	CleanWBQueued  uint64 // clean write backs actually enqueued
	CleanWBAborted uint64 // clean write backs aborted by the WBHT
	SharedDropped  uint64 // snarf installs that displaced a Shared line

	HistoryVictims uint64 // fills that used the WBHT-informed victim choice

	SnarfOffers         uint64 // snooped snarfable WBs from peers
	SnarfAccepts        uint64 // this cache volunteered
	SnarfInstalls       uint64 // this cache won and installed the line
	SnarfDeclinedMSHR   uint64 // declined: miss in flight for that line
	SnarfDeclinedFull   uint64 // declined: no invalid/shared victim
	SnarfDeclinedPolicy uint64 // declined: policy rejected the offer

	SnarfedUsedLocally  uint64 // snarfed line later hit by local demand
	SnarfedIntervention uint64 // snarfed line later supplied to a peer

	SnoopsObserved uint64
	Invalidations  uint64 // lines invalidated by peer RWITM/Upgrade
	Interventions  uint64 // data supplied to peers (all lines)
	UpdatesTaken   uint64 // lines kept Shared by a peer's update push
}

// WBEntry is one write-back queue occupant.
type WBEntry struct {
	Key       uint64
	Kind      coherence.TxnKind
	State     coherence.State // state the line held at eviction
	Snarfable bool            // reuse-table verdict, carried on the bus
	InFlight  bool            // bus transaction issued, awaiting combine
	Cancelled bool            // demand re-fetched the line; drop outcome
}

// mshr tracks one outstanding miss and the accesses coalesced onto it.
// Nodes are pooled: the waiter slices keep their capacity across
// reuses, so tracking a miss allocates nothing in steady state.
type mshr struct {
	key          uint64
	kind         coherence.TxnKind
	loadWaiters  []func(config.Cycles)
	storeWaiters []func(config.Cycles)
}

// Cache is one L2 cache.
type Cache struct {
	id         int
	cfg        *config.Config
	slices     []*cache.Cache
	ports      []sim.Server
	sliceMask  uint64
	sliceShift uint

	mshrs    map[uint64]*mshr
	mshrPool *sim.Pool[mshr]
	// drainLoads/drainStores are the reusable buffers TakeWaiters
	// returns; their contents are valid until the next TakeWaiters call
	// on this cache.
	drainLoads  []func(config.Cycles)
	drainStores []func(config.Cycles)

	wbq wbDeque // FIFO; index 0 is head

	// agent is this cache's half of the configured write-back policy
	// (never nil); it owns the adaptive tables and the three decision
	// points (clean-WB abort, snarf flagging, offer acceptance).
	agent wbpolicy.Agent

	stats Stats
}

// New builds L2 cache id from cfg. agent is this cache's half of the
// write-back policy (wbpolicy.Chip.Agent(id)).
func New(id int, cfg *config.Config, agent wbpolicy.Agent) *Cache {
	linesPerSlice := cfg.L2Lines() / cfg.L2Slices
	sets := linesPerSlice / cfg.L2Assoc
	slices := make([]*cache.Cache, cfg.L2Slices)
	for i := range slices {
		slices[i] = cache.New(sets, cfg.L2Assoc)
	}
	c := &Cache{
		id:         id,
		cfg:        cfg,
		slices:     slices,
		ports:      make([]sim.Server, cfg.L2Slices),
		sliceMask:  uint64(cfg.L2Slices - 1),
		sliceShift: uint(bits.TrailingZeros(uint(cfg.L2Slices))),
		mshrs:      make(map[uint64]*mshr, cfg.MSHRsPerL2),
		mshrPool:   sim.NewPool(func() *mshr { return &mshr{} }),
		wbq:        newWBDeque(cfg.WBQueueEntries + 1),
		agent:      agent,
	}
	c.mshrPool.Prime(cfg.MSHRsPerL2)
	return c
}

// ID returns the cache's agent index.
func (c *Cache) ID() int { return c.id }

// WBHT returns the policy agent's Write Back History Table, or nil.
func (c *Cache) WBHT() *core.WBHT { return c.agent.WBHT() }

// SnarfTable returns the policy agent's snarf reuse table, or nil.
func (c *Cache) SnarfTable() *core.SnarfTable { return c.agent.SnarfTable() }

// StatsSnapshot returns a copy of the counters.
func (c *Cache) StatsSnapshot() Stats { return c.stats }

func (c *Cache) slice(key uint64) (*cache.Cache, uint64) {
	return c.slices[key&c.sliceMask], key >> c.sliceShift
}

// ReservePort books tag/data port bandwidth on key's slice starting at
// or after now, returning the access start cycle.
func (c *Cache) ReservePort(key uint64, now config.Cycles) config.Cycles {
	return c.ports[key&c.sliceMask].Reserve(now, c.cfg.L2PortOccupancy)
}

// Probe performs a demand lookup for a load (isStore=false) or store,
// updating recency. count controls access statistics: a probe
// re-attempted after a structural stall (full write-back queue or MSHRs)
// passes false so the access is not double-counted. Probe never mutates
// coherence state: a store hitting an Exclusive line reports
// ProbeHitStoreUpgrade and the caller commits the silent E→M transition
// via SetState, so it lands inside the observation hooks (auditor,
// latency timers) like every other dirty-state change rather than as a
// side effect of a lookup.
func (c *Cache) Probe(key uint64, isStore, count bool) ProbeKind {
	if count {
		c.stats.Accesses++
	}
	s, k := c.slice(key)
	line := s.LookupTouch(k)
	if line != nil {
		if count {
			c.stats.Hits++
		}
		c.noteLocalUse(line)
		if !isStore {
			return ProbeHit
		}
		switch coherence.State(line.State) {
		case coherence.Modified:
			return ProbeHit
		case coherence.Exclusive:
			return ProbeHitStoreUpgrade
		default: // S, SL, T: must claim ownership on the bus
			return ProbeHitNeedsUpgrade
		}
	}
	if c.findWB(key) >= 0 {
		if count {
			c.stats.WBBufferHits++
		}
		return ProbeWBBufferHit
	}
	return ProbeMiss
}

// noteLocalUse scores Table 5's "snarfed lines used locally" once per
// snarfed line.
func (c *Cache) noteLocalUse(line *cache.Line) {
	if line.Flags&flagSnarfed != 0 {
		c.stats.SnarfedUsedLocally++
		line.Flags &^= flagSnarfed
	}
}

// State returns the coherence state of key (Invalid when absent),
// without perturbing recency or statistics.
func (c *Cache) State(key uint64) coherence.State {
	s, k := c.slice(key)
	if l, ok := s.Peek(k); ok {
		return coherence.State(l.State)
	}
	return coherence.Invalid
}

// ForEachLine invokes fn for every valid line with its chip-wide key,
// coherence state and flag bits. It perturbs neither recency nor
// statistics, so shadow checkers may call it between events.
func (c *Cache) ForEachLine(fn func(key uint64, st coherence.State, flags uint8)) {
	for si, s := range c.slices {
		idx := uint64(si)
		s.ForEach(func(l cache.Line) {
			fn(l.Key<<c.sliceShift|idx, coherence.State(l.State), l.Flags)
		})
	}
}

// ForEachWB invokes fn for every write-back queue entry — live,
// in-flight and cancelled alike — head first. Observation-only.
func (c *Cache) ForEachWB(fn func(e WBEntry)) {
	for i := 0; i < c.wbq.Len(); i++ {
		fn(*c.wbq.At(i))
	}
}

// SetState overwrites the state of a resident line (test hook and
// upgrade-commit path). It panics if the line is absent, which would
// indicate a protocol sequencing bug.
func (c *Cache) SetState(key uint64, st coherence.State) {
	s, k := c.slice(key)
	if !s.SetState(k, int8(st)) {
		panic(fmt.Sprintf("l2 %d: SetState on absent line %#x", c.id, key))
	}
}

// --- MSHR management ---

// MSHRFor returns whether key has an outstanding miss.
func (c *Cache) MSHRFor(key uint64) bool {
	_, ok := c.mshrs[key]
	return ok
}

// MSHRCount returns the number of live MSHRs.
func (c *Cache) MSHRCount() int { return len(c.mshrs) }

// MSHRFull reports whether a new miss can be tracked.
func (c *Cache) MSHRFull() bool { return len(c.mshrs) >= c.cfg.MSHRsPerL2 }

// AllocMSHR registers a new outstanding miss. It panics on duplicate
// allocation (the caller must Attach instead).
func (c *Cache) AllocMSHR(key uint64, kind coherence.TxnKind) {
	if _, ok := c.mshrs[key]; ok {
		panic(fmt.Sprintf("l2 %d: duplicate MSHR for %#x", c.id, key))
	}
	m := c.mshrPool.Get()
	m.key, m.kind = key, kind
	m.loadWaiters = m.loadWaiters[:0]
	m.storeWaiters = m.storeWaiters[:0]
	c.mshrs[key] = m
}

// AttachMSHR registers a completion callback on an outstanding miss,
// reporting false when none exists. Store waiters are completed only
// after ownership is obtained (see TakeWaiters). Coalescing statistics
// are the caller's concern (CountMSHRAttach): the primary requester
// attaches through the same path.
func (c *Cache) AttachMSHR(key uint64, isStore bool, done func(config.Cycles)) bool {
	m, ok := c.mshrs[key]
	if !ok {
		return false
	}
	if isStore {
		m.storeWaiters = append(m.storeWaiters, done)
	} else {
		m.loadWaiters = append(m.loadWaiters, done)
	}
	return true
}

// MSHRKind returns the bus transaction kind of key's outstanding miss.
// It panics when no MSHR exists.
func (c *Cache) MSHRKind(key uint64) coherence.TxnKind {
	m, ok := c.mshrs[key]
	if !ok {
		panic(fmt.Sprintf("l2 %d: MSHRKind on absent MSHR %#x", c.id, key))
	}
	return m.kind
}

// TakeWaiters removes key's MSHR and returns its coalesced load and
// store completion callbacks. It panics when no MSHR exists. The
// returned slices are reused storage, valid until the next TakeWaiters
// call on this cache; the MSHR node itself returns to the pool.
func (c *Cache) TakeWaiters(key uint64) (loads, stores []func(config.Cycles)) {
	m, ok := c.mshrs[key]
	if !ok {
		panic(fmt.Sprintf("l2 %d: TakeWaiters on absent MSHR %#x", c.id, key))
	}
	delete(c.mshrs, key)
	c.drainLoads = append(c.drainLoads[:0], m.loadWaiters...)
	c.drainStores = append(c.drainStores[:0], m.storeWaiters...)
	c.mshrPool.Put(m)
	return c.drainLoads, c.drainStores
}

// CountMiss records that a probe for key became a new bus transaction
// and lets the policy agent observe the local miss (reuse-distance
// training runs on this per-L2 miss clock).
func (c *Cache) CountMiss(key uint64) {
	c.stats.Misses++
	c.agent.ObserveLocalMiss(key)
}

// CountMSHRAttach records that an access coalesced onto an existing
// outstanding miss instead of issuing its own transaction.
func (c *Cache) CountMSHRAttach() { c.stats.MSHRAttach++ }

// --- Write-back queue ---

// WBQueueFull reports whether the write-back queue has no free slot; a
// full queue blocks demand misses ("misses to the L2 cache will be
// blocked and will have to wait for an open slot").
func (c *Cache) WBQueueFull() bool { return c.wbq.Len() >= c.cfg.WBQueueEntries }

// WBQueueLen returns current occupancy.
func (c *Cache) WBQueueLen() int { return c.wbq.Len() }

func (c *Cache) findWB(key uint64) int {
	for i := 0; i < c.wbq.Len(); i++ {
		if e := c.wbq.At(i); e.Key == key && !e.Cancelled {
			return i
		}
	}
	return -1
}

// CancelWB removes (or, if already on the bus, poisons) the queued write
// back for key and returns its entry for reinstallation. ok is false
// when no live entry exists.
func (c *Cache) CancelWB(key uint64) (WBEntry, bool) {
	i := c.findWB(key)
	if i < 0 {
		return WBEntry{}, false
	}
	e := *c.wbq.At(i)
	if e.InFlight {
		c.wbq.At(i).Cancelled = true
	} else {
		c.wbq.RemoveAt(i)
	}
	return e, true
}

// HeadWB returns the next entry to issue (skipping cancelled ones) and
// marks it in flight. ok is false when the queue has no issuable entry.
func (c *Cache) HeadWB() (*WBEntry, bool) {
	for i := 0; i < c.wbq.Len(); i++ {
		if e := c.wbq.At(i); !e.Cancelled && !e.InFlight {
			e.InFlight = true
			return e, true
		}
	}
	return nil, false
}

// RequeueWB reinstates a retried entry at the head of the queue so it
// re-arbitrates before younger write backs, preserving FIFO order. The
// entry is stored issuable (not in flight, not cancelled). RequeueWB is
// exempt from the capacity gate: the entry's slot was logically never
// given up.
func (c *Cache) RequeueWB(e WBEntry) {
	e.InFlight = false
	e.Cancelled = false
	c.wbq.PushFront(e)
}

// CompleteWB removes the in-flight (possibly cancelled) entry for key,
// returning it along with whether it had been cancelled while on the
// bus.
func (c *Cache) CompleteWB(key uint64) (entry WBEntry, wasCancelled bool) {
	for i := 0; i < c.wbq.Len(); i++ {
		if e := c.wbq.At(i); e.Key == key && e.InFlight {
			entry = *e
			c.wbq.RemoveAt(i)
			return entry, entry.Cancelled
		}
	}
	panic(fmt.Sprintf("l2 %d: CompleteWB on absent in-flight entry %#x", c.id, key))
}

// Reinstall puts a write-back-buffer line back into the tag array (a
// demand access caught it before it left the chip). The caller supplies
// the entry returned by CancelWB. Reinstallation may itself evict a
// victim — returned with its chip-wide key — which the caller must
// process.
func (c *Cache) Reinstall(e WBEntry) (victimKey uint64, victimState coherence.State, evicted bool) {
	s, k := c.slice(e.Key)
	v, did := s.Insert(k, int8(e.State), 0, true)
	if !did {
		return 0, coherence.Invalid, false
	}
	return c.keyFromSlice(v.Key, e.Key), coherence.State(v.State), true
}

// --- Victim handling (the paper's Section 2 policy) ---

// VictimAction says what became of an evicted line.
type VictimAction int8

const (
	// VictimNone: the victim was invalid; nothing to do.
	VictimNone VictimAction = iota
	// VictimQueued: a write back was enqueued.
	VictimQueued
	// VictimAborted: the WBHT predicted the line already resides in the
	// L3, so the clean write back was suppressed.
	VictimAborted
)

// String renders the action for trace output (static strings only).
func (a VictimAction) String() string {
	switch a {
	case VictimNone:
		return "none"
	case VictimQueued:
		return "queued"
	case VictimAborted:
		return "aborted"
	}
	return "?"
}

// ProcessVictim applies the write-back policy to an evicted line,
// identified by its chip-wide key (as returned by InstallFill) and the
// state it held. switchActive is the retry-rate switch state
// (Section 2.2), passed to switch-gated policies; inL3 is the
// simulator's oracle peek used solely to score prediction accuracy
// (Table 4's "WBHT Correct" row). The policy agent occupies decision
// points 1 (clean-WB abort) and 2 (snarf flagging) here.
func (c *Cache) ProcessVictim(key uint64, st coherence.State, switchActive, inL3 bool) VictimAction {
	if !st.Valid() {
		return VictimNone
	}
	c.agent.ObserveEviction(key)
	kind := coherence.CleanWB
	if st.Dirty() {
		kind = coherence.DirtyWB
		c.stats.DirtyVictims++
	} else {
		c.stats.CleanVictims++
		if c.agent.AbortCleanWB(key, switchActive, inL3) {
			c.stats.CleanWBAborted++
			return VictimAborted
		}
		c.stats.CleanWBQueued++
	}
	entry := WBEntry{Key: key, Kind: kind, State: st, Snarfable: c.agent.FlagWriteBack(key)}
	c.wbq.PushBack(entry)
	return VictimQueued
}

// --- Fills and snarf installs ---

// historyReplacementWindow bounds how deep into the LRU stack the
// history-informed victim search looks (Section 7 extension).
const historyReplacementWindow = 4

// InstallFill inserts a demand fill with the given state, returning the
// victim it displaced (chip-wide key reconstructed) and its state, if
// any. With HistoryReplacement enabled, the victim search prefers —
// within the LRU-most window — clean lines whose tags hit in this
// cache's WBHT: they are already in the L3, so their eviction is free
// (the write back will be aborted) and cheap to undo (L3 hit, not a
// memory access).
func (c *Cache) InstallFill(key uint64, st coherence.State) (victimKey uint64, victimState coherence.State, evicted bool) {
	s, k := c.slice(key)
	var v cache.Line
	var did bool
	if w := c.agent.WBHT(); c.cfg.WBHT.HistoryReplacement && w != nil {
		v, did = s.InsertPrefer(k, int8(st), 0, true, historyReplacementWindow, func(l cache.Line) bool {
			lst := coherence.State(l.State)
			return lst.Valid() && !lst.Dirty() && w.Contains(c.keyFromSlice(l.Key, key))
		})
		if did {
			c.stats.HistoryVictims++
		}
	} else {
		v, did = s.Insert(k, int8(st), 0, true)
	}
	if !did {
		return 0, coherence.Invalid, false
	}
	return c.keyFromSlice(v.Key, key), coherence.State(v.State), true
}

// keyFromSlice rebuilds a chip-wide key for a victim that came from the
// same slice as ref.
func (c *Cache) keyFromSlice(local uint64, ref uint64) uint64 {
	return local<<c.sliceShift | (ref & c.sliceMask)
}

// --- Snooping ---

// SnoopDemand reacts to a peer's demand transaction: state transitions
// per the POWER4-style protocol and the snoop response for the
// collector. Own transactions must not be snooped by their issuer.
func (c *Cache) SnoopDemand(key uint64, kind coherence.TxnKind) coherence.Response {
	c.stats.SnoopsObserved++
	s, k := c.slice(key)
	line := s.Lookup(k)
	if line == nil {
		return coherence.RespNull
	}
	st := coherence.State(line.State)
	switch kind {
	case coherence.Read:
		switch st {
		case coherence.Modified:
			line.State = int8(coherence.Tagged)
			c.noteIntervention(line)
			return coherence.RespModifiedIntervention
		case coherence.Tagged:
			c.noteIntervention(line)
			return coherence.RespModifiedIntervention
		case coherence.Exclusive, coherence.SharedLast:
			line.State = int8(coherence.Shared) // requester becomes SL
			c.noteIntervention(line)
			return coherence.RespSharedIntervention
		case coherence.Shared:
			return coherence.RespShared
		}
	case coherence.RWITM:
		resp := coherence.RespShared
		switch st {
		case coherence.Modified, coherence.Tagged:
			c.noteIntervention(line)
			resp = coherence.RespModifiedIntervention
		case coherence.Exclusive, coherence.SharedLast:
			c.noteIntervention(line)
			resp = coherence.RespSharedIntervention
		}
		s.Invalidate(k)
		c.stats.Invalidations++
		return resp
	case coherence.Upgrade:
		if st == coherence.Modified {
			// A lost ownership race: our own claim (or RWITM) already
			// invalidated the upgrader's copy, so its stale Upgrade must
			// not destroy the only current copy of the data. The system
			// never snoops a stale claim (it restarts as RWITM straight
			// from the combine), so this guard is defense in depth.
			return coherence.RespNull
		}
		// The claimer already holds the data; we just relinquish ours.
		s.Invalidate(k)
		c.stats.Invalidations++
		return coherence.RespShared
	}
	return coherence.RespNull
}

// SnoopUpdate reacts to a peer's update-mode ownership claim (the
// hybrid update/invalidate policy): instead of relinquishing its copy,
// the snooper keeps the line Shared and receives the writer's data
// push. A clean supplier (SL/E) or dirty owner (T) demotes to plain
// Shared — the writer becomes the line's dirty supplier — and a
// Modified copy means the claim already lost its race (same defense in
// depth as SnoopDemand's stale-Upgrade guard), so it answers RespNull.
func (c *Cache) SnoopUpdate(key uint64) coherence.Response {
	c.stats.SnoopsObserved++
	s, k := c.slice(key)
	line := s.Lookup(k)
	if line == nil {
		return coherence.RespNull
	}
	switch coherence.State(line.State) {
	case coherence.Modified:
		return coherence.RespNull
	case coherence.Tagged, coherence.SharedLast, coherence.Exclusive:
		line.State = int8(coherence.Shared)
	}
	c.stats.UpdatesTaken++
	return coherence.RespShared
}

// SnoopDemandWB extends demand snooping to the write-back queue: a
// castout buffer participates in snooping exactly like the tag array,
// otherwise a queued entry goes stale the moment a peer's RWITM or
// Upgrade commits and a later reinstallation or snarf resurrects it as
// a valid copy alongside the new owner's Modified line. The system
// calls it when the tag array had no copy (the two never hold the same
// line at once). State transitions mirror SnoopDemand's: a Read demotes
// the entry in place (Modified→Tagged, Exclusive/SharedLast→Shared) and
// supplies the data; an invalidating transaction cancels the entry —
// removed when still queued, poisoned when already on the bus — and
// returns it so the caller can audit the hand-off. A Modified entry
// survives an Upgrade snoop for the same reason a Modified array line
// does: it can only coexist with a claim that has already lost its
// race.
func (c *Cache) SnoopDemandWB(key uint64, kind coherence.TxnKind) (resp coherence.Response, cancelled WBEntry, didCancel bool) {
	i := c.findWB(key)
	if i < 0 {
		return coherence.RespNull, WBEntry{}, false
	}
	e := c.wbq.At(i)
	st := e.State
	switch kind {
	case coherence.Read:
		switch st {
		case coherence.Modified:
			e.State = coherence.Tagged
			c.stats.Interventions++
			return coherence.RespModifiedIntervention, WBEntry{}, false
		case coherence.Tagged:
			c.stats.Interventions++
			return coherence.RespModifiedIntervention, WBEntry{}, false
		case coherence.Exclusive, coherence.SharedLast:
			e.State = coherence.Shared // requester becomes SL
			c.stats.Interventions++
			return coherence.RespSharedIntervention, WBEntry{}, false
		default:
			return coherence.RespShared, WBEntry{}, false
		}
	case coherence.RWITM:
		resp = coherence.RespShared
		switch st {
		case coherence.Modified, coherence.Tagged:
			c.stats.Interventions++
			resp = coherence.RespModifiedIntervention
		case coherence.Exclusive, coherence.SharedLast:
			c.stats.Interventions++
			resp = coherence.RespSharedIntervention
		}
		out := *e
		c.dropWBAt(i)
		c.stats.Invalidations++
		return resp, out, true
	case coherence.Upgrade:
		if st == coherence.Modified {
			return coherence.RespNull, WBEntry{}, false
		}
		out := *e
		c.dropWBAt(i)
		c.stats.Invalidations++
		return coherence.RespShared, out, true
	}
	return coherence.RespNull, WBEntry{}, false
}

// dropWBAt invalidates queue slot i: removed outright when still
// waiting, poisoned when its bus transaction is in flight (the combine
// discards a cancelled entry).
func (c *Cache) dropWBAt(i int) {
	if c.wbq.At(i).InFlight {
		c.wbq.At(i).Cancelled = true
	} else {
		c.wbq.RemoveAt(i)
	}
}

// noteIntervention updates intervention statistics, scoring snarfed
// lines once (Table 5's "snarfed lines provided for interventions").
func (c *Cache) noteIntervention(line *cache.Line) {
	c.stats.Interventions++
	if line.Flags&flagSnarfed != 0 {
		c.stats.SnarfedIntervention++
		line.Flags &^= flagSnarfed
	}
}

// SnoopWB reacts to a peer's write back when snarfing is enabled. The
// squash check runs for every write back — in a snoopy protocol the tag
// lookup is part of mandatory snooping, and "lines being written back
// are frequently found in peer L2 caches"; squashing them is what
// collapses the L3 retry rate in Table 5. The expensive part — the
// victim-way search and fill-buffer reservation of the snarf algorithm —
// runs only for write backs the reuse table marked snarfable
// (Section 3: unrestricted snarfing "will likely offset any performance
// gains" through added pressure). A snarf volunteer also requires no
// miss in flight for the line ("we conservatively decline the cache
// line in that situation").
func (c *Cache) SnoopWB(key uint64, kind coherence.TxnKind, snarfable bool) coherence.Response {
	c.stats.SnoopsObserved++
	if !c.agent.SnoopsWB() {
		return coherence.RespNull
	}
	s, k := c.slice(key)
	if s.Contains(k) {
		return coherence.RespWBSquash
	}
	if !snarfable {
		return coherence.RespNull
	}
	c.stats.SnarfOffers++
	if c.MSHRFor(key) {
		c.stats.SnarfDeclinedMSHR++
		return coherence.RespNull
	}
	okStates := []int8{}
	if c.cfg.Snarf.VictimizeShared {
		okStates = append(okStates, int8(coherence.Shared))
	}
	way, _ := s.ReplaceableWay(k, okStates...)
	if way < 0 {
		c.stats.SnarfDeclinedFull++
		return coherence.RespNull
	}
	// Decision point 3: the structural checks passed; the policy has
	// the final accept/reject say.
	if !c.agent.AcceptOffer(key) {
		c.stats.SnarfDeclinedPolicy++
		return coherence.RespNull
	}
	c.stats.SnarfAccepts++
	return coherence.RespSnarfAccept
}

// AcceptSnarf installs a snarfed write back after winning arbitration.
// The install repeats the victim search (still within the same combine
// event, so the set cannot have changed) and places the line per the
// configured insertion policy, marked snarfed, with its original
// coherence state. ok reports whether the install happened; when it
// displaced a valid (Shared) line, dropped is true and displaced holds
// that line's chip-wide key so conservation checkers can account for it.
func (c *Cache) AcceptSnarf(e WBEntry) (displaced uint64, dropped bool, ok bool) {
	s, k := c.slice(e.Key)
	okStates := []int8{}
	if c.cfg.Snarf.VictimizeShared {
		okStates = append(okStates, int8(coherence.Shared))
	}
	way, old := s.ReplaceableWay(k, okStates...)
	if way < 0 {
		return 0, false, false
	}
	if old.Valid {
		c.stats.SharedDropped++
	}
	prev := s.ReplaceWay(k, way, int8(e.State), flagSnarfed, c.cfg.Snarf.InsertMRU)
	c.stats.SnarfInstalls++
	return c.keyFromSlice(prev.Key, e.Key), prev.Valid, true
}

// TakeSupplierRole promotes this cache's plain Shared copy of key to
// SharedLast, inheriting the designated clean-supplier role. The system
// calls it when a peer's clean write back of a SharedLast line is
// squashed because we hold a copy: without the hand-off the remaining
// sharers would have no intervention source, and the next read miss
// would go off chip despite the line being resident on chip. It reports
// whether the promotion happened (false when we no longer hold the line
// or hold it in a state that already supplies).
func (c *Cache) TakeSupplierRole(key uint64) bool {
	s, k := c.slice(key)
	if l, ok := s.Peek(k); !ok || coherence.State(l.State) != coherence.Shared {
		return false
	}
	s.SetState(k, int8(coherence.SharedLast))
	return true
}

// TakeWBObligation transfers dirty-data responsibility to this cache: a
// peer's dirty write back was squashed because we hold a valid (clean,
// shared) copy, so our copy becomes Tagged and will be written back on
// eviction. It panics if we do not actually hold the line.
func (c *Cache) TakeWBObligation(key uint64) {
	s, k := c.slice(key)
	l := s.Lookup(k)
	if l == nil {
		panic(fmt.Sprintf("l2 %d: TakeWBObligation without a copy of %#x", c.id, key))
	}
	l.State = int8(coherence.Tagged)
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.slices {
		n += s.CountValid()
	}
	return n
}

// HitRate returns hits (including MSHR attaches and WB-buffer hits)
// over accesses.
func (c *Cache) HitRate() float64 {
	if c.stats.Accesses == 0 {
		return 0
	}
	return float64(c.stats.Hits+c.stats.WBBufferHits) / float64(c.stats.Accesses)
}
