package l2

import (
	"testing"

	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/wbpolicy"
)

func newL2(t *testing.T, m config.Mechanism) (*Cache, *config.Config) {
	t.Helper()
	cfg := config.Default().WithMechanism(m)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(0, &cfg, wbpolicy.New(&cfg).Agent(0)), &cfg
}

// fill installs key with state st, failing the test on eviction (tests
// use sparse keys that should not conflict).
func fill(t *testing.T, c *Cache, key uint64, st coherence.State) {
	t.Helper()
	if _, _, ev := c.InstallFill(key, st); ev {
		t.Fatalf("unexpected eviction installing %#x", key)
	}
}

func TestProbeMissThenHit(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	if got := c.Probe(100, false, true); got != ProbeMiss {
		t.Fatalf("probe on empty cache = %v, want miss", got)
	}
	fill(t, c, 100, coherence.Exclusive)
	if got := c.Probe(100, false, true); got != ProbeHit {
		t.Fatalf("probe after fill = %v, want hit", got)
	}
	s := c.StatsSnapshot()
	if s.Accesses != 2 || s.Hits != 1 {
		t.Fatalf("accesses/hits = %d/%d, want 2/1", s.Accesses, s.Hits)
	}
}

func TestStoreSilentUpgradeOnExclusive(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	fill(t, c, 4, coherence.Exclusive)
	// The probe reports the silent E→M upgrade without committing it —
	// the caller owns the transition (and its observation hooks), so the
	// probe must leave the line untouched.
	if got := c.Probe(4, true, true); got != ProbeHitStoreUpgrade {
		t.Fatalf("store on E = %v, want store-upgrade hit", got)
	}
	if st := c.State(4); st != coherence.Exclusive {
		t.Fatalf("state after probe = %v, want E (probe must not mutate)", st)
	}
	c.SetState(4, coherence.Modified)
	if st := c.State(4); st != coherence.Modified {
		t.Fatalf("state after commit = %v, want M", st)
	}
}

func TestStoreOnSharedNeedsUpgrade(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	for _, st := range []coherence.State{coherence.Shared, coherence.SharedLast, coherence.Tagged} {
		key := uint64(8 + int(st)*16)
		fill(t, c, key, st)
		if got := c.Probe(key, true, true); got != ProbeHitNeedsUpgrade {
			t.Fatalf("store on %v = %v, want upgrade", st, got)
		}
	}
	// Modified needs nothing.
	fill(t, c, 1000, coherence.Modified)
	if got := c.Probe(1000, true, true); got != ProbeHit {
		t.Fatal("store on M should hit silently")
	}
}

func TestMSHRLifecycle(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.AllocMSHR(5, coherence.Read)
	if !c.MSHRFor(5) || c.MSHRCount() != 1 {
		t.Fatal("MSHR not registered")
	}
	if c.MSHRKind(5) != coherence.Read {
		t.Fatal("wrong MSHR kind")
	}
	var loadsDone, storesDone int
	if !c.AttachMSHR(5, false, func(config.Cycles) { loadsDone++ }) {
		t.Fatal("attach failed")
	}
	if !c.AttachMSHR(5, true, func(config.Cycles) { storesDone++ }) {
		t.Fatal("attach failed")
	}
	if c.AttachMSHR(6, false, func(config.Cycles) {}) {
		t.Fatal("attach to absent MSHR succeeded")
	}
	loads, stores := c.TakeWaiters(5)
	if len(loads) != 1 || len(stores) != 1 {
		t.Fatalf("waiters = %d/%d, want 1/1", len(loads), len(stores))
	}
	if c.MSHRFor(5) {
		t.Fatal("MSHR survived TakeWaiters")
	}
}

func TestMSHRDuplicatePanics(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.AllocMSHR(5, coherence.Read)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AllocMSHR did not panic")
		}
	}()
	c.AllocMSHR(5, coherence.RWITM)
}

func TestMSHRFull(t *testing.T) {
	cfg := config.Default()
	cfg.MSHRsPerL2 = 24 // minimum allowed by Validate for 4x6
	c := New(0, &cfg, wbpolicy.New(&cfg).Agent(0))
	for i := 0; i < 24; i++ {
		c.AllocMSHR(uint64(i), coherence.Read)
	}
	if !c.MSHRFull() {
		t.Fatal("MSHRFull = false at capacity")
	}
}

func TestVictimPolicyBaseline(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	if got := c.ProcessVictim(1, coherence.Modified, false, false); got != VictimQueued {
		t.Fatalf("dirty victim = %v, want queued", got)
	}
	if got := c.ProcessVictim(2, coherence.Shared, false, false); got != VictimQueued {
		t.Fatalf("clean victim = %v, want queued (baseline writes back all)", got)
	}
	if got := c.ProcessVictim(0, coherence.Invalid, false, false); got != VictimNone {
		t.Fatalf("invalid victim = %v, want none", got)
	}
	s := c.StatsSnapshot()
	if s.DirtyVictims != 1 || s.CleanVictims != 1 || s.CleanWBQueued != 1 {
		t.Fatalf("victim stats = %+v", s)
	}
	if c.WBQueueLen() != 2 {
		t.Fatalf("WB queue = %d, want 2", c.WBQueueLen())
	}
}

func TestVictimPolicyWBHTAborts(t *testing.T) {
	c, _ := newL2(t, config.WBHT)
	key := uint64(77)
	c.WBHT().Allocate(key)
	// Switch active: the table is consulted and aborts.
	if got := c.ProcessVictim(key, coherence.Shared, true, true); got != VictimAborted {
		t.Fatalf("known-in-L3 clean victim = %v, want aborted", got)
	}
	s := c.StatsSnapshot()
	if s.CleanWBAborted != 1 || s.CleanWBQueued != 0 {
		t.Fatalf("abort stats = %+v", s)
	}
	if c.WBHT().Correct() != 1 {
		t.Fatalf("correct decisions = %d, want 1", c.WBHT().Correct())
	}
	// Switch inactive: same line is written back despite the hint.
	if got := c.ProcessVictim(key, coherence.Shared, false, true); got != VictimQueued {
		t.Fatalf("victim with inactive switch = %v, want queued", got)
	}
	// Dirty lines always go, active switch or not.
	if got := c.ProcessVictim(key+1, coherence.Tagged, true, false); got != VictimQueued {
		t.Fatalf("dirty victim with WBHT = %v, want queued", got)
	}
}

func TestVictimMarksSnarfable(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	key := uint64(9)
	c.SnarfTable().RecordWriteBack(key)
	c.SnarfTable().RecordMiss(key)
	c.ProcessVictim(key, coherence.Shared, false, false)
	e, ok := c.HeadWB()
	if !ok || !e.Snarfable {
		t.Fatalf("entry = %+v (ok=%v), want snarfable", e, ok)
	}
	// A line with no reuse history is not snarfable.
	c.ProcessVictim(key+1, coherence.Shared, false, false)
	e2, ok := c.HeadWB()
	if !ok || e2.Snarfable {
		t.Fatalf("entry2 = %+v, want non-snarfable", e2)
	}
}

func TestWBQueueOrderAndCompletion(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.ProcessVictim(1, coherence.Modified, false, false)
	c.ProcessVictim(2, coherence.Shared, false, false)
	e, ok := c.HeadWB()
	if !ok || e.Key != 1 || !e.InFlight {
		t.Fatalf("head = %+v, want key 1 in flight", e)
	}
	// Second issuable entry while first is in flight.
	e2, ok := c.HeadWB()
	if !ok || e2.Key != 2 {
		t.Fatalf("second head = %+v, want key 2", e2)
	}
	if _, ok := c.HeadWB(); ok {
		t.Fatal("third head available from 2-entry queue")
	}
	if e1, cancelled := c.CompleteWB(1); cancelled || e1.Key != 1 {
		t.Fatalf("CompleteWB = %+v, cancelled=%v", e1, cancelled)
	}
	if c.WBQueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1", c.WBQueueLen())
	}
}

func TestWBRetryRequeues(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.ProcessVictim(1, coherence.Modified, false, false)
	e, _ := c.HeadWB()
	entry, cancelled := c.CompleteWB(e.Key)
	if cancelled {
		t.Fatal("entry unexpectedly cancelled")
	}
	c.RequeueWB(entry)
	e2, ok := c.HeadWB()
	if !ok || e2.Key != 1 {
		t.Fatal("retried entry not re-issuable")
	}
}

func TestWBQueueFullBlocks(t *testing.T) {
	cfg := config.Default()
	c := New(0, &cfg, wbpolicy.New(&cfg).Agent(0))
	for i := 0; i < cfg.WBQueueEntries; i++ {
		c.ProcessVictim(uint64(i), coherence.Modified, false, false)
	}
	if !c.WBQueueFull() {
		t.Fatal("queue not full after WBQueueEntries victims")
	}
}

func TestWBBufferHitCancelsAndReinstalls(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.ProcessVictim(42, coherence.Tagged, false, false)
	if got := c.Probe(42, false, true); got != ProbeWBBufferHit {
		t.Fatalf("probe = %v, want WB buffer hit", got)
	}
	e, ok := c.CancelWB(42)
	if !ok || e.State != coherence.Tagged {
		t.Fatalf("cancel = %+v, %v", e, ok)
	}
	if _, _, ev := c.Reinstall(e); ev {
		t.Fatal("reinstall evicted from an empty cache")
	}
	if st := c.State(42); st != coherence.Tagged {
		t.Fatalf("reinstalled state = %v, want T", st)
	}
	if c.WBQueueLen() != 0 {
		t.Fatalf("queue len = %d, want 0", c.WBQueueLen())
	}
}

func TestCancelInFlightPoisons(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	c.ProcessVictim(7, coherence.Modified, false, false)
	c.HeadWB() // now in flight
	e, ok := c.CancelWB(7)
	if !ok {
		t.Fatal("cancel of in-flight entry failed")
	}
	_ = e
	if c.WBQueueLen() != 1 {
		t.Fatal("in-flight entry must stay queued until combine")
	}
	if _, cancelled := c.CompleteWB(7); !cancelled {
		t.Fatal("CompleteWB did not report cancellation")
	}
	if c.WBQueueLen() != 0 {
		t.Fatal("entry not removed at completion")
	}
}

func TestSnoopDemandReadTransitions(t *testing.T) {
	cases := []struct {
		before coherence.State
		resp   coherence.Response
		after  coherence.State
	}{
		{coherence.Modified, coherence.RespModifiedIntervention, coherence.Tagged},
		{coherence.Tagged, coherence.RespModifiedIntervention, coherence.Tagged},
		{coherence.Exclusive, coherence.RespSharedIntervention, coherence.Shared},
		{coherence.SharedLast, coherence.RespSharedIntervention, coherence.Shared},
		{coherence.Shared, coherence.RespShared, coherence.Shared},
	}
	for _, tc := range cases {
		c, _ := newL2(t, config.Baseline)
		fill(t, c, 64, tc.before)
		resp := c.SnoopDemand(64, coherence.Read)
		if resp != tc.resp {
			t.Errorf("Read snoop on %v: resp = %v, want %v", tc.before, resp, tc.resp)
		}
		if st := c.State(64); st != tc.after {
			t.Errorf("Read snoop on %v: state = %v, want %v", tc.before, st, tc.after)
		}
	}
}

func TestSnoopDemandRWITMInvalidates(t *testing.T) {
	for _, st := range []coherence.State{
		coherence.Shared, coherence.SharedLast, coherence.Exclusive,
		coherence.Modified, coherence.Tagged,
	} {
		c, _ := newL2(t, config.Baseline)
		fill(t, c, 64, st)
		resp := c.SnoopDemand(64, coherence.RWITM)
		if got := c.State(64); got != coherence.Invalid {
			t.Errorf("RWITM snoop on %v left state %v", st, got)
		}
		wantSupply := st.CanIntervene()
		gotSupply := resp == coherence.RespModifiedIntervention || resp == coherence.RespSharedIntervention
		if wantSupply != gotSupply {
			t.Errorf("RWITM snoop on %v: resp = %v", st, resp)
		}
	}
}

func TestSnoopDemandUpgradeInvalidates(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	fill(t, c, 64, coherence.Shared)
	if resp := c.SnoopDemand(64, coherence.Upgrade); resp != coherence.RespShared {
		t.Fatalf("upgrade snoop resp = %v", resp)
	}
	if c.State(64) != coherence.Invalid {
		t.Fatal("upgrade snoop did not invalidate")
	}
}

func TestSnoopDemandMissIsNull(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	if resp := c.SnoopDemand(64, coherence.Read); resp != coherence.RespNull {
		t.Fatalf("snoop miss = %v, want null", resp)
	}
}

func TestSnoopWBSquashWhenPresent(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	fill(t, c, 64, coherence.Shared)
	if resp := c.SnoopWB(64, coherence.CleanWB, true); resp != coherence.RespWBSquash {
		t.Fatalf("WB snoop with valid copy = %v, want squash", resp)
	}
}

func TestSnoopWBAcceptsIntoInvalidWay(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	if resp := c.SnoopWB(64, coherence.CleanWB, true); resp != coherence.RespSnarfAccept {
		t.Fatalf("snarfable WB = %v, want accept", resp)
	}
	if resp := c.SnoopWB(65, coherence.CleanWB, false); resp != coherence.RespNull {
		t.Fatalf("non-snarfable WB = %v, want null", resp)
	}
}

func TestSnoopWBDeclinesOnMSHR(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	c.AllocMSHR(64, coherence.Read)
	if resp := c.SnoopWB(64, coherence.CleanWB, true); resp != coherence.RespNull {
		t.Fatalf("WB snoop with MSHR in flight = %v, want decline", resp)
	}
	if c.StatsSnapshot().SnarfDeclinedMSHR != 1 {
		t.Fatal("decline not counted")
	}
}

func TestSnoopWBVictimizesSharedButNotExclusive(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	// Shrink to 1-way slices... keep geometry but fill one set fully.
	c := New(0, &cfg, wbpolicy.New(&cfg).Agent(0))
	// Fill set 0 of slice 0 with E/M lines: no shared victims available.
	sets := cfg.L2Lines() / cfg.L2Slices / cfg.L2Assoc
	for i := 0; i < cfg.L2Assoc; i++ {
		key := uint64(i*sets) << 2 // slice 0, set 0, distinct tags
		st := coherence.Exclusive
		if i%2 == 1 {
			st = coherence.Modified
		}
		fill(t, c, key, st)
	}
	offKey := uint64(cfg.L2Assoc*sets) << 2
	if resp := c.SnoopWB(offKey, coherence.CleanWB, true); resp != coherence.RespNull {
		t.Fatalf("WB into E/M-full set = %v, want decline", resp)
	}
	if c.StatsSnapshot().SnarfDeclinedFull != 1 {
		t.Fatal("decline-full not counted")
	}
	// Downgrade one way to Shared: now it volunteers.
	c.SetState(0, coherence.Shared)
	if resp := c.SnoopWB(offKey, coherence.CleanWB, true); resp != coherence.RespSnarfAccept {
		t.Fatalf("WB with shared victim available = %v, want accept", resp)
	}
}

func TestSnoopWBInvalidOnlyPolicy(t *testing.T) {
	cfg := config.Default().WithMechanism(config.Snarf)
	cfg.Snarf.VictimizeShared = false
	c := New(0, &cfg, wbpolicy.New(&cfg).Agent(0))
	sets := cfg.L2Lines() / cfg.L2Slices / cfg.L2Assoc
	for i := 0; i < cfg.L2Assoc; i++ {
		fill(t, c, uint64(i*sets)<<2, coherence.Shared)
	}
	offKey := uint64(cfg.L2Assoc*sets) << 2
	if resp := c.SnoopWB(offKey, coherence.CleanWB, true); resp != coherence.RespNull {
		t.Fatalf("invalid-only policy accepted into shared-full set: %v", resp)
	}
}

func TestAcceptSnarfInstallsMarked(t *testing.T) {
	c, cfg := newL2(t, config.Snarf)
	e := WBEntry{Key: 64, Kind: coherence.CleanWB, State: coherence.Exclusive}
	if _, _, ok := c.AcceptSnarf(e); !ok {
		t.Fatal("AcceptSnarf failed on empty cache")
	}
	if st := c.State(64); st != coherence.Exclusive {
		t.Fatalf("snarfed state = %v, want E", st)
	}
	// Local use is scored once.
	c.Probe(64, false, true)
	c.Probe(64, false, true)
	s := c.StatsSnapshot()
	if s.SnarfInstalls != 1 || s.SnarfedUsedLocally != 1 {
		t.Fatalf("snarf stats = %+v", s)
	}
	_ = cfg
}

func TestSnarfedInterventionScoredOnce(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	c.AcceptSnarf(WBEntry{Key: 64, Kind: coherence.DirtyWB, State: coherence.Modified})
	c.SnoopDemand(64, coherence.Read) // M -> T, supplies
	c.SnoopDemand(64, coherence.Read) // T supplies again
	s := c.StatsSnapshot()
	if s.Interventions != 2 || s.SnarfedIntervention != 1 {
		t.Fatalf("intervention stats = %+v", s)
	}
}

func TestTakeWBObligation(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	fill(t, c, 64, coherence.Shared)
	c.TakeWBObligation(64)
	if st := c.State(64); st != coherence.Tagged {
		t.Fatalf("state = %v, want T", st)
	}
}

func TestTakeWBObligationPanicsWithoutCopy(t *testing.T) {
	c, _ := newL2(t, config.Snarf)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without a copy")
		}
	}()
	c.TakeWBObligation(64)
}

func TestInstallFillEvictionReconstructsKey(t *testing.T) {
	cfg := config.Default()
	c := New(0, &cfg, wbpolicy.New(&cfg).Agent(0))
	sets := cfg.L2Lines() / cfg.L2Slices / cfg.L2Assoc
	// Fill set 3 of slice 2 beyond capacity.
	mkKey := func(tag int) uint64 { return (uint64(tag*sets)+3)<<2 | 2 }
	for i := 0; i < cfg.L2Assoc; i++ {
		fill(t, c, mkKey(i), coherence.Shared)
	}
	vKey, vState, ev := c.InstallFill(mkKey(cfg.L2Assoc), coherence.Shared)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if vKey != mkKey(0) {
		t.Fatalf("victim key = %#x, want %#x", vKey, mkKey(0))
	}
	if vState != coherence.Shared {
		t.Fatalf("victim state = %v", vState)
	}
}

func TestReservePortSerializesSlice(t *testing.T) {
	c, cfg := newL2(t, config.Baseline)
	a := c.ReservePort(0, 10) // slice 0
	b := c.ReservePort(4, 10) // key 4 -> slice 0 too (4 & 3 == 0)
	d := c.ReservePort(1, 10) // slice 1
	if a != 10 || b != 10+cfg.L2PortOccupancy || d != 10 {
		t.Fatalf("starts = %d/%d/%d", a, b, d)
	}
}

func TestHitRate(t *testing.T) {
	c, _ := newL2(t, config.Baseline)
	fill(t, c, 0, coherence.Exclusive)
	c.Probe(0, false, true)
	c.Probe(64, false, true)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
}

func TestMechanismTableWiring(t *testing.T) {
	base, _ := newL2(t, config.Baseline)
	if base.WBHT() != nil || base.SnarfTable() != nil {
		t.Fatal("baseline L2 should have no tables")
	}
	w, _ := newL2(t, config.WBHT)
	if w.WBHT() == nil || w.SnarfTable() != nil {
		t.Fatal("WBHT mechanism wiring wrong")
	}
	s, _ := newL2(t, config.Snarf)
	if s.WBHT() != nil || s.SnarfTable() == nil {
		t.Fatal("snarf mechanism wiring wrong")
	}
	comb, cfg := newL2(t, config.Combined)
	if comb.WBHT() == nil || comb.SnarfTable() == nil {
		t.Fatal("combined mechanism wiring wrong")
	}
	if comb.WBHT().Entries() != 16384 || comb.SnarfTable().Entries() != 16384 {
		t.Fatalf("combined tables = %d/%d, want halved",
			comb.WBHT().Entries(), comb.SnarfTable().Entries())
	}
	_ = cfg
}
