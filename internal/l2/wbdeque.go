package l2

// wbDeque is the write-back queue's storage: a growable power-of-two
// ring buffer with O(1) PushBack and PushFront and order-preserving
// interior removal. It replaces the former slice representation, whose
// RequeueWB prepend (append([]WBEntry{e}, wbq...)) allocated a fresh
// slice and copied the whole queue on every retried write back.
//
// Indices are head-relative: At(0) is the oldest entry. The queue is
// tiny (WBQueueEntries is 8 in the paper's configuration), so the
// O(len) shifts in RemoveAt stay within one cache line of entries.
type wbDeque struct {
	buf  []WBEntry
	head int // buf index of element 0
	n    int
}

// newWBDeque returns a deque pre-sized to hold at least capacity
// entries without growing.
func newWBDeque(capacity int) wbDeque {
	size := 4
	for size < capacity {
		size <<= 1
	}
	return wbDeque{buf: make([]WBEntry, size)}
}

// Len returns the number of queued entries.
func (d *wbDeque) Len() int { return d.n }

// At returns a pointer to the i-th entry from the head, for in-place
// mutation. It panics on an out-of-range index.
func (d *wbDeque) At(i int) *WBEntry {
	if i < 0 || i >= d.n {
		panic("l2: wbDeque index out of range")
	}
	return &d.buf[(d.head+i)&(len(d.buf)-1)]
}

// PushBack appends an entry at the tail (youngest position).
func (d *wbDeque) PushBack(e WBEntry) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = e
	d.n++
}

// PushFront inserts an entry at the head (oldest position), ahead of
// every queued entry — the RequeueWB path.
func (d *wbDeque) PushFront(e WBEntry) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = e
	d.n++
}

// RemoveAt deletes the i-th entry from the head, preserving the
// relative order of the rest. The shorter side of the queue is shifted.
func (d *wbDeque) RemoveAt(i int) {
	if i < 0 || i >= d.n {
		panic("l2: wbDeque remove out of range")
	}
	mask := len(d.buf) - 1
	if i < d.n-1-i {
		// Shift the head segment toward the tail by one.
		for j := i; j > 0; j-- {
			d.buf[(d.head+j)&mask] = d.buf[(d.head+j-1)&mask]
		}
		d.buf[d.head] = WBEntry{}
		d.head = (d.head + 1) & mask
	} else {
		// Shift the tail segment toward the head by one.
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)&mask] = d.buf[(d.head+j+1)&mask]
		}
		d.buf[(d.head+d.n-1)&mask] = WBEntry{}
	}
	d.n--
}

// grow doubles the buffer, re-linearizing entries from the head.
func (d *wbDeque) grow() {
	grown := make([]WBEntry, 2*len(d.buf))
	mask := len(d.buf) - 1
	for i := 0; i < d.n; i++ {
		grown[i] = d.buf[(d.head+i)&mask]
	}
	d.buf = grown
	d.head = 0
}
