// Package txlat is the per-transaction latency attribution layer: it
// stamps every demand miss and write back at its lifecycle stage
// boundaries and accumulates the per-stage cycle costs into log-bucketed
// histograms keyed by (transaction kind × outcome × mechanism state),
// plus a top-K reservoir of the slowest transactions with their full
// stage vectors.
//
// Stages follow the protocol's actual event chain. A demand miss runs
//
//	issue → MSHR allocate/bus start   (StageFrontend: port + tag access,
//	                                   structural-stall retry backoff)
//	      → combined response          (StageArb: address-ring arbitration
//	                                   + address phase; re-arbitrations
//	                                   after upgrade restarts accumulate)
//	      → source data ready          (StageSource: peer-L2 intervention,
//	                                   L3 array or memory access)
//	      → data delivered             (StageXfer: data-ring wait +
//	                                   occupancy)
//
// and a write back runs
//
//	victim queued → bus issue          (StageWBQueue: castout-machine wait)
//	             → combined response   (StageArb)
//	retry backoff → re-issue           (StageWBRetry: accumulates across
//	                                   every retry round)
//	combine → L3 array retirement      (StageWBL3: data ring + L3 slice +
//	                                   array write, to-L3 dispositions)
//
// Like the metrics probe and the invariant auditor, an attached
// collector is observation-only: hooks never schedule events or touch
// simulation state, so attached and detached runs are bit-identical in
// event sequence and results. A system without a collector pays one nil
// check per hook site (the cmpbench -bench-check gate enforces this
// stays free).
package txlat

import (
	"cmpcache/internal/coherence"
	"cmpcache/internal/config"
	"cmpcache/internal/stats"
)

// Stage indexes one lifecycle segment of a transaction.
type Stage uint8

const (
	// StageFrontend: demand issue to bus start — core-to-L2 transit, tag
	// access, and any structural-stall retry backoff (MSHR or write-back
	// queue full).
	StageFrontend Stage = iota
	// StageArb: address-ring arbitration wait plus the address/snoop
	// phase, up to the combined response. Re-arbitrations (upgrade
	// restarts, write-back retries re-issuing) accumulate here.
	StageArb
	// StageSource: combined response to source data ready — the peer-L2,
	// L3 or memory access supplying the line.
	StageSource
	// StageXfer: data-ring wait and occupancy delivering the line.
	StageXfer
	// StageWBQueue: victim enqueued to first bus issue (and any
	// post-requeue wait that is not retry backoff).
	StageWBQueue
	// StageWBRetry: retry combined-response to the entry's next bus
	// issue — the backoff plus head-of-queue wait, summed over rounds.
	StageWBRetry
	// StageWBL3: write-back combine to L3 array retirement (data ring,
	// L3 slice wait, array write) for to-L3 dispositions.
	StageWBL3

	NumStages
)

var stageNames = [NumStages]string{
	"frontend", "arb", "source", "xfer", "wb_queue", "wb_retry", "wb_l3",
}

// String returns the stage's report name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// demandStages and wbStages list which stage slots each transaction
// class exercises; zero-valued stages of the class are still observed so
// every stage histogram in a group has the group's full sample count.
var (
	demandStages = []Stage{StageFrontend, StageArb, StageSource, StageXfer}
	wbStages     = []Stage{StageWBQueue, StageArb, StageWBRetry, StageWBL3}
)

// Outcome is how a transaction resolved: the fill source for demand
// transactions, the disposition for write backs.
type Outcome uint8

const (
	// OutNone: no data transfer (ownership upgrades).
	OutNone Outcome = iota
	// OutPeer: filled by a peer-L2 intervention.
	OutPeer
	// OutL3: filled from the off-chip L3 victim cache.
	OutL3
	// OutMem: filled from memory.
	OutMem
	// OutWBToL3: write back accepted and retired into the L3 (including
	// snarf fallbacks that still held the queue token).
	OutWBToL3
	// OutWBSquashL3: clean write back squashed — line already in the L3.
	OutWBSquashL3
	// OutWBSquashPeer: squashed by a peer holding an identical copy.
	OutWBSquashPeer
	// OutWBSnarf: absorbed L2-to-L2 by the elected snarf winner.
	OutWBSnarf
	// OutWBCancelled: a demand access reclaimed the line first.
	OutWBCancelled

	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	"none", "peer", "l3", "mem", "to-l3", "squash-l3", "squash-peer", "snarf", "cancelled",
}

// String returns the outcome's report name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome?"
}

// outcomeForSource maps a demand combined-response data source.
func outcomeForSource(src coherence.Source) Outcome {
	switch src {
	case coherence.SourcePeerL2:
		return OutPeer
	case coherence.SourceL3:
		return OutL3
	case coherence.SourceMemory:
		return OutMem
	default:
		return OutNone
	}
}

// Config parameterizes a Collector.
type Config struct {
	// TopK bounds the slowest-transactions reservoir; <= 0 selects
	// DefaultTopK.
	TopK int
	// Interval, when positive, additionally bins committed transactions
	// into fixed windows and records per-window latency quantiles (the
	// time-resolved view examples/retrystorm overlays against the retry
	// switch). Zero disables windowing, and the collector then needs no
	// engine tick at all.
	Interval config.Cycles
}

// DefaultTopK is the default slowest-transactions reservoir size.
const DefaultTopK = 16

// groupKey identifies one latency population.
type groupKey struct {
	kind     coherence.TxnKind
	out      Outcome
	switchOn bool
}

// group accumulates one population's distributions.
type group struct {
	total stats.Histogram
	// service excludes the frontend stage (issue-to-MSHR-allocation
	// wait): it is the transaction's latency from bus arbitration
	// onward, the contention-comparable counterpart of the paper's
	// Table 3 load latencies.
	service stats.Histogram
	stages  [NumStages]stats.Histogram
}

// open is one in-flight transaction's stage record.
type open struct {
	start    config.Cycles
	last     config.Cycles
	kind     coherence.TxnKind
	out      Outcome
	switchOn bool
	wb       bool
	retrying bool
	l2       int8
	key      uint64
	stages   [NumStages]uint64
}

// openKey addresses an in-flight record: at most one demand transaction
// and one queued write back exist per (L2, line) at any instant.
type openKey struct {
	key uint64
	l2  int8
	wb  bool
}

// Collector gathers stage-attributed latency for one run. Like the
// metrics probe it is single-use and not safe for concurrent use.
type Collector struct {
	topK     int
	interval config.Cycles

	opens    map[openKey]*open
	freeList []*open

	// retireWait holds to-L3 write backs between bus combine and L3
	// array retirement, FIFO per line key (concurrent same-key retires
	// are rare but legal — two caches cast out the same clean line).
	retireWait map[uint64][]*open

	groups map[groupKey]*group
	keys   []groupKey // insertion order, sorted at Finish

	slowest []SlowTxn // min-heap on Total, capped at topK

	// Windowing (Interval > 0).
	nextClose config.Cycles
	winDemand stats.Histogram
	winWB     stats.Histogram
	windows   []Window

	dropped  uint64 // records overwritten while still open (lost txns)
	finished bool
	report   Report
}

// New returns a collector with the given configuration.
func New(cfg Config) *Collector {
	k := cfg.TopK
	if k <= 0 {
		k = DefaultTopK
	}
	c := &Collector{
		topK:       k,
		interval:   cfg.Interval,
		opens:      make(map[openKey]*open),
		retireWait: make(map[uint64][]*open),
		groups:     make(map[groupKey]*group),
	}
	if c.interval > 0 {
		c.nextClose = c.interval
	}
	return c
}

// Windowed reports whether the collector needs the engine's per-event
// tick (only when interval windowing is enabled).
func (c *Collector) Windowed() bool { return c.interval > 0 }

// Interval returns the window length (0 when windowing is disabled).
func (c *Collector) Interval() config.Cycles { return c.interval }

// Tick is the engine's per-event time observer; it closes every window
// whose end the simulation clock has reached. Only called when
// Windowed() — a non-windowed collector imposes no per-event work.
func (c *Collector) Tick(now config.Cycles) {
	for now >= c.nextClose {
		c.closeWindow(c.nextClose)
	}
}

// NextBoundary returns the end of the currently open window, or a time
// later than any reachable cycle when windowing is disabled. The sharded
// coordinator caps each round's horizon strictly below it so windows
// close only at round boundaries, after every preceding event has fired.
func (c *Collector) NextBoundary() config.Cycles {
	if c.interval <= 0 {
		return config.Cycles(1<<63 - 1)
	}
	return c.nextClose
}

func (c *Collector) closeWindow(end config.Cycles) {
	c.emitWindow(c.nextClose-c.interval, end)
	c.nextClose += c.interval
}

func (c *Collector) emitWindow(start, end config.Cycles) {
	c.windows = append(c.windows, Window{
		Window:    int(start / c.interval),
		Start:     start,
		End:       end,
		Demand:    c.winDemand.Summary(),
		WriteBack: c.winWB.Summary(),
	})
	c.winDemand.Reset()
	c.winWB.Reset()
}

// --- record management ---

func (c *Collector) get(k openKey) (*open, bool) {
	o, ok := c.opens[k]
	return o, ok
}

// create returns a fresh record bound to k, recycling committed nodes.
// An existing open record under the same key is dropped (counted): the
// new transaction supersedes it.
func (c *Collector) create(k openKey, now config.Cycles) *open {
	if _, ok := c.opens[k]; ok {
		c.dropped++
	}
	var o *open
	if n := len(c.freeList); n > 0 {
		o = c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
		*o = open{}
	} else {
		o = &open{}
	}
	o.start, o.last = now, now
	o.l2, o.key, o.wb = k.l2, k.key, k.wb
	c.opens[k] = o
	return o
}

func (c *Collector) release(k openKey, o *open) {
	delete(c.opens, k)
	c.freeList = append(c.freeList, o)
}

// commit folds a finished record into its group, the window bins and
// the slowest reservoir, then recycles it. detach says whether the
// record is still in the opens map.
func (c *Collector) commit(k openKey, o *open, now config.Cycles, detached bool) {
	total := uint64(now - o.start)
	gk := groupKey{kind: o.kind, out: o.out, switchOn: o.switchOn}
	g := c.groups[gk]
	if g == nil {
		g = &group{}
		c.groups[gk] = g
		c.keys = append(c.keys, gk)
	}
	g.total.Observe(total)
	g.service.Observe(total - o.stages[StageFrontend])
	list := demandStages
	if o.wb {
		list = wbStages
	}
	for _, st := range list {
		g.stages[st].Observe(o.stages[st])
	}
	if c.interval > 0 {
		if o.wb {
			c.winWB.Observe(total)
		} else {
			c.winDemand.Observe(total)
		}
	}
	c.offerSlowest(o, now, total)
	if detached {
		c.freeList = append(c.freeList, o)
	} else {
		c.release(k, o)
	}
}

// offerSlowest maintains the top-K reservoir as a min-heap on Total.
func (c *Collector) offerSlowest(o *open, end config.Cycles, total uint64) {
	if len(c.slowest) >= c.topK && total <= c.slowest[0].Total {
		return
	}
	tx := SlowTxn{
		Kind:         o.kind.String(),
		Outcome:      o.out.String(),
		SwitchActive: o.switchOn,
		WriteBack:    o.wb,
		L2:           int(o.l2),
		Key:          o.key,
		Start:        o.start,
		End:          end,
		Total:        total,
	}
	list := demandStages
	if o.wb {
		list = wbStages
	}
	tx.Stages = make(map[string]uint64, len(list))
	for _, st := range list {
		tx.Stages[st.String()] = o.stages[st]
	}
	if len(c.slowest) < c.topK {
		c.slowest = append(c.slowest, tx)
		c.siftUp(len(c.slowest) - 1)
		return
	}
	c.slowest[0] = tx
	c.siftDown(0)
}

func (c *Collector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if c.slowest[p].Total <= c.slowest[i].Total {
			return
		}
		c.slowest[p], c.slowest[i] = c.slowest[i], c.slowest[p]
		i = p
	}
}

func (c *Collector) siftDown(i int) {
	n := len(c.slowest)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && c.slowest[l].Total < c.slowest[m].Total {
			m = l
		}
		if r < n && c.slowest[r].Total < c.slowest[m].Total {
			m = r
		}
		if m == i {
			return
		}
		c.slowest[i], c.slowest[m] = c.slowest[m], c.slowest[i]
		i = m
	}
}

// --- demand hooks ---

// DemandIssued opens a demand record when a miss (or upgrade-needed
// hit) allocates its MSHR: issued is the thread's original issue cycle,
// so the frontend stage covers core-to-L2 transit, the tag probe and
// any structural-stall backoff before the transaction could start.
func (c *Collector) DemandIssued(l2 int, key uint64, issued, now config.Cycles) {
	o := c.create(openKey{key: key, l2: int8(l2)}, now)
	// The record starts at the thread's issue cycle, not the MSHR
	// allocation, so the total is the latency the thread observed and
	// the stage vector sums to it exactly.
	o.start = issued
	o.stages[StageFrontend] = uint64(now - issued)
}

// DemandStart records address-ring arbitration for a demand transaction
// (initial issue, upgrade restarts and post-fill ownership claims all
// arbitrate through here; a missing record — the follow-up transaction
// cases — opens one).
func (c *Collector) DemandStart(l2 int, key uint64, kind coherence.TxnKind, switchOn bool, now, combineAt config.Cycles) {
	k := openKey{key: key, l2: int8(l2)}
	o, ok := c.get(k)
	if !ok {
		o = c.create(k, now)
		o.switchOn = switchOn
	}
	o.kind = kind
	o.switchOn = switchOn // restarts reclassify under the final state
	o.stages[StageArb] += uint64(combineAt - now)
	o.last = combineAt
}

// DemandCombine records the combined response's chosen data source.
func (c *Collector) DemandCombine(l2 int, key uint64, src coherence.Source, now config.Cycles) {
	if o, ok := c.get(openKey{key: key, l2: int8(l2)}); ok {
		o.out = outcomeForSource(src)
		o.last = now
	}
}

// DemandSourceReady closes the source-access stage: the line is ready
// to leave its supplier (peer L2, L3 slice or memory bank).
func (c *Collector) DemandSourceReady(l2 int, key uint64, now config.Cycles) {
	if o, ok := c.get(openKey{key: key, l2: int8(l2)}); ok {
		o.stages[StageSource] += uint64(now - o.last)
		o.last = now
	}
}

// DemandComplete commits a demand transaction at data delivery (fills)
// or at the combined response (upgrades, which move no data).
func (c *Collector) DemandComplete(l2 int, key uint64, now config.Cycles) {
	k := openKey{key: key, l2: int8(l2)}
	if o, ok := c.get(k); ok {
		o.stages[StageXfer] += uint64(now - o.last)
		c.commit(k, o, now, false)
	}
}

// --- write-back hooks ---

// WBQueued opens a write-back record when the victim enters the castout
// queue.
func (c *Collector) WBQueued(l2 int, key uint64, kind coherence.TxnKind, switchOn bool, now config.Cycles) {
	o := c.create(openKey{key: key, l2: int8(l2), wb: true}, now)
	o.wb = true
	o.kind = kind
	o.switchOn = switchOn
}

// WBIssued records a write back winning the castout machine and
// arbitrating for the address ring. Queue wait (or, after a retry, the
// backoff round) closes here; the arbitration stage runs to combineAt.
func (c *Collector) WBIssued(l2 int, key uint64, now, combineAt config.Cycles) {
	o, ok := c.get(openKey{key: key, l2: int8(l2), wb: true})
	if !ok {
		return
	}
	if o.retrying {
		o.stages[StageWBRetry] += uint64(now - o.last)
		o.retrying = false
	} else {
		o.stages[StageWBQueue] += uint64(now - o.last)
	}
	o.stages[StageArb] += uint64(combineAt - now)
	o.last = combineAt
}

// WBRetry marks a retried combined response: cycles until the entry's
// next bus issue are attributed to the retry stage.
func (c *Collector) WBRetry(l2 int, key uint64, now config.Cycles) {
	if o, ok := c.get(openKey{key: key, l2: int8(l2), wb: true}); ok {
		o.retrying = true
		o.last = now
	}
}

// WBDone commits a write back that finished at its combined response
// (squashes, snarfs, on-bus cancellations).
func (c *Collector) WBDone(l2 int, key uint64, out Outcome, now config.Cycles) {
	k := openKey{key: key, l2: int8(l2), wb: true}
	if o, ok := c.get(k); ok {
		o.out = out
		c.commit(k, o, now, false)
	}
}

// WBCancelled commits a queued write back reclaimed by a demand access
// before it reached the bus.
func (c *Collector) WBCancelled(l2 int, key uint64, now config.Cycles) {
	k := openKey{key: key, l2: int8(l2), wb: true}
	if o, ok := c.get(k); ok {
		o.stages[StageWBQueue] += uint64(now - o.last)
		o.out = OutWBCancelled
		c.commit(k, o, now, false)
	}
}

// WBToL3 moves an accepted write back into the retirement-wait set; the
// record commits at L3 array retirement (WBRetired).
func (c *Collector) WBToL3(l2 int, key uint64, now config.Cycles) {
	k := openKey{key: key, l2: int8(l2), wb: true}
	o, ok := c.get(k)
	if !ok {
		return
	}
	o.out = OutWBToL3
	o.last = now
	delete(c.opens, k)
	c.retireWait[key] = append(c.retireWait[key], o)
}

// WBRetired commits the oldest retirement-waiting write back of key at
// its L3 array write.
func (c *Collector) WBRetired(key uint64, now config.Cycles) {
	q := c.retireWait[key]
	if len(q) == 0 {
		return
	}
	o := q[0]
	if len(q) == 1 {
		delete(c.retireWait, key)
	} else {
		c.retireWait[key] = q[1:]
	}
	o.stages[StageWBL3] += uint64(now - o.last)
	c.commit(openKey{}, o, now, true)
}

// Finish closes any remaining window, freezes the report and returns
// it. Idempotent. end is the run's final cycle.
func (c *Collector) Finish(end config.Cycles) *Report {
	if c.finished {
		return &c.report
	}
	c.finished = true
	if c.interval > 0 {
		c.Tick(end)
		if start := c.nextClose - c.interval; end > start {
			c.emitWindow(start, end)
		}
	}
	c.report = c.buildReport()
	return &c.report
}
